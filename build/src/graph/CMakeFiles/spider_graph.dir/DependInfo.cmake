
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bipartite.cc" "src/graph/CMakeFiles/spider_graph.dir/bipartite.cc.o" "gcc" "src/graph/CMakeFiles/spider_graph.dir/bipartite.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/graph/CMakeFiles/spider_graph.dir/components.cc.o" "gcc" "src/graph/CMakeFiles/spider_graph.dir/components.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/spider_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/spider_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/graph/CMakeFiles/spider_graph.dir/metrics.cc.o" "gcc" "src/graph/CMakeFiles/spider_graph.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
