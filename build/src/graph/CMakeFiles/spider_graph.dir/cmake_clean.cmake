file(REMOVE_RECURSE
  "CMakeFiles/spider_graph.dir/bipartite.cc.o"
  "CMakeFiles/spider_graph.dir/bipartite.cc.o.d"
  "CMakeFiles/spider_graph.dir/components.cc.o"
  "CMakeFiles/spider_graph.dir/components.cc.o.d"
  "CMakeFiles/spider_graph.dir/graph.cc.o"
  "CMakeFiles/spider_graph.dir/graph.cc.o.d"
  "CMakeFiles/spider_graph.dir/metrics.cc.o"
  "CMakeFiles/spider_graph.dir/metrics.cc.o.d"
  "libspider_graph.a"
  "libspider_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
