file(REMOVE_RECURSE
  "libspider_graph.a"
)
