# Empty dependencies file for spider_graph.
# This may be replaced when dependencies are built.
