# Empty dependencies file for spider_engine.
# This may be replaced when dependencies are built.
