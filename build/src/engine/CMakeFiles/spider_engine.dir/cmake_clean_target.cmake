file(REMOVE_RECURSE
  "libspider_engine.a"
)
