file(REMOVE_RECURSE
  "CMakeFiles/spider_engine.dir/diff.cc.o"
  "CMakeFiles/spider_engine.dir/diff.cc.o.d"
  "CMakeFiles/spider_engine.dir/hash_index.cc.o"
  "CMakeFiles/spider_engine.dir/hash_index.cc.o.d"
  "CMakeFiles/spider_engine.dir/purge.cc.o"
  "CMakeFiles/spider_engine.dir/purge.cc.o.d"
  "libspider_engine.a"
  "libspider_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
