
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/diff.cc" "src/engine/CMakeFiles/spider_engine.dir/diff.cc.o" "gcc" "src/engine/CMakeFiles/spider_engine.dir/diff.cc.o.d"
  "/root/repo/src/engine/hash_index.cc" "src/engine/CMakeFiles/spider_engine.dir/hash_index.cc.o" "gcc" "src/engine/CMakeFiles/spider_engine.dir/hash_index.cc.o.d"
  "/root/repo/src/engine/purge.cc" "src/engine/CMakeFiles/spider_engine.dir/purge.cc.o" "gcc" "src/engine/CMakeFiles/spider_engine.dir/purge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snapshot/CMakeFiles/spider_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
