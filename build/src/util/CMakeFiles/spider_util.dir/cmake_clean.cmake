file(REMOVE_RECURSE
  "CMakeFiles/spider_util.dir/arena.cc.o"
  "CMakeFiles/spider_util.dir/arena.cc.o.d"
  "CMakeFiles/spider_util.dir/cli.cc.o"
  "CMakeFiles/spider_util.dir/cli.cc.o.d"
  "CMakeFiles/spider_util.dir/parallel.cc.o"
  "CMakeFiles/spider_util.dir/parallel.cc.o.d"
  "CMakeFiles/spider_util.dir/prng.cc.o"
  "CMakeFiles/spider_util.dir/prng.cc.o.d"
  "CMakeFiles/spider_util.dir/stats.cc.o"
  "CMakeFiles/spider_util.dir/stats.cc.o.d"
  "CMakeFiles/spider_util.dir/table.cc.o"
  "CMakeFiles/spider_util.dir/table.cc.o.d"
  "CMakeFiles/spider_util.dir/timeutil.cc.o"
  "CMakeFiles/spider_util.dir/timeutil.cc.o.d"
  "libspider_util.a"
  "libspider_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
