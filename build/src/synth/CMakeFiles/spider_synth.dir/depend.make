# Empty dependencies file for spider_synth.
# This may be replaced when dependencies are built.
