
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/domains.cc" "src/synth/CMakeFiles/spider_synth.dir/domains.cc.o" "gcc" "src/synth/CMakeFiles/spider_synth.dir/domains.cc.o.d"
  "/root/repo/src/synth/generator.cc" "src/synth/CMakeFiles/spider_synth.dir/generator.cc.o" "gcc" "src/synth/CMakeFiles/spider_synth.dir/generator.cc.o.d"
  "/root/repo/src/synth/infer.cc" "src/synth/CMakeFiles/spider_synth.dir/infer.cc.o" "gcc" "src/synth/CMakeFiles/spider_synth.dir/infer.cc.o.d"
  "/root/repo/src/synth/langmap.cc" "src/synth/CMakeFiles/spider_synth.dir/langmap.cc.o" "gcc" "src/synth/CMakeFiles/spider_synth.dir/langmap.cc.o.d"
  "/root/repo/src/synth/plan.cc" "src/synth/CMakeFiles/spider_synth.dir/plan.cc.o" "gcc" "src/synth/CMakeFiles/spider_synth.dir/plan.cc.o.d"
  "/root/repo/src/synth/treegen.cc" "src/synth/CMakeFiles/spider_synth.dir/treegen.cc.o" "gcc" "src/synth/CMakeFiles/spider_synth.dir/treegen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snapshot/CMakeFiles/spider_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/spider_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
