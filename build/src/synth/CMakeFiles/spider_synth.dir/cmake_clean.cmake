file(REMOVE_RECURSE
  "CMakeFiles/spider_synth.dir/domains.cc.o"
  "CMakeFiles/spider_synth.dir/domains.cc.o.d"
  "CMakeFiles/spider_synth.dir/generator.cc.o"
  "CMakeFiles/spider_synth.dir/generator.cc.o.d"
  "CMakeFiles/spider_synth.dir/infer.cc.o"
  "CMakeFiles/spider_synth.dir/infer.cc.o.d"
  "CMakeFiles/spider_synth.dir/langmap.cc.o"
  "CMakeFiles/spider_synth.dir/langmap.cc.o.d"
  "CMakeFiles/spider_synth.dir/plan.cc.o"
  "CMakeFiles/spider_synth.dir/plan.cc.o.d"
  "CMakeFiles/spider_synth.dir/treegen.cc.o"
  "CMakeFiles/spider_synth.dir/treegen.cc.o.d"
  "libspider_synth.a"
  "libspider_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
