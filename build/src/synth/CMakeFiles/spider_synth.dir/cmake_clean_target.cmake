file(REMOVE_RECURSE
  "libspider_synth.a"
)
