
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/study/access_patterns.cc" "src/study/CMakeFiles/spider_study.dir/access_patterns.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/access_patterns.cc.o.d"
  "/root/repo/src/study/burstiness.cc" "src/study/CMakeFiles/spider_study.dir/burstiness.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/burstiness.cc.o.d"
  "/root/repo/src/study/census.cc" "src/study/CMakeFiles/spider_study.dir/census.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/census.cc.o.d"
  "/root/repo/src/study/collaboration.cc" "src/study/CMakeFiles/spider_study.dir/collaboration.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/collaboration.cc.o.d"
  "/root/repo/src/study/extensions.cc" "src/study/CMakeFiles/spider_study.dir/extensions.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/extensions.cc.o.d"
  "/root/repo/src/study/file_age.cc" "src/study/CMakeFiles/spider_study.dir/file_age.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/file_age.cc.o.d"
  "/root/repo/src/study/full_study.cc" "src/study/CMakeFiles/spider_study.dir/full_study.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/full_study.cc.o.d"
  "/root/repo/src/study/growth.cc" "src/study/CMakeFiles/spider_study.dir/growth.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/growth.cc.o.d"
  "/root/repo/src/study/joblog.cc" "src/study/CMakeFiles/spider_study.dir/joblog.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/joblog.cc.o.d"
  "/root/repo/src/study/languages.cc" "src/study/CMakeFiles/spider_study.dir/languages.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/languages.cc.o.d"
  "/root/repo/src/study/network.cc" "src/study/CMakeFiles/spider_study.dir/network.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/network.cc.o.d"
  "/root/repo/src/study/participation.cc" "src/study/CMakeFiles/spider_study.dir/participation.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/participation.cc.o.d"
  "/root/repo/src/study/runner.cc" "src/study/CMakeFiles/spider_study.dir/runner.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/runner.cc.o.d"
  "/root/repo/src/study/striping.cc" "src/study/CMakeFiles/spider_study.dir/striping.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/striping.cc.o.d"
  "/root/repo/src/study/user_profile.cc" "src/study/CMakeFiles/spider_study.dir/user_profile.cc.o" "gcc" "src/study/CMakeFiles/spider_study.dir/user_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/spider_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/spider_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/snapshot/CMakeFiles/spider_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/spider_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
