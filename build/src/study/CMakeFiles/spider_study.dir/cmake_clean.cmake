file(REMOVE_RECURSE
  "CMakeFiles/spider_study.dir/access_patterns.cc.o"
  "CMakeFiles/spider_study.dir/access_patterns.cc.o.d"
  "CMakeFiles/spider_study.dir/burstiness.cc.o"
  "CMakeFiles/spider_study.dir/burstiness.cc.o.d"
  "CMakeFiles/spider_study.dir/census.cc.o"
  "CMakeFiles/spider_study.dir/census.cc.o.d"
  "CMakeFiles/spider_study.dir/collaboration.cc.o"
  "CMakeFiles/spider_study.dir/collaboration.cc.o.d"
  "CMakeFiles/spider_study.dir/extensions.cc.o"
  "CMakeFiles/spider_study.dir/extensions.cc.o.d"
  "CMakeFiles/spider_study.dir/file_age.cc.o"
  "CMakeFiles/spider_study.dir/file_age.cc.o.d"
  "CMakeFiles/spider_study.dir/full_study.cc.o"
  "CMakeFiles/spider_study.dir/full_study.cc.o.d"
  "CMakeFiles/spider_study.dir/growth.cc.o"
  "CMakeFiles/spider_study.dir/growth.cc.o.d"
  "CMakeFiles/spider_study.dir/joblog.cc.o"
  "CMakeFiles/spider_study.dir/joblog.cc.o.d"
  "CMakeFiles/spider_study.dir/languages.cc.o"
  "CMakeFiles/spider_study.dir/languages.cc.o.d"
  "CMakeFiles/spider_study.dir/network.cc.o"
  "CMakeFiles/spider_study.dir/network.cc.o.d"
  "CMakeFiles/spider_study.dir/participation.cc.o"
  "CMakeFiles/spider_study.dir/participation.cc.o.d"
  "CMakeFiles/spider_study.dir/runner.cc.o"
  "CMakeFiles/spider_study.dir/runner.cc.o.d"
  "CMakeFiles/spider_study.dir/striping.cc.o"
  "CMakeFiles/spider_study.dir/striping.cc.o.d"
  "CMakeFiles/spider_study.dir/user_profile.cc.o"
  "CMakeFiles/spider_study.dir/user_profile.cc.o.d"
  "libspider_study.a"
  "libspider_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
