# Empty compiler generated dependencies file for spider_study.
# This may be replaced when dependencies are built.
