file(REMOVE_RECURSE
  "libspider_study.a"
)
