file(REMOVE_RECURSE
  "CMakeFiles/spider_snapshot.dir/psv.cc.o"
  "CMakeFiles/spider_snapshot.dir/psv.cc.o.d"
  "CMakeFiles/spider_snapshot.dir/record.cc.o"
  "CMakeFiles/spider_snapshot.dir/record.cc.o.d"
  "CMakeFiles/spider_snapshot.dir/scol.cc.o"
  "CMakeFiles/spider_snapshot.dir/scol.cc.o.d"
  "CMakeFiles/spider_snapshot.dir/series.cc.o"
  "CMakeFiles/spider_snapshot.dir/series.cc.o.d"
  "CMakeFiles/spider_snapshot.dir/table.cc.o"
  "CMakeFiles/spider_snapshot.dir/table.cc.o.d"
  "libspider_snapshot.a"
  "libspider_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
