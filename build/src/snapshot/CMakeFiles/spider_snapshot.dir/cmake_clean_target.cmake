file(REMOVE_RECURSE
  "libspider_snapshot.a"
)
