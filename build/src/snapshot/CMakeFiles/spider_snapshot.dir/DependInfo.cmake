
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snapshot/psv.cc" "src/snapshot/CMakeFiles/spider_snapshot.dir/psv.cc.o" "gcc" "src/snapshot/CMakeFiles/spider_snapshot.dir/psv.cc.o.d"
  "/root/repo/src/snapshot/record.cc" "src/snapshot/CMakeFiles/spider_snapshot.dir/record.cc.o" "gcc" "src/snapshot/CMakeFiles/spider_snapshot.dir/record.cc.o.d"
  "/root/repo/src/snapshot/scol.cc" "src/snapshot/CMakeFiles/spider_snapshot.dir/scol.cc.o" "gcc" "src/snapshot/CMakeFiles/spider_snapshot.dir/scol.cc.o.d"
  "/root/repo/src/snapshot/series.cc" "src/snapshot/CMakeFiles/spider_snapshot.dir/series.cc.o" "gcc" "src/snapshot/CMakeFiles/spider_snapshot.dir/series.cc.o.d"
  "/root/repo/src/snapshot/table.cc" "src/snapshot/CMakeFiles/spider_snapshot.dir/table.cc.o" "gcc" "src/snapshot/CMakeFiles/spider_snapshot.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
