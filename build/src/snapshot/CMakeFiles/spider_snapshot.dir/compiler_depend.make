# Empty compiler generated dependencies file for spider_snapshot.
# This may be replaced when dependencies are built.
