add_test([=[PersistenceTest.DiskRoundTripMatchesDirectAnalysis]=]  /root/repo/build/tests/study_persistence_test [==[--gtest_filter=PersistenceTest.DiskRoundTripMatchesDirectAnalysis]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[PersistenceTest.DiskRoundTripMatchesDirectAnalysis]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  study_persistence_test_TESTS PersistenceTest.DiskRoundTripMatchesDirectAnalysis)
