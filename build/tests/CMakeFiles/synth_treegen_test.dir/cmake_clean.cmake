file(REMOVE_RECURSE
  "CMakeFiles/synth_treegen_test.dir/synth/treegen_test.cc.o"
  "CMakeFiles/synth_treegen_test.dir/synth/treegen_test.cc.o.d"
  "synth_treegen_test"
  "synth_treegen_test.pdb"
  "synth_treegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_treegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
