# Empty compiler generated dependencies file for synth_treegen_test.
# This may be replaced when dependencies are built.
