# Empty compiler generated dependencies file for synth_infer_test.
# This may be replaced when dependencies are built.
