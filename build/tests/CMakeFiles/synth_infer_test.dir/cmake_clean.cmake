file(REMOVE_RECURSE
  "CMakeFiles/synth_infer_test.dir/synth/infer_test.cc.o"
  "CMakeFiles/synth_infer_test.dir/synth/infer_test.cc.o.d"
  "synth_infer_test"
  "synth_infer_test.pdb"
  "synth_infer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_infer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
