file(REMOVE_RECURSE
  "CMakeFiles/study_full_test.dir/study/full_study_test.cc.o"
  "CMakeFiles/study_full_test.dir/study/full_study_test.cc.o.d"
  "study_full_test"
  "study_full_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_full_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
