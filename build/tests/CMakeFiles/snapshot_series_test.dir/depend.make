# Empty dependencies file for snapshot_series_test.
# This may be replaced when dependencies are built.
