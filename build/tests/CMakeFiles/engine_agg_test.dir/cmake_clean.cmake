file(REMOVE_RECURSE
  "CMakeFiles/engine_agg_test.dir/engine/agg_test.cc.o"
  "CMakeFiles/engine_agg_test.dir/engine/agg_test.cc.o.d"
  "engine_agg_test"
  "engine_agg_test.pdb"
  "engine_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
