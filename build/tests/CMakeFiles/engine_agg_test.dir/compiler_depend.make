# Empty compiler generated dependencies file for engine_agg_test.
# This may be replaced when dependencies are built.
