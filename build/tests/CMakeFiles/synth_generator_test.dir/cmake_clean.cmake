file(REMOVE_RECURSE
  "CMakeFiles/synth_generator_test.dir/synth/generator_test.cc.o"
  "CMakeFiles/synth_generator_test.dir/synth/generator_test.cc.o.d"
  "synth_generator_test"
  "synth_generator_test.pdb"
  "synth_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
