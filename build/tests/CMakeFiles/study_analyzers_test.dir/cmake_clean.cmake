file(REMOVE_RECURSE
  "CMakeFiles/study_analyzers_test.dir/study/analyzers_test.cc.o"
  "CMakeFiles/study_analyzers_test.dir/study/analyzers_test.cc.o.d"
  "study_analyzers_test"
  "study_analyzers_test.pdb"
  "study_analyzers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_analyzers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
