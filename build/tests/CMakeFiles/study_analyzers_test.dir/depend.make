# Empty dependencies file for study_analyzers_test.
# This may be replaced when dependencies are built.
