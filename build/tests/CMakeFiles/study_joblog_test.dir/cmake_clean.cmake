file(REMOVE_RECURSE
  "CMakeFiles/study_joblog_test.dir/study/joblog_test.cc.o"
  "CMakeFiles/study_joblog_test.dir/study/joblog_test.cc.o.d"
  "study_joblog_test"
  "study_joblog_test.pdb"
  "study_joblog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_joblog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
