file(REMOVE_RECURSE
  "CMakeFiles/study_persistence_test.dir/study/persistence_test.cc.o"
  "CMakeFiles/study_persistence_test.dir/study/persistence_test.cc.o.d"
  "study_persistence_test"
  "study_persistence_test.pdb"
  "study_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
