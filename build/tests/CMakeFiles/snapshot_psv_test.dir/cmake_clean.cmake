file(REMOVE_RECURSE
  "CMakeFiles/snapshot_psv_test.dir/snapshot/psv_test.cc.o"
  "CMakeFiles/snapshot_psv_test.dir/snapshot/psv_test.cc.o.d"
  "snapshot_psv_test"
  "snapshot_psv_test.pdb"
  "snapshot_psv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_psv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
