# Empty dependencies file for snapshot_psv_test.
# This may be replaced when dependencies are built.
