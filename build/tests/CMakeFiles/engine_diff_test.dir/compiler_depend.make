# Empty compiler generated dependencies file for engine_diff_test.
# This may be replaced when dependencies are built.
