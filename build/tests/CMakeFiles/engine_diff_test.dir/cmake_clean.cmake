file(REMOVE_RECURSE
  "CMakeFiles/engine_diff_test.dir/engine/diff_test.cc.o"
  "CMakeFiles/engine_diff_test.dir/engine/diff_test.cc.o.d"
  "engine_diff_test"
  "engine_diff_test.pdb"
  "engine_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
