# Empty dependencies file for study_runner_test.
# This may be replaced when dependencies are built.
