file(REMOVE_RECURSE
  "CMakeFiles/study_runner_test.dir/study/runner_test.cc.o"
  "CMakeFiles/study_runner_test.dir/study/runner_test.cc.o.d"
  "study_runner_test"
  "study_runner_test.pdb"
  "study_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
