file(REMOVE_RECURSE
  "CMakeFiles/snapshot_scol_test.dir/snapshot/scol_test.cc.o"
  "CMakeFiles/snapshot_scol_test.dir/snapshot/scol_test.cc.o.d"
  "snapshot_scol_test"
  "snapshot_scol_test.pdb"
  "snapshot_scol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_scol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
