file(REMOVE_RECURSE
  "CMakeFiles/snapshot_record_test.dir/snapshot/record_test.cc.o"
  "CMakeFiles/snapshot_record_test.dir/snapshot/record_test.cc.o.d"
  "snapshot_record_test"
  "snapshot_record_test.pdb"
  "snapshot_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
