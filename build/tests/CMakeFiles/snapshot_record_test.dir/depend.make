# Empty dependencies file for snapshot_record_test.
# This may be replaced when dependencies are built.
