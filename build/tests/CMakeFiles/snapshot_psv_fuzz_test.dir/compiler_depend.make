# Empty compiler generated dependencies file for snapshot_psv_fuzz_test.
# This may be replaced when dependencies are built.
