file(REMOVE_RECURSE
  "CMakeFiles/engine_purge_test.dir/engine/purge_test.cc.o"
  "CMakeFiles/engine_purge_test.dir/engine/purge_test.cc.o.d"
  "engine_purge_test"
  "engine_purge_test.pdb"
  "engine_purge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_purge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
