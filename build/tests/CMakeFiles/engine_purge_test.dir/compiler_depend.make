# Empty compiler generated dependencies file for engine_purge_test.
# This may be replaced when dependencies are built.
