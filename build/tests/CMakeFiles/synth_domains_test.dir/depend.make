# Empty dependencies file for synth_domains_test.
# This may be replaced when dependencies are built.
