file(REMOVE_RECURSE
  "CMakeFiles/synth_domains_test.dir/synth/domains_test.cc.o"
  "CMakeFiles/synth_domains_test.dir/synth/domains_test.cc.o.d"
  "synth_domains_test"
  "synth_domains_test.pdb"
  "synth_domains_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_domains_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
