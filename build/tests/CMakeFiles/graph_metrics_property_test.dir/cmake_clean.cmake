file(REMOVE_RECURSE
  "CMakeFiles/graph_metrics_property_test.dir/graph/metrics_property_test.cc.o"
  "CMakeFiles/graph_metrics_property_test.dir/graph/metrics_property_test.cc.o.d"
  "graph_metrics_property_test"
  "graph_metrics_property_test.pdb"
  "graph_metrics_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_metrics_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
