# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_prng_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/util_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/util_misc_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_record_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_table_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_psv_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_scol_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_series_test[1]_include.cmake")
include("/root/repo/build/tests/engine_diff_test[1]_include.cmake")
include("/root/repo/build/tests/engine_agg_test[1]_include.cmake")
include("/root/repo/build/tests/engine_purge_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/graph_metrics_property_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_psv_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/synth_domains_test[1]_include.cmake")
include("/root/repo/build/tests/synth_plan_test[1]_include.cmake")
include("/root/repo/build/tests/synth_treegen_test[1]_include.cmake")
include("/root/repo/build/tests/synth_generator_test[1]_include.cmake")
include("/root/repo/build/tests/synth_infer_test[1]_include.cmake")
include("/root/repo/build/tests/study_runner_test[1]_include.cmake")
include("/root/repo/build/tests/study_analyzers_test[1]_include.cmake")
include("/root/repo/build/tests/study_joblog_test[1]_include.cmake")
include("/root/repo/build/tests/study_persistence_test[1]_include.cmake")
add_test(study_full_test "/root/repo/build/tests/study_full_test")
set_tests_properties(study_full_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
