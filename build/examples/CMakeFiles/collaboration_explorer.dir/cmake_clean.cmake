file(REMOVE_RECURSE
  "CMakeFiles/collaboration_explorer.dir/collaboration_explorer.cpp.o"
  "CMakeFiles/collaboration_explorer.dir/collaboration_explorer.cpp.o.d"
  "collaboration_explorer"
  "collaboration_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaboration_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
