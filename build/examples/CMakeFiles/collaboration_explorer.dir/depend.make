# Empty dependencies file for collaboration_explorer.
# This may be replaced when dependencies are built.
