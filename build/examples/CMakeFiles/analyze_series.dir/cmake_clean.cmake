file(REMOVE_RECURSE
  "CMakeFiles/analyze_series.dir/analyze_series.cpp.o"
  "CMakeFiles/analyze_series.dir/analyze_series.cpp.o.d"
  "analyze_series"
  "analyze_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
