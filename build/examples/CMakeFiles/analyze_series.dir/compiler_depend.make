# Empty compiler generated dependencies file for analyze_series.
# This may be replaced when dependencies are built.
