# Empty compiler generated dependencies file for purge_advisor.
# This may be replaced when dependencies are built.
