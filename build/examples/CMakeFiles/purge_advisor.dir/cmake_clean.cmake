file(REMOVE_RECURSE
  "CMakeFiles/purge_advisor.dir/purge_advisor.cpp.o"
  "CMakeFiles/purge_advisor.dir/purge_advisor.cpp.o.d"
  "purge_advisor"
  "purge_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purge_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
