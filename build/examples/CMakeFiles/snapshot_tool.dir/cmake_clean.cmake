file(REMOVE_RECURSE
  "CMakeFiles/snapshot_tool.dir/snapshot_tool.cpp.o"
  "CMakeFiles/snapshot_tool.dir/snapshot_tool.cpp.o.d"
  "snapshot_tool"
  "snapshot_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
