# Empty compiler generated dependencies file for snapshot_tool.
# This may be replaced when dependencies are built.
