# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--scale=2e-5" "--weeks=8")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_purge_advisor "/root/repo/build/examples/purge_advisor" "--scale=1e-5" "--weeks=16")
set_tests_properties(example_purge_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_collaboration_explorer "/root/repo/build/examples/collaboration_explorer" "--scale=1e-5" "--weeks=6" "--from=cli101" "--to=csc101")
set_tests_properties(example_collaboration_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_snapshot_tool_pipeline "/usr/bin/cmake" "-DTOOL=/root/repo/build/examples/snapshot_tool" "-DANALYZE=/root/repo/build/examples/analyze_series" "-DWORKDIR=/root/repo/build/examples/tool_smoke" "-P" "/root/repo/examples/snapshot_tool_smoke.cmake")
set_tests_properties(example_snapshot_tool_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
