file(REMOVE_RECURSE
  "../bench/bench_fig06_participation"
  "../bench/bench_fig06_participation.pdb"
  "CMakeFiles/bench_fig06_participation.dir/bench_fig06_participation.cpp.o"
  "CMakeFiles/bench_fig06_participation.dir/bench_fig06_participation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
