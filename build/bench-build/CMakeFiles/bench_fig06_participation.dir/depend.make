# Empty dependencies file for bench_fig06_participation.
# This may be replaced when dependencies are built.
