# Empty dependencies file for bench_fig12_lang_domain.
# This may be replaced when dependencies are built.
