file(REMOVE_RECURSE
  "../bench/bench_fig07_census"
  "../bench/bench_fig07_census.pdb"
  "CMakeFiles/bench_fig07_census.dir/bench_fig07_census.cpp.o"
  "CMakeFiles/bench_fig07_census.dir/bench_fig07_census.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
