file(REMOVE_RECURSE
  "../bench/bench_fig19_components"
  "../bench/bench_fig19_components.pdb"
  "CMakeFiles/bench_fig19_components.dir/bench_fig19_components.cpp.o"
  "CMakeFiles/bench_fig19_components.dir/bench_fig19_components.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
