file(REMOVE_RECURSE
  "../bench/bench_fig18_network"
  "../bench/bench_fig18_network.pdb"
  "CMakeFiles/bench_fig18_network.dir/bench_fig18_network.cpp.o"
  "CMakeFiles/bench_fig18_network.dir/bench_fig18_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
