# Empty dependencies file for bench_fig13_access.
# This may be replaced when dependencies are built.
