file(REMOVE_RECURSE
  "../bench/bench_fig13_access"
  "../bench/bench_fig13_access.pdb"
  "CMakeFiles/bench_fig13_access.dir/bench_fig13_access.cpp.o"
  "CMakeFiles/bench_fig13_access.dir/bench_fig13_access.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
