file(REMOVE_RECURSE
  "../bench/bench_ext_joblog"
  "../bench/bench_ext_joblog.pdb"
  "CMakeFiles/bench_ext_joblog.dir/bench_ext_joblog.cpp.o"
  "CMakeFiles/bench_ext_joblog.dir/bench_ext_joblog.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_joblog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
