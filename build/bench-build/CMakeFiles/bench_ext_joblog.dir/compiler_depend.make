# Empty compiler generated dependencies file for bench_ext_joblog.
# This may be replaced when dependencies are built.
