# Empty dependencies file for bench_fig17_burstiness.
# This may be replaced when dependencies are built.
