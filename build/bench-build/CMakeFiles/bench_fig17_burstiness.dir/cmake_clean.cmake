file(REMOVE_RECURSE
  "../bench/bench_fig17_burstiness"
  "../bench/bench_fig17_burstiness.pdb"
  "CMakeFiles/bench_fig17_burstiness.dir/bench_fig17_burstiness.cpp.o"
  "CMakeFiles/bench_fig17_burstiness.dir/bench_fig17_burstiness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
