file(REMOVE_RECURSE
  "../bench/bench_ablation_purge"
  "../bench/bench_ablation_purge.pdb"
  "CMakeFiles/bench_ablation_purge.dir/bench_ablation_purge.cpp.o"
  "CMakeFiles/bench_ablation_purge.dir/bench_ablation_purge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_purge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
