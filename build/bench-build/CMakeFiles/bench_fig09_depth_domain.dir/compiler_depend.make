# Empty compiler generated dependencies file for bench_fig09_depth_domain.
# This may be replaced when dependencies are built.
