file(REMOVE_RECURSE
  "../bench/bench_fig09_depth_domain"
  "../bench/bench_fig09_depth_domain.pdb"
  "CMakeFiles/bench_fig09_depth_domain.dir/bench_fig09_depth_domain.cpp.o"
  "CMakeFiles/bench_fig09_depth_domain.dir/bench_fig09_depth_domain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_depth_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
