# Empty compiler generated dependencies file for bench_ablation_scol.
# This may be replaced when dependencies are built.
