
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_scol.cpp" "bench-build/CMakeFiles/bench_ablation_scol.dir/bench_ablation_scol.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablation_scol.dir/bench_ablation_scol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/study/CMakeFiles/spider_study.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/spider_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/spider_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/spider_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/snapshot/CMakeFiles/spider_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
