file(REMOVE_RECURSE
  "../bench/bench_ablation_scol"
  "../bench/bench_ablation_scol.pdb"
  "CMakeFiles/bench_ablation_scol.dir/bench_ablation_scol.cpp.o"
  "CMakeFiles/bench_ablation_scol.dir/bench_ablation_scol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
