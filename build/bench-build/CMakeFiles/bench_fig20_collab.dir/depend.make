# Empty dependencies file for bench_fig20_collab.
# This may be replaced when dependencies are built.
