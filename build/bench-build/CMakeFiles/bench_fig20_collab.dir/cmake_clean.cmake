file(REMOVE_RECURSE
  "../bench/bench_fig20_collab"
  "../bench/bench_fig20_collab.pdb"
  "CMakeFiles/bench_fig20_collab.dir/bench_fig20_collab.cpp.o"
  "CMakeFiles/bench_fig20_collab.dir/bench_fig20_collab.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
