file(REMOVE_RECURSE
  "../bench/bench_fig14_ost"
  "../bench/bench_fig14_ost.pdb"
  "CMakeFiles/bench_fig14_ost.dir/bench_fig14_ost.cpp.o"
  "CMakeFiles/bench_fig14_ost.dir/bench_fig14_ost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
