# Empty dependencies file for bench_fig14_ost.
# This may be replaced when dependencies are built.
