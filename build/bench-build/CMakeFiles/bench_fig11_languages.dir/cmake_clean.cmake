file(REMOVE_RECURSE
  "../bench/bench_fig11_languages"
  "../bench/bench_fig11_languages.pdb"
  "CMakeFiles/bench_fig11_languages.dir/bench_fig11_languages.cpp.o"
  "CMakeFiles/bench_fig11_languages.dir/bench_fig11_languages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_languages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
