# Empty dependencies file for bench_fig11_languages.
# This may be replaced when dependencies are built.
