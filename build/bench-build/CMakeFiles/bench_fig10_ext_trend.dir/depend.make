# Empty dependencies file for bench_fig10_ext_trend.
# This may be replaced when dependencies are built.
