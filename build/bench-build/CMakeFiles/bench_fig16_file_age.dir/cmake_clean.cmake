file(REMOVE_RECURSE
  "../bench/bench_fig16_file_age"
  "../bench/bench_fig16_file_age.pdb"
  "CMakeFiles/bench_fig16_file_age.dir/bench_fig16_file_age.cpp.o"
  "CMakeFiles/bench_fig16_file_age.dir/bench_fig16_file_age.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_file_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
