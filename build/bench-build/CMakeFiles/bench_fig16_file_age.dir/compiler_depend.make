# Empty compiler generated dependencies file for bench_fig16_file_age.
# This may be replaced when dependencies are built.
