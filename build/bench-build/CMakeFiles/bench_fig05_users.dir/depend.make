# Empty dependencies file for bench_fig05_users.
# This may be replaced when dependencies are built.
