file(REMOVE_RECURSE
  "../bench/bench_table3_components"
  "../bench/bench_table3_components.pdb"
  "CMakeFiles/bench_table3_components.dir/bench_table3_components.cpp.o"
  "CMakeFiles/bench_table3_components.dir/bench_table3_components.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
