file(REMOVE_RECURSE
  "../bench/bench_fig15_growth"
  "../bench/bench_fig15_growth.pdb"
  "CMakeFiles/bench_fig15_growth.dir/bench_fig15_growth.cpp.o"
  "CMakeFiles/bench_fig15_growth.dir/bench_fig15_growth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
