# Empty dependencies file for bench_fig15_growth.
# This may be replaced when dependencies are built.
