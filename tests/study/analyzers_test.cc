// Unit tests for individual analyzers on hand-crafted snapshot series with
// exactly known answers (the integration suite covers the generated data).
#include <gtest/gtest.h>

#include "study/access_patterns.h"
#include "study/burstiness.h"
#include "study/census.h"
#include "study/extensions.h"
#include "study/file_age.h"
#include "study/growth.h"
#include "study/striping.h"
#include "study/user_profile.h"
#include "util/timeutil.h"

namespace spider {
namespace {

/// Fixture: a real plan (for uid/gid resolution) plus helpers to craft
/// snapshots owned by its first projects/users.
class AnalyzerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    plan_ = new FacilityPlan(plan_facility(1));
    resolver_ = new Resolver(*plan_);
  }
  static void TearDownTestSuite() {
    delete resolver_;
    delete plan_;
    resolver_ = nullptr;
    plan_ = nullptr;
  }

  static const ProjectInfo& project(std::size_t i) {
    return plan_->projects[i];
  }
  static std::uint32_t uid_of(const ProjectInfo& p) {
    return plan_->users[p.members.front()].uid;
  }

  static RawRecord file(const ProjectInfo& p, const std::string& rel,
                        std::int64_t atime, std::int64_t ctime,
                        std::int64_t mtime,
                        std::vector<std::uint32_t> osts = {1, 2, 3, 4}) {
    RawRecord rec;
    rec.path = "/lustre/atlas2/" + p.name + "/u/" + rel;
    rec.atime = atime;
    rec.ctime = ctime;
    rec.mtime = mtime;
    rec.uid = uid_of(p);
    rec.gid = p.gid;
    rec.mode = kModeRegular | 0664;
    rec.osts = std::move(osts);
    return rec;
  }

  static RawRecord dir(const ProjectInfo& p, const std::string& rel,
                       std::int64_t t) {
    RawRecord rec;
    rec.path = "/lustre/atlas2/" + p.name + "/u/" + rel;
    rec.atime = rec.ctime = rec.mtime = t;
    rec.uid = uid_of(p);
    rec.gid = p.gid;
    rec.mode = kModeDirectory | 0775;
    return rec;
  }

  static Snapshot snapshot(int week, std::vector<RawRecord> records) {
    Snapshot snap;
    snap.taken_at = epoch_from_civil({2015, 1, 12}) + week * kSecondsPerWeek;
    for (const RawRecord& rec : records) snap.table.add(rec);
    return snap;
  }

  static FacilityPlan* plan_;
  static Resolver* resolver_;
};

FacilityPlan* AnalyzerTest::plan_ = nullptr;
Resolver* AnalyzerTest::resolver_ = nullptr;

TEST_F(AnalyzerTest, GrowthCountsFilesAndDirs) {
  const ProjectInfo& p = project(0);
  SnapshotSeries series;
  series.add(snapshot(0, {dir(p, "d", 10), file(p, "d/a", 10, 10, 10)}));
  series.add(snapshot(1, {dir(p, "d", 10), file(p, "d/a", 10, 10, 10),
                          file(p, "d/b", 20, 20, 20)}));
  GrowthAnalyzer analyzer;
  run_study(series, analyzer);
  const GrowthResult& r = analyzer.result();
  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_EQ(r.points[0].files, 1u);
  EXPECT_EQ(r.points[0].dirs, 1u);
  EXPECT_EQ(r.points[1].files, 2u);
  EXPECT_DOUBLE_EQ(r.growth_factor, 2.0);
  EXPECT_DOUBLE_EQ(r.final_dir_share, 1.0 / 3.0);
}

TEST_F(AnalyzerTest, FileAgeExactArithmetic) {
  const ProjectInfo& p = project(0);
  const std::int64_t base = epoch_from_civil({2015, 1, 6});
  SnapshotSeries series;
  // Two files: ages 10 days and 30 days -> average 20, median 20.
  series.add(snapshot(
      0, {file(p, "a", base + 10 * kSecondsPerDay, base, base),
          file(p, "b", base + 30 * kSecondsPerDay, base, base)}));
  FileAgeAnalyzer analyzer(/*purge_days=*/15);
  run_study(series, analyzer);
  const FileAgeResult& r = analyzer.result();
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points[0].avg_age_days, 20.0);
  EXPECT_DOUBLE_EQ(r.points[0].median_age_days, 20.0);
  EXPECT_DOUBLE_EQ(r.median_of_averages, 20.0);
  EXPECT_DOUBLE_EQ(r.fraction_above_purge, 1.0);  // 20 > 15
}

TEST_F(AnalyzerTest, FileAgeClampsNegative) {
  const ProjectInfo& p = project(0);
  const std::int64_t base = epoch_from_civil({2015, 1, 6});
  SnapshotSeries series;
  // atime < mtime (clock skew): clamped to 0, not negative.
  series.add(snapshot(0, {file(p, "a", base - kSecondsPerDay, base, base)}));
  FileAgeAnalyzer analyzer;
  run_study(series, analyzer);
  EXPECT_DOUBLE_EQ(analyzer.result().points[0].avg_age_days, 0.0);
}

TEST_F(AnalyzerTest, StripingMinAvgMax) {
  const ProjectInfo& p = project(0);
  SnapshotSeries series;
  series.add(snapshot(0, {file(p, "a", 1, 1, 1, {5}),
                          file(p, "b", 1, 1, 1, {1, 2, 3, 4}),
                          file(p, "c", 1, 1, 1,
                               std::vector<std::uint32_t>(16, 9)),
                          dir(p, "d", 1)}));
  StripingAnalyzer analyzer(*resolver_);
  run_study(series, analyzer);
  const StripingResult& r = analyzer.result();
  const auto& stats =
      r.by_domain[static_cast<std::size_t>(project(0).domain)];
  EXPECT_EQ(stats.count(), 3u);  // the directory is excluded
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
  EXPECT_DOUBLE_EQ(stats.mean(), (1 + 4 + 16) / 3.0);
  EXPECT_EQ(r.max_stripe, 16u);
  EXPECT_EQ(r.domains_tuning, 1u);
  EXPECT_EQ(r.active_domains, 1u);
}

TEST_F(AnalyzerTest, AccessPatternsFractions) {
  const ProjectInfo& p = project(0);
  SnapshotSeries series;
  // Week 0: 4 files. Week 1: one untouched, one readonly, one updated,
  // one deleted, one new.
  series.add(snapshot(0, {file(p, "untouched", 10, 10, 10),
                          file(p, "readonly", 10, 10, 10),
                          file(p, "updated", 10, 10, 10),
                          file(p, "gone", 10, 10, 10)}));
  series.add(snapshot(1, {file(p, "untouched", 10, 10, 10),
                          file(p, "readonly", 99, 10, 10),
                          file(p, "updated", 99, 99, 99),
                          file(p, "fresh", 50, 50, 50)}));
  AccessPatternsAnalyzer analyzer;
  run_study(series, analyzer);
  const AccessPatternsResult& r = analyzer.result();
  ASSERT_EQ(r.weeks.size(), 1u);
  EXPECT_DOUBLE_EQ(r.weeks[0].untouched_frac, 0.25);
  EXPECT_DOUBLE_EQ(r.weeks[0].readonly_frac, 0.25);
  EXPECT_DOUBLE_EQ(r.weeks[0].updated_frac, 0.25);
  EXPECT_DOUBLE_EQ(r.weeks[0].deleted_frac, 0.25);
  EXPECT_DOUBLE_EQ(r.weeks[0].new_frac, 0.25);  // 1 of 4 current files
}

TEST_F(AnalyzerTest, CensusUniqueAcrossWeeks) {
  const ProjectInfo& p = project(0);
  SnapshotSeries series;
  // "a" appears twice (counted once); "b" is deleted after week 0 but
  // still counts; "c" appears later.
  series.add(snapshot(0, {file(p, "a", 1, 1, 1), file(p, "b", 1, 1, 1)}));
  series.add(snapshot(1, {file(p, "a", 1, 1, 1), file(p, "c", 2, 2, 2),
                          dir(p, "sub", 2)}));
  CensusAnalyzer analyzer(*resolver_);
  run_study(series, analyzer);
  const CensusResult& r = analyzer.result();
  EXPECT_EQ(r.total_files, 3u);
  EXPECT_EQ(r.total_dirs, 1u);
  const auto d = static_cast<std::size_t>(project(0).domain);
  EXPECT_EQ(r.files_by_domain[d], 3u);
  EXPECT_EQ(r.dirs_by_domain[d], 1u);
  EXPECT_EQ(r.max_files_one_project, 3u);
}

TEST_F(AnalyzerTest, ExtensionsDedupAndShares) {
  const ProjectInfo& p = project(0);
  SnapshotSeries series;
  series.add(snapshot(0, {file(p, "x1.nc", 1, 1, 1),
                          file(p, "x2.nc", 1, 1, 1),
                          file(p, "y.txt", 1, 1, 1),
                          file(p, "noext", 1, 1, 1)}));
  series.add(snapshot(1, {file(p, "x1.nc", 1, 1, 1)}));  // repeat: no-op
  ExtensionsAnalyzer analyzer(*resolver_, /*top_k=*/2);
  run_study(series, analyzer);
  const ExtensionsResult& r = analyzer.result();
  EXPECT_EQ(r.unique_files, 4u);
  EXPECT_EQ(r.unique_no_extension, 1u);
  ASSERT_FALSE(r.global_top.empty());
  EXPECT_EQ(r.global_top[0].first, "nc");
  EXPECT_EQ(r.global_top[0].second, 2u);
  const auto& top =
      r.top3_by_domain[static_cast<std::size_t>(project(0).domain)];
  ASSERT_GE(top.size(), 1u);
  EXPECT_EQ(top[0].first, "nc");
  EXPECT_NEAR(top[0].second, 2.0 / 3.0 * 100.0, 1e-9);  // of named files
  // Trend rows exist per snapshot.
  ASSERT_EQ(r.share_top.size(), 2u);
  EXPECT_DOUBLE_EQ(r.share_none[0], 0.25);
  EXPECT_DOUBLE_EQ(r.share_top[1][0], 1.0);  // week 1 is 100% .nc
}

TEST_F(AnalyzerTest, BurstinessCvComputation) {
  const ProjectInfo& p = project(0);
  const std::int64_t t0 = epoch_from_civil({2015, 1, 12});
  SnapshotSeries series;
  Snapshot first;
  first.taken_at = t0;
  series.add(std::move(first));  // empty week 0

  // Week 1: 12 new files, mtimes at offsets {3600 +/- 600} from week
  // start -> cv = stddev/mean is small and exactly computable.
  std::vector<RawRecord> records;
  for (int i = 0; i < 12; ++i) {
    const std::int64_t offset = 3600 + (i % 2 == 0 ? -600 : 600);
    records.push_back(
        file(p, "f" + std::to_string(i), t0 + offset, t0 + offset,
             t0 + offset));
  }
  Snapshot second;
  second.taken_at = t0 + kSecondsPerWeek;
  for (const RawRecord& rec : records) second.table.add(rec);
  series.add(std::move(second));

  BurstinessAnalyzer analyzer(*resolver_, /*min_files=*/10);
  run_study(series, analyzer);
  const BurstinessResult& r = analyzer.result();
  EXPECT_EQ(r.qualifying_write_samples, 1u);
  // cv = 600 / 3600.
  EXPECT_NEAR(r.overall_write_cv_median, 600.0 / 3600.0, 1e-9);
  EXPECT_EQ(r.qualifying_read_samples, 0u);
}

TEST_F(AnalyzerTest, BurstinessFilterExcludesSmallProjects) {
  const ProjectInfo& p = project(0);
  const std::int64_t t0 = epoch_from_civil({2015, 1, 12});
  SnapshotSeries series;
  Snapshot first;
  first.taken_at = t0;
  series.add(std::move(first));
  Snapshot second;
  second.taken_at = t0 + kSecondsPerWeek;
  for (int i = 0; i < 5; ++i) {  // below the threshold of 10
    second.table.add(file(p, "f" + std::to_string(i), t0 + 100, t0 + 100,
                          t0 + 100));
  }
  series.add(std::move(second));
  BurstinessAnalyzer analyzer(*resolver_, /*min_files=*/10);
  run_study(series, analyzer);
  EXPECT_EQ(analyzer.result().qualifying_write_samples, 0u);
}

TEST_F(AnalyzerTest, UserProfileCountsDistinctUids) {
  const ProjectInfo& a = project(0);
  const ProjectInfo& b = project(1);
  SnapshotSeries series;
  series.add(snapshot(0, {file(a, "x", 1, 1, 1), file(a, "y", 1, 1, 1),
                          file(b, "z", 1, 1, 1)}));
  UserProfileAnalyzer analyzer(*resolver_);
  run_study(series, analyzer);
  const UserProfileResult& r = analyzer.result();
  // Both projects' first members may or may not be the same user; the
  // count must equal the number of distinct uids we used.
  const std::size_t expected = uid_of(a) == uid_of(b) ? 1u : 2u;
  EXPECT_EQ(r.active_users, expected);
  EXPECT_EQ(r.unknown_uids, 0u);
}

}  // namespace
}  // namespace spider
