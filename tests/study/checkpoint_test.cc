// Crash-recovery suite for the checkpoint/resume layer (DESIGN.md §14).
//
// The centerpiece is the kill-point sweep: a 12-week churned series — with
// one fully-corrupt week (a series gap) and one salvage-degraded week —
// is studied with checkpointing on while WriteFaultInjector simulates the
// process dying at EVERY stage of every checkpoint write, one kill index
// per run. Whatever partial state each crash leaves on disk, a fresh run
// pointed at the same checkpoint path must render the exact bytes of the
// uninterrupted run, at thread counts {1, 2, 7, hardware}.
//
// Around the sweep: codec round-trips, per-section damage inspection,
// corruption/truncation/torn-tail and version-skew checkpoints (re-baseline,
// never wrong output), roster mismatches, the scan-only re-baseline marker
// (FullStudy never resumes), and the checkpoint cadence knob.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "snapshot/scol.h"
#include "snapshot/series.h"
#include "study/access_patterns.h"
#include "study/census.h"
#include "study/checkpoint.h"
#include "study/extensions.h"
#include "study/file_age.h"
#include "study/full_study.h"
#include "study/growth.h"
#include "study/languages.h"
#include "study/participation.h"
#include "study/user_profile.h"
#include "synth/generator.h"
#include "util/fault.h"
#include "util/io.h"
#include "util/parallel.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

// Every on-disk name this suite creates carries the pid: a concurrent
// invocation of the binary (ctest racing a manual run) must not clobber
// another instance's series directory or checkpoint files.
std::string unique_suffix() { return "_" + std::to_string(::getpid()); }

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class InterceptorScope {
 public:
  explicit InterceptorScope(WriteInterceptor* i) { set_write_interceptor(i); }
  ~InterceptorScope() { set_write_interceptor(nullptr); }
};

/// The fully delta-capable roster: every analyzer serializes state, so its
/// checkpoints carry no re-baseline markers and CAN resume. (FullStudy
/// cannot — its scan-only analyzers record markers; see the dedicated
/// test below.)
struct DeltaStudy {
  explicit DeltaStudy(const Resolver& resolver)
      : user_profile(resolver),
        participation(resolver),
        census(resolver),
        extensions(resolver),
        languages(resolver) {}

  UserProfileAnalyzer user_profile;
  ParticipationAnalyzer participation;
  CensusAnalyzer census;
  ExtensionsAnalyzer extensions;
  LanguagesAnalyzer languages;
  AccessPatternsAnalyzer access_patterns;
  GrowthAnalyzer growth;
  FileAgeAnalyzer file_age;

  std::vector<StudyAnalyzer*> roster() {
    return {&user_profile, &participation,   &census,  &extensions,
            &languages,    &access_patterns, &growth,  &file_age};
  }

  std::string render() const {
    std::string out;
    out += user_profile.render();
    out += participation.render();
    out += census.render();
    out += extensions.render();
    out += languages.render();
    out += access_patterns.render();
    out += growth.render();
    out += file_age.render();
    return out;
  }
};

std::string render_gaps(std::span<const SeriesGap> gaps) {
  std::string out = "gaps: " + std::to_string(gaps.size()) + "\n";
  for (const SeriesGap& gap : gaps) out += "  " + gap.describe() + "\n";
  return out;
}

struct DeltaRun {
  std::string bundle;
  CheckpointReport report;
};

/// One study run over the on-disk series: DeltaStudy roster, salvage
/// decode, checkpointing at `ckpt_path` (empty = off). The bundle appends
/// the merged gap timeline, so damaged-week accounting is part of the
/// byte-identity check exactly as FullStudy::render_data_quality makes it.
DeltaRun run_delta(const std::string& dir, const Resolver& resolver,
                   unsigned threads, bool prefetch,
                   const std::string& ckpt_path, bool incremental = true,
                   std::size_t every = 1, bool resume = true,
                   std::size_t drop_last = 0) {
  DirectorySeries series;
  std::string error;
  EXPECT_TRUE(series.open(dir, &error)) << error;
  ScolOptions salvage;
  salvage.on_corrupt_group = CorruptGroupPolicy::kSkip;
  series.set_scol_options(salvage);

  DeltaStudy study(resolver);
  ThreadPool pool(threads);
  StudyOptions options;
  options.pool = &pool;
  options.prefetch = prefetch;
  options.incremental = incremental;
  options.checkpoint.path = ckpt_path;
  options.checkpoint.every = every;
  options.checkpoint.resume = resume;
  DeltaRun run;
  options.checkpoint_report = &run.report;
  std::vector<StudyAnalyzer*> roster = study.roster();
  roster.resize(roster.size() - drop_last);
  run_study(series, roster, options);

  run.bundle = study.render() + render_gaps(merge_gap_timelines(
                                    run.report.restored_gaps, series.gaps()));
  return run;
}

/// Shared fixture: a 12-week churned series on disk. Week slot 4's file is
/// wholly corrupt (decode fails -> series gap), week slot 7's file has one
/// damaged row group (salvage decode -> degraded snapshot). Built once;
/// every test reads it, none mutates it.
struct SeriesFixture {
  SeriesFixture() : dir("spider_checkpoint_test_series" + unique_suffix()) {
    init();
  }

  // Separate void member: gtest's fatal assertions cannot run inside a
  // constructor.
  void init() {
    FacilityConfig config;
    config.scale = 2e-5;
    config.weeks = 12;
    config.maintenance_gaps = false;
    config.churn_create = 0.05;
    config.churn_update = 0.05;
    config.churn_delete = 0.05;
    generator = std::make_unique<FacilityGenerator>(config);
    std::string error;
    if (!save_series(*generator, dir.path(), &error)) {
      ADD_FAILURE() << "save_series: " << error;
      return;
    }
    resolver = std::make_unique<Resolver>(generator->plan());

    DirectorySeries probe;
    if (!probe.open(dir.path(), &error)) {
      ADD_FAILURE() << "open: " << error;
      return;
    }
    ASSERT_EQ(probe.files().size(), 12u);

    // Slot 4: destroy the header -> the whole week is a gap.
    {
      std::vector<std::uint8_t> bytes;
      ASSERT_TRUE(read_file(probe.files()[4], &bytes).ok());
      bytes[0] ^= 0xff;
      ASSERT_TRUE(write_file_atomic(probe.files()[4],
                                    std::span<const std::uint8_t>(bytes))
                      .ok());
    }
    // Slot 7: flip a payload bit -> one row group lost under salvage.
    {
      std::vector<std::uint8_t> bytes;
      ASSERT_TRUE(read_file(probe.files()[7], &bytes).ok());
      ScolV2Layout layout;
      ASSERT_TRUE(parse_scol_v2_layout(bytes, &layout).ok());
      FaultInjector injector(/*seed=*/97);
      injector.bit_flip(&bytes, layout.payload_start, bytes.size());
      ASSERT_TRUE(write_file_atomic(probe.files()[7],
                                    std::span<const std::uint8_t>(bytes))
                      .ok());
      SnapshotTable table;
      ScolOptions salvage;
      salvage.on_corrupt_group = CorruptGroupPolicy::kSkip;
      SalvageReport report;
      ASSERT_TRUE(decode_scol(bytes, &table, salvage, &report).ok());
      ASSERT_FALSE(report.clean()) << "expected a salvage-degraded week";
    }

    // The uninterrupted references: the scan pipeline and the incremental
    // engine must already agree (PR 6's guarantee) before crash recovery
    // is asked to reproduce them.
    reference = run_delta(dir.path(), *resolver, 1, false, "").bundle;
    const std::string scan_reference =
        run_delta(dir.path(), *resolver, 1, false, "", /*incremental=*/false)
            .bundle;
    ASSERT_GT(reference.size(), 1000u);
    ASSERT_EQ(reference, scan_reference);
    ASSERT_NE(reference.find("gaps: 1"), std::string::npos);
  }

  TempDir dir;
  std::unique_ptr<FacilityGenerator> generator;
  std::unique_ptr<Resolver> resolver;
  std::string reference;
};

const SeriesFixture& fixture() {
  // By value, not leaked: TempDir's destructor removes the series
  // directory at process exit.
  static SeriesFixture fx;
  return fx;
}

std::string temp_ckpt(const std::string& name) {
  return (fs::temp_directory_path() / (name + unique_suffix())).string();
}

TEST(CheckpointCodecTest, RoundTripsEveryField) {
  StudyCheckpoint ckpt;
  ckpt.week = 17;
  ckpt.taken_at = 1420416000;
  ckpt.degraded = true;
  ckpt.table_fingerprint = 0xfeedfacecafebeefULL;
  ckpt.columns_mask = kColMaskPaths | kColMaskUid;
  ckpt.grain = 4096;
  ckpt.hash_probe = checkpoint_hash_probe();
  ckpt.gaps.push_back(SeriesGap{
      3, 1420000000, "snap_20150101.scol",
      Status::corruption("group 2 checksum mismatch")
          .caused_by(Status::io_error("short read"))});
  ckpt.gaps.push_back(
      SeriesGap{5, 1420100000, "", Status::not_found("no snapshot collected")});
  AnalyzerCheckpoint a;
  a.id = "census";
  a.version = 1;
  a.has_state = true;
  a.blob = {1, 2, 3, 4, 5};
  ckpt.analyzers.push_back(a);
  AnalyzerCheckpoint marker;
  marker.id = "striping";
  marker.version = 2;
  marker.has_state = false;
  ckpt.analyzers.push_back(marker);

  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(encode_checkpoint(ckpt, &bytes).ok());
  StudyCheckpoint out;
  ASSERT_TRUE(decode_checkpoint(bytes, &out).ok());
  EXPECT_EQ(out.week, ckpt.week);
  EXPECT_EQ(out.taken_at, ckpt.taken_at);
  EXPECT_EQ(out.degraded, ckpt.degraded);
  EXPECT_EQ(out.table_fingerprint, ckpt.table_fingerprint);
  EXPECT_EQ(out.columns_mask, ckpt.columns_mask);
  EXPECT_EQ(out.grain, ckpt.grain);
  EXPECT_EQ(out.hash_probe, ckpt.hash_probe);
  ASSERT_EQ(out.gaps.size(), 2u);
  // describe() renders the full cause chain; it must survive the round
  // trip byte-for-byte or resumed data-quality sections would drift.
  EXPECT_EQ(out.gaps[0].describe(), ckpt.gaps[0].describe());
  EXPECT_EQ(out.gaps[1].describe(), ckpt.gaps[1].describe());
  ASSERT_EQ(out.analyzers.size(), 2u);
  EXPECT_EQ(out.analyzers[0].id, "census");
  EXPECT_TRUE(out.analyzers[0].has_state);
  EXPECT_EQ(out.analyzers[0].blob, a.blob);
  EXPECT_EQ(out.analyzers[1].id, "striping");
  EXPECT_EQ(out.analyzers[1].version, 2u);
  EXPECT_FALSE(out.analyzers[1].has_state);
}

TEST(CheckpointCodecTest, InspectionWalksSectionsAndFlagsDamage) {
  StudyCheckpoint ckpt;
  ckpt.week = 3;
  ckpt.hash_probe = checkpoint_hash_probe();
  AnalyzerCheckpoint a;
  a.id = "growth";
  a.version = 1;
  a.has_state = true;
  a.blob = {9, 9};
  ckpt.analyzers.push_back(a);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(encode_checkpoint(ckpt, &bytes).ok());

  const CheckpointInspection clean = inspect_checkpoint_bytes(bytes);
  EXPECT_TRUE(clean.ok);
  EXPECT_FALSE(clean.version_skew);
  // magic + runner + gaps + one analyzer.
  ASSERT_EQ(clean.sections.size(), 4u);
  EXPECT_EQ(clean.sections[1].name, "runner");
  EXPECT_NE(clean.sections[1].detail.find("week 3"), std::string::npos);
  EXPECT_NE(clean.sections[3].name.find("growth"), std::string::npos);

  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() - 1] ^= 0x01;  // inside the analyzer payload
  const CheckpointInspection damaged = inspect_checkpoint_bytes(flipped);
  EXPECT_FALSE(damaged.ok);
  EXPECT_FALSE(damaged.version_skew);

  std::vector<std::uint8_t> skewed = bytes;
  skewed[5] = '9';
  skewed[6] = '9';
  skewed[7] = '9';
  const CheckpointInspection skew = inspect_checkpoint_bytes(skewed);
  EXPECT_FALSE(skew.ok);
  EXPECT_TRUE(skew.version_skew);
}

// The acceptance sweep: crash the checkpoint writer at every write stage
// it ever executes, across thread counts, and require the resumed run to
// reproduce the uninterrupted bundle byte-for-byte — gap week, salvaged
// week, and all.
TEST(CheckpointKillSweepTest, EveryCrashPointResumesByteIdentical) {
  const SeriesFixture& fx = fixture();
  for (const unsigned threads : {1u, 2u, 7u, 0u}) {  // 0 = hardware
    const std::string ckpt =
        temp_ckpt("spider_ckpt_sweep_" + std::to_string(threads) + ".sckpt");
    fs::remove(ckpt);

    // Probe run: count the write stages and confirm checkpointing itself
    // does not perturb the rendered bundle.
    std::size_t total_ops = 0;
    {
      WriteFaultInjector probe(/*seed=*/11);
      InterceptorScope scope(&probe);
      const DeltaRun run =
          run_delta(fx.dir.path(), *fx.resolver, threads, true, ckpt);
      ASSERT_EQ(run.bundle, fx.reference) << "threads=" << threads;
      EXPECT_FALSE(run.report.resumed);
      EXPECT_EQ(run.report.checkpoints_written, 11u);  // 12 slots - 1 gap
      EXPECT_FALSE(probe.killed());
      total_ops = probe.ops_seen();
    }
    ASSERT_EQ(total_ops, 55u) << "threads=" << threads;  // 11 writes x 5 ops

    std::size_t resumed_runs = 0;
    for (std::size_t kill = 0; kill < total_ops; ++kill) {
      fs::remove(ckpt);
      {
        // The "crashed program": its checkpoint writer dies at stage
        // `kill`; its own results are discarded, only the disk state
        // it leaves matters.
        WriteFaultInjector injector(/*seed=*/100 + kill, kill);
        InterceptorScope scope(&injector);
        const DeltaRun crashed =
            run_delta(fx.dir.path(), *fx.resolver, threads, true, ckpt);
        EXPECT_TRUE(injector.killed());
        EXPECT_GT(crashed.report.write_failures, 0u);
      }
      const DeltaRun resumed =
          run_delta(fx.dir.path(), *fx.resolver, threads, true, ckpt);
      ASSERT_EQ(resumed.bundle, fx.reference)
          << "threads=" << threads << " kill_at=" << kill;
      if (resumed.report.resumed) ++resumed_runs;
    }
    // Most kill points leave a complete earlier checkpoint behind; the
    // sweep must actually exercise the resume path, not just fresh runs.
    EXPECT_GT(resumed_runs, total_ops / 2) << "threads=" << threads;

    // Clean up torn temp files the simulated crashes left behind.
    fs::remove(ckpt);
    for (const auto& entry :
         fs::directory_iterator(fs::temp_directory_path())) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("spider_ckpt_sweep_", 0) == 0 &&
          name.find(unique_suffix()) != std::string::npos) {
        fs::remove(entry.path());
      }
    }
  }
}

// Checkpoint taken immediately before the series gap: the resumed run must
// restore the gap suppression (no diff spans a gap) and the damage
// accounting — including the case where the gap week is never re-read
// because the checkpoint already recorded it.
TEST(CheckpointResumeTest, ResumeAcrossGapPreservesDataQuality) {
  const SeriesFixture& fx = fixture();
  const std::string ckpt = temp_ckpt("spider_ckpt_gap.sckpt");

  // Kill at op 20 = the kOpen of the checkpoint AFTER week 3 — disk holds
  // exactly the week-3 checkpoint, the last week before the gap at slot 4.
  fs::remove(ckpt);
  {
    WriteFaultInjector injector(/*seed=*/5, /*kill_at_op=*/20);
    InterceptorScope scope(&injector);
    (void)run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt);
  }
  {
    const DeltaRun resumed = run_delta(fx.dir.path(), *fx.resolver, 2, true,
                                       ckpt);
    EXPECT_TRUE(resumed.report.resumed);
    EXPECT_EQ(resumed.report.resumed_week, 3u);
    // Week < 4 checkpoints predate the gap discovery: the resumed
    // traversal re-reads slot 4 itself and rediscovers the damage live.
    EXPECT_TRUE(resumed.report.restored_gaps.empty());
    EXPECT_EQ(resumed.bundle, fx.reference);
  }

  // Kill at op 30 = after the sixth checkpoint landed. Checkpoints cover
  // analyzed weeks only (slot 4 is the gap), so that checkpoint holds
  // week 6, recorded the slot-4 gap, and the resumed run starts past the
  // damage — the corrupt file is never re-read, so the restored timeline
  // is the only witness of that week.
  fs::remove(ckpt);
  {
    WriteFaultInjector injector(/*seed=*/6, /*kill_at_op=*/30);
    InterceptorScope scope(&injector);
    (void)run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt);
  }
  {
    const DeltaRun resumed = run_delta(fx.dir.path(), *fx.resolver, 2, true,
                                       ckpt);
    EXPECT_TRUE(resumed.report.resumed);
    EXPECT_EQ(resumed.report.resumed_week, 6u);
    ASSERT_EQ(resumed.report.restored_gaps.size(), 1u);
    EXPECT_EQ(resumed.report.restored_gaps[0].week, 4u);
    EXPECT_EQ(resumed.bundle, fx.reference);
  }
  fs::remove(ckpt);
}

// Damaged checkpoints must re-baseline — never resume onto bad state,
// never fail the study.
TEST(CheckpointResumeTest, CorruptCheckpointRebaselinesCleanly) {
  const SeriesFixture& fx = fixture();
  const std::string ckpt = temp_ckpt("spider_ckpt_corrupt.sckpt");
  fs::remove(ckpt);
  (void)run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt);
  std::vector<std::uint8_t> intact;
  ASSERT_TRUE(read_file(ckpt, &intact).ok());

  std::uint64_t seed = 400;
  for (const FaultKind kind :
       {FaultKind::kBitFlip, FaultKind::kTruncate, FaultKind::kTornTail}) {
    std::vector<std::uint8_t> damaged = intact;
    FaultInjector injector(seed++);
    const FaultEvent event = injector.inject(kind, &damaged);
    ASSERT_TRUE(
        write_file_atomic(ckpt, std::span<const std::uint8_t>(damaged)).ok());
    EXPECT_FALSE(inspect_checkpoint_bytes(damaged).ok) << event.describe();

    const DeltaRun run = run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt);
    EXPECT_FALSE(run.report.resumed) << event.describe();
    EXPECT_FALSE(run.report.rebaseline_reason.empty()) << event.describe();
    EXPECT_EQ(run.bundle, fx.reference) << event.describe();
  }
  fs::remove(ckpt);
}

TEST(CheckpointResumeTest, VersionSkewRebaselines) {
  const SeriesFixture& fx = fixture();
  const std::string ckpt = temp_ckpt("spider_ckpt_skew.sckpt");
  fs::remove(ckpt);
  (void)run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(ckpt, &bytes).ok());
  bytes[5] = '9';
  bytes[6] = '9';
  bytes[7] = '9';
  ASSERT_TRUE(
      write_file_atomic(ckpt, std::span<const std::uint8_t>(bytes)).ok());

  const DeltaRun run = run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt);
  EXPECT_FALSE(run.report.resumed);
  EXPECT_NE(run.report.rebaseline_reason.find("version skew"),
            std::string::npos)
      << run.report.rebaseline_reason;
  EXPECT_EQ(run.bundle, fx.reference);
  fs::remove(ckpt);
}

// A checkpoint from a different analyzer roster does not line up with the
// running study; it must re-baseline with the reason naming the mismatch.
TEST(CheckpointResumeTest, RosterMismatchRebaselines) {
  const SeriesFixture& fx = fixture();
  const std::string ckpt = temp_ckpt("spider_ckpt_roster.sckpt");
  fs::remove(ckpt);
  (void)run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt);

  // Same series, one analyzer fewer.
  const std::string short_reference =
      run_delta(fx.dir.path(), *fx.resolver, 1, false, "", true, 1, true,
                /*drop_last=*/1)
          .bundle;
  const DeltaRun run =
      run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt, true, 1, true,
                /*drop_last=*/1);
  EXPECT_FALSE(run.report.resumed);
  EXPECT_FALSE(run.report.rebaseline_reason.empty());
  EXPECT_EQ(run.bundle, short_reference);
  fs::remove(ckpt);
}

// FullStudy contains scan-only analyzers, whose checkpoints are
// re-baseline markers: its runs write checkpoints but can never resume
// from them — always degrading to the (correct) full run.
TEST(CheckpointResumeTest, ScanOnlyMarkersForceFullRun) {
  const SeriesFixture& fx = fixture();
  const std::string ckpt = temp_ckpt("spider_ckpt_markers.sckpt");
  fs::remove(ckpt);

  const auto run_full = [&](const std::string& path,
                            CheckpointReport* report) {
    DirectorySeries series;
    std::string error;
    EXPECT_TRUE(series.open(fx.dir.path(), &error)) << error;
    ScolOptions salvage;
    salvage.on_corrupt_group = CorruptGroupPolicy::kSkip;
    series.set_scol_options(salvage);
    FullStudy study(*fx.resolver, /*burst_min_files=*/5);
    ThreadPool pool(2);
    StudyOptions options;
    options.pool = &pool;
    options.incremental = true;
    options.checkpoint.path = path;
    options.checkpoint_report = report;
    study.run(series, options);
    return study.render_table1() + study.render_data_quality();
  };

  CheckpointReport first;
  const std::string reference = run_full("", nullptr);
  const std::string checkpointed = run_full(ckpt, &first);
  EXPECT_EQ(checkpointed, reference);
  EXPECT_GT(first.checkpoints_written, 0u);

  CheckpointReport second;
  const std::string resumed = run_full(ckpt, &second);
  EXPECT_FALSE(second.resumed);
  EXPECT_NE(second.rebaseline_reason.find("re-baseline marker"),
            std::string::npos)
      << second.rebaseline_reason;
  EXPECT_EQ(resumed, reference);
  fs::remove(ckpt);
}

TEST(CheckpointResumeTest, NonIncrementalRunRecordsWhyCheckpointingIsOff) {
  const SeriesFixture& fx = fixture();
  const std::string ckpt = temp_ckpt("spider_ckpt_scanmode.sckpt");
  fs::remove(ckpt);
  const DeltaRun run = run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt,
                                 /*incremental=*/false);
  EXPECT_EQ(run.report.checkpoints_written, 0u);
  EXPECT_NE(run.report.rebaseline_reason.find("incremental"),
            std::string::npos)
      << run.report.rebaseline_reason;
  EXPECT_FALSE(fs::exists(ckpt));
  EXPECT_EQ(run.bundle, fx.reference);
}

TEST(CheckpointResumeTest, ResumeOffIgnoresExistingCheckpoint) {
  const SeriesFixture& fx = fixture();
  const std::string ckpt = temp_ckpt("spider_ckpt_noresume.sckpt");
  fs::remove(ckpt);
  (void)run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt);
  ASSERT_TRUE(fs::exists(ckpt));
  const DeltaRun run = run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt,
                                 true, 1, /*resume=*/false);
  EXPECT_FALSE(run.report.resumed);
  EXPECT_TRUE(run.report.rebaseline_reason.empty());
  EXPECT_EQ(run.bundle, fx.reference);
  fs::remove(ckpt);
}

TEST(CheckpointResumeTest, CadenceEveryNWritesFewerCheckpoints) {
  const SeriesFixture& fx = fixture();
  const std::string ckpt = temp_ckpt("spider_ckpt_cadence.sckpt");
  fs::remove(ckpt);
  const DeltaRun sparse = run_delta(fx.dir.path(), *fx.resolver, 2, true,
                                    ckpt, true, /*every=*/3);
  EXPECT_EQ(sparse.report.checkpoints_written, 3u);  // 11 analyzed weeks / 3
  EXPECT_EQ(sparse.bundle, fx.reference);

  // The file holds the week analyzed at the last cadence boundary; a
  // resume from it still lands on the reference.
  const DeltaRun resumed =
      run_delta(fx.dir.path(), *fx.resolver, 2, true, ckpt, true, 3);
  EXPECT_TRUE(resumed.report.resumed);
  EXPECT_EQ(resumed.bundle, fx.reference);
  fs::remove(ckpt);
}

}  // namespace
}  // namespace spider
