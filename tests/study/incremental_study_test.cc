// Churn-sweep determinism suite for the incremental study engine
// (DESIGN.md §13): with StudyOptions::incremental on, the delta-capable
// analyzers leave the shared scan and consume the week's diff instead —
// and every rendered byte must match the full-scan pipeline anyway, across
// thread counts, prefetch modes, fusion modes, churn rates from zero to
// half the namespace, gapped series, and salvage-damaged weeks that force
// a full-scan re-baseline.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "snapshot/scol.h"
#include "snapshot/series.h"
#include "study/full_study.h"
#include "synth/generator.h"
#include "util/fault.h"
#include "util/io.h"
#include "util/parallel.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

std::string render_bundle(const FullStudy& study) {
  std::string out;
  out += study.render_table1();
  out += study.render_data_quality();
  out += study.user_profile.render();
  out += study.participation.render();
  out += study.census.render();
  out += study.extensions.render();
  out += study.languages.render();
  out += study.access_patterns.render();
  out += study.striping.render();
  out += study.growth.render();
  out += study.file_age.render();
  out += study.burstiness.render();
  out += study.network.render();
  out += study.collaboration.render();
  return out;
}

std::string run_bundle(SnapshotSource& source, const Resolver& resolver,
                       const StudyOptions& options) {
  FullStudy study(resolver, /*burst_min_files=*/5);
  study.run(source, options);
  return render_bundle(study);
}

/// Materializes a deterministic churn-mode series: every week rewrites,
/// deletes, and creates fixed fractions of the namespace.
void make_churn_series(double churn, SnapshotSeries* series,
                       FacilityGenerator** generator_out) {
  FacilityConfig config;
  config.scale = 5e-5;
  config.weeks = 8;
  config.maintenance_gaps = false;
  config.churn_create = churn;
  config.churn_update = churn;
  config.churn_delete = churn;
  auto* generator = new FacilityGenerator(config);
  generator->visit_move(
      [&](std::size_t, Snapshot&& snap) { series->add(std::move(snap)); });
  *generator_out = generator;
}

TEST(IncrementalStudyTest, ChurnSweepMatchesScanPipeline) {
  for (const double churn : {0.0, 0.01, 0.05, 0.5}) {
    SnapshotSeries series;
    FacilityGenerator* generator = nullptr;
    make_churn_series(churn, &series, &generator);
    Resolver resolver(generator->plan());

    // Reference: the full-scan pipeline, serial configuration.
    ThreadPool one(1);
    StudyOptions scan;
    scan.pool = &one;
    scan.prefetch = false;
    const std::string reference = run_bundle(series, resolver, scan);
    ASSERT_GT(reference.size(), 1000u) << "churn=" << churn;

    for (const unsigned threads : {1u, 2u, 7u, 0u}) {  // 0 = hardware
      for (const bool prefetch : {false, true}) {
        ThreadPool pool(threads);
        StudyOptions options;
        options.pool = &pool;
        options.prefetch = prefetch;
        options.incremental = true;
        EXPECT_EQ(run_bundle(series, resolver, options), reference)
            << "churn=" << churn << " threads=" << threads
            << " prefetch=" << prefetch;
      }
    }

    // Unfused incremental: the delta comes from the standalone diff call
    // instead of the fused kernel; results must not move.
    {
      ThreadPool pool(7);
      StudyOptions options;
      options.pool = &pool;
      options.incremental = true;
      options.fuse_diff = false;
      EXPECT_EQ(run_bundle(series, resolver, options), reference)
          << "churn=" << churn << " unfused";
    }
    delete generator;
  }
}

TEST(IncrementalStudyTest, GappedSeriesForcesRebaseline) {
  FacilityConfig config;
  config.scale = 5e-5;
  config.weeks = 12;
  config.maintenance_gaps = false;
  FacilityGenerator generator(config);
  Resolver resolver(generator.plan());

  // A hole at slot 5: the week after it must re-baseline with a full scan
  // (no diff spans a gap), then delta weeks resume.
  SnapshotSeries series;
  std::vector<Snapshot> snaps;
  generator.visit_move(
      [&](std::size_t, Snapshot&& snap) { snaps.push_back(std::move(snap)); });
  for (std::size_t w = 0; w < snaps.size(); ++w) {
    if (w == 5) {
      series.add_gap(snaps[w].taken_at,
                     Status::corruption("injected test gap"));
      continue;
    }
    series.add(std::move(snaps[w]));
  }

  ThreadPool one(1);
  StudyOptions scan;
  scan.pool = &one;
  scan.prefetch = false;
  const std::string reference = run_bundle(series, resolver, scan);
  EXPECT_NE(reference.find("gap"), std::string::npos);

  for (const unsigned threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    StudyOptions options;
    options.pool = &pool;
    options.prefetch = true;
    options.incremental = true;
    EXPECT_EQ(run_bundle(series, resolver, options), reference)
        << "threads=" << threads;
  }
}

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void corrupt_scol_file(const std::string& file, std::uint64_t seed) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(file, &bytes).ok());
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(bytes, &layout).ok());
  FaultInjector injector(seed);
  injector.bit_flip(&bytes, layout.payload_start, bytes.size());
  ASSERT_TRUE(
      write_file_atomic(file, std::span<const std::uint8_t>(bytes)).ok());
}

// A salvage-damaged week decodes with rows missing (Snapshot::degraded):
// the diffs touching it are unreliable for delta consumption, so both the
// damaged week and its successor must re-baseline via the full scan — and
// the rendered study must still match the scan pipeline byte-for-byte.
TEST(IncrementalStudyTest, SalvagedWeekForcesRebaseline) {
  TempDir dir("spider_incremental_salvage_test");
  FacilityConfig config;
  config.scale = 5e-5;
  config.weeks = 9;
  config.maintenance_gaps = false;
  FacilityGenerator generator(config);
  std::string error;
  ASSERT_TRUE(save_series(generator, dir.path(), &error)) << error;

  DirectorySeries probe;
  ASSERT_TRUE(probe.open(dir.path(), &error)) << error;
  ASSERT_EQ(probe.files().size(), 9u);
  corrupt_scol_file(probe.files()[4], /*seed=*/31);

  Resolver resolver(generator.plan());
  ScolOptions salvage;
  salvage.on_corrupt_group = CorruptGroupPolicy::kSkip;

  DirectorySeries scan_series;
  ASSERT_TRUE(scan_series.open(dir.path(), &error)) << error;
  scan_series.set_scol_options(salvage);
  ThreadPool one(1);
  StudyOptions scan;
  scan.pool = &one;
  scan.prefetch = false;
  const std::string reference = run_bundle(scan_series, resolver, scan);
  ASSERT_GT(reference.size(), 1000u);

  for (const unsigned threads : {2u, 7u}) {
    for (const bool prefetch : {false, true}) {
      DirectorySeries series;
      ASSERT_TRUE(series.open(dir.path(), &error)) << error;
      series.set_scol_options(salvage);
      ThreadPool pool(threads);
      StudyOptions options;
      options.pool = &pool;
      options.prefetch = prefetch;
      options.incremental = true;
      EXPECT_EQ(run_bundle(series, resolver, options), reference)
          << "threads=" << threads << " prefetch=" << prefetch;
    }
  }
}

}  // namespace
}  // namespace spider
