// Parity harness for the out-of-core pipeline (DESIGN.md §15): with a
// memory budget set, any mix of resident and streamed weeks — group-at-a-
// time decode, spill-join diffs, shell snapshots — must reproduce the
// resident reference study byte-for-byte at every thread count, with the
// group prefetch on or off, and on gapped, fault-damaged, and salvaging
// series. The fixtures write .scol files with a small row-group size so
// even test-scale weeks span several groups; the scan grain divides the
// group size, which is the alignment the production defaults also satisfy
// (kScanGrainRows divides ScolOptions::group_size).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "snapshot/scol.h"
#include "snapshot/series.h"
#include "study/full_study.h"
#include "study/runner.h"
#include "synth/generator.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/parallel.h"
#include "util/timeutil.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

/// Groups per week stay small so multi-group streaming is exercised at
/// test scale; the grain divides it so chunk layout (and with it every
/// floating-point fold order) is identical resident or streamed.
constexpr std::size_t kTestGroupSize = 1024;
constexpr std::size_t kTestGrain = 512;

std::string render_bundle(const FullStudy& study) {
  std::string out;
  out += study.render_table1();
  out += study.render_data_quality();
  out += study.user_profile.render();
  out += study.participation.render();
  out += study.census.render();
  out += study.extensions.render();
  out += study.languages.render();
  out += study.access_patterns.render();
  out += study.striping.render();
  out += study.growth.render();
  out += study.file_age.render();
  out += study.burstiness.render();
  out += study.network.render();
  out += study.collaboration.render();
  return out;
}

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Writes every generated week as a multi-group v2 .scol file.
void save_grouped_series(FacilityGenerator& generator,
                         const std::string& dir) {
  ScolOptions options;
  options.group_size = kTestGroupSize;
  generator.visit_move([&](std::size_t, Snapshot&& snap) {
    const std::string file =
        (fs::path(dir) / ("snap_" + date_tag(snap.taken_at) + ".scol"))
            .string();
    ASSERT_TRUE(write_scol_file(snap.table, file, options).ok());
  });
}

/// Flips one payload bit of an on-disk v2 .scol file.
void corrupt_scol_file(const std::string& file, std::uint64_t seed) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(file, &bytes).ok());
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(bytes, &layout).ok());
  FaultInjector injector(seed);
  injector.bit_flip(&bytes, layout.payload_start, bytes.size());
  ASSERT_TRUE(
      write_file_atomic(file, std::span<const std::uint8_t>(bytes)).ok());
}

std::string run_bundle(const std::string& dir, const Resolver& resolver,
                       StudyOptions options,
                       const ScolOptions* scol = nullptr,
                       std::vector<std::string>* gap_lines = nullptr) {
  DirectorySeries series;
  std::string error;
  EXPECT_TRUE(series.open(dir, &error)) << error;
  if (scol != nullptr) series.set_scol_options(*scol);
  options.grain = kTestGrain;
  FullStudy study(resolver, /*burst_min_files=*/5);
  study.run(series, options);
  if (gap_lines != nullptr) {
    gap_lines->clear();
    for (const SeriesGap& gap : study.gaps()) {
      gap_lines->push_back(gap.describe());
    }
  }
  return render_bundle(study);
}

/// Shared fixture: one generated facility series saved as multi-group
/// .scol files, re-analyzed resident and streaming under many settings.
class StreamingStudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("spider_streaming_study_test");
    FacilityConfig config;
    config.scale = 5e-5;
    config.weeks = 10;
    config.seed = 20150105;
    config.maintenance_gaps = false;
    generator_ = new FacilityGenerator(config);
    resolver_ = new Resolver(generator_->plan());
    save_grouped_series(*generator_, dir_->path());
  }
  static void TearDownTestSuite() {
    delete resolver_;
    delete generator_;
    delete dir_;
    resolver_ = nullptr;
    generator_ = nullptr;
    dir_ = nullptr;
  }

  static TempDir* dir_;
  static FacilityGenerator* generator_;
  static Resolver* resolver_;
};

TempDir* StreamingStudyTest::dir_ = nullptr;
FacilityGenerator* StreamingStudyTest::generator_ = nullptr;
Resolver* StreamingStudyTest::resolver_ = nullptr;

TEST_F(StreamingStudyTest, AllWeeksStreamedMatchResidentAcrossWidths) {
  // Resident reference: the master switch off makes the budget inert.
  ThreadPool one(1);
  StudyOptions ref;
  ref.pool = &one;
  ref.prefetch = false;
  ref.memory_budget = 1;
  ref.streaming = false;
  const std::string reference = run_bundle(dir_->path(), *resolver_, ref);
  ASSERT_GT(reference.size(), 1000u);

  // A 1-byte budget streams every week.
  for (const unsigned threads : {1u, 2u, 7u, 0u}) {  // 0 = hardware
    for (const bool prefetch : {false, true}) {
      ThreadPool pool(threads);
      StudyOptions options;
      options.pool = &pool;
      options.prefetch = prefetch;
      options.memory_budget = 1;
      EXPECT_EQ(run_bundle(dir_->path(), *resolver_, options), reference)
          << "threads=" << threads << " prefetch=" << prefetch;
    }
  }
}

TEST_F(StreamingStudyTest, MixedResidencyBudgetMatchesResident) {
  // A budget sized to the median week streams the large weeks and keeps
  // the small ones resident, crossing the resident<->streamed boundary —
  // both spill-join directions — inside one run.
  std::vector<std::uint64_t> rows;
  DirectorySeries probe;
  std::string error;
  ASSERT_TRUE(probe.open(dir_->path(), &error)) << error;
  for (const std::string& file : probe.files()) {
    ScolGroupReader reader;
    ASSERT_TRUE(reader.open(file).ok());
    rows.push_back(reader.rows());
  }
  std::sort(rows.begin(), rows.end());
  const std::uint64_t median = rows[rows.size() / 2];
  // The runner predicts ~160 resident bytes per row and gives the current
  // week half the budget, so this threshold sits at the median row count.
  const std::size_t budget = static_cast<std::size_t>(median) * 320;
  ASSERT_LT(rows.front(), median) << "budget would stream everything";

  ThreadPool one(1);
  StudyOptions ref;
  ref.pool = &one;
  ref.prefetch = false;
  const std::string reference = run_bundle(dir_->path(), *resolver_, ref);

  for (const bool incremental : {false, true}) {
    ThreadPool pool(4);
    StudyOptions options;
    options.pool = &pool;
    options.memory_budget = budget;
    options.incremental = incremental;
    EXPECT_EQ(run_bundle(dir_->path(), *resolver_, options), reference)
        << "mixed residency, incremental=" << incremental;
  }
}

TEST(StreamingStudyFaultTest, DamagedAndGappedSeriesStreamingParity) {
  TempDir dir("spider_streaming_fault_test");
  FacilityConfig config;
  config.scale = 5e-5;
  config.weeks = 10;
  config.seed = 20150105;
  config.maintenance_gaps = false;
  FacilityGenerator generator(config);
  Resolver resolver(generator.plan());
  save_grouped_series(generator, dir.path());

  DirectorySeries probe;
  std::string error;
  ASSERT_TRUE(probe.open(dir.path(), &error)) << error;
  ASSERT_EQ(probe.files().size(), 10u);
  corrupt_scol_file(probe.files()[2], /*seed=*/21);
  corrupt_scol_file(probe.files()[6], /*seed=*/22);
  fs::remove(probe.files()[4]);

  // Strict salvage (the default): damaged weeks decay into gaps; the
  // streamed path must report the same gap text, because its group-order
  // replay fails at the same lowest damaged group with the same status.
  ThreadPool one(1);
  StudyOptions ref;
  ref.pool = &one;
  ref.prefetch = false;
  std::vector<std::string> ref_gaps;
  const std::string reference =
      run_bundle(dir.path(), resolver, ref, nullptr, &ref_gaps);
  ASSERT_EQ(ref_gaps.size(), 3u);

  for (const unsigned threads : {2u, 7u}) {
    for (const bool prefetch : {false, true}) {
      ThreadPool pool(threads);
      StudyOptions options;
      options.pool = &pool;
      options.prefetch = prefetch;
      options.memory_budget = 1;
      std::vector<std::string> gaps;
      EXPECT_EQ(run_bundle(dir.path(), resolver, options, nullptr, &gaps),
                reference)
          << "threads=" << threads << " prefetch=" << prefetch;
      EXPECT_EQ(gaps, ref_gaps);
    }
  }

  // Salvaging decode (kSkip): the same damage now yields degraded weeks
  // instead of gaps, and the streamed pass-A replay must drop exactly the
  // groups the eager decoder drops — global row numbering included.
  ScolOptions salvage;
  salvage.on_corrupt_group = CorruptGroupPolicy::kSkip;
  std::vector<std::string> skip_ref_gaps;
  const std::string skip_reference =
      run_bundle(dir.path(), resolver, ref, &salvage, &skip_ref_gaps);
  ASSERT_EQ(skip_ref_gaps.size(), 1u) << "only the deleted week remains a gap";
  EXPECT_NE(skip_reference, reference);

  for (const unsigned threads : {2u, 7u}) {
    ThreadPool pool(threads);
    StudyOptions options;
    options.pool = &pool;
    options.memory_budget = 1;
    std::vector<std::string> gaps;
    EXPECT_EQ(run_bundle(dir.path(), resolver, options, &salvage, &gaps),
              skip_reference)
        << "salvaging, threads=" << threads;
    EXPECT_EQ(gaps, skip_ref_gaps);
  }
}

/// Records everything an analyzer can see per week — counts, flags, and
/// order-sensitive checksums of the diff lists — so a streamed run can be
/// compared field-for-field against the resident reference, and records
/// the week's table size separately to prove which weeks arrived as
/// shells.
class RecordingAnalyzer : public StudyAnalyzer {
 public:
  bool wants_diff() const override { return true; }

  void observe(const WeekObservation& obs) override {
    std::string line = "week=" + std::to_string(obs.week);
    line += " rows=" + std::to_string(obs.row_count);
    line += " files=" + std::to_string(obs.file_count);
    line += " dirs=" + std::to_string(obs.dir_count);
    line += " gap=" + std::to_string(obs.gap_before);
    line += " degraded=" + std::to_string(obs.snap->degraded);
    if (obs.diff != nullptr) {
      line += " new=" + std::to_string(obs.diff->new_rows.size());
      line += " del=" + std::to_string(obs.diff->deleted_rows.size());
      line += " upd=" + std::to_string(obs.diff->updated_rows.size());
      line += " ro=" + std::to_string(obs.diff->readonly_rows.size());
      line += " unt=" + std::to_string(obs.diff->untouched_rows.size());
      line += " hash=" + std::to_string(diff_hash(*obs.diff));
    } else {
      line += " diff=none";
    }
    log.push_back(std::move(line));
    table_rows.push_back(obs.snap->table.size());
  }

  std::vector<std::string> log;
  std::vector<std::size_t> table_rows;

 private:
  static std::uint64_t diff_hash(const DiffResult& diff) {
    std::uint64_t h = 0;
    for (const auto* rows :
         {&diff.new_rows, &diff.deleted_rows, &diff.updated_rows,
          &diff.readonly_rows, &diff.untouched_rows}) {
      h = hash_combine(
          h, hash_bytes(std::string_view(
                 reinterpret_cast<const char*>(rows->data()),
                 rows->size() * sizeof(std::uint32_t))));
    }
    return h;
  }
};

// Alternating small and large weeks force every residency boundary —
// resident->streamed, streamed->streamed, streamed->resident — and the
// recording probe verifies that streamed weeks really did arrive as empty
// shells while producing the exact resident diff.
TEST(StreamingStudyBoundaryTest, AlternatingResidencyMatchesResident) {
  TempDir dir("spider_streaming_boundary_test");
  const std::vector<std::size_t> sizes = {400,  6000, 6000, 400,
                                          6000, 400,  6000, 6000};
  ScolOptions scol;
  scol.group_size = kTestGroupSize;
  for (std::size_t w = 0; w < sizes.size(); ++w) {
    const std::int64_t taken_at =
        epoch_from_civil({2015, 1, 5}) + static_cast<std::int64_t>(w) *
                                             kSecondsPerWeek;
    Snapshot snap;
    snap.taken_at = taken_at;
    for (std::size_t i = 0; i < 10; ++i) {
      RawRecord rec;
      rec.path = "/lustre/atlas1/proj/u1/d" + std::to_string(i);
      rec.mode = kModeDirectory | 0755;
      rec.atime = rec.ctime = rec.mtime = 1000;
      snap.table.add(rec);
    }
    for (std::size_t i = 0; i < sizes[w]; ++i) {
      RawRecord rec;
      rec.path = "/lustre/atlas1/proj/u1/f" + std::to_string(i);
      rec.mode = kModeRegular | 0644;
      rec.inode = i;
      rec.osts = {static_cast<std::uint32_t>(i % 4)};
      // Rows shared between adjacent weeks land in every diff class:
      // i%3==0 keeps all three timestamps (untouched), i%3==1 moves only
      // atime (readonly), i%3==2 moves mtime/ctime (updated).
      rec.atime = rec.ctime = rec.mtime = 2000 + static_cast<std::int64_t>(i);
      if (i % 3 == 1) rec.atime = taken_at;
      if (i % 3 == 2) rec.mtime = rec.ctime = taken_at;
      snap.table.add(rec);
    }
    const std::string file =
        (fs::path(dir.path()) / ("snap_" + date_tag(taken_at) + ".scol"))
            .string();
    ASSERT_TRUE(write_scol_file(snap.table, file, scol).ok());
  }

  // Threshold between 400 and 6000 rows (the runner predicts ~160
  // resident bytes per row and halves the budget per side).
  const std::size_t budget = 2000 * 320;

  auto run_probe = [&](bool streaming, RecordingAnalyzer* probe) {
    DirectorySeries series;
    std::string error;
    ASSERT_TRUE(series.open(dir.path(), &error)) << error;
    ThreadPool pool(4);
    StudyOptions options;
    options.pool = &pool;
    options.grain = kTestGrain;
    options.memory_budget = budget;
    options.streaming = streaming;
    run_study(series, *probe, options);
  };

  RecordingAnalyzer resident;
  run_probe(false, &resident);
  RecordingAnalyzer streamed;
  run_probe(true, &streamed);

  ASSERT_EQ(resident.log.size(), sizes.size());
  EXPECT_EQ(streamed.log, resident.log);
  for (std::size_t w = 0; w < sizes.size(); ++w) {
    EXPECT_EQ(resident.table_rows[w], sizes[w] + 10);
    if (sizes[w] > 2000) {
      EXPECT_EQ(streamed.table_rows[w], 0u)
          << "week " << w << " should have streamed (shell snapshot)";
    } else {
      EXPECT_EQ(streamed.table_rows[w], sizes[w] + 10)
          << "week " << w << " should have stayed resident";
    }
  }
}

}  // namespace
}  // namespace spider
