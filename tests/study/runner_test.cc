// Unit tests for the study runner: ordering, prev retention, shared diff.
#include "study/runner.h"

#include <gtest/gtest.h>

#include "util/timeutil.h"

namespace spider {
namespace {

Snapshot make_snapshot(int week, std::initializer_list<const char*> paths,
                       std::int64_t stamp) {
  Snapshot snap;
  snap.taken_at = epoch_from_civil({2015, 1, 5}) + week * kSecondsPerWeek;
  for (const char* path : paths) {
    RawRecord rec;
    rec.path = path;
    rec.atime = rec.ctime = rec.mtime = stamp;
    rec.osts = {1};
    snap.table.add(rec);
  }
  return snap;
}

class RecordingAnalyzer : public StudyAnalyzer {
 public:
  explicit RecordingAnalyzer(bool wants) : wants_(wants) {}
  bool wants_diff() const override { return wants_; }
  void observe(const WeekObservation& obs) override {
    weeks.push_back(obs.week);
    had_prev.push_back(obs.prev != nullptr);
    had_diff.push_back(obs.diff != nullptr);
    if (obs.prev != nullptr) {
      prev_sizes.push_back(obs.prev->table.size());
    }
    if (obs.diff != nullptr) new_counts.push_back(obs.diff->new_rows.size());
  }
  void finish() override { finished = true; }

  bool wants_;
  std::vector<std::size_t> weeks;
  std::vector<bool> had_prev, had_diff;
  std::vector<std::size_t> prev_sizes;
  std::vector<std::size_t> new_counts;
  bool finished = false;
};

TEST(StudyRunnerTest, PrevAndDiffDelivery) {
  SnapshotSeries series;
  series.add(make_snapshot(0, {"/lustre/atlas2/p/u/a"}, 100));
  series.add(make_snapshot(1, {"/lustre/atlas2/p/u/a",
                               "/lustre/atlas2/p/u/b"}, 100));
  series.add(make_snapshot(
      2, {"/lustre/atlas2/p/u/a", "/lustre/atlas2/p/u/b",
          "/lustre/atlas2/p/u/c"}, 100));

  RecordingAnalyzer plain(false);
  RecordingAnalyzer differ(true);
  StudyAnalyzer* analyzers[] = {&plain, &differ};
  run_study(series, analyzers);

  EXPECT_EQ(differ.weeks, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(differ.had_prev, (std::vector<bool>{false, true, true}));
  EXPECT_EQ(differ.had_diff, (std::vector<bool>{false, true, true}));
  EXPECT_EQ(differ.prev_sizes, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(differ.new_counts, (std::vector<std::size_t>{1, 1}));
  EXPECT_TRUE(differ.finished);

  // The non-diff analyzer still sees prev but no diff is advertised only
  // when nobody wants it — here differ wants it, so plain gets it too
  // (shared computation).
  EXPECT_EQ(plain.had_diff, (std::vector<bool>{false, true, true}));
}

TEST(StudyRunnerTest, NoDiffComputedWhenNobodyWants) {
  SnapshotSeries series;
  series.add(make_snapshot(0, {"/lustre/atlas2/p/u/a"}, 1));
  series.add(make_snapshot(1, {"/lustre/atlas2/p/u/a"}, 1));
  RecordingAnalyzer plain(false);
  run_study(series, plain);
  EXPECT_EQ(plain.had_diff, (std::vector<bool>{false, false}));
  EXPECT_EQ(plain.had_prev, (std::vector<bool>{false, true}));
  EXPECT_TRUE(plain.finished);
}

TEST(StudyRunnerTest, EmptySeries) {
  SnapshotSeries series;
  RecordingAnalyzer plain(false);
  run_study(series, plain);
  EXPECT_TRUE(plain.weeks.empty());
  EXPECT_TRUE(plain.finished);
}

}  // namespace
}  // namespace spider
