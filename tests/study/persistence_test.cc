// End-to-end persistence: saving a generated series to .scol files and
// re-analyzing through DirectorySeries + inferred accounts must reproduce
// the direct in-memory analysis — the external-data path of the library.
#include <gtest/gtest.h>

#include <filesystem>

#include "study/full_study.h"
#include "synth/generator.h"
#include "synth/infer.h"

namespace spider {
namespace {

TEST(PersistenceTest, DiskRoundTripMatchesDirectAnalysis) {
  FacilityConfig config;
  config.scale = 0.00002;
  config.weeks = 12;
  FacilityGenerator generator(config);

  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "spider_persist_test")
          .string();
  std::filesystem::remove_all(dir);
  std::string error;
  ASSERT_TRUE(save_series(generator, dir, &error)) << error;

  DirectorySeries series;
  ASSERT_TRUE(series.open(dir, &error)) << error;
  ASSERT_EQ(series.count(), generator.count());

  // Direct analysis with the ground-truth plan.
  Resolver truth_resolver(generator.plan());
  GrowthAnalyzer direct_growth;
  CensusAnalyzer direct_census(truth_resolver);
  {
    StudyAnalyzer* analyzers[] = {&direct_growth, &direct_census};
    run_study(generator, analyzers);
  }

  // Disk analysis with the inferred plan.
  const FacilityPlan inferred = infer_facility(series);
  Resolver disk_resolver(inferred);
  GrowthAnalyzer disk_growth;
  CensusAnalyzer disk_census(disk_resolver);
  {
    StudyAnalyzer* analyzers[] = {&disk_growth, &disk_census};
    run_study(series, analyzers);
  }

  // Growth curves identical (format round trip is lossless).
  ASSERT_EQ(disk_growth.result().points.size(),
            direct_growth.result().points.size());
  for (std::size_t i = 0; i < disk_growth.result().points.size(); ++i) {
    EXPECT_EQ(disk_growth.result().points[i].files,
              direct_growth.result().points[i].files) << "week " << i;
    EXPECT_EQ(disk_growth.result().points[i].dirs,
              direct_growth.result().points[i].dirs) << "week " << i;
  }

  // Census totals identical; per-domain counts agree because inference
  // recovers domains from project-name prefixes.
  EXPECT_EQ(disk_census.result().total_files,
            direct_census.result().total_files);
  EXPECT_EQ(disk_census.result().total_dirs,
            direct_census.result().total_dirs);
  for (std::size_t d = 0; d < domain_count(); ++d) {
    EXPECT_EQ(disk_census.result().files_by_domain[d],
              direct_census.result().files_by_domain[d])
        << domain_profiles()[d].id;
  }

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace spider
