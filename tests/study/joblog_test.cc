#include "study/joblog.h"

#include <gtest/gtest.h>

namespace spider {
namespace {

TEST(JobLogTest, ChannelsAgree) {
  FacilityConfig config;
  config.scale = 0.00005;
  config.weeks = 24;
  FacilityGenerator generator(config);
  Resolver resolver(generator.plan());

  const JobLogResult result = analyze_job_log(generator, resolver);

  EXPECT_GT(result.write_jobs, 100u);
  EXPECT_GT(result.read_jobs, 100u);
  EXPECT_GT(result.files_written, 1000u);
  EXPECT_GT(result.files_read, 1000u);
  ASSERT_GT(result.jobs_per_interval.size(), 5u);
  EXPECT_EQ(result.jobs_per_interval.size(),
            result.new_files_per_interval.size());

  // The two observation channels (scheduler log, snapshot diffs) must
  // correlate strongly: job counts drive file creation.
  EXPECT_GT(result.job_newfile_correlation, 0.4);

  // Every write job created at least one file; batches are capped.
  EXPECT_GE(result.files_per_write_job.min, 1.0);
  EXPECT_LE(result.files_per_write_job.max, 200.0);

  // Domain job counts exist for large domains.
  EXPECT_GT(result.jobs_by_domain[static_cast<std::size_t>(
                domain_index("bip"))],
            result.jobs_by_domain[static_cast<std::size_t>(
                domain_index("pss"))]);
}

TEST(JobLogTest, VisitWithJobsMatchesPlainVisit) {
  // The snapshot stream must be identical with and without job capture.
  FacilityConfig config;
  config.scale = 0.00002;
  config.weeks = 8;
  FacilityGenerator generator(config);

  std::vector<std::size_t> plain_sizes, with_jobs_sizes;
  generator.visit([&](std::size_t, const Snapshot& snap) {
    plain_sizes.push_back(snap.table.size());
  });
  std::size_t jobs = 0;
  generator.visit_with_jobs(
      [&](std::size_t, const Snapshot& snap) {
        with_jobs_sizes.push_back(snap.table.size());
      },
      [&](const JobRecord&) { ++jobs; });
  EXPECT_EQ(plain_sizes, with_jobs_sizes);
  EXPECT_GT(jobs, 0u);
}

}  // namespace
}  // namespace spider
