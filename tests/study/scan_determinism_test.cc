// Determinism harness for the morsel-driven study pipeline (DESIGN.md §10):
// every rendered result — Table 1, the data-quality report, and all twelve
// analyzer renders — must be byte-identical to the 1-thread reference at
// every thread count and with the decode prefetch on or off, including on
// gapped and fault-damaged series.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "snapshot/scol.h"
#include "snapshot/series.h"
#include "study/full_study.h"
#include "synth/generator.h"
#include "util/fault.h"
#include "util/io.h"
#include "util/parallel.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

/// Every user-visible string the study produces, concatenated. Two runs
/// agree iff this bundle is byte-identical.
std::string render_bundle(const FullStudy& study) {
  std::string out;
  out += study.render_table1();
  out += study.render_data_quality();
  out += study.user_profile.render();
  out += study.participation.render();
  out += study.census.render();
  out += study.extensions.render();
  out += study.languages.render();
  out += study.access_patterns.render();
  out += study.striping.render();
  out += study.growth.render();
  out += study.file_age.render();
  out += study.burstiness.render();
  out += study.network.render();
  out += study.collaboration.render();
  return out;
}

std::string run_bundle(SnapshotSource& source, const Resolver& resolver,
                       const StudyOptions& options,
                       std::size_t burst_min_files = 10) {
  FullStudy study(resolver, burst_min_files);
  study.run(source, options);
  return render_bundle(study);
}

/// Shared fixture: simulate once, materialize in memory, re-analyze under
/// many thread settings.
class ScanDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FacilityConfig config;
    config.scale = 0.0001;
    config.weeks = 24;
    // The generator outlives the resolver: Resolver references its plan.
    generator_ = new FacilityGenerator(config);
    resolver_ = new Resolver(generator_->plan());
    series_ = new SnapshotSeries();
    generator_->visit_move([&](std::size_t, Snapshot&& snap) {
      series_->add(std::move(snap));
    });
  }
  static void TearDownTestSuite() {
    delete series_;
    delete resolver_;
    delete generator_;
    series_ = nullptr;
    resolver_ = nullptr;
    generator_ = nullptr;
  }

  static FacilityGenerator* generator_;
  static SnapshotSeries* series_;
  static Resolver* resolver_;
};

FacilityGenerator* ScanDeterminismTest::generator_ = nullptr;
SnapshotSeries* ScanDeterminismTest::series_ = nullptr;
Resolver* ScanDeterminismTest::resolver_ = nullptr;

TEST_F(ScanDeterminismTest, BundleIdenticalAcrossThreadCounts) {
  // Reference: one worker, no prefetch — the configuration closest to the
  // old serial runner.
  ThreadPool one(1);
  StudyOptions ref_options;
  ref_options.pool = &one;
  ref_options.prefetch = false;
  const std::string reference = run_bundle(*series_, *resolver_, ref_options);
  ASSERT_GT(reference.size(), 1000u);

  for (const unsigned threads : {1u, 2u, 7u, 0u}) {  // 0 = hardware
    ThreadPool pool(threads);
    StudyOptions options;
    options.pool = &pool;
    options.prefetch = true;
    const std::string bundle = run_bundle(*series_, *resolver_, options);
    EXPECT_EQ(bundle, reference) << "threads=" << threads << " prefetch=on";
  }

  // Prefetch off at a non-trivial thread count: the pipeline overlap must
  // not change results either.
  {
    ThreadPool pool(7);
    StudyOptions options;
    options.pool = &pool;
    options.prefetch = false;
    EXPECT_EQ(run_bundle(*series_, *resolver_, options), reference)
        << "threads=7 prefetch=off";
  }
}

TEST_F(ScanDeterminismTest, FusedDiffKernelMatchesStandaloneDiff) {
  // Unfused reference: fuse_diff=false computes each week's diff with the
  // standalone diff_snapshots call after the scan, exactly the pre-fusion
  // pipeline. The fused kernel (diff as a scan kernel, index built in the
  // prefetch slot) must reproduce it byte-for-byte at every width.
  ThreadPool one(1);
  StudyOptions ref_options;
  ref_options.pool = &one;
  ref_options.prefetch = false;
  ref_options.fuse_diff = false;
  const std::string reference = run_bundle(*series_, *resolver_, ref_options);
  ASSERT_GT(reference.size(), 1000u);

  for (const unsigned threads : {1u, 2u, 7u}) {
    for (const bool prefetch : {false, true}) {
      ThreadPool pool(threads);
      StudyOptions options;
      options.pool = &pool;
      options.prefetch = prefetch;
      options.fuse_diff = true;
      EXPECT_EQ(run_bundle(*series_, *resolver_, options), reference)
          << "fused threads=" << threads << " prefetch=" << prefetch;
    }
  }

  // And switching fusion off at a non-trivial width changes nothing either.
  ThreadPool pool(7);
  StudyOptions options;
  options.pool = &pool;
  options.prefetch = true;
  options.fuse_diff = false;
  EXPECT_EQ(run_bundle(*series_, *resolver_, options), reference)
      << "unfused threads=7";
}

TEST_F(ScanDeterminismTest, FlatAggregationLayerOnAndOffMatch) {
  // The flat aggregation layer (DESIGN.md §12) — dictionary-encoded
  // extension group-by, FlatMap chunk states, radix-partitioned census
  // merge — against the std::unordered_map reference path, byte-identical
  // at every tested width, in both modes.
  ThreadPool one(1);
  StudyOptions ref_options;
  ref_options.pool = &one;
  ref_options.prefetch = false;
  ref_options.flat_agg = false;  // legacy reference
  const std::string reference = run_bundle(*series_, *resolver_, ref_options);
  ASSERT_GT(reference.size(), 1000u);

  for (const unsigned threads : {1u, 2u, 7u, 0u}) {  // 0 = hardware
    for (const bool flat : {true, false}) {
      ThreadPool pool(threads);
      StudyOptions options;
      options.pool = &pool;
      options.prefetch = true;
      options.flat_agg = flat;
      EXPECT_EQ(run_bundle(*series_, *resolver_, options), reference)
          << "threads=" << threads << " flat_agg=" << flat;
    }
  }
}

TEST_F(ScanDeterminismTest, SmallGrainsForceManyChunks) {
  // A tiny grain makes every table span hundreds of chunks, exercising the
  // ordered merge far beyond what kScanGrainRows does at test scale.
  ThreadPool one(1);
  StudyOptions ref_options;
  ref_options.pool = &one;
  ref_options.prefetch = false;
  const std::string reference = run_bundle(*series_, *resolver_, ref_options);

  ThreadPool pool(4);
  StudyOptions options;
  options.pool = &pool;
  options.grain = 97;  // prime, misaligned with every table size
  const std::string bundle = run_bundle(*series_, *resolver_, options);

  // Many-chunk merges fold StreamingStats partials pairwise instead of
  // row-by-row, so only the grain — never the thread count or prefetch
  // mode — may move the last floating-point bits. Same grain, different
  // pools: byte-identical.
  ThreadPool other(2);
  StudyOptions options2 = options;
  options2.pool = &other;
  options2.prefetch = false;
  EXPECT_EQ(run_bundle(*series_, *resolver_, options2), bundle);
  ASSERT_GT(reference.size(), 1000u);
}

TEST(ScanDeterminismGapTest, GappedSeriesIdenticalAcrossThreadCounts) {
  FacilityConfig config;
  config.scale = 5e-5;
  config.weeks = 12;
  config.seed = 20150105;
  config.maintenance_gaps = false;
  FacilityGenerator generator(config);
  Resolver resolver(generator.plan());

  // Materialize with a hole at slot 5: gap_before handling and the skip
  // accounting must survive parallel analysis bit-for-bit.
  SnapshotSeries series;
  std::vector<Snapshot> snaps;
  generator.visit_move(
      [&](std::size_t, Snapshot&& snap) { snaps.push_back(std::move(snap)); });
  for (std::size_t w = 0; w < snaps.size(); ++w) {
    if (w == 5) {
      series.add_gap(snaps[w].taken_at,
                     Status::corruption("injected test gap"));
      continue;
    }
    series.add(std::move(snaps[w]));
  }

  ThreadPool one(1);
  StudyOptions serial;
  serial.pool = &one;
  serial.prefetch = false;
  const std::string reference = run_bundle(series, resolver, serial);
  EXPECT_NE(reference.find("gap"), std::string::npos);

  for (const unsigned threads : {2u, 7u}) {
    ThreadPool pool(threads);
    StudyOptions options;
    options.pool = &pool;
    options.prefetch = true;
    EXPECT_EQ(run_bundle(series, resolver, options), reference)
        << "threads=" << threads;
  }
}

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Flips one payload bit of an on-disk v2 .scol file.
void corrupt_scol_file(const std::string& file, std::uint64_t seed) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(file, &bytes).ok());
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(bytes, &layout).ok());
  FaultInjector injector(seed);
  injector.bit_flip(&bytes, layout.payload_start, bytes.size());
  ASSERT_TRUE(
      write_file_atomic(file, std::span<const std::uint8_t>(bytes)).ok());
}

// A damaged on-disk series must produce the same gaps, the same
// gap_pairs_skipped counts, and the same renders through the parallel
// runner (with projection pushdown and prefetch active) as through the
// serial configuration — decode damage accounting is not allowed to
// depend on the execution schedule.
TEST(ScanDeterminismFaultTest, DamagedSeriesParityWithSerialRunner) {
  TempDir dir("spider_scan_determinism_fault_test");
  FacilityConfig config;
  config.scale = 5e-5;
  config.weeks = 10;
  config.seed = 20150105;
  config.maintenance_gaps = false;
  FacilityGenerator generator(config);
  std::string error;
  ASSERT_TRUE(save_series(generator, dir.path(), &error)) << error;

  DirectorySeries probe;
  ASSERT_TRUE(probe.open(dir.path(), &error)) << error;
  ASSERT_EQ(probe.files().size(), 10u);
  corrupt_scol_file(probe.files()[2], /*seed=*/21);
  corrupt_scol_file(probe.files()[6], /*seed=*/22);
  fs::remove(probe.files()[4]);

  Resolver resolver(generator.plan());

  // Serial configuration: decode-all columns would be the historical
  // behavior, but projection is applied by the runner in both cases; what
  // differs is the pool, the chunking, and the prefetch pipeline.
  DirectorySeries serial_series;
  ASSERT_TRUE(serial_series.open(dir.path(), &error)) << error;
  ThreadPool one(1);
  StudyOptions serial;
  serial.pool = &one;
  serial.prefetch = false;
  FullStudy serial_study(resolver, /*burst_min_files=*/5);
  serial_study.run(serial_series, serial);

  DirectorySeries parallel_series;
  ASSERT_TRUE(parallel_series.open(dir.path(), &error)) << error;
  ThreadPool pool(4);
  StudyOptions parallel;
  parallel.pool = &pool;
  parallel.prefetch = true;
  parallel.grain = 512;  // many chunks even at 5e-5 scale
  FullStudy parallel_study(resolver, /*burst_min_files=*/5);
  parallel_study.run(parallel_series, parallel);

  // Identical damage accounting...
  ASSERT_EQ(serial_study.gaps().size(), 3u);
  ASSERT_EQ(parallel_study.gaps().size(), 3u);
  for (std::size_t g = 0; g < 3; ++g) {
    EXPECT_EQ(serial_study.gaps()[g].describe(),
              parallel_study.gaps()[g].describe());
  }
  EXPECT_EQ(serial_study.access_patterns.result().gap_pairs_skipped,
            parallel_study.access_patterns.result().gap_pairs_skipped);
  EXPECT_EQ(serial_study.burstiness.result().gap_pairs_skipped,
            parallel_study.burstiness.result().gap_pairs_skipped);
  EXPECT_EQ(serial_study.growth.result().gap_weeks,
            parallel_study.growth.result().gap_weeks);
  EXPECT_EQ(serial_study.render_data_quality(),
            parallel_study.render_data_quality());

  // ...and identical results everywhere else.
  EXPECT_EQ(render_bundle(serial_study), render_bundle(parallel_study));
}

}  // namespace
}  // namespace spider
