// End-to-end integration: generate a small-scale facility, run the whole
// study in one pass, and assert the paper's qualitative findings hold.
// This is the "does the reproduction reproduce" test.
#include "study/full_study.h"

#include <gtest/gtest.h>

#include "synth/generator.h"
#include "synth/langmap.h"

namespace spider {
namespace {

/// Shared fixture: simulate once (it takes a few seconds), reuse across
/// all assertions.
class FullStudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FacilityConfig config;
    config.scale = 0.0001;
    config.weeks = 60;
    generator_ = new FacilityGenerator(config);
    resolver_ = new Resolver(generator_->plan());
    study_ = new FullStudy(*resolver_, /*burst_min_files=*/10);
    study_->run(*generator_);
  }
  static void TearDownTestSuite() {
    delete study_;
    delete resolver_;
    delete generator_;
    study_ = nullptr;
    resolver_ = nullptr;
    generator_ = nullptr;
  }

  static FacilityGenerator* generator_;
  static Resolver* resolver_;
  static FullStudy* study_;
};

FacilityGenerator* FullStudyTest::generator_ = nullptr;
Resolver* FullStudyTest::resolver_ = nullptr;
FullStudy* FullStudyTest::study_ = nullptr;

TEST_F(FullStudyTest, Fig5_UserProfile) {
  const UserProfileResult& r = study_->user_profile.result();
  // Every planned user generated files (Observation 1's 1,362 actives).
  EXPECT_EQ(r.active_users, 1362u);
  EXPECT_EQ(r.unknown_uids, 0u);
  // Government majority; academia + industry a sizeable minority.
  EXPECT_GT(r.org_fraction(OrgType::kGovernment), 0.45);
  const double acad_ind = r.org_fraction(OrgType::kAcademia) +
                          r.org_fraction(OrgType::kIndustry);
  EXPECT_NEAR(acad_ind, 0.42, 0.10);  // paper: 42%
}

TEST_F(FullStudyTest, Fig6_Participation) {
  const ParticipationResult& r = study_->participation.result();
  EXPECT_EQ(r.active_projects, 380u);
  EXPECT_GT(r.frac_multi_project_users, 0.55);
  EXPECT_NEAR(r.frac_gt2_project_users, 0.20, 0.07);
  EXPECT_NEAR(r.frac_ge8_project_users, 0.02, 0.015);
  // Highly-staffed domains (Fig 6(c)).
  for (const char* tag : {"cli", "env", "chp", "nfi", "stf"}) {
    const int d = domain_index(tag);
    EXPECT_GE(r.median_users_by_domain[static_cast<std::size_t>(d)], 10.0)
        << tag;
  }
}

TEST_F(FullStudyTest, Fig7_CensusOrderingAndRatios) {
  const CensusResult& r = study_->census.result();
  EXPECT_GT(r.total_files, 0u);
  // Directories are a small minority overall (paper: 275M dirs vs 4.07B
  // files, ~6%).
  const double dir_share =
      static_cast<double>(r.total_dirs) /
      static_cast<double>(r.total_files + r.total_dirs);
  EXPECT_LT(dir_share, 0.25);
  EXPECT_GT(dir_share, 0.02);
  // Big domains out-produce small ones, per Table 1's entry volumes.
  const auto files = [&](const char* tag) {
    return r.files_by_domain[static_cast<std::size_t>(domain_index(tag))];
  };
  EXPECT_GT(files("bip"), files("aph"));
  EXPECT_GT(files("stf"), files("med"));
  EXPECT_GT(files("csc"), files("nfu"));
  // atm is directory-heavy; nph is file-heavy (Fig 7(b)).
  EXPECT_GT(r.dir_fraction(static_cast<std::size_t>(domain_index("atm"))),
            3 * r.dir_fraction(static_cast<std::size_t>(domain_index("nph"))));
}

TEST_F(FullStudyTest, Fig8_DepthsAndCounts) {
  const CensusResult& r = study_->census.result();
  // Knee at depth 5: nothing user-generated sits above the project root.
  EXPECT_EQ(r.project_max_depth.fraction_at_most(3.9), 0.0);
  // A meaningful share of projects goes deeper than 10 (paper: >30%).
  EXPECT_GT(1.0 - r.project_max_depth.fraction_at_most(10), 0.15);
  // Deep outliers exist (432 / 2030 chains).
  EXPECT_EQ(r.max_depth, 2030u);
  // Projects hold substantially more files than users (paper: medians
  // 20K vs 2K, ~10x). At test scale the per-project activity floor
  // compresses the gap (EXPERIMENTS.md deviation #3); assert direction
  // with margin rather than the full paper ratio.
  EXPECT_GT(r.median_files_per_project, 2 * r.median_files_per_user);
}

TEST_F(FullStudyTest, Fig9_DomainDepthMedians) {
  const CensusResult& r = study_->census.result();
  // mat (median 16) digs deeper than mph (median 5).
  const FiveNumber& mat =
      r.depth_by_domain[static_cast<std::size_t>(domain_index("mat"))];
  const FiveNumber& mph =
      r.depth_by_domain[static_cast<std::size_t>(domain_index("mph"))];
  EXPECT_GT(mat.median, mph.median);
}

TEST_F(FullStudyTest, Table2_DominantExtensions) {
  const ExtensionsResult& r = study_->extensions.result();
  // Domains with a heavily dominant type keep it on top with a large
  // share; the measured share should be within ~15 points of Table 2.
  const struct {
    const char* domain;
    const char* ext;
    double pct;
  } expected[] = {
      {"bio", "pdbqt", 97.6}, {"nph", "bb", 79.1}, {"chp", "xyz", 63.4},
      {"bip", "bz2", 54.8},   {"cli", "nc", 40.3},
  };
  for (const auto& e : expected) {
    const auto& top =
        r.top3_by_domain[static_cast<std::size_t>(domain_index(e.domain))];
    ASSERT_FALSE(top.empty()) << e.domain;
    EXPECT_EQ(top[0].first, e.ext) << e.domain;
    EXPECT_NEAR(top[0].second, e.pct, 15.0) << e.domain;
  }
}

TEST_F(FullStudyTest, Fig10_TrendAndSpikes) {
  const ExtensionsResult& r = study_->extensions.result();
  ASSERT_FALSE(r.share_other.empty());
  // "other" + "no extension" cover a large share (paper: ~51%).
  double other = 0, none = 0;
  for (std::size_t w = 0; w < r.share_other.size(); ++w) {
    other += r.share_other[w] / static_cast<double>(r.share_other.size());
    none += r.share_none[w] / static_cast<double>(r.share_none.size());
  }
  EXPECT_GT(other + none, 0.25);
  EXPECT_GT(none, 0.05);

  // The .bb campaign (July 2015) must be visible: its weekly share peaks
  // well above its starting share.
  int bb_index = -1;
  for (std::size_t k = 0; k < r.global_top.size(); ++k) {
    if (r.global_top[k].first == "bb") bb_index = static_cast<int>(k);
  }
  ASSERT_GE(bb_index, 0) << ".bb must be a top-20 extension";
  double bb_start = r.share_top.front()[static_cast<std::size_t>(bb_index)];
  double bb_peak = 0;
  for (const auto& week : r.share_top) {
    bb_peak = std::max(bb_peak, week[static_cast<std::size_t>(bb_index)]);
  }
  EXPECT_GT(bb_peak, bb_start * 1.5 + 0.01);
}

TEST_F(FullStudyTest, Fig11_LanguageRanking) {
  const LanguagesResult& r = study_->languages.result();
  ASSERT_GE(r.ranking.size(), 15u);
  auto rank_of = [&](const char* name) {
    for (const LanguageRank& lr : r.ranking) {
      if (lr.name == name) return lr.our_rank;
    }
    return 999;
  };
  // C in the top 3; the traditional-language story: Fortran well inside
  // the top 10 despite a deep IEEE rank; Prolog present (the .pl quirk);
  // emerging languages present but far down.
  EXPECT_LE(rank_of("C"), 3);
  EXPECT_LE(rank_of("Python"), 6);
  EXPECT_LE(rank_of("Fortran"), 10);
  EXPECT_LE(rank_of("Prolog"), 14);
  EXPECT_LT(rank_of("C"), rank_of("Go"));
  EXPECT_LT(rank_of("Fortran"), rank_of("Swift"));
  EXPECT_NE(rank_of("Scala"), 999);
}

TEST_F(FullStudyTest, Fig12_DomainLanguages) {
  const LanguagesResult& r = study_->languages.result();
  const auto langs = languages();
  // Matlab-heavy domains (paper: nfu, pss, cli's lang1). pss is tiny, so
  // assert "no language beats Matlab" rather than a strict argmax (ties at
  // a handful of files are sampling noise at test scale).
  const int matlab = language_index("Matlab");
  ASSERT_GE(matlab, 0);
  for (const char* tag : {"nfu", "pss", "cli"}) {
    const auto& counts =
        r.by_domain[static_cast<std::size_t>(domain_index(tag))];
    const std::uint64_t m = counts[static_cast<std::size_t>(matlab)];
    for (std::size_t l = 0; l < counts.size(); ++l) {
      EXPECT_GE(m, counts[l]) << tag << " lost to " << langs[l].name;
    }
  }
  // Fortran-led domains keep Fortran in their top two.
  const std::size_t atm = static_cast<std::size_t>(domain_index("atm"));
  const int atm1 = r.top_language(atm), atm2 = r.second_language(atm);
  const bool fortran_top2 =
      (atm1 >= 0 &&
       std::string(langs[static_cast<std::size_t>(atm1)].name) == "Fortran") ||
      (atm2 >= 0 &&
       std::string(langs[static_cast<std::size_t>(atm2)].name) == "Fortran");
  EXPECT_TRUE(fortran_top2);
}

TEST_F(FullStudyTest, Fig13_AccessPatternMix) {
  const AccessPatternsResult& r = study_->access_patterns.result();
  ASSERT_GT(r.weeks.size(), 10u);
  // Qualitative shape: untouched dominates; new > deleted; both new and
  // deleted are substantial; readonly is the smallest touched class.
  EXPECT_GT(r.avg_untouched, 0.55);
  EXPECT_GT(r.avg_new, r.avg_deleted * 0.9);
  EXPECT_GT(r.avg_new, 0.05);
  EXPECT_GT(r.avg_deleted, 0.04);
  EXPECT_LT(r.avg_readonly, r.avg_updated);
  EXPECT_GT(r.avg_readonly, 0.01);
}

TEST_F(FullStudyTest, Fig14_Striping) {
  const StripingResult& r = study_->striping.result();
  // Default stripe count dominates the population.
  EXPECT_NEAR(r.overall.mean(), 4.0, 3.0);
  // Wide stripes exist (paper max: 1,008) and many domains tune.
  EXPECT_EQ(r.max_stripe, 1008u);
  EXPECT_GE(r.domains_tuning, 15u);
  // ast uses wider stripes than bio (Table 1: 122 vs 4).
  const auto& ast =
      r.by_domain[static_cast<std::size_t>(domain_index("ast"))];
  const auto& bio =
      r.by_domain[static_cast<std::size_t>(domain_index("bio"))];
  EXPECT_GT(ast.max(), bio.max());
}

TEST_F(FullStudyTest, Fig15_Growth) {
  const GrowthResult& r = study_->growth.result();
  EXPECT_NEAR(r.growth_factor, 5.0, 2.0);  // paper: 200M -> 1B
  EXPECT_LT(r.final_dir_share, 0.15);      // paper: <10%
  // Directory count is steadier than file count.
  const double file_growth =
      static_cast<double>(r.points.back().files) /
      static_cast<double>(std::max<std::uint64_t>(1, r.points.front().files));
  const double dir_growth =
      static_cast<double>(r.points.back().dirs) /
      static_cast<double>(std::max<std::uint64_t>(1, r.points.front().dirs));
  EXPECT_LT(dir_growth, file_growth);
}

TEST_F(FullStudyTest, Fig16_FileAges) {
  const FileAgeResult& r = study_->file_age.result();
  // Files are read far beyond the purge window (paper: median 138 days,
  // >90 in 86% of snapshots).
  EXPECT_GT(r.median_of_averages, 60.0);
  EXPECT_LT(r.median_of_averages, 250.0);
  // The 60-week test horizon compresses the growth curve, diluting the
  // population with young files faster than the real 86-week study; the
  // default-config benches land near the paper's 86%.
  EXPECT_GT(r.fraction_above_purge, 0.12);
}

TEST_F(FullStudyTest, Fig17_Burstiness) {
  const BurstinessResult& r = study_->burstiness.result();
  ASSERT_GT(r.qualifying_write_samples, 50u);
  ASSERT_GT(r.qualifying_read_samples, 50u);
  // Reads are orders of magnitude burstier than writes (paper: ~100x).
  EXPECT_GT(r.overall_write_cv_median, 20 * r.overall_read_cv_median);
  EXPECT_GT(r.overall_write_cv_median, 0.05);
  EXPECT_LT(r.overall_write_cv_median, 1.0);
  EXPECT_LT(r.overall_read_cv_median, 0.02);
}

TEST_F(FullStudyTest, Fig18_PowerLaw) {
  const NetworkResult& r = study_->network.result();
  EXPECT_LT(r.power_law.slope, -1.0);
  EXPECT_GT(r.power_law.r2, 0.6);
}

TEST_F(FullStudyTest, Table3_Components) {
  const NetworkResult& r = study_->network.result();
  EXPECT_NEAR(static_cast<double>(r.component_count), 160.0, 8.0);
  EXPECT_EQ(r.component_histogram.at(2), 94u);
  EXPECT_EQ(r.component_histogram.at(3), 31u);
  EXPECT_NEAR(static_cast<double>(r.giant_vertices), 1259.0, 40.0);
  EXPECT_NEAR(static_cast<double>(r.giant_users), 1051.0, 40.0);
  EXPECT_NEAR(static_cast<double>(r.giant_projects), 208.0, 15.0);
  // Sparse, long-path network: diameter near the paper's 18, with centers
  // well inside it.
  EXPECT_GE(r.giant_diameter, 8u);
  EXPECT_LE(r.giant_diameter, 26u);
  EXPECT_LT(r.giant_radius, r.giant_diameter);
}

TEST_F(FullStudyTest, Fig19_GiantMembership) {
  const NetworkResult& r = study_->network.result();
  // Per-domain giant-component probability tracks Table 1's Network %.
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    EXPECT_NEAR(r.giant_probability_by_domain[d] * 100.0,
                profiles[d].network_pct, 26.0)
        << profiles[d].id;
  }
  // csc contributes the largest share of giant projects (paper: 18%).
  const double csc_share =
      r.giant_share_by_domain[static_cast<std::size_t>(domain_index("csc"))];
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    EXPECT_GE(csc_share, r.giant_share_by_domain[d]) << profiles[d].id;
  }
}

TEST_F(FullStudyTest, Fig20_Collaboration) {
  const CollaborationResult& r = study_->collaboration.result();
  EXPECT_NEAR(static_cast<double>(r.stats.total_user_pairs), 926841.0, 10.0);
  // ~1% of pairs collaborate.
  EXPECT_GT(r.stats.collaborating_fraction(), 0.004);
  EXPECT_LT(r.stats.collaborating_fraction(), 0.04);
  // The forced extreme pair: 6 projects, 5 cli + 1 csc.
  EXPECT_EQ(r.stats.max_shared_projects, 6u);
  EXPECT_EQ(r.max_pair_description, "5x cli + 1x csc");
  // cli leads collaboration, csc second (paper: 45.8% and 38.5%).
  const double cli_share =
      r.stats.domain_share(static_cast<std::size_t>(domain_index("cli")));
  const double csc_share =
      r.stats.domain_share(static_cast<std::size_t>(domain_index("csc")));
  for (std::size_t d = 0; d < domain_count(); ++d) {
    if (static_cast<int>(d) == domain_index("cli")) continue;
    EXPECT_GE(cli_share, r.stats.domain_share(d))
        << domain_profiles()[d].id;
  }
  EXPECT_GT(csc_share, 0.05);
}

TEST_F(FullStudyTest, Table1_RendersAllDomains) {
  const std::string table = study_->render_table1();
  for (const DomainProfile& d : domain_profiles()) {
    EXPECT_NE(table.find(d.id), std::string::npos) << d.id;
  }
}

TEST_F(FullStudyTest, RendersAreNonEmpty) {
  EXPECT_GT(study_->user_profile.render().size(), 100u);
  EXPECT_GT(study_->participation.render().size(), 100u);
  EXPECT_GT(study_->census.render().size(), 100u);
  EXPECT_GT(study_->extensions.render().size(), 100u);
  EXPECT_GT(study_->languages.render().size(), 100u);
  EXPECT_GT(study_->access_patterns.render().size(), 100u);
  EXPECT_GT(study_->striping.render().size(), 100u);
  EXPECT_GT(study_->growth.render().size(), 100u);
  EXPECT_GT(study_->file_age.render().size(), 100u);
  EXPECT_GT(study_->burstiness.render().size(), 100u);
  EXPECT_GT(study_->network.render().size(), 100u);
  EXPECT_GT(study_->collaboration.render().size(), 100u);
}

}  // namespace
}  // namespace spider
