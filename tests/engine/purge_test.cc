#include "engine/purge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "snapshot/series.h"
#include "util/timeutil.h"

namespace spider {
namespace {

constexpr std::int64_t kNow = 1'470'000'000;

RawRecord make_file(const std::string& path, int age_days) {
  RawRecord rec;
  rec.path = path;
  rec.atime = kNow - age_days * kSecondsPerDay;
  rec.ctime = rec.mtime = rec.atime - kSecondsPerDay;
  rec.mode = kModeRegular | 0664;
  rec.osts = {1};
  return rec;
}

TEST(PurgeListTest, SelectsOnlyStaleFiles) {
  SnapshotTable table;
  table.add(make_file("/lustre/atlas2/cli101/u/fresh", 5));
  table.add(make_file("/lustre/atlas2/cli101/u/edge", 89));
  table.add(make_file("/lustre/atlas2/cli101/u/stale", 91));
  table.add(make_file("/lustre/atlas2/nph101/u/ancient", 200));
  RawRecord dir;
  dir.path = "/lustre/atlas2/cli101/u";
  dir.mode = kModeDirectory | 0775;
  dir.atime = dir.ctime = dir.mtime = kNow - 500 * kSecondsPerDay;
  table.add(dir);

  const PurgeReport report = build_purge_list(table, kNow, PurgePolicy{});
  EXPECT_EQ(report.scanned_files, 4u);
  ASSERT_EQ(report.candidates(), 2u);
  EXPECT_EQ(table.path(report.candidate_rows[0]),
            "/lustre/atlas2/cli101/u/stale");
  EXPECT_EQ(table.path(report.candidate_rows[1]),
            "/lustre/atlas2/nph101/u/ancient");
  EXPECT_DOUBLE_EQ(report.candidate_fraction(), 0.5);
  EXPECT_EQ(report.by_project.at("cli101"), 1u);
  EXPECT_EQ(report.by_project.at("nph101"), 1u);
}

TEST(PurgeListTest, WindowControlsSelection) {
  SnapshotTable table;
  table.add(make_file("/lustre/atlas2/p/u/a", 70));
  PurgePolicy tight;
  tight.age_days = 60;
  PurgePolicy loose;
  loose.age_days = 120;
  EXPECT_EQ(build_purge_list(table, kNow, tight).candidates(), 1u);
  EXPECT_EQ(build_purge_list(table, kNow, loose).candidates(), 0u);
}

TEST(PurgeListTest, ExemptionsHonored) {
  SnapshotTable table;
  table.add(make_file("/lustre/atlas2/cli101/u/stale", 120));
  table.add(make_file("/lustre/atlas2/nph101/u/stale", 120));
  PurgePolicy policy;
  policy.exempt_projects = {"cli101"};
  const PurgeReport report = build_purge_list(table, kNow, policy);
  EXPECT_EQ(report.candidates(), 1u);
  EXPECT_EQ(report.exempted_files, 1u);
  EXPECT_EQ(table.path(report.candidate_rows[0]),
            "/lustre/atlas2/nph101/u/stale");
}

TEST(PurgeListTest, EmptyTable) {
  const SnapshotTable table;
  const PurgeReport report = build_purge_list(table, kNow, PurgePolicy{});
  EXPECT_EQ(report.candidates(), 0u);
  EXPECT_DOUBLE_EQ(report.candidate_fraction(), 0.0);
}

TEST(PurgeListTest, WriteListEmitsPaths) {
  SnapshotTable table;
  table.add(make_file("/lustre/atlas2/p/u/stale1", 100));
  table.add(make_file("/lustre/atlas2/p/u/stale2", 100));
  const PurgeReport report = build_purge_list(table, kNow, PurgePolicy{});
  std::ostringstream os;
  const std::uint64_t bytes = write_purge_list(table, report, os);
  EXPECT_EQ(os.str(),
            "/lustre/atlas2/p/u/stale1\n/lustre/atlas2/p/u/stale2\n");
  EXPECT_EQ(bytes, os.str().size());
}

TEST(PurgeListTest, LargeTableDeterministicOrder) {
  SnapshotTable table;
  for (int i = 0; i < 50'000; ++i) {
    table.add(make_file("/lustre/atlas2/p/u/f" + std::to_string(i),
                        i % 2 == 0 ? 10 : 120));
  }
  const PurgeReport report = build_purge_list(table, kNow, PurgePolicy{});
  EXPECT_EQ(report.candidates(), 25'000u);
  EXPECT_TRUE(std::is_sorted(report.candidate_rows.begin(),
                             report.candidate_rows.end()));
}

TEST(StridedSourceTest, DeliversEveryNth) {
  SnapshotSeries series;
  for (int w = 0; w < 7; ++w) {
    Snapshot snap;
    snap.taken_at = 1000 + w;
    series.add(std::move(snap));
  }
  StridedSource strided(series, 3);
  EXPECT_EQ(strided.count(), 3u);  // weeks 0, 3, 6
  std::vector<std::int64_t> seen;
  std::vector<std::size_t> indices;
  strided.visit([&](std::size_t week, const Snapshot& snap) {
    indices.push_back(week);
    seen.push_back(snap.taken_at);
  });
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(seen, (std::vector<std::int64_t>{1000, 1003, 1006}));
}

TEST(StridedSourceTest, StrideOneIsIdentity) {
  SnapshotSeries series;
  Snapshot snap;
  snap.taken_at = 42;
  series.add(std::move(snap));
  StridedSource strided(series, 1);
  EXPECT_EQ(strided.count(), 1u);
  StridedSource zero(series, 0);  // guards against division by zero
  EXPECT_EQ(zero.count(), 1u);
}

}  // namespace
}  // namespace spider
