// Tests for the aggregation helpers and the distinct-set.
#include "engine/agg.h"

#include <gtest/gtest.h>

#include <set>

#include "engine/u64set.h"
#include "util/prng.h"

namespace spider {
namespace {

TEST(U64SetTest, InsertAndContains) {
  U64Set set;
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));
  EXPECT_TRUE(set.contains(42));
  EXPECT_FALSE(set.contains(43));
  EXPECT_EQ(set.size(), 1u);
}

TEST(U64SetTest, ZeroKeyIsSupported) {
  U64Set set;
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.size(), 1u);
}

TEST(U64SetTest, GrowthPreservesMembership) {
  U64Set set(4);  // force many growths
  Rng rng(5);
  std::set<std::uint64_t> reference;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t key = rng.next_u64() % 30000;  // force duplicates
    EXPECT_EQ(set.insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const std::uint64_t key : reference) {
    ASSERT_TRUE(set.contains(key));
  }
}

TEST(U64SetTest, DuplicateStreamNeverGrows) {
  // Probe-before-grow: inserting the same keys forever adds no occupancy,
  // so the table must keep its original capacity.
  U64Set set(8);
  for (std::uint64_t k = 1; k <= 8; ++k) EXPECT_TRUE(set.insert(k));
  const std::size_t capacity = set.capacity();
  for (int round = 0; round < 1000; ++round) {
    for (std::uint64_t k = 1; k <= 8; ++k) EXPECT_FALSE(set.insert(k));
  }
  EXPECT_EQ(set.capacity(), capacity);
  EXPECT_EQ(set.size(), 8u);
}

TEST(MergeCountsTest, AddsPerKey) {
  CountMap<std::string> a{{"x", 1}, {"y", 2}};
  const CountMap<std::string> b{{"y", 3}, {"z", 4}};
  merge_counts(a, b);
  EXPECT_EQ(a["x"], 1u);
  EXPECT_EQ(a["y"], 5u);
  EXPECT_EQ(a["z"], 4u);
  EXPECT_EQ(total_count(a), 10u);
}

TEST(MergeCountsTest, OverlappingKeySetsDoNotOverReserve) {
  // The copy overload reserves max(|into|, |from|), not the sum: identical
  // key sets must leave the bucket count untouched.
  CountMap<int> a, b;
  for (int k = 0; k < 1000; ++k) {
    a[k] = 1;
    b[k] = 2;
  }
  const std::size_t buckets = a.bucket_count();
  merge_counts(a, b);
  // The old sum-reserve would rehash to >= 2000 buckets here; max-reserve
  // must never grow the table (libstdc++ may even tighten it).
  EXPECT_LE(a.bucket_count(), buckets);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(total_count(a), 3000u);
}

TEST(MergeCountsTest, IntoEmptyCopies) {
  CountMap<int> a;
  const CountMap<int> b{{1, 2}, {3, 4}};
  merge_counts(a, b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.at(3), 4u);
}

TEST(ParallelCountTest, MatchesSerial) {
  constexpr std::size_t kN = 100000;
  const auto counts = parallel_count<std::uint64_t>(
      kN, [](std::size_t row, auto emit) { emit(row % 7, 1); });
  EXPECT_EQ(counts.size(), 7u);
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  EXPECT_EQ(total, kN);
  EXPECT_EQ(counts.at(0), kN / 7 + 1);  // 100000 = 7*14285 + 5
}

TEST(ParallelCountTest, MultipleEmitsPerRow) {
  const auto counts = parallel_count<int>(100, [](std::size_t row, auto emit) {
    emit(0, 1);
    if (row % 2 == 0) emit(1, 2);
  });
  EXPECT_EQ(counts.at(0), 100u);
  EXPECT_EQ(counts.at(1), 100u);
}

TEST(TopKTest, OrderAndTieBreak) {
  CountMap<std::string> counts{
      {"b", 5}, {"a", 5}, {"c", 9}, {"d", 1}, {"e", 3}};
  const auto top = top_k(counts, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "c");
  EXPECT_EQ(top[1].first, "a");  // tie with b broken by key
  EXPECT_EQ(top[2].first, "b");
}

TEST(TopKTest, KLargerThanMap) {
  CountMap<int> counts{{1, 1}};
  EXPECT_EQ(top_k(counts, 10).size(), 1u);
  EXPECT_TRUE(top_k(CountMap<int>{}, 3).empty());
}

}  // namespace
}  // namespace spider
