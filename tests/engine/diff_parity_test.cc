// Join-strategy parity: the hash, sort-merge, and partitioned diff joins
// must produce byte-identical DiffResults on the same snapshot pair, at
// every thread count, including the degenerate weeks (empty, all-new,
// all-deleted, dirs-only) and pairs engineered so many paths share the
// top 16 bits of their hash — the partition selector AND the shard
// fingerprint's neighborhood, the worst case for the partitioned probe.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/diff.h"
#include "snapshot/table.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/prng.h"

namespace spider {
namespace {

RawRecord file_record(const std::string& path, std::int64_t atime,
                      std::int64_t ctime, std::int64_t mtime) {
  RawRecord rec;
  rec.path = path;
  rec.atime = atime;
  rec.ctime = ctime;
  rec.mtime = mtime;
  rec.mode = kModeRegular | 0664;
  return rec;
}

RawRecord dir_record(const std::string& path) {
  RawRecord rec;
  rec.path = path;
  rec.mode = kModeDirectory | 0775;
  return rec;
}

struct SnapshotPair {
  SnapshotTable prev;
  SnapshotTable cur;
};

/// A realistic pair: prev has files and directories; cur deletes ~10%,
/// touches ~15% (readonly), rewrites ~10% (updated), keeps the rest
/// untouched, and adds ~15% new paths.
SnapshotPair random_pair(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  SnapshotPair pair;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string path =
        "/lustre/atlas2/prj" + std::to_string(i % 37) + "/u/f" +
        std::to_string(i);
    if (i % 29 == 0) {
      const std::string dir = "/lustre/atlas2/prj" + std::to_string(i);
      pair.prev.add(dir_record(dir));
      pair.cur.add(dir_record(dir));
      continue;
    }
    const std::int64_t atime = 1000 + static_cast<std::int64_t>(
                                          rng.uniform_u64(1'000'000));
    const std::int64_t ctime = atime - static_cast<std::int64_t>(
                                           rng.uniform_u64(1000));
    const std::int64_t mtime = ctime;
    pair.prev.add(file_record(path, atime, ctime, mtime));
    const double roll = rng.uniform();
    if (roll < 0.10) continue;  // deleted
    if (roll < 0.25) {          // readonly: only atime moves
      pair.cur.add(file_record(path, atime + 777, ctime, mtime));
    } else if (roll < 0.35) {   // updated
      pair.cur.add(file_record(path, atime + 5, ctime + 5, mtime + 5));
    } else {                    // untouched
      pair.cur.add(file_record(path, atime, ctime, mtime));
    }
  }
  const std::size_t fresh = n / 7 + 1;
  for (std::size_t i = 0; i < fresh; ++i) {
    pair.cur.add(file_record("/lustre/atlas2/new/f" + std::to_string(i),
                             2'000'000, 2'000'000, 2'000'000));
  }
  return pair;
}

/// A pair whose file paths are drawn from hash buckets sharing the top 16
/// bits, so hundreds of keys land in the same radix partition and collide
/// on the fingerprint's high half. Found by scanning candidates; fully
/// deterministic.
SnapshotPair collision_pair(std::uint64_t seed) {
  std::unordered_map<std::uint16_t, std::vector<std::string>> buckets;
  std::vector<std::string> cluster;
  for (std::size_t i = 0; i < 150'000 && cluster.size() < 400; ++i) {
    std::string path = "/lustre/atlas2/c/f" + std::to_string(i);
    const auto top = static_cast<std::uint16_t>(hash_bytes(path) >> 48);
    auto& bucket = buckets[top];
    bucket.push_back(std::move(path));
    if (bucket.size() >= 3) {
      for (auto& p : bucket) cluster.push_back(std::move(p));
      bucket.clear();
    }
  }
  EXPECT_GE(cluster.size(), 100u) << "collision scan found too few clusters";

  Rng rng(seed);
  SnapshotPair pair;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const std::int64_t t = 5000 + static_cast<std::int64_t>(i);
    pair.prev.add(file_record(cluster[i], t, t, t));
    const double roll = rng.uniform();
    if (roll < 0.2) continue;                                   // deleted
    if (roll < 0.4) pair.cur.add(file_record(cluster[i], t + 9, t, t));
    else if (roll < 0.6) pair.cur.add(file_record(cluster[i], t, t + 9, t + 9));
    else pair.cur.add(file_record(cluster[i], t, t, t));
  }
  // A few filler rows so the tables aren't purely the pathological cluster.
  for (std::size_t i = 0; i < 500; ++i) {
    const std::string path = "/lustre/atlas2/fill/f" + std::to_string(i);
    pair.prev.add(file_record(path, 1, 1, 1));
    if (i % 3 != 0) pair.cur.add(file_record(path, 1, 1, 1));
  }
  for (std::size_t i = 0; i < 200; ++i) {
    pair.cur.add(file_record("/lustre/atlas2/cnew/f" + std::to_string(i),
                             7, 7, 7));
  }
  return pair;
}

SnapshotPair make_profile(const std::string& profile, std::uint64_t seed) {
  if (profile == "random") return random_pair(seed, 6000);
  if (profile == "collisions") return collision_pair(seed);
  if (profile == "both_empty") return {};
  SnapshotPair pair;
  if (profile == "all_new") {
    // prev holds only directories; every cur file is new.
    for (int i = 0; i < 50; ++i) {
      pair.prev.add(dir_record("/lustre/atlas2/d" + std::to_string(i)));
    }
    for (int i = 0; i < 3000; ++i) {
      pair.cur.add(file_record("/lustre/atlas2/n/f" + std::to_string(i),
                               i, i, i));
    }
    return pair;
  }
  if (profile == "all_deleted") {
    for (int i = 0; i < 3000; ++i) {
      pair.prev.add(file_record("/lustre/atlas2/g/f" + std::to_string(i),
                               i, i, i));
    }
    for (int i = 0; i < 50; ++i) {
      pair.cur.add(dir_record("/lustre/atlas2/d" + std::to_string(i)));
    }
    return pair;
  }
  if (profile == "dirs_only") {
    for (int i = 0; i < 200; ++i) {
      const std::string dir = "/lustre/atlas2/d" + std::to_string(i);
      pair.prev.add(dir_record(dir));
      pair.cur.add(dir_record(dir + "/sub"));
    }
    return pair;
  }
  ADD_FAILURE() << "unknown profile " << profile;
  return pair;
}

void expect_equal(const DiffResult& got, const DiffResult& want,
                  const std::string& label) {
  EXPECT_EQ(got.new_rows, want.new_rows) << label;
  EXPECT_EQ(got.readonly_rows, want.readonly_rows) << label;
  EXPECT_EQ(got.updated_rows, want.updated_rows) << label;
  EXPECT_EQ(got.untouched_rows, want.untouched_rows) << label;
  EXPECT_EQ(got.deleted_rows, want.deleted_rows) << label;
  EXPECT_EQ(got.prev_files, want.prev_files) << label;
  EXPECT_EQ(got.cur_files, want.cur_files) << label;
}

class DiffParityTest : public testing::TestWithParam<const char*> {};

TEST_P(DiffParityTest, StrategiesAgreeAtEveryThreadCount) {
  const std::string profile = GetParam();
  for (const std::uint64_t seed : {11ull, 23ull}) {
    const SnapshotPair pair = make_profile(profile, seed);
    ThreadPool reference_pool(1);
    const DiffResult reference =
        diff_snapshots(pair.prev, pair.cur, &reference_pool);

    expect_equal(diff_snapshots_sortmerge(pair.prev, pair.cur), reference,
                 profile + "/sortmerge seed=" + std::to_string(seed));

    for (const unsigned threads : {1u, 2u, 7u, 0u}) {  // 0 = hardware
      ThreadPool pool(threads);
      const std::string label = profile + " seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads);
      expect_equal(diff_snapshots(pair.prev, pair.cur, &pool), reference,
                   "hash " + label);
      expect_equal(diff_snapshots_partitioned(pair.prev, pair.cur, &pool),
                   reference, "partitioned " + label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, DiffParityTest,
                         testing::Values("random", "collisions", "both_empty",
                                         "all_new", "all_deleted",
                                         "dirs_only"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(DiffStrategyDispatchTest, WithSelectsEachStrategy) {
  const SnapshotPair pair = random_pair(5, 1500);
  ThreadPool pool(2);
  const DiffResult reference = diff_snapshots(pair.prev, pair.cur, &pool);
  expect_equal(
      diff_snapshots_with(DiffStrategy::kHash, pair.prev, pair.cur, &pool),
      reference, "with/hash");
  expect_equal(diff_snapshots_with(DiffStrategy::kSortMerge, pair.prev,
                                   pair.cur, &pool),
               reference, "with/sortmerge");
  expect_equal(diff_snapshots_with(DiffStrategy::kPartitioned, pair.prev,
                                   pair.cur, &pool),
               reference, "with/partitioned");
}

TEST(DiffBreakdownTest, PhasesAreRecordedForEveryStrategy) {
  const SnapshotPair pair = random_pair(9, 2000);
  ThreadPool pool(2);
  for (const DiffStrategy strategy :
       {DiffStrategy::kHash, DiffStrategy::kSortMerge,
        DiffStrategy::kPartitioned}) {
    DiffBreakdown breakdown;
    const DiffResult result =
        diff_snapshots_with(strategy, pair.prev, pair.cur, &pool, &breakdown);
    EXPECT_GT(result.prev_files, 0u);
    EXPECT_GE(breakdown.build_s, 0.0);
    EXPECT_GE(breakdown.probe_s, 0.0);
    EXPECT_GE(breakdown.sweep_s, 0.0);
    EXPECT_GT(breakdown.build_s + breakdown.probe_s + breakdown.sweep_s, 0.0);
  }
}

}  // namespace
}  // namespace spider
