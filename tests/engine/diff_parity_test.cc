// Join-strategy parity: the hash, sort-merge, and partitioned diff joins
// must produce byte-identical DiffResults on the same snapshot pair, at
// every thread count, including the degenerate weeks (empty, all-new,
// all-deleted, dirs-only) and pairs engineered so many paths share the
// top 16 bits of their hash — the partition selector AND the shard
// fingerprint's neighborhood, the worst case for the partitioned probe.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/diff.h"
#include "snapshot/table.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/prng.h"

namespace spider {
namespace {

RawRecord file_record(const std::string& path, std::int64_t atime,
                      std::int64_t ctime, std::int64_t mtime) {
  RawRecord rec;
  rec.path = path;
  rec.atime = atime;
  rec.ctime = ctime;
  rec.mtime = mtime;
  rec.mode = kModeRegular | 0664;
  return rec;
}

RawRecord dir_record(const std::string& path, std::int64_t atime = 0) {
  RawRecord rec;
  rec.path = path;
  rec.atime = atime;
  rec.mode = kModeDirectory | 0775;
  return rec;
}

struct SnapshotPair {
  SnapshotTable prev;
  SnapshotTable cur;
};

/// A realistic pair: prev has files and directories; cur deletes ~10%,
/// touches ~15% (readonly), rewrites ~10% (updated), keeps the rest
/// untouched, and adds ~15% new paths.
SnapshotPair random_pair(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  SnapshotPair pair;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string path =
        "/lustre/atlas2/prj" + std::to_string(i % 37) + "/u/f" +
        std::to_string(i);
    if (i % 29 == 0) {
      // A mix of untouched (same timestamps) and changed (atime moved)
      // directories, so the directory diff sees both matched classes.
      const std::string dir = "/lustre/atlas2/prj" + std::to_string(i);
      pair.prev.add(dir_record(dir));
      pair.cur.add(dir_record(dir, i % 58 == 0 ? 0 : 99));
      continue;
    }
    const std::int64_t atime = 1000 + static_cast<std::int64_t>(
                                          rng.uniform_u64(1'000'000));
    const std::int64_t ctime = atime - static_cast<std::int64_t>(
                                           rng.uniform_u64(1000));
    const std::int64_t mtime = ctime;
    pair.prev.add(file_record(path, atime, ctime, mtime));
    const double roll = rng.uniform();
    if (roll < 0.10) continue;  // deleted
    if (roll < 0.25) {          // readonly: only atime moves
      pair.cur.add(file_record(path, atime + 777, ctime, mtime));
    } else if (roll < 0.35) {   // updated
      pair.cur.add(file_record(path, atime + 5, ctime + 5, mtime + 5));
    } else {                    // untouched
      pair.cur.add(file_record(path, atime, ctime, mtime));
    }
  }
  const std::size_t fresh = n / 7 + 1;
  for (std::size_t i = 0; i < fresh; ++i) {
    pair.cur.add(file_record("/lustre/atlas2/new/f" + std::to_string(i),
                             2'000'000, 2'000'000, 2'000'000));
  }
  return pair;
}

/// A pair whose file paths are drawn from hash buckets sharing the top 16
/// bits, so hundreds of keys land in the same radix partition and collide
/// on the fingerprint's high half. Found by scanning candidates; fully
/// deterministic.
SnapshotPair collision_pair(std::uint64_t seed) {
  std::unordered_map<std::uint16_t, std::vector<std::string>> buckets;
  std::vector<std::string> cluster;
  for (std::size_t i = 0; i < 150'000 && cluster.size() < 400; ++i) {
    std::string path = "/lustre/atlas2/c/f" + std::to_string(i);
    const auto top = static_cast<std::uint16_t>(hash_bytes(path) >> 48);
    auto& bucket = buckets[top];
    bucket.push_back(std::move(path));
    if (bucket.size() >= 3) {
      for (auto& p : bucket) cluster.push_back(std::move(p));
      bucket.clear();
    }
  }
  EXPECT_GE(cluster.size(), 100u) << "collision scan found too few clusters";

  Rng rng(seed);
  SnapshotPair pair;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const std::int64_t t = 5000 + static_cast<std::int64_t>(i);
    pair.prev.add(file_record(cluster[i], t, t, t));
    const double roll = rng.uniform();
    if (roll < 0.2) continue;                                   // deleted
    if (roll < 0.4) pair.cur.add(file_record(cluster[i], t + 9, t, t));
    else if (roll < 0.6) pair.cur.add(file_record(cluster[i], t, t + 9, t + 9));
    else pair.cur.add(file_record(cluster[i], t, t, t));
  }
  // A few filler rows so the tables aren't purely the pathological cluster.
  for (std::size_t i = 0; i < 500; ++i) {
    const std::string path = "/lustre/atlas2/fill/f" + std::to_string(i);
    pair.prev.add(file_record(path, 1, 1, 1));
    if (i % 3 != 0) pair.cur.add(file_record(path, 1, 1, 1));
  }
  for (std::size_t i = 0; i < 200; ++i) {
    pair.cur.add(file_record("/lustre/atlas2/cnew/f" + std::to_string(i),
                             7, 7, 7));
  }
  return pair;
}

SnapshotPair make_profile(const std::string& profile, std::uint64_t seed) {
  if (profile == "random") return random_pair(seed, 6000);
  if (profile == "collisions") return collision_pair(seed);
  if (profile == "both_empty") return {};
  SnapshotPair pair;
  if (profile == "all_new") {
    // prev holds only directories; every cur file is new.
    for (int i = 0; i < 50; ++i) {
      pair.prev.add(dir_record("/lustre/atlas2/d" + std::to_string(i)));
    }
    for (int i = 0; i < 3000; ++i) {
      pair.cur.add(file_record("/lustre/atlas2/n/f" + std::to_string(i),
                               i, i, i));
    }
    return pair;
  }
  if (profile == "all_deleted") {
    for (int i = 0; i < 3000; ++i) {
      pair.prev.add(file_record("/lustre/atlas2/g/f" + std::to_string(i),
                               i, i, i));
    }
    for (int i = 0; i < 50; ++i) {
      pair.cur.add(dir_record("/lustre/atlas2/d" + std::to_string(i)));
    }
    return pair;
  }
  if (profile == "dirs_only") {
    for (int i = 0; i < 200; ++i) {
      const std::string dir = "/lustre/atlas2/d" + std::to_string(i);
      pair.prev.add(dir_record(dir));
      pair.cur.add(dir_record(dir + "/sub"));
    }
    return pair;
  }
  ADD_FAILURE() << "unknown profile " << profile;
  return pair;
}

void expect_equal(const DiffResult& got, const DiffResult& want,
                  const std::string& label) {
  EXPECT_EQ(got.new_rows, want.new_rows) << label;
  EXPECT_EQ(got.readonly_rows, want.readonly_rows) << label;
  EXPECT_EQ(got.updated_rows, want.updated_rows) << label;
  EXPECT_EQ(got.untouched_rows, want.untouched_rows) << label;
  EXPECT_EQ(got.deleted_rows, want.deleted_rows) << label;
  EXPECT_EQ(got.prev_files, want.prev_files) << label;
  EXPECT_EQ(got.cur_files, want.cur_files) << label;
  EXPECT_EQ(got.has_prev_rows, want.has_prev_rows) << label;
  EXPECT_EQ(got.readonly_prev_rows, want.readonly_prev_rows) << label;
  EXPECT_EQ(got.updated_prev_rows, want.updated_prev_rows) << label;
  EXPECT_EQ(got.untouched_prev_rows, want.untouched_prev_rows) << label;
  EXPECT_EQ(got.has_dir_diff, want.has_dir_diff) << label;
  EXPECT_EQ(got.new_dir_rows, want.new_dir_rows) << label;
  EXPECT_EQ(got.changed_dir_rows, want.changed_dir_rows) << label;
  EXPECT_EQ(got.changed_dir_prev_rows, want.changed_dir_prev_rows) << label;
  EXPECT_EQ(got.deleted_dir_rows, want.deleted_dir_rows) << label;
}

/// Semantic checks of the prev-row mapping: index-parallel lengths, path
/// agreement row by row (the real guarantee the incremental study leans
/// on), and class membership re-derived from the two tables' timestamps.
void expect_mapping_semantics(const SnapshotPair& pair,
                              const DiffResult& result,
                              const std::string& label) {
  ASSERT_TRUE(result.has_prev_rows) << label;
  ASSERT_EQ(result.readonly_prev_rows.size(), result.readonly_rows.size())
      << label;
  ASSERT_EQ(result.updated_prev_rows.size(), result.updated_rows.size())
      << label;
  ASSERT_EQ(result.untouched_prev_rows.size(), result.untouched_rows.size())
      << label;
  const SnapshotTable& prev = pair.prev;
  const SnapshotTable& cur = pair.cur;
  for (std::size_t i = 0; i < result.readonly_rows.size(); ++i) {
    const std::uint32_t c = result.readonly_rows[i];
    const std::uint32_t p = result.readonly_prev_rows[i];
    ASSERT_EQ(cur.path(c), prev.path(p)) << label;
    EXPECT_NE(cur.atime(c), prev.atime(p)) << label;
    EXPECT_EQ(cur.mtime(c), prev.mtime(p)) << label;
    EXPECT_EQ(cur.ctime(c), prev.ctime(p)) << label;
  }
  for (std::size_t i = 0; i < result.updated_rows.size(); ++i) {
    const std::uint32_t c = result.updated_rows[i];
    const std::uint32_t p = result.updated_prev_rows[i];
    ASSERT_EQ(cur.path(c), prev.path(p)) << label;
    EXPECT_TRUE(cur.mtime(c) != prev.mtime(p) ||
                cur.ctime(c) != prev.ctime(p))
        << label;
  }
  for (std::size_t i = 0; i < result.untouched_rows.size(); ++i) {
    const std::uint32_t c = result.untouched_rows[i];
    const std::uint32_t p = result.untouched_prev_rows[i];
    ASSERT_EQ(cur.path(c), prev.path(p)) << label;
    EXPECT_EQ(cur.atime(c), prev.atime(p)) << label;
    EXPECT_EQ(cur.mtime(c), prev.mtime(p)) << label;
    EXPECT_EQ(cur.ctime(c), prev.ctime(p)) << label;
  }
}

/// Semantic checks of the directory diff against a brute-force path-set
/// recomputation over both tables.
void expect_dir_semantics(const SnapshotPair& pair, const DiffResult& result,
                          const std::string& label) {
  ASSERT_TRUE(result.has_dir_diff) << label;
  const SnapshotTable& prev = pair.prev;
  const SnapshotTable& cur = pair.cur;
  std::unordered_map<std::string, std::uint32_t> prev_dirs;
  for (std::size_t row = 0; row < prev.size(); ++row) {
    if (prev.is_dir(row)) {
      prev_dirs.emplace(std::string(prev.path(row)),
                        static_cast<std::uint32_t>(row));
    }
  }
  std::vector<std::uint32_t> want_new, want_changed, want_changed_prev;
  std::unordered_map<std::string, std::uint32_t> matched;
  for (std::size_t row = 0; row < cur.size(); ++row) {
    if (!cur.is_dir(row)) continue;
    const auto it = prev_dirs.find(std::string(cur.path(row)));
    if (it == prev_dirs.end()) {
      want_new.push_back(static_cast<std::uint32_t>(row));
      continue;
    }
    matched.insert(*it);
    const std::uint32_t p = it->second;
    if (cur.atime(row) != prev.atime(p) || cur.mtime(row) != prev.mtime(p) ||
        cur.ctime(row) != prev.ctime(p)) {
      want_changed.push_back(static_cast<std::uint32_t>(row));
      want_changed_prev.push_back(p);
    }
  }
  std::vector<std::uint32_t> want_deleted;
  for (const auto& [path, row] : prev_dirs) {
    if (!matched.contains(path)) want_deleted.push_back(row);
  }
  std::sort(want_deleted.begin(), want_deleted.end());
  EXPECT_EQ(result.new_dir_rows, want_new) << label;
  EXPECT_EQ(result.changed_dir_rows, want_changed) << label;
  EXPECT_EQ(result.changed_dir_prev_rows, want_changed_prev) << label;
  EXPECT_EQ(result.deleted_dir_rows, want_deleted) << label;
}

class DiffParityTest : public testing::TestWithParam<const char*> {};

TEST_P(DiffParityTest, StrategiesAgreeAtEveryThreadCount) {
  const std::string profile = GetParam();
  for (const std::uint64_t seed : {11ull, 23ull}) {
    const SnapshotPair pair = make_profile(profile, seed);
    ThreadPool reference_pool(1);
    const DiffResult reference =
        diff_snapshots(pair.prev, pair.cur, &reference_pool);

    expect_equal(diff_snapshots_sortmerge(pair.prev, pair.cur), reference,
                 profile + "/sortmerge seed=" + std::to_string(seed));

    for (const unsigned threads : {1u, 2u, 7u, 0u}) {  // 0 = hardware
      ThreadPool pool(threads);
      const std::string label = profile + " seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads);
      expect_equal(diff_snapshots(pair.prev, pair.cur, &pool), reference,
                   "hash " + label);
      expect_equal(diff_snapshots_partitioned(pair.prev, pair.cur, &pool),
                   reference, "partitioned " + label);
    }
  }
}

TEST_P(DiffParityTest, PrevRowMappingAndDirDiffAgree) {
  const std::string profile = GetParam();
  const DiffOptions options{.prev_rows = true, .dirs = true};
  for (const std::uint64_t seed : {11ull, 23ull}) {
    const SnapshotPair pair = make_profile(profile, seed);
    ThreadPool reference_pool(1);
    const DiffResult reference = diff_snapshots(pair.prev, pair.cur,
                                                &reference_pool,
                                                /*breakdown=*/nullptr, options);
    const std::string base = profile + " seed=" + std::to_string(seed);
    expect_mapping_semantics(pair, reference, base + "/reference");
    expect_dir_semantics(pair, reference, base + "/reference");

    expect_equal(
        diff_snapshots_sortmerge(pair.prev, pair.cur, nullptr, options),
        reference, base + "/sortmerge");
    for (const unsigned threads : {1u, 2u, 7u, 0u}) {  // 0 = hardware
      ThreadPool pool(threads);
      const std::string label = base + " threads=" + std::to_string(threads);
      expect_equal(
          diff_snapshots(pair.prev, pair.cur, &pool, nullptr, options),
          reference, "hash " + label);
      expect_equal(diff_snapshots_partitioned(pair.prev, pair.cur, &pool,
                                              nullptr, options),
                   reference, "partitioned " + label);
    }
  }

  // Default options must leave the optional outputs untouched.
  const SnapshotPair pair = make_profile(profile, 11);
  for (const DiffResult& plain :
       {diff_snapshots(pair.prev, pair.cur),
        diff_snapshots_sortmerge(pair.prev, pair.cur),
        diff_snapshots_partitioned(pair.prev, pair.cur)}) {
    EXPECT_FALSE(plain.has_prev_rows) << profile;
    EXPECT_FALSE(plain.has_dir_diff) << profile;
    EXPECT_TRUE(plain.readonly_prev_rows.empty()) << profile;
    EXPECT_TRUE(plain.new_dir_rows.empty()) << profile;
    EXPECT_TRUE(plain.deleted_dir_rows.empty()) << profile;
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, DiffParityTest,
                         testing::Values("random", "collisions", "both_empty",
                                         "all_new", "all_deleted",
                                         "dirs_only"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(DiffStrategyDispatchTest, WithSelectsEachStrategy) {
  const SnapshotPair pair = random_pair(5, 1500);
  ThreadPool pool(2);
  const DiffResult reference = diff_snapshots(pair.prev, pair.cur, &pool);
  expect_equal(
      diff_snapshots_with(DiffStrategy::kHash, pair.prev, pair.cur, &pool),
      reference, "with/hash");
  expect_equal(diff_snapshots_with(DiffStrategy::kSortMerge, pair.prev,
                                   pair.cur, &pool),
               reference, "with/sortmerge");
  expect_equal(diff_snapshots_with(DiffStrategy::kPartitioned, pair.prev,
                                   pair.cur, &pool),
               reference, "with/partitioned");
}

TEST(DiffBreakdownTest, PhasesAreRecordedForEveryStrategy) {
  const SnapshotPair pair = random_pair(9, 2000);
  ThreadPool pool(2);
  for (const DiffStrategy strategy :
       {DiffStrategy::kHash, DiffStrategy::kSortMerge,
        DiffStrategy::kPartitioned}) {
    DiffBreakdown breakdown;
    const DiffResult result =
        diff_snapshots_with(strategy, pair.prev, pair.cur, &pool, &breakdown);
    EXPECT_GT(result.prev_files, 0u);
    EXPECT_GE(breakdown.build_s, 0.0);
    EXPECT_GE(breakdown.probe_s, 0.0);
    EXPECT_GE(breakdown.sweep_s, 0.0);
    EXPECT_GT(breakdown.build_s + breakdown.probe_s + breakdown.sweep_s, 0.0);
  }
}

}  // namespace
}  // namespace spider
