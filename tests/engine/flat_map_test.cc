// Property tests for the flat aggregation layer (DESIGN.md §12): FlatMap /
// FlatCountMap against a std::unordered_map reference on randomized key
// streams, the string dictionary (including forced full-hash collisions),
// the radix-partitioned merge, and PartitionedU64Set.
#include "engine/flat_map.h"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/agg.h"
#include "engine/dict.h"
#include "util/parallel.h"
#include "util/prng.h"

namespace spider {
namespace {

template <typename KeyMix>
void expect_matches_reference(
    const BasicFlatCountMap<KeyMix>& map,
    const std::unordered_map<std::uint64_t, std::uint64_t>& reference) {
  ASSERT_EQ(map.size(), reference.size());
  for (const auto& [key, count] : reference) {
    EXPECT_EQ(map.count(key), count) << "key " << key;
  }
  std::size_t visited = 0;
  map.for_each([&](std::uint64_t key, std::uint64_t count) {
    ++visited;
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << "phantom key " << key;
    EXPECT_EQ(count, it->second);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatCountMapTest, RandomStreamMatchesUnorderedMap) {
  Rng rng(11);
  FlatCountMap map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = rng.next_u64() % 50000;  // duplicates + key 0
    const std::uint64_t weight = 1 + rng.next_u64() % 3;
    map.add(key, weight);
    reference[key] += weight;
  }
  expect_matches_reference(map, reference);
}

TEST(FlatCountMapTest, FingerprintMixHandlesDenseKeys) {
  // Sequential ids are the worst case for identity hashing; the
  // fingerprint policy must stay correct (and the table correct under
  // growth from the minimum capacity).
  FlatCountMapRaw map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (std::uint64_t k = 0; k < 10000; ++k) {
    map.add(k);
    reference[k] += 1;
  }
  expect_matches_reference(map, reference);
}

TEST(FlatCountMapTest, AdversarialCollisionsProbeCorrectly) {
  // Keys crafted to land on the same initial slot under identity mixing:
  // equal low bits, distinct high bits. Linear probing must keep them all.
  FlatCountMap map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    const std::uint64_t key = (i << 40) | 0x5;  // same low bits for all
    for (std::uint64_t r = 0; r < i % 7 + 1; ++r) {
      map.add(key);
      reference[key] += 1;
    }
  }
  expect_matches_reference(map, reference);
}

TEST(FlatCountMapTest, EmptyKeySentinelIsARealKey) {
  FlatCountMap map;
  EXPECT_FALSE(map.contains(0));
  map.add(0, 7);
  map.add(0, 2);
  EXPECT_TRUE(map.contains(0));
  EXPECT_EQ(map.count(0), 9u);
  EXPECT_EQ(map.size(), 1u);
  // for_each reports the reserved key exactly once, last.
  std::vector<std::uint64_t> keys;
  map.add(3);
  map.for_each([&](std::uint64_t k, std::uint64_t) { keys.push_back(k); });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys.back(), 0u);
}

TEST(FlatCountMapTest, DuplicateHeavyStreamNeverGrows) {
  FlatCountMap map(8);
  for (std::uint64_t k = 1; k <= 8; ++k) map.add(k);
  const std::size_t capacity = map.capacity();
  for (int round = 0; round < 1000; ++round) {
    for (std::uint64_t k = 1; k <= 8; ++k) map.add(k);
  }
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.size(), 8u);
  EXPECT_EQ(map.count(5), 1001u);
}

TEST(FlatMapTest, FindAndGrowthPreserveValues) {
  FlatMap<std::string, FingerprintKeyMix> map;
  for (std::uint64_t k = 0; k < 5000; ++k) {
    map.slot(k) = "v" + std::to_string(k);
  }
  EXPECT_EQ(map.size(), 5000u);
  for (std::uint64_t k = 0; k < 5000; ++k) {
    const std::string* v = map.find(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, "v" + std::to_string(k));
  }
  EXPECT_EQ(map.find(999999), nullptr);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), nullptr);
}

TEST(StringDictTest, InternAssignsDenseFirstSeenIds) {
  StringDict dict;
  EXPECT_EQ(dict.intern("h5"), 0u);
  EXPECT_EQ(dict.intern("dat"), 1u);
  EXPECT_EQ(dict.intern("h5"), 0u);  // stable on re-intern
  EXPECT_EQ(dict.intern(""), 2u);    // empty string is a real key
  EXPECT_EQ(dict.intern(""), 2u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.name(1), "dat");
  EXPECT_EQ(dict.find("dat"), 1);
  EXPECT_EQ(dict.find("absent"), -1);
}

TEST(StringDictTest, RandomStreamMatchesReference) {
  Rng rng(23);
  StringDict dict;
  std::unordered_map<std::string, std::uint32_t> reference;
  for (int i = 0; i < 100000; ++i) {
    const std::string s = "ext" + std::to_string(rng.next_u64() % 5000);
    const std::uint32_t id = dict.intern(s);
    const auto [it, fresh] = reference.emplace(s, id);
    EXPECT_EQ(it->second, id) << s;
    if (!fresh) EXPECT_LT(id, dict.size());
  }
  EXPECT_EQ(dict.size(), reference.size());
  for (const auto& [s, id] : reference) EXPECT_EQ(dict.name(id), s);
}

TEST(StringDictTest, FullHashCollisionFallsBackToBytes) {
  // Force distinct strings through intern_hashed with the SAME 64-bit
  // hash: the byte comparison must keep them distinct, and re-interning
  // either must return its own id (never a false merge).
  StringDict dict;
  const std::uint64_t hash = 0xdeadbeefcafef00dULL;
  const std::uint32_t a = dict.intern_hashed(hash, "alpha");
  const std::uint32_t b = dict.intern_hashed(hash, "beta");
  const std::uint32_t c = dict.intern_hashed(hash, "gamma");
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(dict.intern_hashed(hash, "alpha"), a);
  EXPECT_EQ(dict.intern_hashed(hash, "beta"), b);
  EXPECT_EQ(dict.intern_hashed(hash, "gamma"), c);
  EXPECT_EQ(dict.size(), 3u);
  // Survives growth (rehash keeps the colliding trio apart).
  for (int i = 0; i < 1000; ++i) dict.intern("grow" + std::to_string(i));
  EXPECT_EQ(dict.intern_hashed(hash, "beta"), b);
}

TEST(MergeFlatCountsTest, PartitionedMergeMatchesSerial) {
  // Above the partitioned-merge threshold with overlapping key sets:
  // result must equal the serial fold exactly.
  Rng rng(31);
  constexpr std::size_t kPartials = 16;
  std::vector<FlatCountMap> partials(kPartials);
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (std::size_t p = 0; p < kPartials; ++p) {
    for (int i = 0; i < 3000; ++i) {
      const std::uint64_t key = mix64(rng.next_u64() % 20000 + 1);
      partials[p].add(key);
      reference[key] += 1;
    }
  }
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::vector<FlatCountMap> copy = partials;
    const FlatCountMap merged = merge_flat_counts_partitioned(copy, &pool);
    expect_matches_reference(merged, reference);
  }
}

TEST(ParallelCountFlatTest, MatchesParallelCountAtAnyWidth) {
  constexpr std::size_t kN = 150000;
  auto emit = [](std::size_t row, auto&& sink) {
    sink(mix64(row % 997), 1);
    if (row % 3 == 0) sink(0, 2);  // exercise the reserved key in partials
  };
  const auto reference = parallel_count<std::uint64_t>(kN, emit);
  for (const unsigned threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    const FlatCountMap flat =
        parallel_count_flat<IdentityKeyMix>(kN, emit, &pool, /*grain=*/2048);
    ASSERT_EQ(flat.size(), reference.size()) << "threads " << threads;
    for (const auto& [key, count] : reference) {
      EXPECT_EQ(flat.count(key), count) << "threads " << threads;
    }
  }
}

TEST(PartitionedU64SetTest, UnionMatchesReference) {
  Rng rng(47);
  constexpr std::size_t kSpans = 24;
  std::vector<std::vector<std::uint64_t>> shards(kSpans);
  std::unordered_set<std::uint64_t> reference;
  for (auto& shard : shards) {
    for (int i = 0; i < 4000; ++i) {
      const std::uint64_t key = mix64(rng.next_u64() % 60000);
      shard.push_back(key);  // heavy cross-span overlap
      reference.insert(key);
    }
  }
  std::vector<std::span<const std::uint64_t>> spans(shards.begin(),
                                                    shards.end());
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    PartitionedU64Set set;
    set.build(spans, &pool);
    EXPECT_EQ(set.size(), reference.size()) << "threads " << threads;
    for (const std::uint64_t key : reference) {
      ASSERT_TRUE(set.contains(key));
    }
    EXPECT_FALSE(set.contains(mix64(0x123456789abcULL)));
  }
}

TEST(PartitionedU64SetTest, EmptyBuildIsEmpty) {
  PartitionedU64Set set;
  set.build({});
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(7));
}

TEST(TopKDictTest, TiesBreakOnNameNotId) {
  StringDict dict;
  const std::uint32_t zz = dict.intern("zz");  // id 0, interned first
  const std::uint32_t aa = dict.intern("aa");  // id 1
  std::vector<std::uint64_t> counts(dict.size(), 0);
  counts[zz] = 5;
  counts[aa] = 5;
  const auto top = top_k_dict(counts, dict, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, aa);  // "aa" < "zz" despite the later id
  EXPECT_EQ(top[1].first, zz);
}

}  // namespace
}  // namespace spider
