// Unit tests for the radix-partitioning primitive (engine/partition.h) and
// the partitioned path index built on it: partition layout must cover
// every kept item exactly once, keep ascending input order within each
// partition, and be byte-identical at every pool width.
#include "engine/partition.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/hash_index.h"
#include "util/hash.h"
#include "util/prng.h"

namespace spider {
namespace {

RawRecord file_record(const std::string& path, std::int64_t atime,
                      std::int64_t ctime, std::int64_t mtime) {
  RawRecord rec;
  rec.path = path;
  rec.atime = atime;
  rec.ctime = ctime;
  rec.mtime = mtime;
  rec.mode = kModeRegular | 0664;
  return rec;
}

RawRecord dir_record(const std::string& path) {
  RawRecord rec;
  rec.path = path;
  rec.mode = kModeDirectory | 0775;
  return rec;
}

SnapshotTable mixed_table(std::size_t files, std::size_t every_nth_dir) {
  SnapshotTable t;
  for (std::size_t i = 0; i < files; ++i) {
    if (every_nth_dir != 0 && i % every_nth_dir == 0) {
      t.add(dir_record("/lustre/atlas2/p/d" + std::to_string(i)));
    } else {
      t.add(file_record("/lustre/atlas2/p/u/f" + std::to_string(i),
                        static_cast<std::int64_t>(i), 2, 3));
    }
  }
  return t;
}

TEST(RadixBitsTest, GrowsWithInputAndClamps) {
  EXPECT_EQ(radix_bits_for(0), 1u);
  EXPECT_EQ(radix_bits_for(4096), 1u);
  EXPECT_GE(radix_bits_for(1 << 20), 8u);
  EXPECT_LE(radix_bits_for(std::size_t{1} << 40), 10u);
  // Monotone: more items never means fewer partitions.
  std::uint32_t last = 0;
  for (std::size_t n = 1; n < (std::size_t{1} << 24); n *= 4) {
    const std::uint32_t bits = radix_bits_for(n);
    EXPECT_GE(bits, last);
    last = bits;
  }
}

TEST(RadixPartitionTest, CoversEveryFileExactlyOnce) {
  const SnapshotTable t = mixed_table(30'000, 25);
  const std::uint32_t bits = radix_bits_for(t.file_count());
  const RadixPartitions parts = radix_partition_files(t, bits);

  ASSERT_EQ(parts.partition_count(), std::size_t{1} << bits);
  EXPECT_EQ(parts.items.size(), t.file_count());
  EXPECT_EQ(parts.keys.size(), t.file_count());

  std::vector<bool> seen(t.size(), false);
  for (std::size_t p = 0; p < parts.partition_count(); ++p) {
    const auto rows = parts.partition_items(p);
    const auto keys = parts.partition_keys(p);
    ASSERT_EQ(rows.size(), keys.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::uint32_t row = rows[i];
      EXPECT_FALSE(seen[row]) << "row " << row << " appears twice";
      seen[row] = true;
      EXPECT_FALSE(t.is_dir(row));
      EXPECT_EQ(keys[i], t.path_hash(row));
      EXPECT_EQ(RadixPartitions::partition_of(keys[i], bits), p);
      if (i > 0) {
        EXPECT_LT(rows[i - 1], row) << "not ascending in partition";
      }
    }
  }
  std::size_t covered = 0;
  for (std::size_t row = 0; row < t.size(); ++row) {
    if (seen[row]) ++covered;
    EXPECT_EQ(seen[row], !t.is_dir(row));
  }
  EXPECT_EQ(covered, t.file_count());
}

TEST(RadixPartitionTest, LayoutIndependentOfPoolWidth) {
  const SnapshotTable t = mixed_table(50'000, 17);
  const std::uint32_t bits = radix_bits_for(t.file_count());
  ThreadPool one(1), many(7);
  const RadixPartitions a = radix_partition_files(t, bits, &one);
  const RadixPartitions b = radix_partition_files(t, bits, &many);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.keys, b.keys);
}

TEST(RadixPartitionTest, EmptyAndDirsOnlyTables) {
  const SnapshotTable empty;
  const RadixPartitions none = radix_partition_files(empty, 3);
  EXPECT_EQ(none.partition_count(), 8u);
  EXPECT_TRUE(none.items.empty());

  SnapshotTable dirs;
  for (int i = 0; i < 100; ++i) {
    dirs.add(dir_record("/lustre/atlas2/d" + std::to_string(i)));
  }
  const RadixPartitions stillnone = radix_partition_files(dirs, 2);
  EXPECT_TRUE(stillnone.items.empty());
  for (std::size_t p = 0; p < stillnone.partition_count(); ++p) {
    EXPECT_TRUE(stillnone.partition_items(p).empty());
  }
}

TEST(RadixPartitionTest, SingleBitSplitsOnTopBit) {
  const RadixPartitions parts = radix_partition(
      4, 1, [](std::size_t i) { return i < 2 ? 0x0ULL : ~0x0ULL; },
      [](std::size_t) { return true; });
  ASSERT_EQ(parts.partition_count(), 2u);
  EXPECT_EQ(parts.partition_items(0).size(), 2u);
  EXPECT_EQ(parts.partition_items(1).size(), 2u);
  EXPECT_EQ(parts.partition_items(0)[0], 0u);
  EXPECT_EQ(parts.partition_items(1)[0], 2u);
}

TEST(PartitionedPathIndexTest, LookupHitsMissesAndDirs) {
  SnapshotTable t;
  t.add(file_record("/lustre/atlas2/p/u/a", 11, 12, 13));
  t.add(dir_record("/lustre/atlas2/p/u"));
  t.add(file_record("/lustre/atlas2/p/u/b", 21, 22, 23));

  const PartitionedPathIndex index(t);
  EXPECT_EQ(index.size(), 2u);
  ASSERT_EQ(index.file_rows().size(), 2u);
  EXPECT_EQ(index.file_rows()[0], 0u);
  EXPECT_EQ(index.file_rows()[1], 2u);

  const std::uint32_t a = index.lookup(t, hash_bytes("/lustre/atlas2/p/u/a"),
                                       "/lustre/atlas2/p/u/a");
  ASSERT_NE(a, PartitionedPathIndex::kNotFound);
  EXPECT_EQ(index.row_of(a), 0u);
  EXPECT_EQ(index.payload(a).atime, 11);
  EXPECT_EQ(index.payload(a).ctime, 12);
  EXPECT_EQ(index.payload(a).mtime, 13);

  const std::uint32_t b = index.lookup(t, hash_bytes("/lustre/atlas2/p/u/b"),
                                       "/lustre/atlas2/p/u/b");
  ASSERT_NE(b, PartitionedPathIndex::kNotFound);
  EXPECT_EQ(index.row_of(b), 2u);

  // The directory is not indexed; a probe for it misses.
  EXPECT_EQ(index.lookup(t, hash_bytes("/lustre/atlas2/p/u"),
                         "/lustre/atlas2/p/u"),
            PartitionedPathIndex::kNotFound);
  EXPECT_EQ(index.lookup(t, hash_bytes("/nope"), "/nope"),
            PartitionedPathIndex::kNotFound);
}

TEST(PartitionedPathIndexTest, EmptyTable) {
  const SnapshotTable t;
  const PartitionedPathIndex index(t);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.lookup(t, 123, "/x"), PartitionedPathIndex::kNotFound);
}

TEST(PartitionedPathIndexTest, CollidingHashNeverReturnsWrongRow) {
  // Simulate full 64-bit collisions by probing with path A's hash but a
  // different path: the fingerprint matches A's entry, so the probe must
  // fall through the path comparison and keep walking to a miss.
  SnapshotTable t;
  t.add(file_record("/lustre/atlas2/p/u/a", 1, 1, 1));
  t.add(file_record("/lustre/atlas2/p/u/b", 2, 2, 2));
  const PartitionedPathIndex index(t);
  EXPECT_EQ(index.lookup(t, hash_bytes("/lustre/atlas2/p/u/a"), "/other"),
            PartitionedPathIndex::kNotFound);
  EXPECT_EQ(index.lookup(t, hash_bytes("/lustre/atlas2/p/u/a"),
                         "/lustre/atlas2/p/u/b"),
            PartitionedPathIndex::kNotFound);
  const std::uint32_t b = index.lookup(t, hash_bytes("/lustre/atlas2/p/u/b"),
                                       "/lustre/atlas2/p/u/b");
  ASSERT_NE(b, PartitionedPathIndex::kNotFound);
  EXPECT_EQ(index.row_of(b), 1u);
}

TEST(PartitionedPathIndexTest, DuplicatePathKeepsFirstRow) {
  SnapshotTable t;
  t.add(file_record("/lustre/atlas2/p/u/same", 1, 1, 1));
  t.add(file_record("/lustre/atlas2/p/u/same", 2, 2, 2));
  const PartitionedPathIndex index(t);
  EXPECT_EQ(index.size(), 2u);  // both rows listed in file_rows...
  const std::uint32_t e = index.lookup(t, hash_bytes("/lustre/atlas2/p/u/same"),
                                       "/lustre/atlas2/p/u/same");
  ASSERT_NE(e, PartitionedPathIndex::kNotFound);
  EXPECT_EQ(index.row_of(e), 0u);  // ...but the first row wins
  EXPECT_EQ(index.payload(e).atime, 1);
}

TEST(PartitionedPathIndexTest, BloomFilterHasNoFalseNegatives) {
  // maybe_contains may say yes for absent hashes (lookup still resolves
  // those exactly), but must never say no for an indexed one — that would
  // make lookup drop real matches.
  const SnapshotTable t = mixed_table(20'000, 11);
  const PartitionedPathIndex index(t);
  for (std::size_t row = 0; row < t.size(); ++row) {
    if (t.is_dir(row)) continue;
    EXPECT_TRUE(index.maybe_contains(t.path_hash(row))) << t.path(row);
  }
}

TEST(PartitionedPathIndexTest, MatchesPathIndexOnLargeTable) {
  const SnapshotTable t = mixed_table(40'000, 13);
  ThreadPool pool(4);
  const PartitionedPathIndex partitioned(t, &pool);
  const PathIndex flat(t, /*files_only=*/true);
  EXPECT_EQ(partitioned.size(), t.file_count());
  EXPECT_GT(partitioned.partition_count(), 1u);
  Rng rng(7);
  for (int probe = 0; probe < 5000; ++probe) {
    const std::size_t i = rng.uniform_u64(t.size() + 100);
    const std::string path = i < t.size()
                                 ? std::string(t.path(i))
                                 : "/lustre/ghost/f" + std::to_string(i);
    const std::uint64_t h = hash_bytes(path);
    const std::uint32_t ordinal = partitioned.lookup(t, h, path);
    const std::uint32_t row = flat.lookup(h, path);
    if (row == PathIndex::kNotFound) {
      EXPECT_EQ(ordinal, PartitionedPathIndex::kNotFound) << path;
    } else {
      ASSERT_NE(ordinal, PartitionedPathIndex::kNotFound) << path;
      EXPECT_EQ(partitioned.row_of(ordinal), row) << path;
      EXPECT_EQ(partitioned.payload(ordinal).atime, t.atime(row));
      EXPECT_EQ(partitioned.payload(ordinal).mtime, t.mtime(row));
      EXPECT_EQ(partitioned.payload(ordinal).ctime, t.ctime(row));
    }
  }
}

}  // namespace
}  // namespace spider
