#include "engine/diff.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/hash_index.h"
#include "util/prng.h"

namespace spider {
namespace {

RawRecord file_record(const std::string& path, std::int64_t atime,
                      std::int64_t ctime, std::int64_t mtime) {
  RawRecord rec;
  rec.path = path;
  rec.atime = atime;
  rec.ctime = ctime;
  rec.mtime = mtime;
  rec.mode = kModeRegular | 0664;
  rec.osts = {1, 2, 3, 4};
  return rec;
}

RawRecord dir_record(const std::string& path) {
  RawRecord rec;
  rec.path = path;
  rec.mode = kModeDirectory | 0775;
  return rec;
}

TEST(PathIndexTest, LookupHitsAndMisses) {
  SnapshotTable t;
  t.add(file_record("/lustre/atlas2/p/u/a", 1, 1, 1));
  t.add(dir_record("/lustre/atlas2/p/u"));
  t.add(file_record("/lustre/atlas2/p/u/b", 2, 2, 2));

  const PathIndex all(t, /*files_only=*/false);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(all.lookup(hash_bytes("/lustre/atlas2/p/u/a"),
                       "/lustre/atlas2/p/u/a"),
            0u);
  EXPECT_EQ(all.lookup(hash_bytes("/lustre/atlas2/p/u"),
                       "/lustre/atlas2/p/u"),
            1u);
  EXPECT_EQ(all.lookup(hash_bytes("/nope"), "/nope"), PathIndex::kNotFound);

  const PathIndex files(t, /*files_only=*/true);
  EXPECT_EQ(files.size(), 2u);
  EXPECT_EQ(files.lookup(hash_bytes("/lustre/atlas2/p/u"),
                         "/lustre/atlas2/p/u"),
            PathIndex::kNotFound);
}

TEST(PathIndexTest, EmptyTable) {
  SnapshotTable t;
  const PathIndex index(t);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.lookup(123, "/x"), PathIndex::kNotFound);
}

TEST(PathIndexTest, ManyRows) {
  SnapshotTable t;
  for (int i = 0; i < 20000; ++i) {
    t.add(file_record("/lustre/atlas2/p/u/f" + std::to_string(i), i, i, i));
  }
  const PathIndex index(t);
  for (int i = 0; i < 20000; i += 97) {
    const std::string path = "/lustre/atlas2/p/u/f" + std::to_string(i);
    ASSERT_EQ(index.lookup(hash_bytes(path), path),
              static_cast<std::uint32_t>(i));
  }
}

class DiffTest : public ::testing::Test {
 protected:
  SnapshotTable prev_, cur_;
};

TEST_F(DiffTest, ClassifiesAllCategories) {
  // prev: untouched, readonly, updated, deleted + a directory
  prev_.add(file_record("/lustre/atlas2/p/u/untouched", 10, 10, 10));
  prev_.add(file_record("/lustre/atlas2/p/u/readonly", 10, 10, 10));
  prev_.add(file_record("/lustre/atlas2/p/u/updated", 10, 10, 10));
  prev_.add(file_record("/lustre/atlas2/p/u/deleted", 10, 10, 10));
  prev_.add(dir_record("/lustre/atlas2/p/u"));

  cur_.add(file_record("/lustre/atlas2/p/u/untouched", 10, 10, 10));
  cur_.add(file_record("/lustre/atlas2/p/u/readonly", 99, 10, 10));
  cur_.add(file_record("/lustre/atlas2/p/u/updated", 99, 99, 99));
  cur_.add(file_record("/lustre/atlas2/p/u/new", 50, 50, 50));
  cur_.add(dir_record("/lustre/atlas2/p/u"));

  const DiffResult diff = diff_snapshots(prev_, cur_);
  ASSERT_EQ(diff.untouched_rows.size(), 1u);
  ASSERT_EQ(diff.readonly_rows.size(), 1u);
  ASSERT_EQ(diff.updated_rows.size(), 1u);
  ASSERT_EQ(diff.new_rows.size(), 1u);
  ASSERT_EQ(diff.deleted_rows.size(), 1u);
  EXPECT_EQ(cur_.path(diff.untouched_rows[0]), "/lustre/atlas2/p/u/untouched");
  EXPECT_EQ(cur_.path(diff.readonly_rows[0]), "/lustre/atlas2/p/u/readonly");
  EXPECT_EQ(cur_.path(diff.updated_rows[0]), "/lustre/atlas2/p/u/updated");
  EXPECT_EQ(cur_.path(diff.new_rows[0]), "/lustre/atlas2/p/u/new");
  EXPECT_EQ(prev_.path(diff.deleted_rows[0]), "/lustre/atlas2/p/u/deleted");

  EXPECT_EQ(diff.prev_files, 4u);
  EXPECT_EQ(diff.cur_files, 4u);
  EXPECT_DOUBLE_EQ(diff.new_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(diff.deleted_fraction(), 0.25);
}

TEST_F(DiffTest, MtimeOnlyChangeIsUpdated) {
  prev_.add(file_record("/lustre/atlas2/p/u/f", 10, 10, 10));
  cur_.add(file_record("/lustre/atlas2/p/u/f", 10, 10, 99));
  const DiffResult diff = diff_snapshots(prev_, cur_);
  EXPECT_EQ(diff.updated_rows.size(), 1u);
  EXPECT_TRUE(diff.readonly_rows.empty());
}

TEST_F(DiffTest, CtimeOnlyChangeIsUpdated) {
  prev_.add(file_record("/lustre/atlas2/p/u/f", 10, 10, 10));
  cur_.add(file_record("/lustre/atlas2/p/u/f", 10, 99, 10));
  const DiffResult diff = diff_snapshots(prev_, cur_);
  EXPECT_EQ(diff.updated_rows.size(), 1u);
}

TEST_F(DiffTest, DirectoriesAreIgnored) {
  prev_.add(dir_record("/lustre/atlas2/p/gone"));
  cur_.add(dir_record("/lustre/atlas2/p/fresh"));
  const DiffResult diff = diff_snapshots(prev_, cur_);
  EXPECT_TRUE(diff.new_rows.empty());
  EXPECT_TRUE(diff.deleted_rows.empty());
  EXPECT_EQ(diff.prev_files, 0u);
  EXPECT_EQ(diff.cur_files, 0u);
}

TEST_F(DiffTest, EmptySnapshots) {
  const DiffResult diff = diff_snapshots(prev_, cur_);
  EXPECT_EQ(diff.new_rows.size() + diff.deleted_rows.size() +
                diff.readonly_rows.size() + diff.updated_rows.size() +
                diff.untouched_rows.size(),
            0u);
  EXPECT_DOUBLE_EQ(diff.new_fraction(), 0.0);
}

// Property: every current-week file lands in exactly one class, every
// previous-week file is matched or deleted, and outputs are sorted.
class DiffPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffPropertyTest, PartitionInvariant) {
  Rng rng(GetParam());
  SnapshotTable prev, cur;
  for (int i = 0; i < 3000; ++i) {
    const std::string path = "/lustre/atlas2/p/u/f" + std::to_string(i);
    const bool in_prev = rng.chance(0.8);
    const bool in_cur = rng.chance(0.8);
    const std::int64_t base = 1000 + i;
    if (in_prev) prev.add(file_record(path, base, base, base));
    if (in_cur) {
      const int mutation = static_cast<int>(rng.uniform_u64(4));
      std::int64_t a = base, c = base, m = base;
      if (mutation == 1) a += 5;                       // readonly
      if (mutation == 2) { a += 5; c += 5; m += 5; }   // updated
      if (mutation == 3) { c += 5; }                   // updated (ctime)
      cur.add(file_record(path, a, c, m));
    }
  }
  const DiffResult diff = diff_snapshots(prev, cur);
  EXPECT_EQ(diff.new_rows.size() + diff.readonly_rows.size() +
                diff.updated_rows.size() + diff.untouched_rows.size(),
            diff.cur_files);
  // Matched prev files = prev minus deleted.
  EXPECT_EQ(diff.readonly_rows.size() + diff.updated_rows.size() +
                diff.untouched_rows.size() + diff.deleted_rows.size(),
            diff.prev_files);
  for (const auto* rows :
       {&diff.new_rows, &diff.readonly_rows, &diff.updated_rows,
        &diff.untouched_rows, &diff.deleted_rows}) {
    EXPECT_TRUE(std::is_sorted(rows->begin(), rows->end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The sort-merge join must produce byte-identical results to the hash
// join on arbitrary inputs (it exists for the ablation benchmark).
class SortMergeEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SortMergeEquivalence, MatchesHashJoin) {
  Rng rng(GetParam());
  SnapshotTable prev, cur;
  for (int i = 0; i < 2000; ++i) {
    const std::string path = "/lustre/atlas2/p/u/f" + std::to_string(i);
    const std::int64_t base = 5000 + i;
    if (rng.chance(0.75)) prev.add(file_record(path, base, base, base));
    if (rng.chance(0.75)) {
      const int mutation = static_cast<int>(rng.uniform_u64(4));
      std::int64_t a = base, c = base, m = base;
      if (mutation == 1) a += 7;
      if (mutation == 2) { a += 7; m += 7; }
      if (mutation == 3) c += 7;
      cur.add(file_record(path, a, c, m));
    }
  }
  prev.add(dir_record("/lustre/atlas2/p/u"));
  cur.add(dir_record("/lustre/atlas2/p/u"));

  const DiffResult hash = diff_snapshots(prev, cur);
  const DiffResult merge = diff_snapshots_sortmerge(prev, cur);
  EXPECT_EQ(hash.new_rows, merge.new_rows);
  EXPECT_EQ(hash.deleted_rows, merge.deleted_rows);
  EXPECT_EQ(hash.readonly_rows, merge.readonly_rows);
  EXPECT_EQ(hash.updated_rows, merge.updated_rows);
  EXPECT_EQ(hash.untouched_rows, merge.untouched_rows);
  EXPECT_EQ(hash.prev_files, merge.prev_files);
  EXPECT_EQ(hash.cur_files, merge.cur_files);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortMergeEquivalence,
                         ::testing::Values(10, 11, 12, 13));

}  // namespace
}  // namespace spider
