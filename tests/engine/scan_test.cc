// Tests for the morsel-driven shared scan: chunk layout, ordered merge,
// multi-kernel dispatch, and thread-count invariance.
#include "engine/scan.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "snapshot/table.h"
#include "util/parallel.h"

namespace spider {
namespace {

SnapshotTable make_table(std::size_t rows) {
  SnapshotTable table;
  table.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    table.add("/f/" + std::to_string(i), static_cast<std::int64_t>(i), 0,
              static_cast<std::int64_t>(2 * i), static_cast<std::uint32_t>(i),
              0, kModeRegular | 0664, i, {});
  }
  return table;
}

struct SumState : ScanChunkState {
  std::int64_t sum = 0;
};

/// Sums the atime column; merge() concatenates partials in chunk order.
class SumKernel : public ScanKernel {
 public:
  std::unique_ptr<ScanChunkState> make_chunk_state() const override {
    return std::make_unique<SumState>();
  }
  void observe_chunk(ScanChunkState* state, const SnapshotTable& table,
                     std::size_t begin, std::size_t end) override {
    auto* sum = static_cast<SumState*>(state);
    for (std::size_t i = begin; i < end; ++i) sum->sum += table.atime(i);
  }
  void merge_chunks(const SnapshotTable&, ScanStateList states,
                    ThreadPool*) override {
    merge_calls++;
    for (const auto& state : states) {
      total += static_cast<const SumState*>(state.get())->sum;
    }
  }

  std::int64_t total = 0;
  int merge_calls = 0;
};

struct RangeState : ScanChunkState {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
};

/// Records every (begin, end) a chunk state saw; merge() checks the states
/// arrive in chunk order and jointly tile [0, n) exactly once.
class RangeKernel : public ScanKernel {
 public:
  std::unique_ptr<ScanChunkState> make_chunk_state() const override {
    return std::make_unique<RangeState>();
  }
  void observe_chunk(ScanChunkState* state, const SnapshotTable&,
                     std::size_t begin, std::size_t end) override {
    static_cast<RangeState*>(state)->ranges.emplace_back(begin, end);
  }
  void merge_chunks(const SnapshotTable& table, ScanStateList states,
                    ThreadPool*) override {
    std::size_t next = 0;
    for (const auto& state : states) {
      const auto* chunk = static_cast<const RangeState*>(state.get());
      // One chunk per state, visited exactly once.
      ASSERT_EQ(chunk->ranges.size(), 1u);
      EXPECT_EQ(chunk->ranges[0].first, next);
      EXPECT_GT(chunk->ranges[0].second, chunk->ranges[0].first);
      next = chunk->ranges[0].second;
    }
    EXPECT_EQ(next, table.size());
    tiled = true;
  }

  bool tiled = false;
};

TEST(ScanTest, SumMatchesSerialLoop) {
  const SnapshotTable table = make_table(10000);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < table.size(); ++i) expected += table.atime(i);

  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1000}, kScanGrainRows}) {
    SumKernel kernel;
    ScanKernel* kernels[] = {&kernel};
    ScanOptions options;
    options.grain = grain;
    scan_table(table, kernels, options);
    EXPECT_EQ(kernel.total, expected) << "grain " << grain;
    EXPECT_EQ(kernel.merge_calls, 1);
  }
}

TEST(ScanTest, EmptyTableStillMerges) {
  const SnapshotTable table;
  SumKernel kernel;
  ScanKernel* kernels[] = {&kernel};
  scan_table(table, kernels);
  EXPECT_EQ(kernel.total, 0);
  EXPECT_EQ(kernel.merge_calls, 1);  // merge runs even with zero chunks
}

TEST(ScanTest, ChunksTileTableInOrder) {
  const SnapshotTable table = make_table(5000);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{617},
                                  std::size_t{5000}, std::size_t{100000}}) {
    RangeKernel kernel;
    ScanKernel* kernels[] = {&kernel};
    ScanOptions options;
    options.grain = grain;
    scan_table(table, kernels, options);
    EXPECT_TRUE(kernel.tiled) << "grain " << grain;
  }
}

TEST(ScanTest, MultipleKernelsShareOnePass) {
  const SnapshotTable table = make_table(3000);
  SumKernel a, b;
  RangeKernel ranges;
  ScanKernel* kernels[] = {&a, &ranges, &b};
  ScanOptions options;
  options.grain = 256;
  scan_table(table, kernels, options);
  EXPECT_EQ(a.total, b.total);
  EXPECT_TRUE(ranges.tiled);
}

TEST(ScanTest, ResultIdenticalAcrossPoolSizes) {
  const SnapshotTable table = make_table(20000);
  ScanOptions base;
  base.grain = 512;  // many chunks so pools actually interleave

  SumKernel reference;
  {
    ThreadPool pool(1);
    ScanKernel* kernels[] = {&reference};
    ScanOptions options = base;
    options.pool = &pool;
    scan_table(table, kernels, options);
  }
  for (const unsigned threads : {2u, 7u, 0u}) {
    ThreadPool pool(threads);
    SumKernel kernel;
    ScanKernel* kernels[] = {&kernel};
    ScanOptions options = base;
    options.pool = &pool;
    scan_table(table, kernels, options);
    EXPECT_EQ(kernel.total, reference.total) << "threads " << threads;
  }
}

TEST(ScanTest, ZeroGrainFallsBackToDefault) {
  const SnapshotTable table = make_table(100);
  SumKernel kernel;
  ScanKernel* kernels[] = {&kernel};
  ScanOptions options;
  options.grain = 0;
  scan_table(table, kernels, options);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < table.size(); ++i) expected += table.atime(i);
  EXPECT_EQ(kernel.total, expected);
}

}  // namespace
}  // namespace spider
