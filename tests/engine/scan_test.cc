// Tests for the morsel-driven shared scan: chunk layout, ordered merge,
// multi-kernel dispatch, thread-count invariance, and the streaming
// MorselSource seam (batched scans must reproduce the resident scan).
#include "engine/scan.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "snapshot/table.h"
#include "util/parallel.h"

namespace spider {
namespace {

SnapshotTable make_table(std::size_t rows, std::size_t first = 0) {
  SnapshotTable table;
  table.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t i = first + r;
    table.add("/f/" + std::to_string(i), static_cast<std::int64_t>(i), 0,
              static_cast<std::int64_t>(2 * i), static_cast<std::uint32_t>(i),
              0, kModeRegular | 0664, i, {});
  }
  return table;
}

struct SumState : ScanChunkState {
  std::int64_t sum = 0;
};

/// Sums the atime column; merge() concatenates partials in chunk order.
class SumKernel : public ScanKernel {
 public:
  std::unique_ptr<ScanChunkState> make_chunk_state() const override {
    return std::make_unique<SumState>();
  }
  void observe_chunk(ScanChunkState* state, const ScanMorsel& m) override {
    auto* sum = static_cast<SumState*>(state);
    for (std::size_t i = m.begin; i < m.end; ++i) {
      sum->sum += m.table->atime(m.local(i));
    }
  }
  void merge_chunks(ScanStateList states, ThreadPool*) override {
    merge_calls++;
    for (const auto& state : states) {
      total += static_cast<const SumState*>(state.get())->sum;
    }
  }

  std::int64_t total = 0;
  int merge_calls = 0;
};

struct RangeState : ScanChunkState {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
};

/// Records every (begin, end) a chunk state saw; merge() checks the states
/// arrive in chunk order and jointly tile [0, rows) exactly once.
class RangeKernel : public ScanKernel {
 public:
  explicit RangeKernel(std::size_t rows) : rows_(rows) {}
  std::unique_ptr<ScanChunkState> make_chunk_state() const override {
    return std::make_unique<RangeState>();
  }
  void observe_chunk(ScanChunkState* state, const ScanMorsel& m) override {
    static_cast<RangeState*>(state)->ranges.emplace_back(m.begin, m.end);
  }
  void merge_chunks(ScanStateList states, ThreadPool*) override {
    std::size_t next = 0;
    for (const auto& state : states) {
      const auto* chunk = static_cast<const RangeState*>(state.get());
      // One chunk per state, visited exactly once.
      ASSERT_EQ(chunk->ranges.size(), 1u);
      EXPECT_EQ(chunk->ranges[0].first, next);
      EXPECT_GT(chunk->ranges[0].second, chunk->ranges[0].first);
      next = chunk->ranges[0].second;
    }
    EXPECT_EQ(next, rows_);
    tiled = true;
  }

  std::size_t rows_;
  bool tiled = false;
};

/// Serves a fixed list of tables as consecutive batches — the simplest
/// possible MorselSource, used to pin down the dispatcher's contract.
class VectorSource : public MorselSource {
 public:
  explicit VectorSource(std::vector<SnapshotTable> batches)
      : batches_(std::move(batches)) {}
  Status next(MorselBatch* batch) override {
    ++pulls;
    if (index_ >= batches_.size()) {
      batch->table = nullptr;
      return Status();
    }
    batch->table = &batches_[index_];
    batch->base = base_;
    base_ += batches_[index_].size();
    ++index_;
    return Status();
  }

  int pulls = 0;

 private:
  std::vector<SnapshotTable> batches_;
  std::size_t index_ = 0;
  std::size_t base_ = 0;
};

/// Fails after serving `ok_batches` batches.
class FailingSource : public MorselSource {
 public:
  FailingSource(std::vector<SnapshotTable> batches, std::size_t ok_batches)
      : inner_(std::move(batches)), ok_batches_(ok_batches) {}
  Status next(MorselBatch* batch) override {
    if (served_ >= ok_batches_) return Status::io_error("batch lost");
    ++served_;
    return inner_.next(batch);
  }

 private:
  VectorSource inner_;
  std::size_t ok_batches_;
  std::size_t served_ = 0;
};

TEST(ScanTest, SumMatchesSerialLoop) {
  const SnapshotTable table = make_table(10000);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < table.size(); ++i) expected += table.atime(i);

  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1000}, kScanGrainRows}) {
    SumKernel kernel;
    ScanKernel* kernels[] = {&kernel};
    ScanOptions options;
    options.grain = grain;
    scan_table(table, kernels, options);
    EXPECT_EQ(kernel.total, expected) << "grain " << grain;
    EXPECT_EQ(kernel.merge_calls, 1);
  }
}

TEST(ScanTest, EmptyTableStillMerges) {
  const SnapshotTable table;
  SumKernel kernel;
  ScanKernel* kernels[] = {&kernel};
  scan_table(table, kernels);
  EXPECT_EQ(kernel.total, 0);
  EXPECT_EQ(kernel.merge_calls, 1);  // merge runs even with zero chunks
}

TEST(ScanTest, ChunksTileTableInOrder) {
  const SnapshotTable table = make_table(5000);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{617},
                                  std::size_t{5000}, std::size_t{100000}}) {
    RangeKernel kernel(table.size());
    ScanKernel* kernels[] = {&kernel};
    ScanOptions options;
    options.grain = grain;
    scan_table(table, kernels, options);
    EXPECT_TRUE(kernel.tiled) << "grain " << grain;
  }
}

TEST(ScanTest, MultipleKernelsShareOnePass) {
  const SnapshotTable table = make_table(3000);
  SumKernel a, b;
  RangeKernel ranges(table.size());
  ScanKernel* kernels[] = {&a, &ranges, &b};
  ScanOptions options;
  options.grain = 256;
  scan_table(table, kernels, options);
  EXPECT_EQ(a.total, b.total);
  EXPECT_TRUE(ranges.tiled);
}

TEST(ScanTest, ResultIdenticalAcrossPoolSizes) {
  const SnapshotTable table = make_table(20000);
  ScanOptions base;
  base.grain = 512;  // many chunks so pools actually interleave

  SumKernel reference;
  {
    ThreadPool pool(1);
    ScanKernel* kernels[] = {&reference};
    ScanOptions options = base;
    options.pool = &pool;
    scan_table(table, kernels, options);
  }
  for (const unsigned threads : {2u, 7u, 0u}) {
    ThreadPool pool(threads);
    SumKernel kernel;
    ScanKernel* kernels[] = {&kernel};
    ScanOptions options = base;
    options.pool = &pool;
    scan_table(table, kernels, options);
    EXPECT_EQ(kernel.total, reference.total) << "threads " << threads;
  }
}

TEST(ScanTest, ZeroGrainFallsBackToDefault) {
  const SnapshotTable table = make_table(100);
  SumKernel kernel;
  ScanKernel* kernels[] = {&kernel};
  ScanOptions options;
  options.grain = 0;
  scan_table(table, kernels, options);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < table.size(); ++i) expected += table.atime(i);
  EXPECT_EQ(kernel.total, expected);
}

TEST(ScanStreamTest, BatchedScanMatchesResidentScan) {
  // 3 grain-aligned batches + one short tail: the chunk layout — and so
  // the tiling RangeKernel sees — must equal scan_table over the union.
  const std::size_t grain = 256;
  std::vector<SnapshotTable> batches;
  std::size_t first = 0;
  for (const std::size_t rows : {grain * 4, grain * 2, grain * 8, grain - 3}) {
    batches.push_back(make_table(rows, first));
    first += rows;
  }

  std::int64_t expected = 0;
  RangeKernel ranges(first);
  {
    SnapshotTable whole = make_table(first);
    SumKernel reference;
    ScanKernel* kernels[] = {&reference};
    ScanOptions options;
    options.grain = grain;
    scan_table(whole, kernels, options);
    expected = reference.total;
  }

  VectorSource source(std::move(batches));
  SumKernel kernel;
  ScanKernel* kernels[] = {&kernel, &ranges};
  ScanOptions options;
  options.grain = grain;
  ASSERT_TRUE(scan_stream(source, kernels, options).ok());
  EXPECT_EQ(kernel.total, expected);
  EXPECT_TRUE(ranges.tiled);
  EXPECT_EQ(kernel.merge_calls, 1);
}

TEST(ScanStreamTest, UnalignedBatchesStillCoverEveryRow) {
  // Batches that are NOT grain multiples start fresh chunks — the layout
  // differs from the resident scan but every row is seen exactly once.
  std::vector<SnapshotTable> batches;
  std::size_t first = 0;
  for (const std::size_t rows : {std::size_t{97}, std::size_t{1},
                                 std::size_t{513}, std::size_t{100}}) {
    batches.push_back(make_table(rows, first));
    first += rows;
  }
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < first; ++i) {
    expected += static_cast<std::int64_t>(i);
  }
  VectorSource source(std::move(batches));
  SumKernel kernel;
  ScanKernel* kernels[] = {&kernel};
  ScanOptions options;
  options.grain = 64;
  ASSERT_TRUE(scan_stream(source, kernels, options).ok());
  EXPECT_EQ(kernel.total, expected);
}

TEST(ScanStreamTest, EmptyStreamStillMerges) {
  VectorSource source({});
  SumKernel kernel;
  ScanKernel* kernels[] = {&kernel};
  ASSERT_TRUE(scan_stream(source, kernels).ok());
  EXPECT_EQ(kernel.total, 0);
  EXPECT_EQ(kernel.merge_calls, 1);
  EXPECT_EQ(source.pulls, 1);
}

TEST(ScanStreamTest, SourceErrorAbortsWithoutMerging) {
  std::vector<SnapshotTable> batches;
  batches.push_back(make_table(100));
  batches.push_back(make_table(100, 100));
  FailingSource source(std::move(batches), /*ok_batches=*/1);
  SumKernel kernel;
  ScanKernel* kernels[] = {&kernel};
  const Status s = scan_stream(source, kernels);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(kernel.merge_calls, 0);
}

}  // namespace
}  // namespace spider
