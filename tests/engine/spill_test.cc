#include "engine/spill.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/diff.h"
#include "util/io.h"
#include "util/prng.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

RawRecord file_record(const std::string& path, std::int64_t atime,
                      std::int64_t ctime, std::int64_t mtime) {
  RawRecord rec;
  rec.path = path;
  rec.atime = atime;
  rec.ctime = ctime;
  rec.mtime = mtime;
  rec.mode = kModeRegular | 0664;
  rec.osts = {1, 2, 3, 4};
  return rec;
}

RawRecord dir_record(const std::string& path, std::int64_t stamp = 7) {
  RawRecord rec;
  rec.path = path;
  rec.atime = stamp;
  rec.ctime = stamp;
  rec.mtime = stamp;
  rec.mode = kModeDirectory | 0775;
  return rec;
}

/// A random adjacent-week pair exercising every diff class on files and
/// directories alike.
void make_week_pair(std::uint64_t seed, SnapshotTable* prev,
                    SnapshotTable* cur) {
  Rng rng(seed);
  for (int i = 0; i < 4000; ++i) {
    const std::string path = "/lustre/atlas2/p/u/f" + std::to_string(i);
    const std::int64_t base = 9000 + i;
    if (rng.chance(0.8)) prev->add(file_record(path, base, base, base));
    if (rng.chance(0.8)) {
      const int mutation = static_cast<int>(rng.uniform_u64(4));
      std::int64_t a = base, c = base, m = base;
      if (mutation == 1) a += 3;                      // readonly
      if (mutation == 2) { a += 3; c += 3; m += 3; }  // updated
      if (mutation == 3) c += 3;                      // updated (ctime)
      cur->add(file_record(path, a, c, m));
    }
  }
  for (int i = 0; i < 300; ++i) {
    const std::string path = "/lustre/atlas2/p/d" + std::to_string(i);
    if (rng.chance(0.7)) prev->add(dir_record(path, 40));
    if (rng.chance(0.7)) {
      cur->add(dir_record(path, rng.chance(0.5) ? 40 : 41));
    }
  }
}

/// Spills `table` into `dir` with the given fan-out and returns the
/// finished side.
SpilledSide spill_table(const SnapshotTable& table, const std::string& dir,
                        const std::string& stem, std::uint32_t bits) {
  SpillPartitionWriter writer;
  SpillPartitionWriter::Options options;
  options.dir = dir;
  options.stem = stem;
  options.bits = bits;
  EXPECT_TRUE(writer.open(options).ok());
  EXPECT_TRUE(writer.add_table(table).ok());
  EXPECT_TRUE(writer.finish().ok());
  return writer.side();
}

void expect_diff_equal(const DiffResult& want, const DiffResult& got) {
  EXPECT_EQ(want.new_rows, got.new_rows);
  EXPECT_EQ(want.deleted_rows, got.deleted_rows);
  EXPECT_EQ(want.readonly_rows, got.readonly_rows);
  EXPECT_EQ(want.updated_rows, got.updated_rows);
  EXPECT_EQ(want.untouched_rows, got.untouched_rows);
  EXPECT_EQ(want.has_prev_rows, got.has_prev_rows);
  EXPECT_EQ(want.readonly_prev_rows, got.readonly_prev_rows);
  EXPECT_EQ(want.updated_prev_rows, got.updated_prev_rows);
  EXPECT_EQ(want.untouched_prev_rows, got.untouched_prev_rows);
  EXPECT_EQ(want.has_dir_diff, got.has_dir_diff);
  EXPECT_EQ(want.new_dir_rows, got.new_dir_rows);
  EXPECT_EQ(want.changed_dir_rows, got.changed_dir_rows);
  EXPECT_EQ(want.changed_dir_prev_rows, got.changed_dir_prev_rows);
  EXPECT_EQ(want.deleted_dir_rows, got.deleted_dir_rows);
  EXPECT_EQ(want.prev_files, got.prev_files);
  EXPECT_EQ(want.cur_files, got.cur_files);
}

/// Flips one payload byte of `file`, leaving the trailer intact so only
/// the checksum catches it.
void corrupt_payload_byte(const std::string& file) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(file, &bytes).ok());
  ASSERT_GT(bytes.size(), 33u) << "need a non-empty payload to corrupt";
  bytes[bytes.size() / 2] ^= 0xff;
  ASSERT_TRUE(write_file_atomic(
                  file, std::span<const std::uint8_t>(bytes.data(),
                                                      bytes.size()))
                  .ok());
}

/// Finds a partition with at least one record on the prev side (so
/// corruption there is detectable).
std::size_t nonempty_partition(const SpilledSide& side) {
  for (std::size_t p = 0; p < side.files.size(); ++p) {
    SpillRecords records;
    EXPECT_TRUE(read_spill_partition(side.files[p], &records).ok());
    if (records.size() > 0) return p;
  }
  ADD_FAILURE() << "no partition holds any records";
  return 0;
}

class SpillJoinParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpillJoinParity, MatchesInMemoryDiffAtEveryFanOut) {
  SnapshotTable prev, cur;
  make_week_pair(GetParam(), &prev, &cur);
  DiffOptions options;
  options.prev_rows = true;
  options.dirs = true;
  const DiffResult want = diff_snapshots(prev, cur, /*pool=*/nullptr,
                                         /*breakdown=*/nullptr, options);

  for (const std::uint32_t bits : {0u, 3u}) {
    TempDir dir("spider_spill_parity_" + std::to_string(GetParam()) + "_" +
                std::to_string(bits));
    const SpilledSide prev_side = spill_table(prev, dir.path(), "prev", bits);
    const SpilledSide cur_side = spill_table(cur, dir.path(), "cur", bits);
    DiffResult got;
    ASSERT_TRUE(spill_diff_join(prev_side, cur_side, options, &got).ok());
    expect_diff_equal(want, got);
  }
}

TEST_P(SpillJoinParity, MatchesWithoutExtras) {
  SnapshotTable prev, cur;
  make_week_pair(GetParam() + 100, &prev, &cur);
  const DiffResult want = diff_snapshots(prev, cur);

  TempDir dir("spider_spill_noextras_" + std::to_string(GetParam()));
  const SpilledSide prev_side = spill_table(prev, dir.path(), "prev", 2);
  const SpilledSide cur_side = spill_table(cur, dir.path(), "cur", 2);
  DiffResult got;
  ASSERT_TRUE(spill_diff_join(prev_side, cur_side, DiffOptions{}, &got).ok());
  expect_diff_equal(want, got);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillJoinParity,
                         ::testing::Values(21, 22, 23, 24));

TEST(SpillJoinTest, ForcedTinyBudgetSpillsEveryPartition) {
  // A one-byte partition budget forces the maximum fan-out: every one of
  // the 256 partitions is a real spill file, and the join must still be
  // bit-identical to the resident diff.
  SnapshotTable prev, cur;
  make_week_pair(31, &prev, &cur);
  const std::uint32_t bits = spill_bits_for(prev.size(), 64, 1);
  EXPECT_EQ(bits, 8u);

  DiffOptions options;
  options.prev_rows = true;
  options.dirs = true;
  const DiffResult want = diff_snapshots(prev, cur, /*pool=*/nullptr,
                                         /*breakdown=*/nullptr, options);

  TempDir dir("spider_spill_tiny_budget");
  const SpilledSide prev_side = spill_table(prev, dir.path(), "prev", bits);
  const SpilledSide cur_side = spill_table(cur, dir.path(), "cur", bits);
  ASSERT_EQ(prev_side.files.size(), 256u);
  std::size_t populated = 0;
  for (const std::string& file : prev_side.files) {
    SpillRecords records;
    ASSERT_TRUE(read_spill_partition(file, &records).ok());
    populated += records.size() > 0 ? 1 : 0;
  }
  EXPECT_GT(populated, 200u) << "hash should spread rows across partitions";

  DiffResult got;
  ASSERT_TRUE(spill_diff_join(prev_side, cur_side, options, &got).ok());
  expect_diff_equal(want, got);
}

TEST(SpillBitsForTest, ScalesWithDataAndClamps) {
  EXPECT_EQ(spill_bits_for(1000, 64, 0), 0u);       // no budget = one file
  EXPECT_EQ(spill_bits_for(0, 64, 1 << 20), 0u);    // empty side
  EXPECT_EQ(spill_bits_for(1000, 64, 1 << 20), 0u); // fits in one partition
  EXPECT_EQ(spill_bits_for(4096, 64, 64 * 1024), 2u);
  EXPECT_EQ(spill_bits_for(1'000'000'000, 64, 1), 8u);  // clamped
}

TEST(SpillWriterTest, GroupAtATimeMatchesWholeTableSpill) {
  SnapshotTable whole;
  std::vector<SnapshotTable> groups(3);
  Rng rng(77);
  std::size_t row = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int i = 0; i < 500; ++i, ++row) {
      const std::string path = "/lustre/atlas2/p/u/g" + std::to_string(row);
      const std::int64_t stamp =
          static_cast<std::int64_t>(1000 + rng.uniform_u64(1000));
      RawRecord rec = rng.chance(0.1) ? dir_record(path, stamp)
                                      : file_record(path, stamp, stamp, stamp);
      whole.add(rec);
      groups[g].add(rec);
    }
  }

  TempDir dir("spider_spill_groups");
  const SpilledSide whole_side = spill_table(whole, dir.path(), "whole", 2);

  SpillPartitionWriter writer;
  SpillPartitionWriter::Options options;
  options.dir = dir.path();
  options.stem = "grouped";
  options.bits = 2;
  ASSERT_TRUE(writer.open(options).ok());
  std::size_t base = 0;
  for (const SnapshotTable& group : groups) {
    ASSERT_TRUE(writer.add_table(group, base).ok());
    base += group.size();
  }
  ASSERT_TRUE(writer.finish().ok());
  const SpilledSide grouped_side = writer.side();

  EXPECT_EQ(whole_side.file_rows, grouped_side.file_rows);
  EXPECT_EQ(whole_side.dir_rows, grouped_side.dir_rows);
  for (std::size_t p = 0; p < whole_side.files.size(); ++p) {
    SpillRecords a, b;
    ASSERT_TRUE(read_spill_partition(whole_side.files[p], &a).ok());
    ASSERT_TRUE(read_spill_partition(grouped_side.files[p], &b).ok());
    EXPECT_EQ(a.hashes, b.hashes);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.dir_flags, b.dir_flags);
    EXPECT_EQ(a.atimes, b.atimes);
    EXPECT_EQ(a.mtimes, b.mtimes);
    EXPECT_EQ(a.ctimes, b.ctimes);
    EXPECT_EQ(a.path_bytes, b.path_bytes);
  }
}

TEST(SpillFaultTest, ChecksumMismatchRegeneratesOnceAndJoins) {
  SnapshotTable prev, cur;
  make_week_pair(41, &prev, &cur);
  DiffOptions options;
  options.prev_rows = true;
  options.dirs = true;
  const DiffResult want = diff_snapshots(prev, cur, /*pool=*/nullptr,
                                         /*breakdown=*/nullptr, options);

  TempDir dir("spider_spill_fault_recover");
  SpilledSide prev_side = spill_table(prev, dir.path(), "prev", 3);
  const SpilledSide cur_side = spill_table(cur, dir.path(), "cur", 3);

  const std::size_t victim = nonempty_partition(prev_side);
  corrupt_payload_byte(prev_side.files[victim]);

  // The owner re-derives its scratch files from the original table; a
  // fresh spill of the whole side rewrites (and so repairs) partition p.
  std::size_t regenerated = 0;
  const std::string path = dir.path();
  prev_side.regenerate = [&](std::size_t p) {
    EXPECT_EQ(p, victim);
    ++regenerated;
    spill_table(prev, path, "prev", 3);
    return Status();
  };

  DiffResult got;
  ASSERT_TRUE(spill_diff_join(prev_side, cur_side, options, &got).ok());
  EXPECT_EQ(regenerated, 1u);
  expect_diff_equal(want, got);
}

TEST(SpillFaultTest, CorruptionWithoutRegenerateFails) {
  SnapshotTable prev, cur;
  make_week_pair(42, &prev, &cur);

  TempDir dir("spider_spill_fault_fatal");
  const SpilledSide prev_side = spill_table(prev, dir.path(), "prev", 2);
  const SpilledSide cur_side = spill_table(cur, dir.path(), "cur", 2);
  corrupt_payload_byte(cur_side.files[nonempty_partition(cur_side)]);

  DiffResult got;
  const Status s = spill_diff_join(prev_side, cur_side, DiffOptions{}, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.to_string();
  EXPECT_NE(s.to_string().find("checksum"), std::string::npos);
}

TEST(SpillFaultTest, RegenerateThatLeavesDamageFailsAfterOneRetry) {
  SnapshotTable prev, cur;
  make_week_pair(43, &prev, &cur);

  TempDir dir("spider_spill_fault_stuck");
  SpilledSide prev_side = spill_table(prev, dir.path(), "prev", 2);
  const SpilledSide cur_side = spill_table(cur, dir.path(), "cur", 2);
  corrupt_payload_byte(prev_side.files[nonempty_partition(prev_side)]);

  std::size_t calls = 0;
  prev_side.regenerate = [&calls](std::size_t) {
    ++calls;  // claims success but repairs nothing
    return Status();
  };
  DiffResult got;
  const Status s = spill_diff_join(prev_side, cur_side, DiffOptions{}, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1u) << "exactly one regenerate attempt, then give up";
}

TEST(SpillReaderTest, TruncatedFileIsRejected) {
  SnapshotTable table;
  table.add(file_record("/lustre/atlas2/p/u/a", 1, 1, 1));
  TempDir dir("spider_spill_truncated");
  const SpilledSide side = spill_table(table, dir.path(), "t", 0);

  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(side.files[0], &bytes).ok());
  bytes.resize(bytes.size() - 10);
  ASSERT_TRUE(write_file_atomic(
                  side.files[0],
                  std::span<const std::uint8_t>(bytes.data(), bytes.size()))
                  .ok());
  SpillRecords records;
  EXPECT_FALSE(read_spill_partition(side.files[0], &records).ok());

  bytes.resize(8);  // shorter than any trailer
  ASSERT_TRUE(write_file_atomic(
                  side.files[0],
                  std::span<const std::uint8_t>(bytes.data(), bytes.size()))
                  .ok());
  EXPECT_EQ(read_spill_partition(side.files[0], &records).code(),
            StatusCode::kTruncated);
}

TEST(SpillJoinTest, EmptySidesJoinCleanly) {
  SnapshotTable prev, cur;
  TempDir dir("spider_spill_empty");
  const SpilledSide prev_side = spill_table(prev, dir.path(), "prev", 2);
  const SpilledSide cur_side = spill_table(cur, dir.path(), "cur", 2);
  DiffOptions options;
  options.dirs = true;
  DiffResult got;
  ASSERT_TRUE(spill_diff_join(prev_side, cur_side, options, &got).ok());
  EXPECT_TRUE(got.new_rows.empty());
  EXPECT_TRUE(got.deleted_rows.empty());
  EXPECT_EQ(got.prev_files, 0u);
  EXPECT_EQ(got.cur_files, 0u);
}

TEST(SpillJoinTest, MismatchedFanOutIsRejected) {
  SnapshotTable table;
  TempDir dir("spider_spill_mismatch");
  const SpilledSide a = spill_table(table, dir.path(), "a", 2);
  const SpilledSide b = spill_table(table, dir.path(), "b", 3);
  DiffResult got;
  EXPECT_EQ(spill_diff_join(a, b, DiffOptions{}, &got).code(),
            StatusCode::kInvalidArgument);
}

TEST(SpillWriterTest, AbandonedWriterRemovesItsFiles) {
  TempDir dir("spider_spill_cleanup");
  std::vector<std::string> files;
  {
    SnapshotTable table;
    table.add(file_record("/lustre/atlas2/p/u/a", 1, 1, 1));
    SpillPartitionWriter writer;
    SpillPartitionWriter::Options options;
    options.dir = dir.path();
    options.stem = "doomed";
    options.bits = 1;
    ASSERT_TRUE(writer.open(options).ok());
    ASSERT_TRUE(writer.add_table(table).ok());
    files = writer.files();
    for (const std::string& file : files) EXPECT_TRUE(fs::exists(file));
    // No finish(): the writer was abandoned mid-spill.
  }
  for (const std::string& file : files) EXPECT_FALSE(fs::exists(file));
}

}  // namespace
}  // namespace spider
