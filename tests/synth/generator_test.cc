// Invariant and calibration tests for the facility generator, run at a
// small scale so the whole suite stays fast.
#include "synth/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "snapshot/record.h"
#include "snapshot/scol.h"
#include "util/hash.h"
#include "util/timeutil.h"

namespace spider {
namespace {

FacilityConfig small_config() {
  FacilityConfig config;
  config.scale = 0.00005;
  config.weeks = 24;
  return config;
}

TEST(FacilityGeneratorTest, CountMatchesEmittedSnapshots) {
  FacilityGenerator gen(small_config());
  std::size_t emitted = 0;
  std::size_t last_week = 0;
  gen.visit([&](std::size_t week, const Snapshot&) {
    EXPECT_EQ(week, emitted);  // dense indices in order
    ++emitted;
    last_week = week;
  });
  EXPECT_EQ(emitted, gen.count());
  EXPECT_LT(gen.count(), small_config().weeks);  // gaps removed some
  EXPECT_EQ(last_week + 1, emitted);
}

TEST(FacilityGeneratorTest, GapsAreDeterministicAndBounded) {
  const auto gaps = FacilityGenerator::gap_weeks(small_config());
  EXPECT_FALSE(gaps.empty());
  EXPECT_EQ(gaps, FacilityGenerator::gap_weeks(small_config()));
  for (const std::size_t g : gaps) EXPECT_LT(g, small_config().weeks);

  FacilityConfig no_gaps = small_config();
  no_gaps.maintenance_gaps = false;
  EXPECT_TRUE(FacilityGenerator::gap_weeks(no_gaps).empty());
  EXPECT_EQ(FacilityGenerator(no_gaps).count(), no_gaps.weeks);
}

TEST(FacilityGeneratorTest, DefaultConfigEmits72Of86) {
  FacilityConfig config;  // defaults: 86 weeks, gaps on
  EXPECT_EQ(FacilityGenerator::gap_weeks(config).size(), 14u);
  EXPECT_EQ(FacilityGenerator(config).count(), 72u);
}

TEST(FacilityGeneratorTest, RecordsAreWellFormed) {
  FacilityGenerator gen(small_config());
  const std::int64_t start = small_config().start_epoch();
  std::size_t weeks_checked = 0;
  gen.visit([&](std::size_t week, const Snapshot& snap) {
    if (week % 7 != 0) return;  // sample a few weeks
    ++weeks_checked;
    const SnapshotTable& t = snap.table;
    ASSERT_GT(t.size(), 0u);
    std::set<std::string_view> paths;
    for (std::size_t i = 0; i < t.size(); ++i) {
      // Canonical prefix and project component resolvable.
      ASSERT_EQ(t.path(i).rfind("/lustre/atlas2/", 0), 0u) << t.path(i);
      ASSERT_FALSE(path_project(t.path(i)).empty());
      // Unique paths within a snapshot.
      ASSERT_TRUE(paths.insert(t.path(i)).second) << t.path(i);
      // Timestamp sanity: ctime <= snapshot date, atime >= mtime' rules.
      ASSERT_LE(t.ctime(i), snap.taken_at);
      ASSERT_GE(t.atime(i), t.mtime(i) - 1);
      // Purge invariant: no file atime older than purge window + slack.
      if (!t.is_dir(i)) {
        ASSERT_GE(t.atime(i),
                  snap.taken_at - 91 * kSecondsPerDay) << t.path(i);
        ASSERT_GE(t.stripe_count(i), 1u);
        ASSERT_LE(t.stripe_count(i), 1008u);
      } else {
        ASSERT_EQ(t.stripe_count(i), 0u);
      }
      ASSERT_NE(t.uid(i), 0u);
      ASSERT_NE(t.gid(i), 0u);
    }
    ASSERT_GE(snap.taken_at, start);
  });
  EXPECT_GT(weeks_checked, 1u);
}

TEST(FacilityGeneratorTest, DeterministicAcrossVisits) {
  FacilityGenerator gen(small_config());
  std::vector<std::uint64_t> digests_a, digests_b;
  auto digest_into = [](std::vector<std::uint64_t>& out) {
    return [&out](std::size_t, const Snapshot& snap) {
      std::uint64_t digest = snap.table.size();
      for (std::size_t i = 0; i < snap.table.size(); i += 37) {
        digest = hash_combine(digest, snap.table.path_hash(i));
        digest = hash_combine(digest,
                              static_cast<std::uint64_t>(snap.table.atime(i)));
      }
      out.push_back(digest);
    };
  };
  gen.visit(digest_into(digests_a));
  gen.visit(digest_into(digests_b));
  EXPECT_EQ(digests_a, digests_b);

  // A different seed must diverge.
  FacilityConfig other = small_config();
  other.seed ^= 0xabcdef;
  FacilityGenerator gen2(other);
  std::vector<std::uint64_t> digests_c;
  gen2.visit(digest_into(digests_c));
  EXPECT_NE(digests_a, digests_c);
}

TEST(FacilityGeneratorTest, PopulationTracksGrowthCurve) {
  FacilityConfig config = small_config();
  config.weeks = 30;
  FacilityGenerator gen(config);
  std::vector<std::size_t> files;
  gen.visit([&](std::size_t, const Snapshot& snap) {
    files.push_back(snap.table.file_count());
  });
  ASSERT_GT(files.size(), 5u);
  // Growth toward 5x overall; monotone within noise.
  EXPECT_GT(files.back(), files.front() * 2);
  // The curve is exponential-ish: the last quarter grows faster than the
  // first quarter in absolute terms.
  const std::size_t q = files.size() / 4;
  EXPECT_GT(files[files.size() - 1] - files[files.size() - 1 - q],
            files[q] - files[0]);
}

TEST(FacilityGeneratorTest, ScaleControlsVolume) {
  FacilityConfig small = small_config();
  FacilityConfig big = small_config();
  big.scale = small.scale * 4;
  std::size_t small_rows = 0, big_rows = 0;
  FacilityGenerator(small).visit([&](std::size_t week, const Snapshot& s) {
    if (week == 0) small_rows = s.table.size();
  });
  FacilityGenerator(big).visit([&](std::size_t week, const Snapshot& s) {
    if (week == 0) big_rows = s.table.size();
  });
  EXPECT_GT(big_rows, small_rows * 2);
}

std::string slurp(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(FacilityGeneratorTest, StreamedSeriesIsByteIdenticalToEager) {
  namespace fs = std::filesystem;
  FacilityConfig config = small_config();
  config.weeks = 10;  // spans the first maintenance gap (week 1 of 10)
  const fs::path base = fs::path(testing::TempDir()) / "spider_gen_stream";
  const fs::path eager_dir = base / "eager";
  const fs::path streamed_dir = base / "streamed";
  fs::remove_all(base);

  // Tiny groups force multi-group files so the stream writer's group
  // boundary handling is actually exercised, not just the tail flush.
  ScolOptions options;
  options.group_size = 1024;

  {
    FacilityGenerator gen(config);
    gen.visit_move([&](std::size_t, Snapshot&& snap) {
      std::error_code ec;
      fs::create_directories(eager_dir, ec);
      ASSERT_FALSE(ec);
      const std::string file =
          (eager_dir / ("snap_" + date_tag(snap.taken_at) + ".scol")).string();
      const Status ws = write_scol_file(snap.table, file, options);
      ASSERT_TRUE(ws.ok()) << ws.to_string();
    });
  }
  {
    FacilityGenerator gen(config);
    const Status s = save_series_streamed(gen, streamed_dir.string(), options);
    ASSERT_TRUE(s.ok()) << s.to_string();
  }

  std::vector<fs::path> eager_files, streamed_files;
  for (const auto& e : fs::directory_iterator(eager_dir))
    eager_files.push_back(e.path());
  for (const auto& e : fs::directory_iterator(streamed_dir))
    streamed_files.push_back(e.path());
  std::sort(eager_files.begin(), eager_files.end());
  std::sort(streamed_files.begin(), streamed_files.end());
  ASSERT_FALSE(eager_files.empty());
  ASSERT_EQ(eager_files.size(), streamed_files.size());
  for (std::size_t i = 0; i < eager_files.size(); ++i) {
    EXPECT_EQ(eager_files[i].filename(), streamed_files[i].filename());
    EXPECT_EQ(slurp(eager_files[i]), slurp(streamed_files[i]))
        << eager_files[i] << " differs from its streamed twin";
  }
  fs::remove_all(base);
}

TEST(FacilityGeneratorTest, VisitRecordsMatchesVisitRowForRow) {
  FacilityConfig config = small_config();
  config.weeks = 6;
  std::vector<Snapshot> eager;
  {
    FacilityGenerator gen(config);
    gen.visit_move(
        [&](std::size_t, Snapshot&& snap) { eager.push_back(std::move(snap)); });
  }
  FacilityGenerator gen(config);
  std::size_t weeks_seen = 0;
  const Status s = gen.visit_records([&](const WeekRecordBatch& batch) {
    EXPECT_EQ(batch.week, weeks_seen);
    const SnapshotTable& want = eager[batch.week].table;
    EXPECT_EQ(batch.taken_at, eager[batch.week].taken_at);
    EXPECT_EQ(batch.rows, want.size());
    std::size_t row = 0;
    Status st = batch.emit([&](std::string_view path, std::int64_t atime,
                               std::int64_t ctime, std::int64_t mtime,
                               std::uint32_t uid, std::uint32_t gid,
                               std::uint32_t mode, std::uint64_t inode,
                               std::span<const std::uint32_t> osts) {
      (void)osts;  // widths are covered by the byte-identity test above
      EXPECT_EQ(path, want.path(row));
      EXPECT_EQ(atime, want.atime(row));
      EXPECT_EQ(ctime, want.ctime(row));
      EXPECT_EQ(mtime, want.mtime(row));
      EXPECT_EQ(uid, want.uid(row));
      EXPECT_EQ(gid, want.gid(row));
      EXPECT_EQ(mode, want.mode(row));
      EXPECT_EQ(inode, want.inode(row));
      ++row;
      return Status();
    });
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(row, want.size());
    ++weeks_seen;
    return Status();
  });
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(weeks_seen, eager.size());
}

TEST(FacilityGeneratorTest, DeepChainsPresent) {
  // The stf depth-2030 and gen depth-432 stress trees exist from week 0.
  FacilityGenerator gen(small_config());
  std::size_t max_depth = 0;
  bool saw_432 = false;
  gen.visit([&](std::size_t week, const Snapshot& snap) {
    if (week != 0) return;
    for (std::size_t i = 0; i < snap.table.size(); ++i) {
      max_depth = std::max<std::size_t>(max_depth, snap.table.depth(i));
      if (snap.table.depth(i) == 432) saw_432 = true;
    }
  });
  EXPECT_EQ(max_depth, 2030u);
  EXPECT_TRUE(saw_432);
}

}  // namespace
}  // namespace spider
