#include "synth/domains.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "synth/langmap.h"

namespace spider {
namespace {

TEST(DomainsTest, ThirtyFiveDomains380Projects) {
  EXPECT_EQ(domain_count(), 35u);
  EXPECT_EQ(total_projects(), 380);  // the paper's §1 headline
}

TEST(DomainsTest, TagsAreUniqueThreeLetter) {
  std::set<std::string> tags;
  for (const DomainProfile& d : domain_profiles()) {
    EXPECT_EQ(std::string(d.id).size(), 3u);
    EXPECT_TRUE(tags.insert(d.id).second) << d.id;
  }
}

TEST(DomainsTest, LookupByTag) {
  EXPECT_GE(domain_index("cli"), 0);
  EXPECT_GE(domain_index("stf"), 0);
  EXPECT_EQ(domain_index("cli"),
            static_cast<int>(&domain_profiles()[static_cast<std::size_t>(
                                 domain_index("cli"))] -
                             domain_profiles().data()));
  EXPECT_EQ(domain_index("zzz"), -1);
}

TEST(DomainsTest, Table1ValuesAreSane) {
  for (const DomainProfile& d : domain_profiles()) {
    EXPECT_GT(d.projects, 0) << d.id;
    EXPECT_GE(d.entries_k, 0.0) << d.id;
    EXPECT_GE(d.depth_median, 3) << d.id;
    EXPECT_GE(d.depth_max, d.depth_median) << d.id;
    EXPECT_GE(d.ost_max, 2) << d.id;
    EXPECT_GE(d.network_pct, 0.0) << d.id;
    EXPECT_LE(d.network_pct, 100.0) << d.id;
    EXPECT_GT(d.dir_fraction, 0.0) << d.id;
    EXPECT_LT(d.dir_fraction, 1.0) << d.id;
    EXPECT_GE(d.median_project_users, 1) << d.id;
    // Top-extension shares are percentages and descending.
    EXPECT_GE(d.top_ext[0].percent, d.top_ext[1].percent) << d.id;
    EXPECT_GE(d.top_ext[1].percent, d.top_ext[2].percent) << d.id;
    EXPECT_LE(d.top_ext[0].percent, 100.0) << d.id;
    // Languages must exist in the language map.
    EXPECT_GE(language_index(d.lang1), 0) << d.id << " " << d.lang1;
    EXPECT_GE(language_index(d.lang2), 0) << d.id << " " << d.lang2;
  }
}

TEST(DomainsTest, KeyPaperRowsTranscribed) {
  const auto& cli = domain_profiles()[static_cast<std::size_t>(domain_index("cli"))];
  EXPECT_EQ(cli.projects, 21);
  EXPECT_STREQ(cli.top_ext[0].ext, "nc");
  EXPECT_NEAR(cli.collab_pct, 45.80, 1e-9);
  EXPECT_NEAR(cli.network_pct, 76.19, 1e-9);

  const auto& stf = domain_profiles()[static_cast<std::size_t>(domain_index("stf"))];
  EXPECT_EQ(stf.depth_max, 2030);

  const auto& gen = domain_profiles()[static_cast<std::size_t>(domain_index("gen"))];
  EXPECT_EQ(gen.depth_max, 432);

  const auto& ast = domain_profiles()[static_cast<std::size_t>(domain_index("ast"))];
  EXPECT_EQ(ast.ost_max, 122);
  EXPECT_TRUE(ast.wide_stripes);

  const auto& csc = domain_profiles()[static_cast<std::size_t>(domain_index("csc"))];
  EXPECT_EQ(csc.projects, 62);  // the largest domain
}

TEST(LangmapTest, ExtensionLookup) {
  EXPECT_EQ(languages()[static_cast<std::size_t>(
                            language_for_extension("c"))].name,
            std::string("C"));
  EXPECT_EQ(languages()[static_cast<std::size_t>(
                            language_for_extension("f90"))].name,
            std::string("Fortran"));
  // The paper's quirk: .pl counts as Prolog.
  EXPECT_EQ(languages()[static_cast<std::size_t>(
                            language_for_extension("pl"))].name,
            std::string("Prolog"));
  // Case sensitivity: .F is Fortran, .R is R.
  EXPECT_EQ(languages()[static_cast<std::size_t>(
                            language_for_extension("F"))].name,
            std::string("Fortran"));
  EXPECT_EQ(languages()[static_cast<std::size_t>(
                            language_for_extension("R"))].name,
            std::string("R"));
  // Data extensions must NOT map to languages.
  EXPECT_EQ(language_for_extension("d"), -1);    // Materials ".d" data
  EXPECT_EQ(language_for_extension("mat"), -1);  // Matlab *data*
  EXPECT_EQ(language_for_extension("nc"), -1);
  EXPECT_EQ(language_for_extension(""), -1);
}

TEST(LangmapTest, NoExtensionOwnedByTwoLanguages) {
  std::set<std::string> seen;
  for (const LanguageInfo& lang : languages()) {
    for (const char* const* e = lang.exts; *e != nullptr; ++e) {
      EXPECT_TRUE(seen.insert(*e).second)
          << "extension " << *e << " mapped twice";
    }
  }
}

TEST(LangmapTest, IndexRoundTrip) {
  for (const LanguageInfo& lang : languages()) {
    const int i = language_index(lang.name);
    ASSERT_GE(i, 0);
    EXPECT_EQ(languages()[static_cast<std::size_t>(i)].name,
              std::string(lang.name));
  }
  EXPECT_EQ(language_index("Brainfuck"), -1);
}

}  // namespace
}  // namespace spider
