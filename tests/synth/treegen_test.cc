#include "synth/treegen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "snapshot/record.h"

namespace spider {
namespace {

const DomainProfile& profile(const char* id) {
  return domain_profiles()[static_cast<std::size_t>(domain_index(id))];
}

TEST(ProjectTreeTest, RootAndUserDirs) {
  ProjectTree tree("/lustre/atlas2/cli104", profile("cli"), Rng(1));
  EXPECT_EQ(tree.dir_count(), 1u);
  EXPECT_EQ(tree.dir_path(0), "/lustre/atlas2/cli104");
  EXPECT_EQ(tree.dir_depth(0), 3);

  const std::size_t u1 = tree.ensure_user_dir("u0001", 10001);
  const std::size_t u2 = tree.ensure_user_dir("u0002", 10002);
  EXPECT_NE(u1, u2);
  EXPECT_EQ(tree.dir_path(u1), "/lustre/atlas2/cli104/u0001");
  EXPECT_EQ(tree.dir_depth(u1), 4);
  EXPECT_EQ(tree.dir_uid(u1), 10001u);
  // Idempotent.
  EXPECT_EQ(tree.ensure_user_dir("u0001", 10001), u1);
  EXPECT_EQ(tree.dir_count(), 3u);
}

TEST(ProjectTreeTest, GrowAddsExactlyCountDirs) {
  ProjectTree tree("/lustre/atlas2/cli104", profile("cli"), Rng(2));
  tree.ensure_user_dir("u0001", 10001);
  tree.set_clock(1'420'000'000);
  tree.grow(500);
  EXPECT_EQ(tree.dir_count(), 502u);
  for (std::size_t d = 0; d < tree.dir_count(); ++d) {
    // Every path is rooted in the project and depth matches components.
    EXPECT_EQ(tree.dir_path(d).rfind("/lustre/atlas2/cli104", 0), 0u);
    EXPECT_EQ(tree.dir_depth(d), path_depth(tree.dir_path(d)));
  }
  EXPECT_EQ(tree.dir_ctime(501), 1'420'000'000);
}

TEST(ProjectTreeTest, DepthsTrackDomainProfile) {
  // mat has depth_median 16; aph has 10. Grown trees should differ.
  ProjectTree deep("/lustre/atlas2/mat101", profile("mat"), Rng(3));
  deep.ensure_user_dir("u1", 1);
  deep.grow(2000);
  ProjectTree shallow("/lustre/atlas2/aph101", profile("aph"), Rng(3));
  shallow.ensure_user_dir("u1", 1);
  shallow.grow(2000);

  auto median_depth = [](const ProjectTree& tree) {
    std::vector<int> depths;
    for (std::size_t d = 1; d < tree.dir_count(); ++d) {
      depths.push_back(tree.dir_depth(d));
    }
    std::nth_element(depths.begin(), depths.begin() + depths.size() / 2,
                     depths.end());
    return depths[depths.size() / 2];
  };
  EXPECT_GT(median_depth(deep), median_depth(shallow));
  // Respect the domain's cap (chains are bounded by depth_max - 1, i.e.
  // the deepest file sits at depth_max).
  for (std::size_t d = 0; d < deep.dir_count(); ++d) {
    EXPECT_LT(deep.dir_depth(d), profile("mat").depth_max);
  }
}

TEST(ProjectTreeTest, DeepChainReachesTarget) {
  ProjectTree tree("/lustre/atlas2/stf101", profile("stf"), Rng(4));
  tree.ensure_user_dir("u1", 1);
  tree.add_deep_chain(2030, 1);
  std::size_t max_depth = 0;
  for (std::size_t d = 0; d < tree.dir_count(); ++d) {
    max_depth = std::max<std::size_t>(max_depth, tree.dir_depth(d));
  }
  EXPECT_EQ(max_depth, 2030u);
}

TEST(ProjectTreeTest, FilePlacementConcentrates) {
  ProjectTree tree("/lustre/atlas2/bip101", profile("bip"), Rng(5));
  tree.ensure_user_dir("u1", 1);
  tree.grow(1000);
  Rng rng(6);
  std::map<std::size_t, int> placements;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) ++placements[tree.sample_file_dir(rng)];
  // Top-10 directories should absorb a large share of file placements
  // (the paper's many-files-per-directory observation).
  std::vector<int> counts;
  for (const auto& [dir, count] : placements) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  int top10 = 0;
  for (int i = 0; i < 10 && i < static_cast<int>(counts.size()); ++i) {
    top10 += counts[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(top10, kSamples / 4);
  // The root itself never receives files.
  EXPECT_EQ(placements.count(0), 0u);
}

TEST(ProjectTreeTest, UniquePaths) {
  ProjectTree tree("/lustre/atlas2/csc101", profile("csc"), Rng(7));
  tree.ensure_user_dir("u1", 1);
  tree.ensure_user_dir("u2", 2);
  tree.grow(3000);
  std::set<std::string> seen;
  for (std::size_t d = 0; d < tree.dir_count(); ++d) {
    EXPECT_TRUE(seen.insert(tree.dir_path(d)).second)
        << "duplicate directory path: " << tree.dir_path(d);
  }
}

}  // namespace
}  // namespace spider
