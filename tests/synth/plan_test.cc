// Calibration tests for the facility planner: the static structure the
// paper reports (user/project counts, org mix, degree quantiles, component
// structure, forced network features) must hold for any seed.
#include "synth/plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/components.h"
#include "graph/metrics.h"

namespace spider {
namespace {

class PlanTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { plan_ = plan_facility(GetParam()); }
  FacilityPlan plan_;
};

TEST_P(PlanTest, HeadlineCounts) {
  EXPECT_EQ(plan_.users.size(), 1362u);
  EXPECT_EQ(plan_.projects.size(), 380u);
  EXPECT_GT(plan_.memberships.size(), 1500u);
}

TEST_P(PlanTest, EveryProjectHasMembersEveryUserHasProject) {
  std::vector<int> degree(plan_.users.size(), 0);
  for (const ProjectInfo& project : plan_.projects) {
    EXPECT_FALSE(project.members.empty()) << project.name;
    EXPECT_TRUE(std::is_sorted(project.members.begin(),
                               project.members.end()));
    // No duplicate members.
    EXPECT_EQ(std::adjacent_find(project.members.begin(),
                                 project.members.end()),
              project.members.end());
    for (const std::uint32_t u : project.members) {
      ASSERT_LT(u, plan_.users.size());
      ++degree[u];
    }
  }
  for (std::size_t u = 0; u < degree.size(); ++u) {
    EXPECT_GT(degree[u], 0) << "user " << u << " belongs to no project";
  }
}

TEST_P(PlanTest, ProjectCountsPerDomainMatchTable1) {
  std::vector<int> per_domain(domain_count(), 0);
  for (const ProjectInfo& project : plan_.projects) {
    ++per_domain[static_cast<std::size_t>(project.domain)];
  }
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    EXPECT_EQ(per_domain[d], profiles[d].projects) << profiles[d].id;
  }
}

TEST_P(PlanTest, OrgMixMatchesFig5a) {
  std::size_t counts[kOrgTypeCount] = {};
  for (const UserAccount& user : plan_.users) {
    ++counts[static_cast<std::size_t>(user.org)];
  }
  const double n = static_cast<double>(plan_.users.size());
  EXPECT_GT(counts[0] / n, 0.45);  // government > 50% (tolerance)
  EXPECT_NEAR(counts[1] / n, 0.24, 0.06);  // academia
  EXPECT_NEAR(counts[2] / n, 0.19, 0.06);  // industry
}

TEST_P(PlanTest, DegreeQuantilesMatchFig6a) {
  std::vector<int> degree(plan_.users.size(), 0);
  for (const MembershipEdge& edge : plan_.memberships) ++degree[edge.user];
  const double n = static_cast<double>(plan_.users.size());
  std::size_t multi = 0, gt2 = 0, ge8 = 0;
  for (const int d : degree) {
    if (d > 1) ++multi;
    if (d > 2) ++gt2;
    if (d >= 8) ++ge8;
  }
  EXPECT_GT(multi / n, 0.55);          // paper: >60%
  EXPECT_LT(multi / n, 0.75);
  EXPECT_NEAR(gt2 / n, 0.20, 0.06);    // paper: ~20%
  EXPECT_NEAR(ge8 / n, 0.02, 0.015);   // paper: ~2%
}

TEST_P(PlanTest, ComponentStructureMatchesTable3) {
  const BipartiteGraph network(
      static_cast<std::uint32_t>(plan_.users.size()),
      static_cast<std::uint32_t>(plan_.projects.size()), plan_.memberships);
  const ComponentInfo info = connected_components(network.graph());
  const auto histogram = component_size_histogram(info);

  // Small-community histogram: exact by construction.
  EXPECT_EQ(histogram.at(2), 94u);
  EXPECT_EQ(histogram.at(3), 31u);
  EXPECT_EQ(histogram.at(4), 15u);
  EXPECT_EQ(histogram.at(5), 7u);
  EXPECT_EQ(histogram.at(7), 6u);

  // One giant component close to the paper's 1,259 vertices with 1,051
  // users; everything planned as giant must be connected.
  const std::uint32_t giant = info.size[info.largest];
  EXPECT_NEAR(giant, 1259.0, 30.0);
  std::size_t giant_users = 0, giant_projects = 0;
  for (std::size_t v = 0; v < info.label.size(); ++v) {
    if (info.label[v] != info.largest) continue;
    if (v < plan_.users.size()) {
      ++giant_users;
    } else {
      ++giant_projects;
    }
  }
  EXPECT_NEAR(giant_users, 1051.0, 30.0);
  EXPECT_NEAR(giant_projects, 208.0, 12.0);
}

TEST_P(PlanTest, GiantIntentRealized) {
  const BipartiteGraph network(
      static_cast<std::uint32_t>(plan_.users.size()),
      static_cast<std::uint32_t>(plan_.projects.size()), plan_.memberships);
  const ComponentInfo info = connected_components(network.graph());
  for (std::size_t p = 0; p < plan_.projects.size(); ++p) {
    if (plan_.projects[p].giant_intent) {
      EXPECT_TRUE(info.in_largest(network.project_vertex(
          static_cast<std::uint32_t>(p))))
          << plan_.projects[p].name;
    }
  }
}

TEST_P(PlanTest, ExtremePairForced) {
  // Exactly the paper's §4.3.3 pair: 5 cli + 1 csc shared projects, and no
  // other pair exceeds it.
  std::vector<std::vector<std::uint32_t>> members(plan_.projects.size());
  std::vector<std::uint32_t> project_domain(plan_.projects.size());
  for (std::size_t p = 0; p < plan_.projects.size(); ++p) {
    members[p] = plan_.projects[p].members;
    project_domain[p] =
        static_cast<std::uint32_t>(plan_.projects[p].domain);
  }
  const CollaborationStats stats = collaboration_stats(
      static_cast<std::uint32_t>(plan_.users.size()), members,
      project_domain, domain_count());
  EXPECT_EQ(stats.max_shared_projects, 6u);
}

TEST_P(PlanTest, LookupsAndIds) {
  EXPECT_EQ(plan_.user_index(plan_.users[5].uid), 5);
  EXPECT_EQ(plan_.user_index(1), -1);
  EXPECT_EQ(plan_.project_index(plan_.projects[7].name), 7);
  EXPECT_EQ(plan_.project_index("nope999"), -1);
  std::set<std::string> names;
  for (const ProjectInfo& project : plan_.projects) {
    EXPECT_TRUE(names.insert(project.name).second) << project.name;
  }
}

TEST_P(PlanTest, DeterministicForSeed) {
  const FacilityPlan again = plan_facility(GetParam());
  ASSERT_EQ(again.memberships.size(), plan_.memberships.size());
  for (std::size_t i = 0; i < again.memberships.size(); ++i) {
    ASSERT_EQ(again.memberships[i].user, plan_.memberships[i].user);
    ASSERT_EQ(again.memberships[i].project, plan_.memberships[i].project);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanTest,
                         ::testing::Values(20150105, 7, 123456789));

}  // namespace
}  // namespace spider
