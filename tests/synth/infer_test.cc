// Tests for facility inference: reconstructing users/projects/memberships
// from snapshots must agree with the generator's ground-truth plan.
#include "synth/infer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "synth/generator.h"

namespace spider {
namespace {

TEST(InferFacilityTest, RoundTripsGeneratorStructure) {
  FacilityConfig config;
  config.scale = 0.00005;
  config.weeks = 16;
  FacilityGenerator generator(config);
  const FacilityPlan& truth = generator.plan();

  InferenceStats stats;
  const FacilityPlan inferred = infer_facility(generator, &stats);

  // Every project produced files, so all 380 are rediscovered; domain
  // tags resolve from the name prefixes.
  EXPECT_EQ(stats.projects, truth.projects.size());
  EXPECT_EQ(stats.unmatched_projects, 0u);
  EXPECT_EQ(stats.users, truth.users.size());

  // Project domains match ground truth.
  for (const ProjectInfo& project : inferred.projects) {
    const int truth_index = truth.project_index(project.name);
    ASSERT_GE(truth_index, 0) << project.name;
    EXPECT_EQ(project.domain,
              truth.projects[static_cast<std::size_t>(truth_index)].domain)
        << project.name;
    EXPECT_EQ(project.gid,
              truth.projects[static_cast<std::size_t>(truth_index)].gid);
  }

  // Membership incidence: inferred (uid, project-name) pairs must be a
  // subset of the planned ones (activity sampling may leave a rare
  // planned membership unexercised) and cover nearly all of them.
  std::set<std::pair<std::uint32_t, std::string>> planned;
  for (const ProjectInfo& project : truth.projects) {
    for (const std::uint32_t member : project.members) {
      planned.emplace(truth.users[member].uid, project.name);
    }
  }
  std::size_t covered = 0;
  for (const ProjectInfo& project : inferred.projects) {
    for (const std::uint32_t member : project.members) {
      const auto pair =
          std::make_pair(inferred.users[member].uid, project.name);
      ASSERT_TRUE(planned.count(pair))
          << "inferred membership not planned: uid=" << pair.first << " "
          << pair.second;
      ++covered;
    }
  }
  EXPECT_GT(covered, planned.size() * 9 / 10);
}

TEST(InferFacilityTest, UnknownPrefixFallsBackToGeneral) {
  SnapshotSeries series;
  Snapshot snap;
  snap.taken_at = 1'420'416'000;
  RawRecord rec;
  rec.path = "/lustre/atlas2/zzz999/u1/file.dat";
  rec.uid = 55555;
  rec.gid = 7777;
  rec.atime = rec.ctime = rec.mtime = 100;
  snap.table.add(rec);
  series.add(std::move(snap));

  InferenceStats stats;
  const FacilityPlan plan = infer_facility(series, &stats);
  EXPECT_EQ(stats.projects, 1u);
  EXPECT_EQ(stats.unmatched_projects, 1u);
  ASSERT_EQ(plan.projects.size(), 1u);
  EXPECT_EQ(plan.projects[0].domain, domain_index("gen"));
  EXPECT_EQ(plan.projects[0].name, "zzz999");
  ASSERT_EQ(plan.users.size(), 1u);
  EXPECT_EQ(plan.users[0].uid, 55555u);
  EXPECT_EQ(plan.users[0].org, OrgType::kOther);
}

TEST(InferFacilityTest, PrimaryDomainIsMajorityDomain) {
  SnapshotSeries series;
  Snapshot snap;
  snap.taken_at = 1'420'416'000;
  auto add = [&snap](const std::string& path, std::uint32_t gid) {
    RawRecord rec;
    rec.path = path;
    rec.uid = 42;
    rec.gid = gid;
    rec.atime = rec.ctime = rec.mtime = 100;
    snap.table.add(rec);
  };
  add("/lustre/atlas2/cli900/u/a", 1);
  add("/lustre/atlas2/cli900/u/b", 1);
  add("/lustre/atlas2/cli900/u/c", 1);
  add("/lustre/atlas2/nph900/u/d", 2);
  series.add(std::move(snap));

  const FacilityPlan plan = infer_facility(series);
  ASSERT_EQ(plan.users.size(), 1u);
  EXPECT_EQ(plan.users[0].primary_domain, domain_index("cli"));
  EXPECT_EQ(plan.memberships.size(), 2u);
}

}  // namespace
}  // namespace spider
