#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bipartite.h"
#include "graph/components.h"
#include "graph/metrics.h"

namespace spider {
namespace {

Graph path_graph(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::from_edges(n, edges);
}

TEST(GraphTest, BuildsCsrWithDedupAndNoSelfLoops) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);  // {0,1} deduped, {2,2} dropped
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  const auto n1 = g.neighbors(1);
  EXPECT_EQ(std::vector<VertexId>(n1.begin(), n1.end()),
            (std::vector<VertexId>{0, 2}));
}

TEST(GraphTest, OutOfRangeEdgesDropped) {
  const std::vector<Edge> edges = {{0, 5}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphTest, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(UnionFindTest, UniteAndFind) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
  EXPECT_EQ(uf.set_size(0), 2u);
  uf.unite(0, 2);
  EXPECT_EQ(uf.set_size(3), 4u);
}

TEST(ComponentsTest, TwoComponentsAndHistogram) {
  //  0-1-2   3-4   5(isolated)
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {3, 4}};
  const Graph g = Graph::from_edges(6, edges);
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.count, 3u);
  EXPECT_EQ(info.label[0], info.label[1]);
  EXPECT_EQ(info.label[1], info.label[2]);
  EXPECT_EQ(info.label[3], info.label[4]);
  EXPECT_NE(info.label[0], info.label[3]);
  EXPECT_EQ(info.size[info.largest], 3u);
  EXPECT_TRUE(info.in_largest(2));
  EXPECT_FALSE(info.in_largest(5));
  EXPECT_EQ(info.members(info.largest), (std::vector<VertexId>{0, 1, 2}));

  const auto hist = component_size_histogram(info);
  EXPECT_EQ(hist.at(1), 1u);
  EXPECT_EQ(hist.at(2), 1u);
  EXPECT_EQ(hist.at(3), 1u);
}

TEST(MetricsTest, BfsDistances) {
  const Graph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
  EXPECT_EQ(eccentricity(g, 0), 4u);
  EXPECT_EQ(eccentricity(g, 2), 2u);
}

TEST(MetricsTest, UnreachableVertices) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = Graph::from_edges(3, edges);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(eccentricity(g, 0), 1u);
}

TEST(MetricsTest, PathGraphDiameterRadiusCenter) {
  const Graph g = path_graph(7);
  std::vector<VertexId> all(7);
  for (VertexId v = 0; v < 7; ++v) all[v] = v;
  const DiameterInfo info = component_diameter(g, all);
  EXPECT_EQ(info.diameter, 6u);
  EXPECT_EQ(info.radius, 3u);
  EXPECT_EQ(info.centers, (std::vector<VertexId>{3}));
  EXPECT_EQ(double_sweep_lower_bound(g, 3), 6u);
}

TEST(MetricsTest, CycleDiameter) {
  std::vector<Edge> edges;
  constexpr VertexId kN = 10;
  for (VertexId v = 0; v < kN; ++v) edges.emplace_back(v, (v + 1) % kN);
  const Graph g = Graph::from_edges(kN, edges);
  std::vector<VertexId> all(kN);
  for (VertexId v = 0; v < kN; ++v) all[v] = v;
  const DiameterInfo info = component_diameter(g, all);
  EXPECT_EQ(info.diameter, 5u);
  EXPECT_EQ(info.radius, 5u);
  EXPECT_EQ(info.centers.size(), kN);  // every vertex is central on a cycle
}

TEST(MetricsTest, DegreeHistogramAndPowerLaw) {
  // Star graph: one hub of degree 9, nine leaves of degree 1.
  std::vector<Edge> edges;
  for (VertexId v = 1; v < 10; ++v) edges.emplace_back(0, v);
  const Graph g = Graph::from_edges(10, edges);
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 10u);
  EXPECT_EQ(hist[1], 9u);
  EXPECT_EQ(hist[9], 1u);
  const LinearFit fit = degree_power_law_fit(g);
  EXPECT_LT(fit.slope, 0.0);
}

TEST(BipartiteTest, VertexNumbering) {
  const std::vector<MembershipEdge> members = {{0, 0}, {1, 0}, {1, 1}};
  const BipartiteGraph bg(2, 2, members);
  EXPECT_EQ(bg.graph().vertex_count(), 4u);
  EXPECT_EQ(bg.graph().edge_count(), 3u);
  EXPECT_TRUE(bg.is_project_vertex(2));
  EXPECT_FALSE(bg.is_project_vertex(1));
  EXPECT_EQ(bg.project_of_vertex(3), 1u);
  EXPECT_EQ(bg.project_vertex(0), 2u);
}

TEST(BipartiteTest, OutOfRangeMembershipsDropped) {
  const std::vector<MembershipEdge> members = {{0, 0}, {5, 0}, {0, 9}};
  const BipartiteGraph bg(2, 2, members);
  EXPECT_EQ(bg.graph().edge_count(), 1u);
}

TEST(CollaborationTest, PairCountingAndDomains) {
  // Projects: p0 (domain 0) members {0,1,2}; p1 (domain 1) members {1,2};
  // p2 (domain 0) members {1,2} -> pair (1,2) shares 3 projects.
  const std::vector<std::vector<std::uint32_t>> members = {
      {0, 1, 2}, {1, 2}, {1, 2}};
  const std::vector<std::uint32_t> domains = {0, 1, 0};
  const CollaborationStats stats =
      collaboration_stats(4, members, domains, 2);
  EXPECT_EQ(stats.total_user_pairs, 6u);  // C(4,2)
  EXPECT_EQ(stats.collaborating_pairs, 3u);  // (0,1), (0,2), (1,2)
  EXPECT_EQ(stats.max_shared_projects, 3u);
  EXPECT_EQ(stats.max_pair_user_a, 1u);
  EXPECT_EQ(stats.max_pair_user_b, 2u);
  EXPECT_EQ(stats.pairs_touching_domain[0], 3u);
  EXPECT_EQ(stats.pairs_touching_domain[1], 1u);
  EXPECT_DOUBLE_EQ(stats.collaborating_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(stats.domain_share(1), 1.0 / 3.0);
}

TEST(CollaborationTest, DuplicateMembersCountOnce) {
  const std::vector<std::vector<std::uint32_t>> members = {{0, 1, 1, 0}};
  const std::vector<std::uint32_t> domains = {0};
  const CollaborationStats stats =
      collaboration_stats(2, members, domains, 1);
  EXPECT_EQ(stats.collaborating_pairs, 1u);
  EXPECT_EQ(stats.max_shared_projects, 1u);
}

}  // namespace
}  // namespace spider
