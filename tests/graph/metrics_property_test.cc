// Property tests for the graph metrics on random graphs: structural
// invariants that must hold regardless of topology.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/components.h"
#include "graph/metrics.h"
#include "util/prng.h"

namespace spider {
namespace {

Graph random_graph(Rng& rng, VertexId n, std::size_t edges) {
  std::vector<Edge> list;
  for (std::size_t e = 0; e < edges; ++e) {
    list.emplace_back(static_cast<VertexId>(rng.uniform_u64(n)),
                      static_cast<VertexId>(rng.uniform_u64(n)));
  }
  return Graph::from_edges(n, list);
}

class GraphPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphPropertyTest, ComponentSizesPartitionVertices) {
  Rng rng(GetParam());
  const Graph g = random_graph(rng, 300, 250);
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(std::accumulate(info.size.begin(), info.size.end(), 0u),
            g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    ASSERT_LT(info.label[v], info.count);
  }
  // Neighbors share a component.
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    for (const VertexId u : g.neighbors(static_cast<VertexId>(v))) {
      ASSERT_EQ(info.label[v], info.label[u]);
    }
  }
  // Histogram counts match component count.
  std::uint32_t total = 0;
  for (const auto& [size, count] : component_size_histogram(info)) {
    total += count;
  }
  EXPECT_EQ(total, info.count);
}

TEST_P(GraphPropertyTest, BfsDistancesAreMetric) {
  Rng rng(GetParam() ^ 0xabc);
  const Graph g = random_graph(rng, 200, 300);
  const VertexId src = static_cast<VertexId>(rng.uniform_u64(200));
  const auto dist = bfs_distances(g, src);
  EXPECT_EQ(dist[src], 0u);
  // Triangle property along edges: reachable neighbors differ by <= 1.
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (dist[v] == kUnreachable) continue;
    for (const VertexId u : g.neighbors(static_cast<VertexId>(v))) {
      ASSERT_NE(dist[u], kUnreachable);
      ASSERT_LE(dist[u], dist[v] + 1);
      ASSERT_LE(dist[v], dist[u] + 1);
    }
  }
  // Symmetry: d(src -> x) == d(x -> src) in an undirected graph.
  const VertexId other = static_cast<VertexId>(rng.uniform_u64(200));
  const auto back = bfs_distances(g, other);
  EXPECT_EQ(dist[other], back[src]);
}

TEST_P(GraphPropertyTest, DiameterBoundsAndCenters) {
  Rng rng(GetParam() ^ 0xdef);
  const Graph g = random_graph(rng, 150, 200);
  const ComponentInfo info = connected_components(g);
  const auto members = info.members(info.largest);
  if (members.size() < 3) GTEST_SKIP() << "degenerate random graph";
  const DiameterInfo di = component_diameter(g, members);

  // radius <= diameter <= 2 * radius.
  EXPECT_LE(di.radius, di.diameter);
  EXPECT_LE(di.diameter, 2 * di.radius);
  // Double sweep never exceeds the exact diameter.
  EXPECT_LE(double_sweep_lower_bound(g, members.front()), di.diameter);
  // Every center attains the radius.
  for (const VertexId c : di.centers) {
    EXPECT_EQ(eccentricity(g, c), di.radius);
  }
  ASSERT_FALSE(di.centers.empty());
}

TEST_P(GraphPropertyTest, DegreeHistogramAccountsAllVertices) {
  Rng rng(GetParam() ^ 0x555);
  const Graph g = random_graph(rng, 400, 600);
  const auto hist = degree_histogram(g);
  std::uint64_t vertices = 0, degree_mass = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    vertices += hist[d];
    degree_mass += d * hist[d];
  }
  EXPECT_EQ(vertices, g.vertex_count());
  EXPECT_EQ(degree_mass, 2 * g.edge_count());  // handshake lemma
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace spider
