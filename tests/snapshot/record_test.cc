#include "snapshot/record.h"

#include <gtest/gtest.h>

namespace spider {
namespace {

TEST(PathDepthTest, CountsComponents) {
  EXPECT_EQ(path_depth("/"), 0u);
  EXPECT_EQ(path_depth(""), 0u);
  EXPECT_EQ(path_depth("/a"), 1u);
  EXPECT_EQ(path_depth("/a/b/c"), 3u);
  EXPECT_EQ(path_depth("/lustre/atlas2/cli101/u0042/run1/out.nc"), 6u);
  // Repeated and trailing slashes do not create components.
  EXPECT_EQ(path_depth("//a//b/"), 2u);
}

TEST(PathComponentTest, Indexing) {
  const std::string_view p = "/lustre/atlas2/cli101/u0042/run1/out.nc";
  EXPECT_EQ(path_component(p, 0), "lustre");
  EXPECT_EQ(path_component(p, 1), "atlas2");
  EXPECT_EQ(path_component(p, 2), "cli101");
  EXPECT_EQ(path_component(p, 3), "u0042");
  EXPECT_EQ(path_component(p, 5), "out.nc");
  EXPECT_EQ(path_component(p, 6), "");
  EXPECT_EQ(path_project(p), "cli101");
  EXPECT_EQ(path_user(p), "u0042");
}

TEST(PathBasenameTest, Variants) {
  EXPECT_EQ(path_basename("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(path_basename("/a/b/"), "b");
  EXPECT_EQ(path_basename("/"), "");
  EXPECT_EQ(path_basename("plain"), "plain");
}

TEST(PathParentTest, Variants) {
  EXPECT_EQ(path_parent("/a/b/c"), "/a/b");
  EXPECT_EQ(path_parent("/a"), "/");
  EXPECT_EQ(path_parent("/"), "/");
  EXPECT_EQ(path_parent("/a/b/"), "/a");
}

TEST(PathExtensionTest, PaperConventions) {
  EXPECT_EQ(path_extension("/p/u/data.nc"), "nc");
  EXPECT_EQ(path_extension("/p/u/x.tar.gz"), "gz");
  // Numeric suffixes are extensions in the paper's counting.
  EXPECT_EQ(path_extension("/p/u/result.1"), "1");
  // Checkpoint-style names with embedded dots.
  EXPECT_EQ(path_extension("/p/u/f.00000245"), "00000245");
  // No extension cases.
  EXPECT_EQ(path_extension("/p/u/README"), "");
  EXPECT_EQ(path_extension("/p/u/.bashrc"), "");
  EXPECT_EQ(path_extension("/p/u/trailingdot."), "");
  // Case is preserved.
  EXPECT_EQ(path_extension("/p/u/graph.GraphGeod"), "GraphGeod");
}

TEST(ModeTest, TypeBits) {
  EXPECT_TRUE(mode_is_regular(kModeRegular | 0644));
  EXPECT_FALSE(mode_is_dir(kModeRegular | 0644));
  EXPECT_TRUE(mode_is_dir(kModeDirectory | 0755));
  EXPECT_FALSE(mode_is_regular(kModeDirectory | 0755));
  RawRecord rec;
  rec.mode = kModeDirectory | 0775;
  EXPECT_TRUE(rec.is_dir());
}

}  // namespace
}  // namespace spider
