// Fault-injection harness: seeded corruption sweeps over .scol v2 images
// and PSV text (bit flips, truncations, torn tails — 160+ scenarios),
// asserting that salvage ingest never aborts, recovers exactly the
// undamaged groups/rows, and that SalvageReport / PsvReadReport totals
// match the injected damage. Plus the truncation-at-every-boundary sweep
// (clean Status, no partial mutation) and end-to-end series degradation:
// a damaged week directory runs the full study with gaps reported.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "snapshot/psv.h"
#include "snapshot/scol.h"
#include "snapshot/series.h"
#include "study/full_study.h"
#include "study/runner.h"
#include "synth/generator.h"
#include "synth/infer.h"
#include "util/fault.h"
#include "util/io.h"
#include "util/prng.h"
#include "util/timeutil.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kGroup = 64;

SnapshotTable make_table(std::size_t rows, std::uint64_t seed = 7) {
  Rng rng(seed);
  SnapshotTable t;
  std::int64_t mtime = 1420416000;
  for (std::size_t i = 0; i < rows; ++i) {
    RawRecord rec;
    const std::size_t proj = i / 50;
    rec.path = "/lustre/atlas2/proj" + std::to_string(proj) + "/u" +
               std::to_string(proj % 7) + "/run" + std::to_string(i % 9) +
               "/step." + std::to_string(i);
    mtime += static_cast<std::int64_t>(rng.uniform_u64(1000));
    rec.mtime = mtime;
    rec.ctime = mtime;
    rec.atime = mtime + static_cast<std::int64_t>(rng.uniform_u64(86400));
    rec.uid = static_cast<std::uint32_t>(1000 + proj % 13);
    rec.gid = static_cast<std::uint32_t>(2000 + proj % 5);
    rec.mode = (i % 20 == 0) ? (kModeDirectory | 0775) : (kModeRegular | 0664);
    rec.inode = 1'000'000 + i * 3;
    if (!rec.is_dir()) {
      const std::size_t stripes = 1 + rng.uniform_u64(8);
      for (std::size_t s = 0; s < stripes; ++s) {
        rec.osts.push_back(static_cast<std::uint32_t>(rng.uniform_u64(2016)));
      }
    }
    t.add(rec);
  }
  return t;
}

void expect_tables_equal(const SnapshotTable& a, const SnapshotTable& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.path(i), b.path(i)) << "row " << i;
    ASSERT_EQ(a.atime(i), b.atime(i)) << "row " << i;
    ASSERT_EQ(a.ctime(i), b.ctime(i)) << "row " << i;
    ASSERT_EQ(a.mtime(i), b.mtime(i)) << "row " << i;
    ASSERT_EQ(a.uid(i), b.uid(i)) << "row " << i;
    ASSERT_EQ(a.gid(i), b.gid(i)) << "row " << i;
    ASSERT_EQ(a.mode(i), b.mode(i)) << "row " << i;
    ASSERT_EQ(a.inode(i), b.inode(i)) << "row " << i;
    const auto osts_a = a.osts(i);
    const auto osts_b = b.osts(i);
    ASSERT_EQ(osts_a.size(), osts_b.size()) << "row " << i;
    for (std::size_t k = 0; k < osts_a.size(); ++k) {
      ASSERT_EQ(osts_a[k], osts_b[k]);
    }
  }
}

/// The rows of `t` belonging to the groups NOT in `lost` — the exact table
/// a correct salvage decode must produce.
SnapshotTable select_surviving(const SnapshotTable& t,
                               const ScolV2Layout& layout,
                               const std::set<std::size_t>& lost) {
  SnapshotTable out;
  std::size_t row = 0;
  for (std::size_t g = 0; g < layout.group_rows.size(); ++g) {
    const std::size_t rows = static_cast<std::size_t>(layout.group_rows[g]);
    if (!lost.count(g)) {
      for (std::size_t i = row; i < row + rows; ++i) {
        out.add(t.path(i), t.atime(i), t.ctime(i), t.mtime(i), t.uid(i),
                t.gid(i), t.mode(i), t.inode(i), t.osts(i));
      }
    }
    row += rows;
  }
  return out;
}

/// Runs one damaged-image scenario end to end: strict decode fails and
/// leaves the destination untouched; salvage decode succeeds, recovers
/// exactly the surviving groups, and the report's totals match.
void check_scol_salvage(const SnapshotTable& original,
                        const std::vector<std::uint8_t>& damaged,
                        const ScolV2Layout& layout,
                        const std::set<std::size_t>& lost,
                        const std::string& label) {
  SCOPED_TRACE(label);
  std::uint64_t rows_lost = 0;
  for (const std::size_t g : lost) rows_lost += layout.group_rows[g];

  // Strict mode: any damage fails the decode, and a pre-populated
  // destination is not mutated.
  {
    SnapshotTable dest = make_table(3, /*seed=*/99);
    const SnapshotTable sentinel = make_table(3, /*seed=*/99);
    ScolOptions strict;
    const Status s = decode_scol(damaged, &dest, strict);
    if (lost.empty()) {
      ASSERT_TRUE(s.ok()) << s.to_string();
    } else {
      ASSERT_FALSE(s.ok());
      expect_tables_equal(sentinel, dest);
    }
  }

  // Salvage mode: never aborts, recovers exactly the undamaged groups.
  for (const CorruptGroupPolicy policy :
       {CorruptGroupPolicy::kSkip, CorruptGroupPolicy::kQuarantine}) {
    SnapshotTable dest;
    ScolOptions options;
    options.on_corrupt_group = policy;
    SalvageReport report;
    const Status s = decode_scol(damaged, &dest, options, &report);
    ASSERT_TRUE(s.ok()) << s.to_string();
    EXPECT_EQ(report.groups_total, layout.group_rows.size());
    EXPECT_EQ(report.groups_lost, lost.size());
    EXPECT_EQ(report.rows_total, original.size());
    EXPECT_EQ(report.rows_lost, rows_lost);
    EXPECT_EQ(report.rows_recovered, original.size() - rows_lost);
    EXPECT_EQ(report.rows_recovered, dest.size());
    ASSERT_EQ(report.damage.size(), lost.size());
    for (const ScolGroupDamage& d : report.damage) {
      EXPECT_TRUE(lost.count(d.group)) << "unexpected damage in " << d.group;
      EXPECT_FALSE(d.status.ok());
      if (policy == CorruptGroupPolicy::kQuarantine) {
        // Quarantined bytes are the group's directory extent, clamped to
        // the (possibly shortened) image.
        const std::size_t begin =
            std::min(layout.group_begin[d.group], damaged.size());
        const std::size_t len =
            std::min(layout.group_len[d.group], damaged.size() - begin);
        ASSERT_EQ(d.quarantined.size(), len);
        if (len > 0) {
          EXPECT_EQ(std::memcmp(d.quarantined.data(), damaged.data() + begin,
                                len),
                    0);
        }
      } else {
        EXPECT_TRUE(d.quarantined.empty());
      }
    }
    expect_tables_equal(select_surviving(original, layout, lost), dest);
  }
}

// ---- seeded .scol sweeps (40 scenarios each) ------------------------------

TEST(ScolFaultSweep, BitFlipLosesExactlyOneGroup) {
  const SnapshotTable original = make_table(5 * kGroup + 17);
  ScolOptions write;
  write.group_size = kGroup;
  const auto clean = encode_scol(original, write);
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(clean, &layout).ok());

  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    auto damaged = clean;
    FaultInjector injector(seed);
    const FaultEvent ev =
        injector.bit_flip(&damaged, layout.payload_start, damaged.size());
    // The flipped byte lies in exactly one group's extent; per-group
    // checksums must localize the damage to it.
    std::set<std::size_t> lost;
    for (std::size_t g = 0; g < layout.group_begin.size(); ++g) {
      if (ev.offset >= layout.group_begin[g] &&
          ev.offset < layout.group_begin[g] + layout.group_len[g]) {
        lost.insert(g);
      }
    }
    ASSERT_EQ(lost.size(), 1u);
    check_scol_salvage(original, damaged, layout, lost,
                       "seed " + std::to_string(seed) + ": " + ev.describe());
  }
}

TEST(ScolFaultSweep, TruncateLosesSuffixGroups) {
  const SnapshotTable original = make_table(5 * kGroup + 17);
  ScolOptions write;
  write.group_size = kGroup;
  const auto clean = encode_scol(original, write);
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(clean, &layout).ok());

  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    auto damaged = clean;
    FaultInjector injector(seed);
    const FaultEvent ev =
        injector.truncate(&damaged, /*min_keep=*/layout.payload_start);
    std::set<std::size_t> lost;
    for (std::size_t g = 0; g < layout.group_begin.size(); ++g) {
      if (layout.group_begin[g] + layout.group_len[g] > ev.offset) {
        lost.insert(g);
      }
    }
    check_scol_salvage(original, damaged, layout, lost,
                       "seed " + std::to_string(seed) + ": " + ev.describe());
  }
}

TEST(ScolFaultSweep, TornTailLosesSuffixGroups) {
  const SnapshotTable original = make_table(5 * kGroup + 17);
  ScolOptions write;
  write.group_size = kGroup;
  const auto clean = encode_scol(original, write);
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(clean, &layout).ok());

  for (std::uint64_t seed = 200; seed < 240; ++seed) {
    auto damaged = clean;
    FaultInjector injector(seed);
    const FaultEvent ev =
        injector.torn_tail(&damaged, /*min_keep=*/layout.payload_start);
    // Groups wholly before the tear survive; every group touching the
    // garbage tail fails its checksum.
    std::set<std::size_t> lost;
    for (std::size_t g = 0; g < layout.group_begin.size(); ++g) {
      if (layout.group_begin[g] + layout.group_len[g] > ev.offset) {
        lost.insert(g);
      }
    }
    check_scol_salvage(original, damaged, layout, lost,
                       "seed " + std::to_string(seed) + ": " + ev.describe());
  }
}

// ---- seeded PSV sweep (40 scenarios) --------------------------------------

TEST(PsvFaultSweep, SalvageMatchesSerialReference) {
  const SnapshotTable original = make_table(150, /*seed=*/11);
  std::string clean_text;
  for (std::size_t i = 0; i < original.size(); ++i) {
    clean_text += psv_format_record(original.row(i));
    clean_text += '\n';
  }

  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    std::string text = clean_text;
    FaultInjector injector(seed);
    const std::size_t flips = 1 + injector.rng().uniform_u64(3);
    std::vector<std::uint8_t> bytes(text.begin(), text.end());
    for (std::size_t f = 0; f < flips; ++f) injector.bit_flip(&bytes);
    text.assign(bytes.begin(), bytes.end());

    // Reference: a serial line-by-line parse of the damaged text. A flip
    // may leave a line parseable (a digit changed), split a line, or chain
    // several failures — the reference defines the ground truth either way.
    SnapshotTable reference;
    std::size_t bad_lines = 0;
    {
      std::string_view body(text);
      RawRecord rec;
      while (!body.empty()) {
        const std::size_t nl = body.find('\n');
        const std::string_view line =
            nl == std::string_view::npos ? body : body.substr(0, nl);
        body.remove_prefix(nl == std::string_view::npos ? body.size()
                                                        : nl + 1);
        if (line.empty()) continue;
        if (psv_parse_record(line, &rec)) {
          reference.add(rec);
        } else {
          ++bad_lines;
        }
      }
    }

    SCOPED_TRACE("seed " + std::to_string(seed) + ": " +
                 std::to_string(bad_lines) + " bad lines");

    // Salvage ingest with room in the budget: never aborts, recovers
    // exactly the parseable rows, tallies exactly the damage.
    PsvOptions salvage;
    salvage.max_bad_lines = text.size();  // effectively unlimited
    SnapshotTable salvaged;
    PsvReadReport report;
    const Status s = read_psv_buffer(text, &salvaged, salvage, &report);
    ASSERT_TRUE(s.ok()) << s.to_string();
    EXPECT_EQ(report.lines_skipped, bad_lines);
    EXPECT_EQ(report.rows_ingested, reference.size());
    std::uint64_t tally = 0;
    for (const auto& [reason, count] : report.by_reason) tally += count;
    EXPECT_EQ(tally, bad_lines);
    expect_tables_equal(reference, salvaged);

    if (bad_lines > 0) {
      // One under budget: the read must fail all-or-nothing.
      PsvOptions tight;
      tight.max_bad_lines = bad_lines - 1;
      SnapshotTable none;
      const Status fail = read_psv_buffer(text, &none, tight);
      ASSERT_FALSE(fail.ok());
      EXPECT_EQ(fail.code(), bad_lines == 1
                                 ? StatusCode::kCorruption
                                 : StatusCode::kResourceExhausted);
      EXPECT_EQ(none.size(), 0u);
    }
  }
}

// ---- truncation at every boundary -----------------------------------------

TEST(ScolTruncationBoundarySweep, CleanStatusAndNoPartialMutation) {
  const SnapshotTable original = make_table(4 * kGroup - 5);
  ScolOptions write;
  write.group_size = kGroup;
  const auto clean = encode_scol(original, write);
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(clean, &layout).ok());

  // Every byte of the header+directory, plus the interesting offsets of
  // every group: begin-1, begin, begin+1, middle, end-1 (end == next
  // begin; the final end is the full image, i.e. no truncation).
  std::set<std::size_t> cuts;
  for (std::size_t c = 0; c <= layout.payload_start; ++c) cuts.insert(c);
  for (std::size_t g = 0; g < layout.group_begin.size(); ++g) {
    const std::size_t begin = layout.group_begin[g];
    const std::size_t end = begin + layout.group_len[g];
    cuts.insert(begin - 1);
    cuts.insert(begin);
    cuts.insert(begin + 1);
    cuts.insert(begin + layout.group_len[g] / 2);
    cuts.insert(end - 1);
  }

  const SnapshotTable sentinel = make_table(2, /*seed=*/31);
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    const std::vector<std::uint8_t> damaged(clean.begin(),
                                            clean.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    cut));
    // Strict: always a clean typed failure, destination untouched.
    {
      SnapshotTable dest = make_table(2, /*seed=*/31);
      const Status s = decode_scol(damaged, &dest, ScolOptions{});
      ASSERT_FALSE(s.ok());
      EXPECT_TRUE(s.code() == StatusCode::kTruncated ||
                  s.code() == StatusCode::kCorruption)
          << s.to_string();
      expect_tables_equal(sentinel, dest);
    }
    // Salvage: succeeds iff the header+directory is intact, recovering
    // exactly the whole groups before the cut.
    {
      SnapshotTable dest;
      ScolOptions options;
      options.on_corrupt_group = CorruptGroupPolicy::kSkip;
      SalvageReport report;
      const Status s = decode_scol(damaged, &dest, options, &report);
      if (cut < layout.payload_start) {
        ASSERT_FALSE(s.ok());
        EXPECT_EQ(dest.size(), 0u);
      } else {
        ASSERT_TRUE(s.ok()) << s.to_string();
        std::set<std::size_t> lost;
        for (std::size_t g = 0; g < layout.group_begin.size(); ++g) {
          if (layout.group_begin[g] + layout.group_len[g] > cut) {
            lost.insert(g);
          }
        }
        EXPECT_EQ(report.groups_lost, lost.size());
        expect_tables_equal(select_surviving(original, layout, lost), dest);
      }
    }
  }
}

// ---- file-level and series-level degradation ------------------------------

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Flips one payload bit of an on-disk v2 .scol file.
void corrupt_scol_file(const std::string& file, std::uint64_t seed) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(file, &bytes).ok());
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(bytes, &layout).ok());
  FaultInjector injector(seed);
  injector.bit_flip(&bytes, layout.payload_start, bytes.size());
  ASSERT_TRUE(
      write_file_atomic(file, std::span<const std::uint8_t>(bytes)).ok());
}

TEST(SeriesDegradationTest, MissingAndCorruptWeeksBecomeGaps) {
  TempDir dir("spider_fault_series_test");
  // Eight weekly snapshots starting 2015-01-05, written with small row
  // groups so single-group damage is salvageable. Then: week 3 never
  // collected, week 5 bit-flipped, week 6 truncated mid-payload.
  const std::int64_t start = 1420416000;  // 2015-01-05
  ScolOptions small_groups;
  small_groups.group_size = kGroup;
  std::string error;
  for (std::size_t w = 0; w < 8; ++w) {
    const std::int64_t taken_at =
        start + static_cast<std::int64_t>(w) * 7 * 86400;
    const std::string file =
        dir.path() + "/snap_" + date_tag(taken_at) + ".scol";
    ASSERT_TRUE(
        write_scol_file(make_table(3 * kGroup, /*seed=*/w + 1), file,
                        small_groups)
            .ok());
  }

  DirectorySeries probe;
  ASSERT_TRUE(probe.open(dir.path(), &error)) << error;
  ASSERT_EQ(probe.files().size(), 8u);
  const std::string missing = probe.files()[3];
  const std::string corrupt = probe.files()[5];
  const std::string truncated = probe.files()[6];
  fs::remove(missing);
  corrupt_scol_file(corrupt, /*seed=*/5);
  {
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(read_file(truncated, &bytes).ok());
    bytes.resize(bytes.size() / 2);
    ASSERT_TRUE(
        write_file_atomic(truncated, std::span<const std::uint8_t>(bytes))
            .ok());
  }

  DirectorySeries series;
  ASSERT_TRUE(series.open(dir.path(), &error)) << error;
  EXPECT_EQ(series.count(), 7u);  // 7 files on disk
  // The missing collection is already visible as a cadence gap at slot 3.
  ASSERT_EQ(series.gaps().size(), 1u);
  EXPECT_EQ(series.gaps()[0].week, 3u);
  EXPECT_EQ(series.gaps()[0].status.code(), StatusCode::kNotFound);

  // Traverse through the study runner: damaged weeks become gaps, diffs
  // are not computed across them.
  struct Obs {
    std::size_t week;
    bool gap_before;
    bool has_diff;
  };
  struct Recorder : StudyAnalyzer {
    std::vector<Obs> seen;
    bool wants_diff() const override { return true; }
    void observe(const WeekObservation& obs) override {
      seen.push_back(Obs{obs.week, obs.gap_before, obs.diff != nullptr});
    }
  } recorder;
  run_study(series, recorder);

  // Slots: 0 1 2 [gap] 4 [corrupt 5] [truncated 6] 7.
  ASSERT_EQ(recorder.seen.size(), 5u);
  const std::size_t weeks[] = {0, 1, 2, 4, 7};
  const bool gap_before[] = {false, false, false, true, true};
  const bool has_diff[] = {false, true, true, false, false};
  for (std::size_t i = 0; i < recorder.seen.size(); ++i) {
    EXPECT_EQ(recorder.seen[i].week, weeks[i]) << i;
    EXPECT_EQ(recorder.seen[i].gap_before, gap_before[i]) << i;
    EXPECT_EQ(recorder.seen[i].has_diff, has_diff[i]) << i;
  }

  ASSERT_EQ(series.gaps().size(), 3u);
  EXPECT_EQ(series.gaps()[0].week, 3u);
  EXPECT_EQ(series.gaps()[1].week, 5u);
  EXPECT_EQ(series.gaps()[1].file, corrupt);
  EXPECT_FALSE(series.gaps()[1].status.ok());
  EXPECT_EQ(series.gaps()[2].week, 6u);
  EXPECT_FALSE(series.gaps()[2].status.ok());
  EXPECT_NE(series.gaps()[1].describe().find("week 5"), std::string::npos);

  // With a salvage policy, the bit-flipped week loses one group but is
  // visited with its surviving rows; only the missing and truncated weeks
  // remain gaps (a halved file keeps a readable header here, so it too
  // salvages — unless the directory itself was cut, in which case it
  // stays a gap; accept either as long as the corrupt week returns).
  ScolOptions salvage;
  salvage.on_corrupt_group = CorruptGroupPolicy::kSkip;
  series.set_scol_options(salvage);
  std::size_t visited = 0;
  bool saw_corrupt_week = false;
  series.visit([&](std::size_t week, const Snapshot& snap) {
    ++visited;
    if (week == 5) {
      saw_corrupt_week = true;
      EXPECT_EQ(snap.table.size(), 3 * kGroup - kGroup);
    }
  });
  EXPECT_TRUE(saw_corrupt_week);
  EXPECT_GE(visited, 6u);
}

TEST(SeriesDegradationTest, FullStudyCompletesOnDamagedSeries) {
  TempDir dir("spider_fault_full_study_test");
  FacilityConfig config;
  config.scale = 5e-5;
  config.weeks = 10;
  config.seed = 20150105;
  config.maintenance_gaps = false;  // a regular cadence; we inject the damage
  FacilityGenerator generator(config);
  std::string error;
  ASSERT_TRUE(save_series(generator, dir.path(), &error)) << error;

  DirectorySeries probe;
  ASSERT_TRUE(probe.open(dir.path(), &error)) << error;
  ASSERT_EQ(probe.files().size(), 10u);
  // >=2 corrupt weeks + >=1 missing week (the acceptance scenario).
  corrupt_scol_file(probe.files()[2], /*seed=*/21);
  corrupt_scol_file(probe.files()[6], /*seed=*/22);
  fs::remove(probe.files()[4]);

  DirectorySeries series;
  ASSERT_TRUE(series.open(dir.path(), &error)) << error;

  InferenceStats stats;
  const FacilityPlan plan = infer_facility(series, &stats);
  Resolver resolver(plan);
  FullStudy study(resolver, /*burst_min_files=*/5);
  study.run(series);  // must complete, not abort

  ASSERT_EQ(study.gaps().size(), 3u);
  EXPECT_EQ(study.growth.result().points.size(), 7u);
  EXPECT_GE(study.access_patterns.result().gap_pairs_skipped, 2u);

  const std::string quality = study.render_data_quality();
  EXPECT_NE(quality.find("7 of 10 week slots usable"), std::string::npos)
      << quality;
  EXPECT_NE(quality.find("3 gap(s)"), std::string::npos) << quality;
  EXPECT_NE(quality.find("corruption"), std::string::npos) << quality;
  EXPECT_NE(quality.find("no snapshot collected"), std::string::npos)
      << quality;
  // Table 1 still renders from the surviving weeks.
  EXPECT_FALSE(study.render_table1().empty());
}

TEST(ScolFaultTest, V1ImagesCannotSalvage) {
  const SnapshotTable original = make_table(200);
  ScolOptions v1;
  v1.format_version = 1;
  auto image = encode_scol(original, v1);
  FaultInjector injector(9);
  injector.bit_flip(&image, /*begin=*/64, /*end=*/0);

  SnapshotTable dest;
  ScolOptions salvage;
  salvage.on_corrupt_group = CorruptGroupPolicy::kSkip;
  SalvageReport report;
  // v1 has one whole-table column set — nothing to salvage around, so the
  // policy degenerates to a strict failure.
  const Status s = decode_scol(image, &dest, salvage, &report);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(dest.size(), 0u);
}

TEST(ScolFaultTest, IntactImageReportsClean) {
  const SnapshotTable original = make_table(2 * kGroup + 3);
  ScolOptions write;
  write.group_size = kGroup;
  const auto image = encode_scol(original, write);

  SnapshotTable dest;
  ScolOptions salvage;
  salvage.on_corrupt_group = CorruptGroupPolicy::kQuarantine;
  SalvageReport report;
  ASSERT_TRUE(decode_scol(image, &dest, salvage, &report).ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.groups_lost, 0u);
  EXPECT_EQ(report.rows_recovered, original.size());
  EXPECT_TRUE(report.damage.empty());
  EXPECT_NE(report.summary().find("clean"), std::string::npos);
  expect_tables_equal(original, dest);
}

TEST(ScolFaultTest, SalvageReportSummaryListsDamage) {
  const SnapshotTable original = make_table(3 * kGroup);
  ScolOptions write;
  write.group_size = kGroup;
  auto image = encode_scol(original, write);
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(image, &layout).ok());
  // Flip a bit inside group 1 specifically.
  FaultInjector injector(3);
  injector.bit_flip(&image, layout.group_begin[1],
                    layout.group_begin[1] + layout.group_len[1]);

  SnapshotTable dest;
  ScolOptions salvage;
  salvage.on_corrupt_group = CorruptGroupPolicy::kSkip;
  SalvageReport report;
  ASSERT_TRUE(decode_scol(image, &dest, salvage, &report).ok());
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("lost 1/3 groups"), std::string::npos) << summary;
  EXPECT_NE(summary.find("group 1"), std::string::npos) << summary;

  // Strict mode names the failing group in its context.
  SnapshotTable strict_dest;
  const Status strict = decode_scol(image, &strict_dest, ScolOptions{});
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.message().find("group 1"), std::string::npos)
      << strict.to_string();
}

}  // namespace
}  // namespace spider
