#include "snapshot/series.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "snapshot/scol.h"
#include "util/timeutil.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

Snapshot make_snapshot(int week, std::size_t rows) {
  Snapshot snap;
  snap.taken_at = epoch_from_civil({2015, 1, 5}) + week * kSecondsPerWeek;
  for (std::size_t i = 0; i < rows; ++i) {
    RawRecord rec;
    rec.path = "/lustre/atlas2/p/u/week" + std::to_string(week) + "_f" +
               std::to_string(i);
    rec.mtime = rec.ctime = rec.atime = snap.taken_at - 100;
    rec.inode = i;
    rec.osts = {1, 2, 3, 4};
    snap.table.add(rec);
  }
  return snap;
}

TEST(SnapshotSeriesTest, VisitInOrder) {
  SnapshotSeries series;
  for (int w = 0; w < 5; ++w) series.add(make_snapshot(w, 3));
  EXPECT_EQ(series.count(), 5u);
  std::vector<std::size_t> weeks;
  std::int64_t prev_time = 0;
  series.visit([&](std::size_t week, const Snapshot& snap) {
    weeks.push_back(week);
    EXPECT_GT(snap.taken_at, prev_time);
    prev_time = snap.taken_at;
  });
  EXPECT_EQ(weeks, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SnapshotSeriesTest, VisitIsRepeatable) {
  SnapshotSeries series;
  series.add(make_snapshot(0, 2));
  int visits = 0;
  series.visit([&](std::size_t, const Snapshot&) { ++visits; });
  series.visit([&](std::size_t, const Snapshot&) { ++visits; });
  EXPECT_EQ(visits, 2);
}

class DirectorySeriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) / "spider_series_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_str() const { return dir_.string(); }
  fs::path dir_;
};

TEST_F(DirectorySeriesTest, SaveThenLoadRoundTrip) {
  SnapshotSeries series;
  for (int w = 0; w < 4; ++w) series.add(make_snapshot(w, 10 + w));

  std::string error;
  ASSERT_TRUE(save_series(series, dir_str(), &error)) << error;

  DirectorySeries loaded;
  ASSERT_TRUE(loaded.open(dir_str(), &error)) << error;
  EXPECT_EQ(loaded.count(), 4u);

  std::size_t visited = 0;
  loaded.visit([&](std::size_t week, const Snapshot& snap) {
    EXPECT_EQ(snap.table.size(), 10 + week);
    EXPECT_EQ(snap.taken_at, series.at(week).taken_at);
    EXPECT_EQ(snap.table.path(0), series.at(week).table.path(0));
    ++visited;
  });
  EXPECT_EQ(visited, 4u);
}

TEST_F(DirectorySeriesTest, FilesSortedByDateNotName) {
  // Write out of order and with a distractor file.
  Snapshot later = make_snapshot(10, 1);
  Snapshot earlier = make_snapshot(2, 1);
  std::string error;
  ASSERT_TRUE(write_scol_file(later.table,
                              (dir_ / ("snap_" + date_tag(later.taken_at) +
                                       ".scol")).string(),
                              &error))
      << error;
  ASSERT_TRUE(write_scol_file(earlier.table,
                              (dir_ / ("snap_" + date_tag(earlier.taken_at) +
                                       ".scol")).string(),
                              &error))
      << error;
  { std::ofstream junk(dir_ / "README.txt"); junk << "not a snapshot"; }

  DirectorySeries loaded;
  ASSERT_TRUE(loaded.open(dir_str(), &error)) << error;
  ASSERT_EQ(loaded.count(), 2u);
  std::vector<std::int64_t> times;
  loaded.visit([&](std::size_t, const Snapshot& snap) {
    times.push_back(snap.taken_at);
  });
  ASSERT_EQ(times.size(), 2u);
  EXPECT_LT(times[0], times[1]);
}

TEST_F(DirectorySeriesTest, CorruptSnapshotIsSkipped) {
  SnapshotSeries series;
  series.add(make_snapshot(0, 5));
  series.add(make_snapshot(1, 5));
  std::string error;
  ASSERT_TRUE(save_series(series, dir_str(), &error)) << error;

  // Corrupt the second file's tail.
  DirectorySeries listing;
  ASSERT_TRUE(listing.open(dir_str(), &error)) << error;
  {
    std::fstream f(listing.files()[1],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('\xff');
  }

  DirectorySeries loaded;
  ASSERT_TRUE(loaded.open(dir_str(), &error)) << error;
  std::size_t visited = 0;
  loaded.visit([&](std::size_t, const Snapshot&) { ++visited; });
  EXPECT_EQ(visited, 1u) << "corrupt week must be skipped, not fatal";
}

TEST_F(DirectorySeriesTest, OpenFailsOnMissingOrEmptyDirectory) {
  DirectorySeries series;
  std::string error;
  EXPECT_FALSE(series.open(dir_str() + "/does_not_exist", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(series.open(dir_str(), &error)) << "empty dir has no snaps";
}

TEST_F(DirectorySeriesTest, VisitStreamingDeliversChosenWeeksAsReaders) {
  SnapshotSeries series;
  for (int w = 0; w < 4; ++w) series.add(make_snapshot(w, 20 + w));
  std::string error;
  ASSERT_TRUE(save_series(series, dir_str(), &error)) << error;

  DirectorySeries loaded;
  ASSERT_TRUE(loaded.open(dir_str(), &error)) << error;

  std::vector<std::size_t> resident_weeks, streamed_weeks;
  std::vector<std::uint64_t> hints;
  loaded.visit_streaming(
      /*first_slot=*/0,
      [&](std::size_t week, std::int64_t, std::uint64_t rows_hint) {
        hints.push_back(rows_hint);
        return week % 2 == 1;  // stream the odd weeks
      },
      [&](std::size_t week, Snapshot&& snap) {
        resident_weeks.push_back(week);
        EXPECT_EQ(snap.table.size(), 20 + week);
      },
      [&](const WeekGroupStream& stream) {
        streamed_weeks.push_back(stream.week);
        EXPECT_EQ(stream.taken_at, series.at(stream.week).taken_at);
        EXPECT_EQ(stream.reader->rows(), 20 + stream.week);
        // Group-at-a-time decode reassembles the eager table.
        SnapshotTable table;
        for (std::size_t g = 0; g < stream.reader->group_count(); ++g) {
          EXPECT_TRUE(stream.reader->decode_group(g, &table).ok());
        }
        EXPECT_EQ(table.size(), series.at(stream.week).table.size());
        EXPECT_EQ(table.path(0), series.at(stream.week).table.path(0));
        return Status();
      });
  EXPECT_EQ(resident_weeks, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(streamed_weeks, (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(hints, (std::vector<std::uint64_t>{20, 21, 22, 23}));
  EXPECT_TRUE(loaded.gaps().empty());
}

TEST_F(DirectorySeriesTest, StreamVisitorErrorBecomesEagerShapedGap) {
  SnapshotSeries series;
  series.add(make_snapshot(0, 5));
  series.add(make_snapshot(1, 5));
  std::string error;
  ASSERT_TRUE(save_series(series, dir_str(), &error)) << error;

  DirectorySeries loaded;
  ASSERT_TRUE(loaded.open(dir_str(), &error)) << error;
  std::size_t resident = 0;
  loaded.visit_streaming(
      0, [](std::size_t week, std::int64_t, std::uint64_t) { return week == 1; },
      [&](std::size_t, Snapshot&&) { ++resident; },
      [&](const WeekGroupStream&) {
        return Status::corruption("group 0: synthetic damage");
      });
  EXPECT_EQ(resident, 1u);
  ASSERT_EQ(loaded.gaps().size(), 1u);
  const SeriesGap& gap = loaded.gaps()[0];
  EXPECT_EQ(gap.week, 1u);
  EXPECT_EQ(gap.file, loaded.files()[1]);
  // The file context lands in the status exactly as the eager decode
  // path's with_context would place it.
  EXPECT_NE(gap.status.to_string().find(loaded.files()[1] +
                                        ": group 0: synthetic damage"),
            std::string::npos)
      << gap.status.to_string();
}

TEST_F(DirectorySeriesTest, StreamingFallsBackToEagerOnUnopenableImage) {
  SnapshotSeries series;
  series.add(make_snapshot(0, 5));
  series.add(make_snapshot(1, 5));
  std::string error;
  ASSERT_TRUE(save_series(series, dir_str(), &error)) << error;

  DirectorySeries listing;
  ASSERT_TRUE(listing.open(dir_str(), &error)) << error;
  {
    // Destroy the header: streaming open and eager decode both fail.
    std::fstream f(listing.files()[0],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.write("XXXXXXXX", 8);
  }

  // The eager traversal's gap is the reference shape.
  DirectorySeries eager;
  ASSERT_TRUE(eager.open(dir_str(), &error)) << error;
  eager.visit_move([](std::size_t, Snapshot&&) {});
  ASSERT_EQ(eager.gaps().size(), 1u);

  DirectorySeries streaming;
  ASSERT_TRUE(streaming.open(dir_str(), &error)) << error;
  std::size_t resident = 0, streamed = 0;
  streaming.visit_streaming(
      0, [](std::size_t, std::int64_t, std::uint64_t) { return true; },
      [&](std::size_t, Snapshot&&) { ++resident; },
      [&](const WeekGroupStream&) {
        ++streamed;
        return Status();
      });
  EXPECT_EQ(resident, 0u);
  EXPECT_EQ(streamed, 1u) << "the healthy week still streams";
  ASSERT_EQ(streaming.gaps().size(), 1u);
  EXPECT_EQ(streaming.gaps()[0].describe(), eager.gaps()[0].describe())
      << "fallback must reproduce the eager gap byte-for-byte";
}

TEST(SnapshotSeriesStreamingTest, InMemorySeriesDeliversEverythingResident) {
  SnapshotSeries series;
  for (int w = 0; w < 3; ++w) series.add(make_snapshot(w, 4));
  std::size_t resident = 0, streamed = 0;
  series.visit_streaming(
      0, [](std::size_t, std::int64_t, std::uint64_t) { return true; },
      [&](std::size_t, Snapshot&& snap) {
        ++resident;
        EXPECT_EQ(snap.table.size(), 4u);
      },
      [&](const WeekGroupStream&) {
        ++streamed;
        return Status();
      });
  EXPECT_EQ(resident, 3u);
  EXPECT_EQ(streamed, 0u);
}

}  // namespace
}  // namespace spider
