#include "snapshot/series.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "snapshot/scol.h"
#include "util/timeutil.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

Snapshot make_snapshot(int week, std::size_t rows) {
  Snapshot snap;
  snap.taken_at = epoch_from_civil({2015, 1, 5}) + week * kSecondsPerWeek;
  for (std::size_t i = 0; i < rows; ++i) {
    RawRecord rec;
    rec.path = "/lustre/atlas2/p/u/week" + std::to_string(week) + "_f" +
               std::to_string(i);
    rec.mtime = rec.ctime = rec.atime = snap.taken_at - 100;
    rec.inode = i;
    rec.osts = {1, 2, 3, 4};
    snap.table.add(rec);
  }
  return snap;
}

TEST(SnapshotSeriesTest, VisitInOrder) {
  SnapshotSeries series;
  for (int w = 0; w < 5; ++w) series.add(make_snapshot(w, 3));
  EXPECT_EQ(series.count(), 5u);
  std::vector<std::size_t> weeks;
  std::int64_t prev_time = 0;
  series.visit([&](std::size_t week, const Snapshot& snap) {
    weeks.push_back(week);
    EXPECT_GT(snap.taken_at, prev_time);
    prev_time = snap.taken_at;
  });
  EXPECT_EQ(weeks, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SnapshotSeriesTest, VisitIsRepeatable) {
  SnapshotSeries series;
  series.add(make_snapshot(0, 2));
  int visits = 0;
  series.visit([&](std::size_t, const Snapshot&) { ++visits; });
  series.visit([&](std::size_t, const Snapshot&) { ++visits; });
  EXPECT_EQ(visits, 2);
}

class DirectorySeriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) / "spider_series_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_str() const { return dir_.string(); }
  fs::path dir_;
};

TEST_F(DirectorySeriesTest, SaveThenLoadRoundTrip) {
  SnapshotSeries series;
  for (int w = 0; w < 4; ++w) series.add(make_snapshot(w, 10 + w));

  std::string error;
  ASSERT_TRUE(save_series(series, dir_str(), &error)) << error;

  DirectorySeries loaded;
  ASSERT_TRUE(loaded.open(dir_str(), &error)) << error;
  EXPECT_EQ(loaded.count(), 4u);

  std::size_t visited = 0;
  loaded.visit([&](std::size_t week, const Snapshot& snap) {
    EXPECT_EQ(snap.table.size(), 10 + week);
    EXPECT_EQ(snap.taken_at, series.at(week).taken_at);
    EXPECT_EQ(snap.table.path(0), series.at(week).table.path(0));
    ++visited;
  });
  EXPECT_EQ(visited, 4u);
}

TEST_F(DirectorySeriesTest, FilesSortedByDateNotName) {
  // Write out of order and with a distractor file.
  Snapshot later = make_snapshot(10, 1);
  Snapshot earlier = make_snapshot(2, 1);
  std::string error;
  ASSERT_TRUE(write_scol_file(later.table,
                              (dir_ / ("snap_" + date_tag(later.taken_at) +
                                       ".scol")).string(),
                              &error))
      << error;
  ASSERT_TRUE(write_scol_file(earlier.table,
                              (dir_ / ("snap_" + date_tag(earlier.taken_at) +
                                       ".scol")).string(),
                              &error))
      << error;
  { std::ofstream junk(dir_ / "README.txt"); junk << "not a snapshot"; }

  DirectorySeries loaded;
  ASSERT_TRUE(loaded.open(dir_str(), &error)) << error;
  ASSERT_EQ(loaded.count(), 2u);
  std::vector<std::int64_t> times;
  loaded.visit([&](std::size_t, const Snapshot& snap) {
    times.push_back(snap.taken_at);
  });
  ASSERT_EQ(times.size(), 2u);
  EXPECT_LT(times[0], times[1]);
}

TEST_F(DirectorySeriesTest, CorruptSnapshotIsSkipped) {
  SnapshotSeries series;
  series.add(make_snapshot(0, 5));
  series.add(make_snapshot(1, 5));
  std::string error;
  ASSERT_TRUE(save_series(series, dir_str(), &error)) << error;

  // Corrupt the second file's tail.
  DirectorySeries listing;
  ASSERT_TRUE(listing.open(dir_str(), &error)) << error;
  {
    std::fstream f(listing.files()[1],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('\xff');
  }

  DirectorySeries loaded;
  ASSERT_TRUE(loaded.open(dir_str(), &error)) << error;
  std::size_t visited = 0;
  loaded.visit([&](std::size_t, const Snapshot&) { ++visited; });
  EXPECT_EQ(visited, 1u) << "corrupt week must be skipped, not fatal";
}

TEST_F(DirectorySeriesTest, OpenFailsOnMissingOrEmptyDirectory) {
  DirectorySeries series;
  std::string error;
  EXPECT_FALSE(series.open(dir_str() + "/does_not_exist", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(series.open(dir_str(), &error)) << "empty dir has no snaps";
}

}  // namespace
}  // namespace spider
