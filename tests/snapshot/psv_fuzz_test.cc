// Fuzz-style property tests for the PSV parser: arbitrary input must never
// crash, and every valid record — including awkward path bytes — must
// round-trip exactly.
#include <gtest/gtest.h>

#include <string>

#include "snapshot/psv.h"
#include "util/prng.h"

namespace spider {
namespace {

class PsvFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsvFuzz, RandomGarbageNeverCrashes) {
  Rng rng(GetParam());
  RawRecord rec;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string line;
    const std::size_t length = rng.uniform_u64(120);
    for (std::size_t i = 0; i < length; ++i) {
      // Bias toward structure-relevant bytes so field logic is exercised.
      const double pick = rng.uniform();
      if (pick < 0.25) {
        line += '|';
      } else if (pick < 0.5) {
        line += static_cast<char>('0' + rng.uniform_u64(10));
      } else if (pick < 0.6) {
        line += '/';
      } else {
        line += static_cast<char>(rng.uniform_u64(256));
      }
    }
    std::string error;
    psv_parse_record(line, &rec, &error);  // must not crash or hang
  }
}

TEST_P(PsvFuzz, ValidRecordsRoundTripExactly) {
  Rng rng(GetParam() ^ 0xf00d);
  for (int trial = 0; trial < 500; ++trial) {
    RawRecord rec;
    // Paths with awkward-but-legal bytes (spaces, UTF-8, dots, '=').
    rec.path = "/lustre/atlas2/p/u";
    const std::size_t segments = 1 + rng.uniform_u64(6);
    for (std::size_t s = 0; s < segments; ++s) {
      rec.path += '/';
      const std::size_t length = 1 + rng.uniform_u64(24);
      for (std::size_t i = 0; i < length; ++i) {
        static constexpr char kChars[] =
            "abcXYZ012 ._-+=%#@()[]{}~\xc3\xa9";
        rec.path += kChars[rng.uniform_u64(sizeof(kChars) - 1)];
      }
    }
    rec.atime = rng.uniform_int(-1000, 4'000'000'000LL);
    rec.ctime = rng.uniform_int(0, 4'000'000'000LL);
    rec.mtime = rng.uniform_int(0, 4'000'000'000LL);
    rec.uid = static_cast<std::uint32_t>(rng.next_u64());
    rec.gid = static_cast<std::uint32_t>(rng.next_u64());
    rec.mode = static_cast<std::uint32_t>(rng.uniform_u64(01000000));
    rec.inode = rng.next_u64();
    const std::size_t stripes = rng.uniform_u64(8);
    for (std::size_t s = 0; s < stripes; ++s) {
      rec.osts.push_back(static_cast<std::uint32_t>(rng.uniform_u64(2016)));
    }

    RawRecord parsed;
    std::string error;
    ASSERT_TRUE(psv_parse_record(psv_format_record(rec), &parsed, &error))
        << error << "\npath: " << rec.path;
    EXPECT_EQ(parsed.path, rec.path);
    EXPECT_EQ(parsed.atime, rec.atime);
    EXPECT_EQ(parsed.ctime, rec.ctime);
    EXPECT_EQ(parsed.mtime, rec.mtime);
    EXPECT_EQ(parsed.uid, rec.uid);
    EXPECT_EQ(parsed.gid, rec.gid);
    EXPECT_EQ(parsed.mode, rec.mode);
    EXPECT_EQ(parsed.inode, rec.inode);
    EXPECT_EQ(parsed.osts, rec.osts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsvFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace spider
