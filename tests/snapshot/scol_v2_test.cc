// .scol v2 row-group layout: round-trip property sweep across every
// encoding-knob combination and the group-boundary row counts, group
// checksum isolation, version dispatch, and parallel/serial decode parity.
#include <cstring>

#include <gtest/gtest.h>

#include "snapshot/scol.h"
#include "util/parallel.h"
#include "util/prng.h"

namespace spider {
namespace {

constexpr std::size_t kGroup = 64;  // small groups keep the sweep fast

SnapshotTable make_table(std::size_t rows, std::uint64_t seed = 7) {
  Rng rng(seed);
  SnapshotTable t;
  std::int64_t mtime = 1420416000;
  for (std::size_t i = 0; i < rows; ++i) {
    RawRecord rec;
    const std::size_t proj = i / 50;
    rec.path = "/lustre/atlas2/proj" + std::to_string(proj) + "/u" +
               std::to_string(proj % 7) + "/run" + std::to_string(i % 9) +
               "/step." + std::to_string(i);
    mtime += static_cast<std::int64_t>(rng.uniform_u64(1000));
    rec.mtime = mtime;
    rec.ctime = mtime;
    rec.atime = mtime + static_cast<std::int64_t>(rng.uniform_u64(86400));
    rec.uid = static_cast<std::uint32_t>(1000 + proj % 13);
    rec.gid = static_cast<std::uint32_t>(2000 + proj % 5);
    rec.mode = (i % 20 == 0) ? (kModeDirectory | 0775) : (kModeRegular | 0664);
    rec.inode = 1'000'000 + i * 3;
    if (!rec.is_dir()) {
      const std::size_t stripes = 1 + rng.uniform_u64(8);
      for (std::size_t s = 0; s < stripes; ++s) {
        rec.osts.push_back(static_cast<std::uint32_t>(rng.uniform_u64(2016)));
      }
    }
    t.add(rec);
  }
  return t;
}

void expect_tables_equal(const SnapshotTable& a, const SnapshotTable& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.file_count(), b.file_count());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.path(i), b.path(i)) << "row " << i;
    ASSERT_EQ(a.path_hash(i), b.path_hash(i)) << "row " << i;
    ASSERT_EQ(a.depth(i), b.depth(i)) << "row " << i;
    ASSERT_EQ(a.atime(i), b.atime(i)) << "row " << i;
    ASSERT_EQ(a.ctime(i), b.ctime(i)) << "row " << i;
    ASSERT_EQ(a.mtime(i), b.mtime(i)) << "row " << i;
    ASSERT_EQ(a.uid(i), b.uid(i)) << "row " << i;
    ASSERT_EQ(a.gid(i), b.gid(i)) << "row " << i;
    ASSERT_EQ(a.mode(i), b.mode(i)) << "row " << i;
    ASSERT_EQ(a.inode(i), b.inode(i)) << "row " << i;
    const auto osts_a = a.osts(i);
    const auto osts_b = b.osts(i);
    ASSERT_EQ(osts_a.size(), osts_b.size()) << "row " << i;
    for (std::size_t k = 0; k < osts_a.size(); ++k) {
      ASSERT_EQ(osts_a[k], osts_b[k]);
    }
  }
}

// Every encoding-knob combination must round-trip exactly at every row
// count that stresses a group boundary: empty, single row, one short of a
// boundary, exactly at it, one past it, and a multi-group remainder.
class ScolV2OptionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScolV2OptionSweep, RoundTripAcrossGroupBoundaries) {
  const int mask = GetParam();
  ScolOptions options;
  options.front_code_paths = mask & 1;
  options.delta_timestamps = mask & 2;
  options.rle_ids = mask & 4;
  options.delta_inodes = mask & 8;
  options.group_size = kGroup;

  for (const std::size_t rows :
       {std::size_t{0}, std::size_t{1}, kGroup - 1, kGroup, kGroup + 1,
        3 * kGroup + 7}) {
    const SnapshotTable original = make_table(rows);
    const auto image = encode_scol(original, options);
    ASSERT_EQ(std::memcmp(image.data(), "SCOL0002", 8), 0);
    SnapshotTable decoded;
    std::string error;
    ASSERT_TRUE(decode_scol(image, &decoded, &error))
        << "rows=" << rows << ": " << error;
    expect_tables_equal(original, decoded);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKnobCombinations, ScolV2OptionSweep,
                         ::testing::Range(0, 16));

TEST(ScolV2Test, V1ImagesStillDecode) {
  // Backward-compat fixture: the v1 writer (the seed encoder's layout,
  // exposed through the format_version knob) must keep decoding through
  // the version dispatch.
  const SnapshotTable original = make_table(500);
  ScolOptions v1;
  v1.format_version = 1;
  const auto image = encode_scol(original, v1);
  ASSERT_EQ(std::memcmp(image.data(), "SCOL0001", 8), 0);
  SnapshotTable decoded;
  std::string error;
  ASSERT_TRUE(decode_scol(image, &decoded, &error)) << error;
  expect_tables_equal(original, decoded);
}

TEST(ScolV2Test, V1AndV2EncodeIdenticalTables) {
  const SnapshotTable original = make_table(3 * kGroup + 7);
  ScolOptions v1;
  v1.format_version = 1;
  ScolOptions v2;
  v2.group_size = kGroup;
  SnapshotTable from_v1, from_v2;
  ASSERT_TRUE(decode_scol(encode_scol(original, v1), &from_v1));
  ASSERT_TRUE(decode_scol(encode_scol(original, v2), &from_v2));
  expect_tables_equal(from_v1, from_v2);
}

TEST(ScolV2Test, CorruptedGroupChecksumIsRejected) {
  ScolOptions options;
  options.group_size = kGroup;
  const SnapshotTable original = make_table(3 * kGroup + 7);
  auto image = encode_scol(original, options);

  // The image tail is the last group's OST payload; flipping a byte there
  // must fail that group's checksum and name the group.
  auto corrupted = image;
  corrupted[corrupted.size() - 5] ^= 0xff;
  SnapshotTable decoded;
  std::string error;
  EXPECT_FALSE(decode_scol(corrupted, &decoded, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  EXPECT_NE(error.find("group 3"), std::string::npos) << error;

  // Truncation anywhere — inside the header, the directory, or a group —
  // must fail cleanly.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{12}, std::size_t{30},
        image.size() / 2, image.size() - 1}) {
    SnapshotTable partial;
    const std::span<const std::uint8_t> prefix(image.data(), keep);
    EXPECT_FALSE(decode_scol(prefix, &partial, nullptr)) << "keep=" << keep;
  }
}

TEST(ScolV2Test, RandomCorruptionNeverCrashes) {
  ScolOptions options;
  options.group_size = kGroup;
  const SnapshotTable original = make_table(2 * kGroup + 11, 23);
  const auto image = encode_scol(original, options);
  Rng rng(7919);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = image;
    const std::size_t pos = rng.uniform_u64(corrupted.size());
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    SnapshotTable decoded;
    std::string error;
    if (!decode_scol(corrupted, &decoded, &error)) {
      EXPECT_FALSE(error.empty());
    } else {
      EXPECT_EQ(decoded.size(), original.size());
    }
  }
}

TEST(ScolV2Test, ParallelAndSerialDecodeMatch) {
  ScolOptions options;
  options.group_size = kGroup;
  const SnapshotTable original = make_table(5 * kGroup + 3);
  ThreadPool serial(1), wide(4);
  const auto image_serial = encode_scol(original, options, &serial);
  const auto image_wide = encode_scol(original, options, &wide);
  ASSERT_EQ(image_serial, image_wide)
      << "encoded image must not depend on the thread count";
  SnapshotTable dec_serial, dec_wide;
  std::string error;
  ASSERT_TRUE(decode_scol(image_wide, &dec_serial, &error, &serial)) << error;
  ASSERT_TRUE(decode_scol(image_wide, &dec_wide, &error, &wide)) << error;
  expect_tables_equal(dec_serial, dec_wide);
  expect_tables_equal(original, dec_wide);
}

TEST(ScolV2Test, DecodeAppendsToExistingTable) {
  ScolOptions options;
  options.group_size = kGroup;
  const SnapshotTable original = make_table(2 * kGroup);
  const auto image = encode_scol(original, options);
  SnapshotTable out;
  RawRecord pre;
  pre.path = "/lustre/atlas2/p/u/pre";
  out.add(pre);
  std::string error;
  ASSERT_TRUE(decode_scol(image, &out, &error)) << error;
  EXPECT_EQ(out.size(), 2 * kGroup + 1);
  EXPECT_EQ(out.path(0), "/lustre/atlas2/p/u/pre");
  EXPECT_EQ(out.path(1), original.path(0));
  EXPECT_EQ(out.path(2 * kGroup), original.path(2 * kGroup - 1));
}

TEST(ScolV2Test, GroupDirectoryRowMismatchIsRejected) {
  ScolOptions options;
  options.group_size = kGroup;
  const SnapshotTable original = make_table(2 * kGroup);
  auto image = encode_scol(original, options);
  // Total-row field (offset 8) no longer matches the directory sum.
  image[8] ^= 1;
  SnapshotTable decoded;
  std::string error;
  EXPECT_FALSE(decode_scol(image, &decoded, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace spider
