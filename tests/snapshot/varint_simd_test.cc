// Property suite for the bulk varint/zig-zag decode (snapshot/varint.h):
// the dispatched kernel (AVX2 where the CPU has it) must be bit-identical
// to the scalar reference — same values, same final position, same
// accept/reject verdict — on well-formed streams, random garbage, every
// truncation point, and overlong encodings. The ingest hot path rides on
// this equivalence: scol decode switched to get_varints and the salvage /
// corruption statuses must not move by one byte.
#include "snapshot/varint.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/prng.h"

namespace spider {
namespace {

std::vector<std::uint8_t> encode_all(const std::vector<std::uint64_t>& vals) {
  std::vector<std::uint8_t> out;
  for (const std::uint64_t v : vals) put_varint(out, v);
  return out;
}

/// Runs both implementations on the same window and asserts equivalence.
/// Returns the shared verdict so callers can also assert accept/reject.
bool check_equivalent(std::span<const std::uint8_t> in, std::size_t start,
                      std::size_t count) {
  std::vector<std::uint64_t> got_fast(count, 0xfeedfeedfeedfeedull);
  std::vector<std::uint64_t> got_ref(count, 0xfeedfeedfeedfeedull);
  std::size_t pos_fast = start;
  std::size_t pos_ref = start;
  const bool ok_fast = get_varints(in, pos_fast, got_fast.data(), count);
  const bool ok_ref = varint_detail::get_varints_scalar(
      in, pos_ref, got_ref.data(), count);
  EXPECT_EQ(ok_fast, ok_ref);
  if (ok_fast && ok_ref) {
    EXPECT_EQ(pos_fast, pos_ref);
    EXPECT_EQ(got_fast, got_ref);
  }
  return ok_fast && ok_ref;
}

TEST(BulkVarintTest, SingleByteRuns) {
  // Long runs of one-byte varints exercise the 32-wide movemask fast path,
  // including the < 32 tails.
  Rng rng(1);
  for (const std::size_t n :
       {0u, 1u, 31u, 32u, 33u, 64u, 100u, 1000u, 4097u}) {
    std::vector<std::uint64_t> vals(n);
    for (auto& v : vals) v = rng.uniform_u64(128);
    const auto bytes = encode_all(vals);
    ASSERT_EQ(bytes.size(), n);
    std::vector<std::uint64_t> got(n);
    std::size_t pos = 0;
    ASSERT_TRUE(get_varints(bytes, pos, got.data(), n)) << n;
    EXPECT_EQ(pos, bytes.size());
    EXPECT_EQ(got, vals);
  }
}

TEST(BulkVarintTest, MixedMagnitudesRoundTrip) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_u64(700);
    std::vector<std::uint64_t> vals(n);
    for (auto& v : vals) {
      // Spread across every encoded length 1..10.
      const int bits = static_cast<int>(rng.uniform_u64(65));
      v = bits == 0 ? 0 : rng.next_u64() >> (64 - bits);
    }
    const auto bytes = encode_all(vals);
    std::vector<std::uint64_t> got(n);
    std::size_t pos = 0;
    ASSERT_TRUE(get_varints(bytes, pos, got.data(), n)) << trial;
    EXPECT_EQ(pos, bytes.size());
    EXPECT_EQ(got, vals);
    check_equivalent(bytes, 0, n);
  }
}

TEST(BulkVarintTest, EveryTruncationPointMatchesScalar) {
  Rng rng(3);
  std::vector<std::uint64_t> vals(97);
  for (auto& v : vals) {
    const int bits = static_cast<int>(rng.uniform_u64(65));
    v = bits == 0 ? 0 : rng.next_u64() >> (64 - bits);
  }
  const auto bytes = encode_all(vals);
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::span<const std::uint8_t> window(bytes.data(), cut);
    const bool ok = check_equivalent(window, 0, vals.size());
    EXPECT_EQ(ok, cut == bytes.size()) << "cut=" << cut;
  }
}

TEST(BulkVarintTest, RandomGarbageWindowsMatchScalar) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = rng.uniform_u64(400);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    const std::size_t count = rng.uniform_u64(120);
    const std::size_t start = rng.uniform_u64(len + 3);
    check_equivalent(bytes, start, count);
  }
}

TEST(BulkVarintTest, ContinuationHeavyGarbageMatchesScalar) {
  // Mostly-0x80 streams drive the overlong-rejection path (ten
  // continuation bytes) through both kernels.
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t len = 16 + rng.uniform_u64(200);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = rng.uniform_u64(4) == 0
              ? static_cast<std::uint8_t>(rng.uniform_u64(256))
              : static_cast<std::uint8_t>(0x80 | rng.uniform_u64(128));
    }
    check_equivalent(bytes, 0, 1 + rng.uniform_u64(60));
  }
}

TEST(BulkVarintTest, OverlongEncodingRejectedIdentically) {
  // 10 continuation bytes + terminator = 11-byte varint: both reject.
  std::vector<std::uint8_t> bytes(10, 0x80);
  bytes.push_back(0x01);
  std::uint64_t out = 0;
  std::size_t pos = 0;
  EXPECT_FALSE(get_varints(bytes, pos, &out, 1));
  // Exactly 10 bytes where the 10th terminates is accepted (high bits
  // beyond 64 are discarded, same as the scalar loop).
  std::vector<std::uint8_t> edge(9, 0x80);
  edge.push_back(0x01);
  ASSERT_TRUE(check_equivalent(edge, 0, 1));
  pos = 0;
  ASSERT_TRUE(get_varints(edge, pos, &out, 1));
  EXPECT_EQ(pos, 10u);
  EXPECT_EQ(out, 1ull << 63);
}

TEST(BulkVarintTest, SingleByteFastPathStopsAtExactCount) {
  // More bytes available than values wanted: the decoder must consume
  // exactly `count` varints and leave pos on the next byte.
  std::vector<std::uint8_t> bytes(100, 7);
  std::vector<std::uint64_t> out(33);
  std::size_t pos = 0;
  ASSERT_TRUE(get_varints(bytes, pos, out.data(), 33));
  EXPECT_EQ(pos, 33u);
  for (const std::uint64_t v : out) EXPECT_EQ(v, 7u);
}

TEST(BulkZigzagTest, MatchesScalarOnRandomValues) {
  Rng rng(6);
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 1000u, 1003u}) {
    std::vector<std::uint64_t> raw(n);
    for (auto& v : raw) v = rng.next_u64();
    std::vector<std::int64_t> fast(n, -1), ref(n, -1);
    zigzag_decode_bulk(raw.data(), fast.data(), n);
    varint_detail::zigzag_decode_bulk_scalar(raw.data(), ref.data(), n);
    EXPECT_EQ(fast, ref) << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fast[i], zigzag_decode(raw[i]));
    }
  }
}

TEST(BulkZigzagTest, RoundTripsEncodedValues) {
  Rng rng(7);
  std::vector<std::int64_t> vals(777);
  for (auto& v : vals) {
    v = static_cast<std::int64_t>(rng.next_u64());
    if (rng.uniform_u64(2)) v = -v;
  }
  std::vector<std::uint64_t> raw(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) raw[i] = zigzag_encode(vals[i]);
  std::vector<std::int64_t> got(vals.size());
  zigzag_decode_bulk(raw.data(), got.data(), vals.size());
  EXPECT_EQ(got, vals);
}

TEST(BulkZigzagTest, InPlaceAliasingIsSafe) {
  Rng rng(8);
  std::vector<std::uint64_t> raw(513);
  for (auto& v : raw) v = rng.next_u64();
  std::vector<std::int64_t> expect(raw.size());
  varint_detail::zigzag_decode_bulk_scalar(raw.data(), expect.data(),
                                           raw.size());
  zigzag_decode_bulk(raw.data(),
                     reinterpret_cast<std::int64_t*>(raw.data()), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(raw[i]), expect[i]);
  }
}

#if defined(SPIDER_VARINT_X86)
// When the host has AVX2 (the CI container does), pin the vector kernel
// against the scalar one directly — the dispatcher test above would
// silently degrade to scalar-vs-scalar on an old machine.
TEST(BulkVarintTest, Avx2KernelDirectlyMatchesScalar) {
  if (!varint_detail::have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t len = rng.uniform_u64(300);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(
          rng.uniform_u64(2) ? rng.uniform_u64(128)
                             : rng.uniform_u64(256));
    }
    const std::size_t count = rng.uniform_u64(100);
    std::vector<std::uint64_t> fast(count), ref(count);
    std::size_t pos_fast = 0, pos_ref = 0;
    const bool ok_fast =
        varint_detail::get_varints_avx2(bytes, pos_fast, fast.data(), count);
    const bool ok_ref = varint_detail::get_varints_scalar(
        bytes, pos_ref, ref.data(), count);
    ASSERT_EQ(ok_fast, ok_ref) << trial;
    if (ok_fast) {
      EXPECT_EQ(pos_fast, pos_ref);
      EXPECT_EQ(fast, ref);
    }
  }
}
#endif

}  // namespace
}  // namespace spider
