#include "snapshot/table.h"

#include <gtest/gtest.h>

#include "util/hash.h"

namespace spider {
namespace {

RawRecord make_record(const std::string& path, std::int64_t t,
                      bool dir = false) {
  RawRecord rec;
  rec.path = path;
  rec.atime = t + 10;
  rec.ctime = t;
  rec.mtime = t;
  rec.uid = 1000;
  rec.gid = 2000;
  rec.mode = dir ? (kModeDirectory | 0775) : (kModeRegular | 0664);
  rec.inode = 42;
  if (!dir) rec.osts = {3, 7, 11, 15};
  return rec;
}

TEST(SnapshotTableTest, AddAndAccess) {
  SnapshotTable t;
  EXPECT_TRUE(t.empty());
  const auto r0 = t.add(make_record("/lustre/atlas2/p1/u1", 100, true));
  const auto r1 = t.add(make_record("/lustre/atlas2/p1/u1/a.dat", 200));
  EXPECT_EQ(r0, 0u);
  EXPECT_EQ(r1, 1u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.path(1), "/lustre/atlas2/p1/u1/a.dat");
  EXPECT_EQ(t.atime(1), 210);
  EXPECT_EQ(t.mtime(1), 200);
  EXPECT_EQ(t.uid(1), 1000u);
  EXPECT_TRUE(t.is_dir(0));
  EXPECT_FALSE(t.is_dir(1));
  EXPECT_EQ(t.depth(0), 4);
  EXPECT_EQ(t.depth(1), 5);
  EXPECT_EQ(t.file_count(), 1u);
  EXPECT_EQ(t.dir_count(), 1u);
}

TEST(SnapshotTableTest, OstListsAreCsrPacked) {
  SnapshotTable t;
  t.add(make_record("/lustre/atlas2/p/u/dir", 1, true));  // empty list
  t.add(make_record("/lustre/atlas2/p/u/f1", 2));
  RawRecord wide = make_record("/lustre/atlas2/p/u/f2", 3);
  wide.osts.assign(1008, 0);
  for (std::uint32_t i = 0; i < 1008; ++i) wide.osts[i] = i;
  t.add(wide);

  EXPECT_EQ(t.stripe_count(0), 0u);
  EXPECT_EQ(t.stripe_count(1), 4u);
  EXPECT_EQ(t.stripe_count(2), 1008u);
  EXPECT_EQ(t.osts(1)[2], 11u);
  EXPECT_EQ(t.osts(2)[1007], 1007u);
}

TEST(SnapshotTableTest, PathHashMatchesHashBytes) {
  SnapshotTable t;
  t.add(make_record("/lustre/atlas2/p/u/f", 5));
  EXPECT_EQ(t.path_hash(0), hash_bytes("/lustre/atlas2/p/u/f"));
}

TEST(SnapshotTableTest, RowRoundTrip) {
  SnapshotTable t;
  const RawRecord original = make_record("/lustre/atlas2/p/u/f.h5", 777);
  t.add(original);
  const RawRecord copy = t.row(0);
  EXPECT_EQ(copy.path, original.path);
  EXPECT_EQ(copy.atime, original.atime);
  EXPECT_EQ(copy.ctime, original.ctime);
  EXPECT_EQ(copy.mtime, original.mtime);
  EXPECT_EQ(copy.uid, original.uid);
  EXPECT_EQ(copy.gid, original.gid);
  EXPECT_EQ(copy.mode, original.mode);
  EXPECT_EQ(copy.inode, original.inode);
  EXPECT_EQ(copy.osts, original.osts);
}

TEST(SnapshotTableTest, ManyRowsKeepStableViews) {
  SnapshotTable t;
  std::vector<std::string> paths;
  for (int i = 0; i < 5000; ++i) {
    paths.push_back("/lustre/atlas2/proj/u/file_" + std::to_string(i) +
                    ".dat");
    t.add(make_record(paths.back(), i));
  }
  // Arena growth must not invalidate earlier views.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(t.path(static_cast<std::size_t>(i)), paths[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(t.memory_bytes(), 0u);
}

TEST(SnapshotTableTest, AppendTableSplicesInOrder) {
  SnapshotTable dest;
  dest.add(make_record("/lustre/atlas2/p1/u1", 100, true));
  dest.add(make_record("/lustre/atlas2/p1/u1/a.dat", 200));

  SnapshotTable tail;
  tail.add(make_record("/lustre/atlas2/p2/u2/b.dat", 300));
  RawRecord wide = make_record("/lustre/atlas2/p2/u2/c.dat", 400);
  wide.osts = {1, 2, 3, 4, 5, 6, 7};
  tail.add(wide);

  dest.append_table(std::move(tail));
  ASSERT_EQ(dest.size(), 4u);
  EXPECT_EQ(dest.path(0), "/lustre/atlas2/p1/u1");
  EXPECT_EQ(dest.path(2), "/lustre/atlas2/p2/u2/b.dat");
  EXPECT_EQ(dest.path(3), "/lustre/atlas2/p2/u2/c.dat");
  EXPECT_EQ(dest.path_hash(3), hash_bytes("/lustre/atlas2/p2/u2/c.dat"));
  EXPECT_EQ(dest.depth(3), 5);
  EXPECT_EQ(dest.mtime(2), 300);
  // CSR OST lists rebased onto the destination's offsets.
  EXPECT_EQ(dest.stripe_count(1), 4u);
  EXPECT_EQ(dest.stripe_count(2), 4u);
  EXPECT_EQ(dest.stripe_count(3), 7u);
  EXPECT_EQ(dest.osts(3)[6], 7u);
  EXPECT_EQ(dest.file_count(), 3u);
  EXPECT_EQ(dest.dir_count(), 1u);
}

TEST(SnapshotTableTest, AppendTableIntoEmptyAndFromEmpty) {
  SnapshotTable dest;
  SnapshotTable src;
  src.add(make_record("/lustre/atlas2/p/u/x.dat", 50));
  dest.append_table(std::move(src));  // whole-table move path
  ASSERT_EQ(dest.size(), 1u);
  EXPECT_EQ(dest.path(0), "/lustre/atlas2/p/u/x.dat");
  EXPECT_EQ(dest.file_count(), 1u);

  SnapshotTable empty;
  dest.append_table(std::move(empty));  // no-op path
  EXPECT_EQ(dest.size(), 1u);

  // The spliced-from table is reusable afterwards.
  SnapshotTable more;
  more.add(make_record("/lustre/atlas2/p/u/y.dat", 60));
  dest.append_table(std::move(more));
  EXPECT_EQ(more.size(), 0u);
  more.add(make_record("/lustre/atlas2/p/u/z.dat", 70));
  EXPECT_EQ(more.size(), 1u);
  EXPECT_EQ(dest.size(), 2u);
  EXPECT_EQ(dest.path(1), "/lustre/atlas2/p/u/y.dat");
}

TEST(SnapshotTableTest, ColumnSpansMatchRowAccessors) {
  SnapshotTable t;
  for (int i = 0; i < 10; ++i) {
    t.add(make_record("/lustre/atlas2/p/u/f" + std::to_string(i), i * 100));
  }
  const auto mtimes = t.mtimes();
  ASSERT_EQ(mtimes.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(mtimes[i], t.mtime(i));
  }
}

}  // namespace
}  // namespace spider
