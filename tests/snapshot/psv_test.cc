#include "snapshot/psv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/parallel.h"

namespace spider {
namespace {

RawRecord sample_record() {
  RawRecord rec;
  rec.path = "/lustre/atlas2/nph07/u0131/runs/out.bb";
  rec.atime = 1478274632;
  rec.ctime = 1471400961;
  rec.mtime = 1471400961;
  rec.uid = 13133;
  rec.gid = 2329;
  rec.mode = kModeRegular | 0664;
  rec.inode = 1073636389;
  rec.osts = {755, 720, 731, 410};
  return rec;
}

TEST(PsvFormatTest, FieldLayoutMatchesLustreDu) {
  const std::string line = psv_format_record(sample_record());
  // PATH|ATIME|CTIME|MTIME|UID|GID|MODE(octal)|INODE|OST:OBJ,...
  EXPECT_NE(line.find("/lustre/atlas2/nph07/u0131/runs/out.bb|"), std::string::npos);
  EXPECT_NE(line.find("|1478274632|1471400961|1471400961|13133|2329|100664|"
                      "1073636389|"),
            std::string::npos);
  EXPECT_NE(line.find("755:"), std::string::npos);
  EXPECT_EQ(std::count(line.begin(), line.end(), '|'), 8);
  EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3);
}

TEST(PsvRoundTripTest, SingleRecord) {
  const RawRecord original = sample_record();
  RawRecord parsed;
  std::string error;
  ASSERT_TRUE(psv_parse_record(psv_format_record(original), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.path, original.path);
  EXPECT_EQ(parsed.atime, original.atime);
  EXPECT_EQ(parsed.ctime, original.ctime);
  EXPECT_EQ(parsed.mtime, original.mtime);
  EXPECT_EQ(parsed.uid, original.uid);
  EXPECT_EQ(parsed.gid, original.gid);
  EXPECT_EQ(parsed.mode, original.mode);
  EXPECT_EQ(parsed.inode, original.inode);
  EXPECT_EQ(parsed.osts, original.osts);
}

TEST(PsvRoundTripTest, DirectoryHasEmptyOstField) {
  RawRecord dir = sample_record();
  dir.mode = kModeDirectory | 0775;
  dir.osts.clear();
  const std::string line = psv_format_record(dir);
  EXPECT_EQ(line.back(), '|');  // trailing empty OST field
  RawRecord parsed;
  ASSERT_TRUE(psv_parse_record(line, &parsed));
  EXPECT_TRUE(parsed.is_dir());
  EXPECT_TRUE(parsed.osts.empty());
}

TEST(PsvParseTest, RejectsMalformedLines) {
  RawRecord rec;
  std::string error;
  EXPECT_FALSE(psv_parse_record("", &rec, &error));
  EXPECT_FALSE(psv_parse_record("/a|1|2|3", &rec, &error));  // missing fields
  EXPECT_FALSE(psv_parse_record("a|1|2|3|4|5|666|7|", &rec, &error))
      << "relative path must be rejected";
  EXPECT_FALSE(
      psv_parse_record("/a|xx|2|3|4|5|666|7|", &rec, &error));  // bad atime
  EXPECT_FALSE(
      psv_parse_record("/a|1|2|3|4|5|666|7|zz:1", &rec, &error));  // bad ost
  EXPECT_FALSE(psv_parse_record("/a|1|2|3|4|5|666|7|8|9", &rec, &error))
      << "too many fields";
  EXPECT_FALSE(error.empty());
}

TEST(PsvRoundTripTest, LargeFieldValuesDoNotTruncate) {
  // Regression: directory inodes in the synthetic facility exceed 2^40 and
  // once overflowed the formatting buffer, producing 8-field lines.
  RawRecord rec = sample_record();
  rec.inode = (1ULL << 40) | (379ULL << 22) | 12345;
  rec.atime = rec.ctime = rec.mtime = 4102444800;  // year 2100
  rec.uid = 4294967295u;
  rec.gid = 4294967295u;
  rec.osts.clear();
  const std::string line = psv_format_record(rec);
  RawRecord parsed;
  std::string error;
  ASSERT_TRUE(psv_parse_record(line, &parsed, &error)) << error << "\n"
                                                       << line;
  EXPECT_EQ(parsed.inode, rec.inode);
  EXPECT_EQ(parsed.uid, rec.uid);
}

TEST(PsvParseTest, NegativeTimestampsAllowed) {
  // Clock skew on ingest nodes can produce pre-epoch values; the analyses
  // clamp, the parser must not reject.
  RawRecord rec;
  ASSERT_TRUE(psv_parse_record("/a/b|-5|1|1|0|0|100664|1|", &rec));
  EXPECT_EQ(rec.atime, -5);
}

TEST(PsvStreamTest, TableRoundTrip) {
  SnapshotTable original;
  for (int i = 0; i < 200; ++i) {
    RawRecord rec = sample_record();
    rec.path = "/lustre/atlas2/p/u/f" + std::to_string(i) + ".dat";
    rec.inode = static_cast<std::uint64_t>(i);
    rec.mtime += i;
    original.add(rec);
  }
  std::stringstream buffer;
  const std::uint64_t bytes = write_psv(original, buffer);
  EXPECT_GT(bytes, 200u * 40);

  SnapshotTable loaded;
  std::string error;
  ASSERT_TRUE(read_psv(buffer, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded.path(i), original.path(i));
    ASSERT_EQ(loaded.mtime(i), original.mtime(i));
    ASSERT_EQ(loaded.inode(i), original.inode(i));
  }
}

TEST(PsvStreamTest, ReportsLineNumberOnError) {
  std::stringstream buffer;
  buffer << psv_format_record(sample_record()) << "\n";
  buffer << "garbage line\n";
  SnapshotTable table;
  std::string error;
  EXPECT_FALSE(read_psv(buffer, &table, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_EQ(table.size(), 1u);  // first line landed before the failure
}

TEST(PsvStreamTest, SkipsEmptyLines) {
  std::stringstream buffer;
  buffer << "\n" << psv_format_record(sample_record()) << "\n\n";
  SnapshotTable table;
  ASSERT_TRUE(read_psv(buffer, &table));
  EXPECT_EQ(table.size(), 1u);
}

TEST(PsvBufferTest, ParallelBufferMatchesSerialStream) {
  SnapshotTable t;
  for (int i = 0; i < 500; ++i) {
    RawRecord rec = sample_record();
    rec.path = "/lustre/atlas2/p" + std::to_string(i / 40) + "/u/f" +
               std::to_string(i);
    rec.inode = static_cast<std::uint64_t>(i);
    t.add(rec);
  }
  std::stringstream ss;
  write_psv(t, ss);
  const std::string text = ss.str();

  SnapshotTable serial;
  std::string error;
  std::stringstream replay(text);
  ASSERT_TRUE(read_psv(replay, &serial, &error)) << error;

  ThreadPool wide(4);
  SnapshotTable parallel;
  ASSERT_TRUE(read_psv_buffer(text, &parallel, &error, &wide)) << error;

  ASSERT_EQ(parallel.size(), serial.size());
  ASSERT_EQ(parallel.file_count(), serial.file_count());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(parallel.path(i), serial.path(i)) << "row " << i;
    ASSERT_EQ(parallel.path_hash(i), serial.path_hash(i)) << "row " << i;
    ASSERT_EQ(parallel.inode(i), serial.inode(i)) << "row " << i;
    ASSERT_EQ(parallel.stripe_count(i), serial.stripe_count(i)) << "row " << i;
  }
}

TEST(PsvBufferTest, ReportsGlobalLineNumberOnError) {
  const std::string good = psv_format_record(sample_record());
  const std::string text = good + "\n" + good + "\n\nnot a record\n" + good;
  SnapshotTable t;
  std::string error;
  EXPECT_FALSE(read_psv_buffer(text, &t, &error));
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
  EXPECT_EQ(t.size(), 0u) << "failed parse must not append rows";
}

TEST(PsvBufferTest, HandlesMissingTrailingNewlineAndEmptyBuffer) {
  SnapshotTable t;
  std::string error;
  ASSERT_TRUE(read_psv_buffer("", &t, &error)) << error;
  EXPECT_EQ(t.size(), 0u);
  const std::string one = psv_format_record(sample_record());
  ASSERT_TRUE(read_psv_buffer(one, &t, &error)) << error;  // no trailing \n
  EXPECT_EQ(t.size(), 1u);
}

TEST(PsvFileTest, WriteReadFile) {
  SnapshotTable original;
  original.add(sample_record());
  const std::string file =
      testing::TempDir() + "/spider_psv_test_snapshot.psv";
  std::string error;
  ASSERT_TRUE(write_psv_file(original, file, &error)) << error;
  SnapshotTable loaded;
  ASSERT_TRUE(read_psv_file(file, &loaded, &error)) << error;
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.path(0), original.path(0));
  EXPECT_FALSE(read_psv_file(file + ".missing", &loaded, &error));
}

}  // namespace
}  // namespace spider
