#include "snapshot/scol.h"

#include <gtest/gtest.h>

#include <sstream>

#include "snapshot/psv.h"
#include "snapshot/varint.h"
#include "util/prng.h"

namespace spider {
namespace {

// --- varint primitives -------------------------------------------------

TEST(VarintTest, RoundTripBoundaryValues) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xffffffffULL,
        0xffffffffffffffffULL}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    std::uint64_t decoded = 0;
    ASSERT_TRUE(get_varint(buf, pos, decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, RejectsTruncatedInput) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 0xffffffffffULL);
  buf.pop_back();
  std::size_t pos = 0;
  std::uint64_t decoded = 0;
  EXPECT_FALSE(get_varint(buf, pos, decoded));
}

TEST(ZigzagTest, SmallMagnitudesStaySmall) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  for (const std::int64_t v :
       {std::int64_t{-1000000}, std::int64_t{-1}, std::int64_t{0},
        std::int64_t{1}, std::int64_t{987654321}, INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

// --- scol round trips ----------------------------------------------------

SnapshotTable make_table(std::size_t rows, std::uint64_t seed = 7) {
  Rng rng(seed);
  SnapshotTable t;
  std::int64_t mtime = 1420416000;
  for (std::size_t i = 0; i < rows; ++i) {
    RawRecord rec;
    const std::size_t proj = i / 50;
    rec.path = "/lustre/atlas2/proj" + std::to_string(proj) + "/u" +
               std::to_string(proj % 7) + "/run" + std::to_string(i % 9) +
               "/step." + std::to_string(i);
    mtime += static_cast<std::int64_t>(rng.uniform_u64(1000));
    rec.mtime = mtime;
    rec.ctime = mtime;
    rec.atime = mtime + static_cast<std::int64_t>(rng.uniform_u64(86400));
    rec.uid = static_cast<std::uint32_t>(1000 + proj % 13);
    rec.gid = static_cast<std::uint32_t>(2000 + proj % 5);
    rec.mode = (i % 20 == 0) ? (kModeDirectory | 0775) : (kModeRegular | 0664);
    rec.inode = 1'000'000 + i * 3;
    if (!rec.is_dir()) {
      const std::size_t stripes = 1 + rng.uniform_u64(8);
      for (std::size_t s = 0; s < stripes; ++s) {
        rec.osts.push_back(static_cast<std::uint32_t>(rng.uniform_u64(2016)));
      }
    }
    t.add(rec);
  }
  return t;
}

void expect_tables_equal(const SnapshotTable& a, const SnapshotTable& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.path(i), b.path(i)) << "row " << i;
    ASSERT_EQ(a.atime(i), b.atime(i)) << "row " << i;
    ASSERT_EQ(a.ctime(i), b.ctime(i)) << "row " << i;
    ASSERT_EQ(a.mtime(i), b.mtime(i)) << "row " << i;
    ASSERT_EQ(a.uid(i), b.uid(i)) << "row " << i;
    ASSERT_EQ(a.gid(i), b.gid(i)) << "row " << i;
    ASSERT_EQ(a.mode(i), b.mode(i)) << "row " << i;
    ASSERT_EQ(a.inode(i), b.inode(i)) << "row " << i;
    const auto osts_a = a.osts(i);
    const auto osts_b = b.osts(i);
    ASSERT_EQ(osts_a.size(), osts_b.size()) << "row " << i;
    for (std::size_t k = 0; k < osts_a.size(); ++k) {
      ASSERT_EQ(osts_a[k], osts_b[k]);
    }
  }
}

TEST(ScolTest, EmptyTableRoundTrip) {
  const SnapshotTable empty;
  const auto image = encode_scol(empty);
  SnapshotTable decoded;
  std::string error;
  ASSERT_TRUE(decode_scol(image, &decoded, &error)) << error;
  EXPECT_EQ(decoded.size(), 0u);
}

// Every combination of encoding knobs must round-trip identically.
struct OptionCase {
  ScolOptions options;
  const char* name;
};

class ScolOptionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScolOptionSweep, RoundTripExact) {
  const int mask = GetParam();
  ScolOptions options;
  options.front_code_paths = mask & 1;
  options.delta_timestamps = mask & 2;
  options.rle_ids = mask & 4;
  options.delta_inodes = mask & 8;

  const SnapshotTable original = make_table(1000);
  const auto image = encode_scol(original, options);
  SnapshotTable decoded;
  std::string error;
  ASSERT_TRUE(decode_scol(image, &decoded, &error)) << error;
  expect_tables_equal(original, decoded);
}

INSTANTIATE_TEST_SUITE_P(AllKnobCombinations, ScolOptionSweep,
                         ::testing::Range(0, 16));

TEST(ScolTest, DefaultEncodingsBeatPlain) {
  const SnapshotTable t = make_table(5000);
  ScolOptions plain;
  plain.front_code_paths = false;
  plain.delta_timestamps = false;
  plain.rle_ids = false;
  plain.delta_inodes = false;
  const auto encoded_default = encode_scol(t).size();
  const auto encoded_plain = encode_scol(t, plain).size();
  EXPECT_LT(encoded_default, encoded_plain / 2)
      << "columnar encodings should at least halve the footprint";
}

TEST(ScolTest, SmallerThanPsv) {
  const SnapshotTable t = make_table(5000);
  std::stringstream psv;
  const std::uint64_t psv_bytes = write_psv(t, psv);
  const std::uint64_t scol_bytes = encode_scol(t).size();
  // The paper reports 119 GB -> 28 GB (~4.3x); our synthetic rows are less
  // redundant but 3x is well within reach.
  EXPECT_LT(scol_bytes * 3, psv_bytes);
}

TEST(ScolTest, ColumnSizesSumToTotal) {
  const SnapshotTable t = make_table(500);
  const ScolColumnSizes sizes = scol_column_sizes(t);
  EXPECT_EQ(sizes.total, sizes.paths + sizes.atime + sizes.ctime +
                             sizes.mtime + sizes.uid + sizes.gid + sizes.mode +
                             sizes.inode + sizes.ost);
  EXPECT_GT(sizes.paths, 0u);
  EXPECT_GT(sizes.ost, 0u);
}

TEST(ScolTest, DetectsCorruption) {
  const SnapshotTable t = make_table(100);
  auto image = encode_scol(t);

  // Flip one payload byte near the end (inside the OST column payload).
  auto corrupted = image;
  corrupted[corrupted.size() - 5] ^= 0xff;
  SnapshotTable decoded;
  std::string error;
  EXPECT_FALSE(decode_scol(corrupted, &decoded, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;

  // Bad magic.
  auto bad_magic = image;
  bad_magic[0] = 'X';
  error.clear();
  SnapshotTable decoded2;
  EXPECT_FALSE(decode_scol(bad_magic, &decoded2, &error));

  // Truncation at any point must fail cleanly, never crash.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{12}, image.size() / 2,
        image.size() - 1}) {
    SnapshotTable partial;
    const std::span<const std::uint8_t> prefix(image.data(), keep);
    EXPECT_FALSE(decode_scol(prefix, &partial, nullptr)) << "keep=" << keep;
  }
}

// Fuzz-style property: arbitrary single-byte corruption anywhere in the
// image must never crash or hang — decode either fails cleanly or (for
// bytes outside validated regions) round-trips unaffected data.
class ScolCorruptionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScolCorruptionFuzz, NeverCrashes) {
  const SnapshotTable original = make_table(200, GetParam());
  const auto image = encode_scol(original);
  Rng rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = image;
    const std::size_t pos = rng.uniform_u64(corrupted.size());
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    SnapshotTable decoded;
    std::string error;
    const bool ok = decode_scol(corrupted, &decoded, &error);
    if (!ok) {
      EXPECT_FALSE(error.empty());
    } else {
      // Only a corrupted *checksum byte of an empty-column header* region
      // could still decode; whatever decodes must have the right shape.
      EXPECT_EQ(decoded.size(), original.size());
    }
  }
}

TEST_P(ScolCorruptionFuzz, RandomTruncationNeverCrashes) {
  const SnapshotTable original = make_table(150, GetParam());
  const auto image = encode_scol(original);
  Rng rng(GetParam() * 104729 + 1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t keep = rng.uniform_u64(image.size());
    SnapshotTable decoded;
    const std::span<const std::uint8_t> prefix(image.data(), keep);
    EXPECT_FALSE(decode_scol(prefix, &decoded, nullptr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScolCorruptionFuzz,
                         ::testing::Values(21, 22, 23));

TEST(ScolTest, FileRoundTrip) {
  const SnapshotTable original = make_table(300);
  const std::string file = testing::TempDir() + "/spider_scol_test.scol";
  std::string error;
  ASSERT_TRUE(write_scol_file(original, file, &error)) << error;
  SnapshotTable loaded;
  ASSERT_TRUE(read_scol_file(file, &loaded, &error)) << error;
  expect_tables_equal(original, loaded);
  EXPECT_FALSE(read_scol_file(file + ".missing", &loaded, &error));
}

TEST(ScolTest, DecodeAppendsToExistingTable) {
  const SnapshotTable original = make_table(10);
  const auto image = encode_scol(original);
  SnapshotTable out;
  RawRecord pre;
  pre.path = "/lustre/atlas2/p/u/pre";
  out.add(pre);
  std::string error;
  ASSERT_TRUE(decode_scol(image, &out, &error)) << error;
  EXPECT_EQ(out.size(), 11u);
  EXPECT_EQ(out.path(0), "/lustre/atlas2/p/u/pre");
  EXPECT_EQ(out.path(1), original.path(0));
}

}  // namespace
}  // namespace spider
