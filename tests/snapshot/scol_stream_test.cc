// ScolGroupReader / ScolStreamWriter: the out-of-core ends of the codec.
// The reader must reproduce the eager decoder bit-for-bit — same rows,
// same projection behaviour, same salvage verdicts in the same order, same
// strict-mode error text — because the streaming study pipeline's gap and
// data-quality accounting rides on that equivalence. The writer must emit
// byte-identical images to the buffering encoder so a streamed series is
// indistinguishable from a materialized one.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "snapshot/scol.h"
#include "util/io.h"
#include "util/prng.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

SnapshotTable make_table(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  SnapshotTable t;
  std::string dir = "/lustre/proj";
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.uniform_u64(64) == 0) {
      dir = "/lustre/proj" + std::to_string(rng.uniform_u64(40)) + "/run" +
            std::to_string(rng.uniform_u64(9));
    }
    const bool is_dir = rng.uniform_u64(16) == 0;
    const std::string path =
        dir + "/f" + std::to_string(i) + (is_dir ? "" : ".dat");
    const std::int64_t mtime =
        1'400'000'000 + static_cast<std::int64_t>(rng.uniform_u64(100'000'000));
    std::vector<std::uint32_t> osts;
    const std::size_t stripes = rng.uniform_u64(4);
    for (std::size_t k = 0; k < stripes; ++k) {
      osts.push_back(static_cast<std::uint32_t>(rng.uniform_u64(1008)));
    }
    t.add(path, mtime + static_cast<std::int64_t>(rng.uniform_u64(10'000)),
          mtime, mtime, static_cast<std::uint32_t>(rng.uniform_u64(100)),
          static_cast<std::uint32_t>(rng.uniform_u64(40)),
          is_dir ? 040755u : 0100644u, 1'000'000 + i, osts);
  }
  return t;
}

void expect_tables_equal(const SnapshotTable& a, const SnapshotTable& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.file_count(), b.file_count());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.path(i), b.path(i)) << i;
    ASSERT_EQ(a.atime(i), b.atime(i)) << i;
    ASSERT_EQ(a.ctime(i), b.ctime(i)) << i;
    ASSERT_EQ(a.mtime(i), b.mtime(i)) << i;
    ASSERT_EQ(a.uid(i), b.uid(i)) << i;
    ASSERT_EQ(a.gid(i), b.gid(i)) << i;
    ASSERT_EQ(a.mode(i), b.mode(i)) << i;
    ASSERT_EQ(a.inode(i), b.inode(i)) << i;
    ASSERT_EQ(a.path_hash(i), b.path_hash(i)) << i;
    ASSERT_EQ(a.stripe_count(i), b.stripe_count(i)) << i;
  }
}

ScolOptions small_groups() {
  ScolOptions options;
  options.group_size = 100;
  return options;
}

TEST(ScolGroupReaderTest, GroupAtATimeEqualsEagerDecode) {
  const SnapshotTable table = make_table(1234, 1);
  const auto image = encode_scol(table, small_groups());

  ScolGroupReader reader;
  ASSERT_TRUE(reader.open_bytes(image, small_groups()).ok());
  EXPECT_EQ(reader.rows(), table.size());
  EXPECT_EQ(reader.group_count(), 13u);
  EXPECT_EQ(reader.group_rows(0), 100u);
  EXPECT_EQ(reader.group_rows(12), 34u);

  SnapshotTable streamed;
  for (std::size_t g = 0; g < reader.group_count(); ++g) {
    ASSERT_TRUE(reader.decode_group(g, &streamed).ok()) << g;
  }
  expect_tables_equal(table, streamed);
}

TEST(ScolGroupReaderTest, GroupsDecodeIndependentlyAndRepeatedly) {
  const SnapshotTable table = make_table(500, 2);
  const auto image = encode_scol(table, small_groups());
  ScolGroupReader reader;
  ASSERT_TRUE(reader.open_bytes(image, small_groups()).ok());

  // Decode out of order and twice; each call appends exactly that group.
  SnapshotTable g3;
  ASSERT_TRUE(reader.decode_group(3, &g3).ok());
  ASSERT_EQ(g3.size(), 100u);
  EXPECT_EQ(g3.path(0), table.path(300));
  SnapshotTable again;
  ASSERT_TRUE(reader.decode_group(3, &again).ok());
  expect_tables_equal(g3, again);
}

TEST(ScolGroupReaderTest, MappedFileRoundTrip) {
  const SnapshotTable table = make_table(800, 3);
  const std::string path = temp_path("spider_scol_stream_map.scol");
  ASSERT_TRUE(write_scol_file(table, path, small_groups()).ok());

  ScolGroupReader reader;
  ASSERT_TRUE(reader.open(path, small_groups()).ok());
  SnapshotTable streamed;
  for (std::size_t g = 0; g < reader.group_count(); ++g) {
    ASSERT_TRUE(reader.decode_group(g, &streamed).ok());
  }
  expect_tables_equal(table, streamed);
  std::remove(path.c_str());
}

TEST(ScolGroupReaderTest, ProjectionMatchesEagerDecode) {
  const SnapshotTable table = make_table(600, 4);
  const auto image = encode_scol(table, small_groups());

  ScolOptions projected = small_groups();
  projected.columns = kColMaskPaths | kColMaskAtime | kColMaskMode;

  SnapshotTable eager;
  ASSERT_TRUE(decode_scol(image, &eager, projected).ok());

  ScolGroupReader reader;
  ASSERT_TRUE(reader.open_bytes(image, projected).ok());
  SnapshotTable streamed;
  for (std::size_t g = 0; g < reader.group_count(); ++g) {
    ASSERT_TRUE(reader.decode_group(g, &streamed).ok());
  }
  expect_tables_equal(eager, streamed);
  // Projection really dropped the unrequested columns.
  EXPECT_EQ(streamed.uid(0), 0u);
  EXPECT_EQ(streamed.inode(0), 0u);
}

TEST(ScolGroupReaderTest, MissingFileReportsNotFound) {
  ScolGroupReader reader;
  const Status s = reader.open(temp_path("spider_scol_stream_missing.scol"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_FALSE(reader.is_open());
}

TEST(ScolGroupReaderTest, HeaderDamageFailsOpenLikeEager) {
  const SnapshotTable table = make_table(300, 5);
  auto image = encode_scol(table, small_groups());
  image[3] ^= 0xff;  // magic
  ScolGroupReader reader;
  EXPECT_FALSE(reader.open_bytes(image, small_groups()).ok());
  SnapshotTable eager;
  EXPECT_FALSE(decode_scol(image, &eager, small_groups()).ok());
}

/// Flips one payload byte inside group `g` of `image`.
void corrupt_group(std::vector<std::uint8_t>& image, std::size_t g) {
  ScolV2Layout layout;
  ASSERT_TRUE(parse_scol_v2_layout(image, &layout).ok());
  image[layout.group_begin[g] + layout.group_len[g] / 2] ^= 0x40;
}

TEST(ScolGroupReaderTest, StrictModeMatchesEagerErrorText) {
  const SnapshotTable table = make_table(700, 6);
  auto image = encode_scol(table, small_groups());
  corrupt_group(image, 4);

  SnapshotTable eager;
  const Status eager_status = decode_scol(image, &eager, small_groups());
  ASSERT_FALSE(eager_status.ok());

  ScolGroupReader reader;
  ASSERT_TRUE(reader.open_bytes(image, small_groups()).ok());
  SalvageReport report = reader.make_report();
  Status streamed_status;
  SnapshotTable streamed;
  for (std::size_t g = 0; g < reader.group_count(); ++g) {
    Status s = reader.decode_group(g, &streamed);
    if (!s.ok()) {
      streamed_status = reader.dispose_failure(g, std::move(s), &report);
      break;
    }
    reader.note_success(g, &report);
  }
  ASSERT_FALSE(streamed_status.ok());
  EXPECT_EQ(streamed_status.to_string(), eager_status.to_string());
}

TEST(ScolGroupReaderTest, SalvageSweepReproducesEagerReport) {
  for (const CorruptGroupPolicy policy :
       {CorruptGroupPolicy::kSkip, CorruptGroupPolicy::kQuarantine}) {
    const SnapshotTable table = make_table(900, 7);
    auto image = encode_scol(table, small_groups());
    corrupt_group(image, 2);
    corrupt_group(image, 7);

    ScolOptions options = small_groups();
    options.on_corrupt_group = policy;

    SnapshotTable eager;
    SalvageReport eager_report;
    ASSERT_TRUE(decode_scol(image, &eager, options, &eager_report).ok());

    ScolGroupReader reader;
    ASSERT_TRUE(reader.open_bytes(image, options).ok());
    SalvageReport report = reader.make_report();
    SnapshotTable streamed;
    for (std::size_t g = 0; g < reader.group_count(); ++g) {
      Status s = reader.decode_group(g, &streamed);
      if (s.ok()) {
        reader.note_success(g, &report);
      } else {
        ASSERT_TRUE(reader.dispose_failure(g, std::move(s), &report).ok());
      }
    }
    expect_tables_equal(eager, streamed);
    EXPECT_EQ(report.summary(), eager_report.summary());
    EXPECT_EQ(report.groups_total, eager_report.groups_total);
    EXPECT_EQ(report.groups_lost, eager_report.groups_lost);
    EXPECT_EQ(report.rows_total, eager_report.rows_total);
    EXPECT_EQ(report.rows_lost, eager_report.rows_lost);
    EXPECT_EQ(report.rows_recovered, eager_report.rows_recovered);
    ASSERT_EQ(report.damage.size(), eager_report.damage.size());
    for (std::size_t i = 0; i < report.damage.size(); ++i) {
      EXPECT_EQ(report.damage[i].group, eager_report.damage[i].group);
      EXPECT_EQ(report.damage[i].rows, eager_report.damage[i].rows);
      EXPECT_EQ(report.damage[i].status.to_string(),
                eager_report.damage[i].status.to_string());
      EXPECT_EQ(report.damage[i].quarantined,
                eager_report.damage[i].quarantined);
    }
  }
}

TEST(ScolGroupReaderTest, TruncatedTailGroupsMatchEagerSalvage) {
  const SnapshotTable table = make_table(1000, 8);
  auto image = encode_scol(table, small_groups());
  image.resize(image.size() * 2 / 3);  // cut the payload tail

  ScolOptions options = small_groups();
  options.on_corrupt_group = CorruptGroupPolicy::kSkip;

  SnapshotTable eager;
  SalvageReport eager_report;
  ASSERT_TRUE(decode_scol(image, &eager, options, &eager_report).ok());

  ScolGroupReader reader;
  ASSERT_TRUE(reader.open_bytes(image, options).ok());
  SalvageReport report = reader.make_report();
  SnapshotTable streamed;
  for (std::size_t g = 0; g < reader.group_count(); ++g) {
    Status s = reader.decode_group(g, &streamed);
    if (s.ok()) {
      reader.note_success(g, &report);
    } else {
      ASSERT_TRUE(reader.dispose_failure(g, std::move(s), &report).ok());
    }
  }
  expect_tables_equal(eager, streamed);
  EXPECT_EQ(report.summary(), eager_report.summary());
}

TEST(ScolGroupReaderTest, V1ImagePresentsAsOneGroup) {
  const SnapshotTable table = make_table(400, 9);
  ScolOptions v1;
  v1.format_version = 1;
  const auto image = encode_scol(table, v1);

  ScolGroupReader reader;
  ASSERT_TRUE(reader.open_bytes(image, ScolOptions{}).ok());
  EXPECT_EQ(reader.group_count(), 1u);
  EXPECT_EQ(reader.rows(), table.size());
  EXPECT_EQ(reader.group_rows(0), table.size());
  SnapshotTable streamed;
  ASSERT_TRUE(reader.decode_group(0, &streamed).ok());
  expect_tables_equal(table, streamed);
}

TEST(ScolStreamWriterTest, ByteIdenticalToBufferedEncoder) {
  const SnapshotTable table = make_table(1234, 10);
  const std::string streamed_path = temp_path("spider_scol_streamw.scol");
  const std::string eager_path = temp_path("spider_scol_eagerw.scol");

  ASSERT_TRUE(write_scol_file(table, eager_path, small_groups()).ok());

  ScolStreamWriter writer;
  ASSERT_TRUE(writer.open(streamed_path, small_groups()).ok());
  for (std::size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(writer.add(table.row(i)).ok()) << i;
  }
  ASSERT_TRUE(writer.finish().ok());
  EXPECT_EQ(writer.rows_added(), table.size());

  std::vector<std::uint8_t> streamed_bytes, eager_bytes;
  ASSERT_TRUE(read_file(streamed_path, &streamed_bytes).ok());
  ASSERT_TRUE(read_file(eager_path, &eager_bytes).ok());
  EXPECT_EQ(streamed_bytes, eager_bytes);

  std::remove(streamed_path.c_str());
  std::remove(eager_path.c_str());
}

TEST(ScolStreamWriterTest, ByteIdenticalAcrossEncodingKnobs) {
  const SnapshotTable table = make_table(350, 11);
  for (int knob = 0; knob < 4; ++knob) {
    ScolOptions options = small_groups();
    options.front_code_paths = knob != 0;
    options.delta_timestamps = knob != 1;
    options.rle_ids = knob != 2;
    options.delta_inodes = knob != 3;
    const auto eager = encode_scol(table, options);

    const std::string path = temp_path("spider_scol_knob.scol");
    ScolStreamWriter writer;
    ASSERT_TRUE(writer.open(path, options).ok());
    for (std::size_t i = 0; i < table.size(); ++i) {
      ASSERT_TRUE(writer.add(table.row(i)).ok());
    }
    ASSERT_TRUE(writer.finish().ok());
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(read_file(path, &got).ok());
    EXPECT_EQ(got, eager) << "knob " << knob;
    std::remove(path.c_str());
  }
}

TEST(ScolStreamWriterTest, EmptyTableWritesDecodableHeader) {
  const std::string path = temp_path("spider_scol_streamw_empty.scol");
  ScolStreamWriter writer;
  ASSERT_TRUE(writer.open(path, small_groups()).ok());
  ASSERT_TRUE(writer.finish().ok());
  SnapshotTable got;
  ASSERT_TRUE(read_scol_file(path, &got, small_groups()).ok());
  EXPECT_EQ(got.size(), 0u);
  std::remove(path.c_str());
}

TEST(ScolStreamWriterTest, AbortLeavesNoFiles) {
  const std::string dir = temp_path("spider_scol_streamw_abort");
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    ScolStreamWriter writer;
    ASSERT_TRUE(writer.open(dir + "/x.scol", small_groups()).ok());
    const SnapshotTable table = make_table(50, 12);
    for (std::size_t i = 0; i < table.size(); ++i) {
      ASSERT_TRUE(writer.add(table.row(i)).ok());
    }
    writer.abort();
  }
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 0u);
  fs::remove_all(dir);
}

TEST(ScolStreamWriterTest, RejectsV1Format) {
  ScolOptions v1;
  v1.format_version = 1;
  ScolStreamWriter writer;
  EXPECT_FALSE(writer.open(temp_path("spider_scol_v1.scol"), v1).ok());
}

TEST(ScolStreamWriterTest, LargeBatchRoundTripsThroughGroupReader) {
  const SnapshotTable table = make_table(5000, 13);
  const std::string path = temp_path("spider_scol_streamw_large.scol");
  ScolOptions options;
  options.group_size = 512;
  ScolStreamWriter writer;
  ASSERT_TRUE(writer.open(path, options).ok());
  for (std::size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(writer.add(table.row(i)).ok());
  }
  ASSERT_TRUE(writer.finish().ok());

  ScolGroupReader reader;
  ASSERT_TRUE(reader.open(path, options).ok());
  EXPECT_EQ(reader.group_count(), 10u);
  SnapshotTable streamed;
  for (std::size_t g = 0; g < reader.group_count(); ++g) {
    ASSERT_TRUE(reader.decode_group(g, &streamed).ok());
  }
  expect_tables_equal(table, streamed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spider
