// spider::Status / Result<T>: code preservation, context wrapping that
// never clobbers inner text, cause chaining, and the Result value carrier.
#include "util/status.h"

#include <gtest/gtest.h>

namespace spider {
namespace {

TEST(StatusTest, DefaultIsOkAndEmpty) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_FALSE(s.has_cause());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::truncated("x").code(), StatusCode::kTruncated);
  EXPECT_EQ(Status::io_error("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::resource_exhausted("x").code(),
            StatusCode::kResourceExhausted);
  const Status s = Status::invalid_argument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.to_string(), "invalid argument: bad knob");
}

TEST(StatusTest, WithContextPrependsWithoutClobbering) {
  const Status inner = Status::corruption("column checksum mismatch");
  const Status outer =
      inner.with_context("group 3").with_context("snap_20150105.scol");
  EXPECT_EQ(outer.code(), StatusCode::kCorruption);
  // Both the context prefixes and the original text survive — the exact
  // failure the old bool+string convention had (layers overwriting each
  // other's messages).
  EXPECT_EQ(outer.message(),
            "snap_20150105.scol: group 3: column checksum mismatch");
}

TEST(StatusTest, WithContextOnOkIsNoOp) {
  const Status s = Status().with_context("should not appear");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, CausedByChainsAndRenders) {
  const Status io = Status::io_error("read: Input/output error");
  const Status decode = Status::corruption("group 2 unreadable").caused_by(io);
  EXPECT_TRUE(decode.has_cause());
  EXPECT_EQ(decode.cause().code(), StatusCode::kIoError);
  EXPECT_EQ(decode.to_string(),
            "corruption: group 2 unreadable; caused by: io error: read: "
            "Input/output error");
}

TEST(StatusTest, CausedByKeepsExistingLink) {
  const Status a = Status::io_error("a");
  const Status b = Status::truncated("b").caused_by(a);
  const Status c = Status::corruption("c");
  // Chaining c beneath b keeps a at the bottom.
  const Status chained = b.caused_by(c);
  EXPECT_EQ(chained.to_string(),
            "truncated: b; caused by: corruption: c; caused by: io error: a");
}

TEST(StatusTest, CopiesShareRepresentation) {
  const Status s = Status::corruption("original");
  const Status copy = s;  // NOLINT: the copy is the point
  EXPECT_EQ(copy.message(), "original");
  EXPECT_EQ(copy.code(), StatusCode::kCorruption);
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_EQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_EQ(status_code_name(StatusCode::kCorruption), "corruption");
  EXPECT_EQ(status_code_name(StatusCode::kTruncated), "truncated");
  EXPECT_EQ(status_code_name(StatusCode::kFailedPrecondition),
            "failed precondition");
}

TEST(ResultTest, CarriesValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, CarriesStatus) {
  Result<int> r = Status::not_found("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
}

}  // namespace
}  // namespace spider
