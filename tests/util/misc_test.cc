// Tests for arena, hashing, tables, time, and CLI utilities.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/arena.h"
#include "util/cli.h"
#include "util/hash.h"
#include "util/table.h"
#include "util/timeutil.h"

namespace spider {
namespace {

TEST(StringArenaTest, InternReturnsStableEqualCopies) {
  StringArena arena(64);  // tiny blocks to force growth
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 100; ++i) {
    originals.push_back("/lustre/atlas2/proj" + std::to_string(i) +
                        "/user/file." + std::to_string(i));
  }
  for (const auto& s : originals) views.push_back(arena.intern(s));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(views[i], originals[i]);
  }
  EXPECT_GT(arena.bytes_used(), 0u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(StringArenaTest, OversizedStringsGetDedicatedBlocks) {
  StringArena arena(16);
  const std::string big(1000, 'x');
  const std::string_view v = arena.intern(big);
  EXPECT_EQ(v, big);
  // The current small block must survive an oversized allocation.
  const std::string_view a = arena.intern("aa");
  const std::string_view b = arena.intern(std::string(500, 'y'));
  const std::string_view c = arena.intern("cc");
  EXPECT_EQ(a, "aa");
  EXPECT_EQ(b, std::string(500, 'y'));
  EXPECT_EQ(c, "cc");
}

TEST(StringArenaTest, EmptyAndConcat) {
  StringArena arena;
  EXPECT_EQ(arena.intern(""), std::string_view{});
  EXPECT_EQ(arena.intern_concat("/a/b", "/c.txt"), "/a/b/c.txt");
  EXPECT_EQ(arena.intern_concat("", "x"), "x");
  EXPECT_EQ(arena.intern_concat("x", ""), "x");
}

TEST(HashTest, DeterministicAndSpread) {
  const std::uint64_t h1 = hash_bytes("/lustre/atlas2/cli101/u1/run/out.nc");
  EXPECT_EQ(h1, hash_bytes("/lustre/atlas2/cli101/u1/run/out.nc"));
  // One-character difference must change the hash.
  EXPECT_NE(h1, hash_bytes("/lustre/atlas2/cli101/u1/run/out.nd"));
  // Same content, different seed -> different hash.
  EXPECT_NE(h1, hash_bytes("/lustre/atlas2/cli101/u1/run/out.nc", 12345));
}

TEST(HashTest, NoTrivialCollisionsOnPathFamily) {
  std::set<std::uint64_t> seen;
  for (int p = 0; p < 100; ++p) {
    for (int f = 0; f < 100; ++f) {
      const std::string path = "/lustre/atlas2/p" + std::to_string(p) +
                               "/u/checkpoint." + std::to_string(f);
      seen.insert(hash_bytes(path));
    }
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, ShardDistributionIsBalanced) {
  constexpr int kShards = 16;
  int counts[kShards] = {};
  for (int i = 0; i < 16000; ++i) {
    const std::string s = "/proj/file." + std::to_string(i);
    ++counts[hash_bytes(s) % kShards];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(AsciiTableTest, RendersAlignedCells) {
  AsciiTable t({"domain", "count"});
  t.add_row({"bip", "595564"});
  t.add_row({"cli", "211876"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| domain | "), std::string::npos);
  EXPECT_NE(out.find("| bip    | 595564 |"), std::string::npos);
  EXPECT_NE(out.find("| cli    | 211876 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(AsciiTableTest, SeparatorAndShortRows) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"1"});  // short row padded
  t.add_separator();
  t.add_row({"2", "3", "4"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("+---"), std::string::npos);
}

TEST(FormattingTest, Numbers) {
  EXPECT_EQ(format_with_commas(0), "0");
  EXPECT_EQ(format_with_commas(999), "999");
  EXPECT_EQ(format_with_commas(1234567), "1,234,567");
  EXPECT_EQ(format_count(532), "532");
  EXPECT_EQ(format_count(1234), "1.23K");
  EXPECT_EQ(format_count(1234567), "1.23M");
  EXPECT_EQ(format_count(4069223934.0), "4.07B");
  EXPECT_EQ(format_percent(0.4215), "42.15%");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_cv(0.345), "0.345");
  EXPECT_EQ(format_cv(0.00234), "2.34e-03");
}

TEST(TimeTest, CivilRoundTrip) {
  // The study window endpoints and some awkward dates.
  for (const CivilDate d : {CivilDate{2015, 1, 5}, CivilDate{2016, 2, 29},
                            CivilDate{2016, 8, 29}, CivilDate{1970, 1, 1},
                            CivilDate{1999, 12, 31}, CivilDate{2000, 3, 1}}) {
    const std::int64_t epoch = epoch_from_civil(d);
    EXPECT_EQ(civil_from_epoch(epoch), d);
    EXPECT_EQ(civil_from_epoch(epoch + kSecondsPerDay - 1), d);
  }
}

TEST(TimeTest, KnownEpochValues) {
  EXPECT_EQ(epoch_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(epoch_from_civil({1970, 1, 2}), 86400);
  // 2015-01-05 00:00:00 UTC == 1420416000 (study start week).
  EXPECT_EQ(epoch_from_civil({2015, 1, 5}), 1420416000);
}

TEST(TimeTest, Formatting) {
  const std::int64_t t = epoch_from_civil({2015, 1, 26});
  EXPECT_EQ(date_tag(t), "20150126");
  EXPECT_EQ(date_iso(t), "2015-01-26");
  EXPECT_DOUBLE_EQ(seconds_to_days(kSecondsPerDay * 3), 3.0);
}

TEST(CliTest, ParsesAllFlagForms) {
  const char* argv[] = {"prog",      "pos1",   "--scale=0.01", "--weeks",
                        "72",        "--verbose", "--flag"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_double("scale", 1.0), 0.01);
  EXPECT_EQ(args.get_int("weeks", 0), 72);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_FALSE(args.get_bool("absent", false));
  EXPECT_EQ(args.get("absent", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.program(), "prog");
}

TEST(CliTest, BoolValueSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=0", "--c=on", "--d=false"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

}  // namespace
}  // namespace spider
