// Jittered exponential backoff (util/retry.h): attempt accounting, delay
// growth and bounds, the retryable predicate, and the wiring into
// DirectorySeries — a snapshot source whose reads fail transiently must
// recover without recording a series gap.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "snapshot/series.h"
#include "synth/generator.h"
#include "util/io.h"
#include "util/retry.h"
#include "util/status.h"

namespace spider {
namespace {

TEST(RetryTest, FirstTrySuccessSleepsNever) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  std::vector<std::uint64_t> slept;
  policy.sleep_fn = [&](std::uint64_t us) { slept.push_back(us); };
  RetryStats stats;
  const Status s =
      retry_with_backoff(policy, &stats, [] { return Status(); });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryTest, TransientFailureRecoversWithBoundedDelays) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_us = 1000;
  policy.max_delay_us = 200'000;
  policy.jitter = 0.5;
  std::vector<std::uint64_t> slept;
  policy.sleep_fn = [&](std::uint64_t us) { slept.push_back(us); };

  int calls = 0;
  RetryStats stats;
  const Status s = retry_with_backoff(policy, &stats, [&] {
    return ++calls < 3 ? Status::io_error("flaky") : Status();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  ASSERT_EQ(slept.size(), 2u);
  // Attempt k sleeps base * 2^k scaled into [1 - jitter, 1].
  EXPECT_GE(slept[0], 500u);
  EXPECT_LE(slept[0], 1000u);
  EXPECT_GE(slept[1], 1000u);
  EXPECT_LE(slept[1], 2000u);
  EXPECT_EQ(stats.slept_us, slept[0] + slept[1]);
}

TEST(RetryTest, DelayIsCappedAtMax) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.base_delay_us = 1000;
  policy.max_delay_us = 4000;
  policy.jitter = 0.0;  // deterministic: full delay every time
  std::vector<std::uint64_t> slept;
  policy.sleep_fn = [&](std::uint64_t us) { slept.push_back(us); };
  RetryStats stats;
  const Status s = retry_with_backoff(
      policy, &stats, [] { return Status::io_error("always down"); });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(stats.exhausted, 1u);
  ASSERT_EQ(slept.size(), 11u);
  EXPECT_EQ(slept[0], 1000u);
  EXPECT_EQ(slept[1], 2000u);
  for (std::size_t i = 2; i < slept.size(); ++i) {
    EXPECT_EQ(slept[i], 4000u) << "attempt " << i;
  }
}

TEST(RetryTest, NonRetryableErrorReturnsImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep_fn = [](std::uint64_t) { FAIL() << "slept on non-retryable"; };
  int calls = 0;
  RetryStats stats;
  const Status s = retry_with_backoff(policy, &stats, [&] {
    ++calls;
    return Status::corruption("permanent");
  });
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(RetryTest, CustomRetryablePredicate) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep_fn = [](std::uint64_t) {};
  policy.retryable = [](const Status& s) {
    return s.code() == StatusCode::kResourceExhausted;
  };
  int calls = 0;
  RetryStats stats;
  const Status s = retry_with_backoff(policy, &stats, [&] {
    return ++calls < 2 ? Status::resource_exhausted("busy") : Status();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, DisabledPolicyMeansOneAttempt) {
  RetryPolicy policy;  // max_attempts = 1
  EXPECT_FALSE(policy.enabled());
  int calls = 0;
  RetryStats stats;
  const Status s = retry_with_backoff(policy, &stats, [&] {
    ++calls;
    return Status::io_error("down");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.exhausted, 1u);
}

// A DirectorySeries whose reads fail transiently (first two attempts per
// file) must, with a retry policy installed, deliver every week with no
// gaps; without one, every week becomes a gap.
TEST(RetryWiringTest, DirectorySeriesRetriesTransientReadErrors) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "spider_retry_wiring_test")
          .string();
  std::filesystem::remove_all(dir);
  FacilityConfig config;
  config.scale = 2e-5;
  config.weeks = 4;
  config.maintenance_gaps = false;
  FacilityGenerator generator(config);
  std::string error;
  ASSERT_TRUE(save_series(generator, dir, &error)) << error;

  const auto flaky_read = [](int fail_first_n) {
    auto counts = std::make_shared<std::map<std::string, int>>();
    return [counts, fail_first_n](const std::string& path,
                                  std::vector<std::uint8_t>* out) -> Status {
      if ((*counts)[path]++ < fail_first_n) {
        return Status::io_error("transient test failure");
      }
      return read_file(path, out);
    };
  };

  {
    DirectorySeries series;
    ASSERT_TRUE(series.open(dir, &error)) << error;
    series.set_read_fn(flaky_read(2));
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.sleep_fn = [](std::uint64_t) {};  // no real sleeping in tests
    series.set_retry_policy(policy);
    std::size_t weeks = 0;
    series.visit([&](std::size_t, const Snapshot&) { ++weeks; });
    EXPECT_EQ(weeks, 4u);
    EXPECT_TRUE(series.gaps().empty());
    EXPECT_EQ(series.retry_stats().retries, 8u);  // 2 per file
  }
  {
    DirectorySeries series;
    ASSERT_TRUE(series.open(dir, &error)) << error;
    series.set_read_fn(flaky_read(2));  // no retry policy installed
    std::size_t weeks = 0;
    series.visit([&](std::size_t, const Snapshot&) { ++weeks; });
    EXPECT_EQ(weeks, 0u);
    EXPECT_EQ(series.gaps().size(), 4u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace spider
