#include "util/prng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace spider {
namespace {

TEST(SplitMix64Test, ReferenceVector) {
  // Reference outputs for seed 1234567 from the published splitmix64.c.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const std::int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(99);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.uniform_u64(10)];
  for (int c : seen) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(123);
  double sum = 0, sq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, PoissonMeanMatchesBothRegimes) {
  Rng rng(5);
  for (const double mean : {0.5, 4.0, 30.0, 200.0}) {
    double sum = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / kN, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, ExponentialMeanMatches)
{
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, LognormalMedianMatches) {
  Rng rng(31);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.75);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], std::exp(1.0), 0.15);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.fork();
  // The child stream must not simply replay the parent's.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, WeightedPickHonorsZeroWeights) {
  Rng rng(11);
  const std::vector<double> w = {0.0, 1.0, 0.0, 3.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted_pick(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[3]) / counts[1], 3.0, 0.5);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(13);
  const std::vector<double> w = {1, 2, 3, 4};
  AliasSampler sampler{std::span<const double>(w)};
  std::vector<double> counts(4, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[sampler.sample(rng)] += 1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / kN, w[i] / 10.0, 0.01) << "bucket " << i;
  }
}

TEST(AliasSamplerTest, DegenerateInputsFallBackToUniform) {
  Rng rng(19);
  const std::vector<double> w = {0.0, 0.0, 0.0};
  AliasSampler sampler{std::span<const double>(w)};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[sampler.sample(rng)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(AliasSamplerTest, SingleBucket) {
  Rng rng(23);
  const std::vector<double> w = {5.0};
  AliasSampler sampler{std::span<const double>(w)};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(ZipfSamplerTest, RankOneIsMostPopular) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::size_t r = zipf.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
    ++counts[r];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
  // Zipf(1.0): P(1)/P(2) = 2.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.35);
}

TEST(PowerLawWeightsTest, ShapeAndSize) {
  const auto w = power_law_weights(1, 10, 2.0);
  ASSERT_EQ(w.size(), 10u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.25);
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

// Property sweep: bounded sampling stays in range and is roughly uniform
// for a spread of bounds, including awkward non-power-of-two ones.
class UniformBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformBoundSweep, InRangeAndNonDegenerate) {
  const std::uint64_t n = GetParam();
  Rng rng(n * 2654435761ULL + 1);
  std::uint64_t min_seen = n, max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.uniform_u64(n);
    ASSERT_LT(v, n);
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
  }
  // With 20k draws the extremes land within ~0.1% of the bounds even for
  // n >> draws; exact 0 / n-1 hits are only guaranteed for small n.
  EXPECT_LE(min_seen, n / 100);
  EXPECT_GE(max_seen, n - 1 - n / 100);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformBoundSweep,
                         ::testing::Values(1, 2, 3, 7, 10, 100, 1000, 65537));

}  // namespace
}  // namespace spider
