#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/prng.h"

namespace spider {
namespace {

TEST(StreamingStatsTest, BasicMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.4);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, EmptyIsAllZero) {
  const StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(StreamingStatsTest, CvZeroWhenMeanZero) {
  StreamingStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(StreamingStatsTest, MergeEqualsSequential) {
  Rng rng(101);
  StreamingStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStatsTest, MergeWithEmptySides) {
  StreamingStats a, b, empty;
  a.add(1.0);
  a.add(3.0);
  b.merge(a);  // empty.merge(nonempty)
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  b.merge(empty);  // nonempty.merge(empty)
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(PercentileTest, KnownQuantiles) {
  const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 3.25);
}

TEST(PercentileTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(percentile(one, 50), 42.0);
  const std::vector<double> two = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(two, 50), 2.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(percentile(two, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(two, 400), 3.0);
}

TEST(FiveNumberTest, Summary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  const FiveNumber fn = five_number_summary(v);
  EXPECT_DOUBLE_EQ(fn.min, 1);
  EXPECT_DOUBLE_EQ(fn.q25, 26);
  EXPECT_DOUBLE_EQ(fn.median, 51);
  EXPECT_DOUBLE_EQ(fn.q75, 76);
  EXPECT_DOUBLE_EQ(fn.max, 101);
  EXPECT_EQ(fn.count, 101u);
}

TEST(EmpiricalCdfTest, FractionAndQuantileAreConsistent) {
  EmpiricalCdf cdf({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(3), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(10), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
}

TEST(EmpiricalCdfTest, CurveIsMonotone) {
  Rng rng(3);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.lognormal(0, 1);
  const EmpiricalCdf cdf(std::move(xs));
  const auto curve = cdf.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0, 10, 5);
  h.add(-3);   // clamps to first bin
  h.add(0.5);
  h.add(2.5);
  h.add(9.99);
  h.add(10);   // clamps to last bin
  h.add(100);  // clamps to last bin
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 3u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a(0, 10, 5), b(0, 10, 5);
  a.add(1);
  b.add(1);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bin_count(0), 2u);
  EXPECT_EQ(a.bin_count(4), 1u);
}

TEST(LinearFitTest, ExactLine) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9};  // y = 2x + 1
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, DegenerateInputs) {
  EXPECT_EQ(linear_fit({}, {}).n, 0u);
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(linear_fit(x, y).slope, 0.0);  // vertical line: no fit
}

TEST(LogLogFitTest, RecoversPowerLawExponent) {
  // count(k) = 1e6 * k^-2.5 over k in [1, 100].
  std::vector<std::uint64_t> counts(101, 0);
  for (std::size_t k = 1; k <= 100; ++k) {
    counts[k] = static_cast<std::uint64_t>(
        1e6 * std::pow(static_cast<double>(k), -2.5));
  }
  const LinearFit fit = log_log_fit(counts);
  EXPECT_NEAR(fit.slope, -2.5, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

// Property: for any sample, quantile(fraction_at_most(x)) >= x's rank
// neighborhood — CDF and quantile are inverse-consistent.
class CdfRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfRoundTrip, QuantileInvertsFraction) {
  Rng rng(GetParam());
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.uniform(0, 1000);
  EmpiricalCdf cdf(xs);
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double x = cdf.quantile(q);
    EXPECT_GE(cdf.fraction_at_most(x) + 1e-9, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace spider
