// util/io: EINTR retry + short-read loops (driven by the fault harness's
// adversarial FaultyFile) and the temp-file + atomic-rename writer.
#include "util/io.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "util/fault.h"
#include "util/prng.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> make_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return out;
}

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(ReadExactlyTest, SurvivesShortReadsAndEintr) {
  const auto bytes = make_bytes(10'000, 1);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FaultyFile file(bytes, seed, /*eintr_probability=*/0.3, /*max_chunk=*/7);
    std::vector<std::uint8_t> got(bytes.size());
    IoStats stats;
    const Status s = read_exactly(
        [&](void* buf, std::size_t n) { return file.read(buf, n); },
        got.data(), got.size(), &stats);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.to_string();
    EXPECT_EQ(got, bytes) << "seed " << seed;
    // With a 7-byte serve cap on a 10 KB payload, the loop must have been
    // exercised thousands of times.
    EXPECT_EQ(stats.eintr_retries, file.interruptions());
    EXPECT_GT(stats.short_reads, 100u);
  }
}

TEST(ReadExactlyTest, EofBeforeCountIsTruncated) {
  const auto bytes = make_bytes(100, 2);
  FaultyFile file(bytes, 3, /*eintr_probability=*/0.1, /*max_chunk=*/16);
  std::vector<std::uint8_t> got(bytes.size() + 1);
  const Status s = read_exactly(
      [&](void* buf, std::size_t n) { return file.read(buf, n); }, got.data(),
      got.size());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTruncated);
}

TEST(ReadUntilEofTest, ReassemblesExactly) {
  const auto bytes = make_bytes(33'333, 4);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FaultyFile file(bytes, seed, /*eintr_probability=*/0.25, /*max_chunk=*/11);
    std::vector<std::uint8_t> got;
    IoStats stats;
    const Status s = read_until_eof(
        [&](void* buf, std::size_t n) { return file.read(buf, n); }, &got,
        bytes.size(), &stats);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.to_string();
    EXPECT_EQ(got, bytes) << "seed " << seed;
    EXPECT_EQ(stats.eintr_retries, file.interruptions());
  }
}

TEST(FileRoundTripTest, WriteAtomicThenRead) {
  const std::string path = temp_path("spider_io_test_roundtrip.bin");
  const auto bytes = make_bytes(50'000, 5);
  ASSERT_TRUE(write_file_atomic(path, std::span<const std::uint8_t>(bytes))
                  .ok());
  std::vector<std::uint8_t> got;
  IoStats stats;
  ASSERT_TRUE(read_file(path, &got, &stats).ok());
  EXPECT_EQ(got, bytes);
  std::remove(path.c_str());
}

TEST(FileRoundTripTest, StringOverloads) {
  const std::string path = temp_path("spider_io_test_text.psv");
  const std::string text = "/a|1|2|3|4|5|666|7|\n/b|1|2|3|4|5|666|8|\n";
  ASSERT_TRUE(write_file_atomic(path, std::string_view(text)).ok());
  std::string got;
  ASSERT_TRUE(read_file(path, &got).ok());
  EXPECT_EQ(got, text);
  std::remove(path.c_str());
}

TEST(FileRoundTripTest, AtomicWriteReplacesAndLeavesNoTemp) {
  const std::string path = temp_path("spider_io_test_replace.bin");
  ASSERT_TRUE(write_file_atomic(path, std::string_view("old")).ok());
  ASSERT_TRUE(write_file_atomic(path, std::string_view("new contents")).ok());
  std::string got;
  ASSERT_TRUE(read_file(path, &got).ok());
  EXPECT_EQ(got, "new contents");
  // The temp file must be renamed away, not left behind.
  std::size_t leftovers = 0;
  for (const auto& entry : fs::directory_iterator(fs::temp_directory_path())) {
    if (entry.path().string().find("spider_io_test_replace.bin.tmp") !=
        std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0u);
  std::remove(path.c_str());
}

TEST(FileErrorTest, MissingFileIsNotFoundWithPathContext) {
  std::vector<std::uint8_t> got;
  const Status s = read_file(temp_path("spider_io_test_missing.bin"), &got);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("spider_io_test_missing.bin"),
            std::string::npos);
}

TEST(FileErrorTest, UnwritableTargetFailsWithoutTrace) {
  const Status s = write_file_atomic(
      temp_path("spider_io_no_such_dir") + "/x.bin", std::string_view("x"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

/// RAII install/remove for the process-wide write interceptor.
class InterceptorScope {
 public:
  explicit InterceptorScope(WriteInterceptor* i) { set_write_interceptor(i); }
  ~InterceptorScope() { set_write_interceptor(nullptr); }
};

// The durability contract, witnessed through the interceptor's op log:
// payload bytes are fsynced BEFORE the rename makes them visible, and the
// parent directory is fsynced AFTER — so a power loss can never expose a
// destination whose bytes were not yet durable, and the rename itself
// cannot roll back.
TEST(AtomicWriteDurabilityTest, StagesRunInFsyncSafeOrder) {
  const std::string path = temp_path("spider_io_fsync_order.bin");
  WriteFaultInjector injector(/*seed=*/7);  // records ops, never kills
  {
    InterceptorScope scope(&injector);
    ASSERT_TRUE(write_file_atomic(path, std::string_view("payload")).ok());
  }
  const auto log = injector.log();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0].op, WriteOp::kOpen);
  EXPECT_EQ(log[1].op, WriteOp::kWrite);
  EXPECT_EQ(log[2].op, WriteOp::kSyncFile);
  EXPECT_EQ(log[3].op, WriteOp::kRename);
  EXPECT_EQ(log[4].op, WriteOp::kSyncDir);
  for (const auto& record : log) EXPECT_EQ(record.path, path);
  EXPECT_FALSE(injector.killed());
  std::remove(path.c_str());
}

// Crash simulation at every stage: whatever the kill point, the
// destination is never torn — it holds either the complete old content or
// the complete new content.
TEST(AtomicWriteDurabilityTest, CrashAtEveryStageLeavesOldOrNewNeverTorn) {
  const std::string dir = temp_path("spider_io_crash_stages");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/target.bin";
  const std::string old_content = "old-complete-content";
  const std::string new_content = "NEW-complete-content-different-length!";

  for (std::size_t kill_at = 0; kill_at < 5; ++kill_at) {
    ASSERT_TRUE(write_file_atomic(path, std::string_view(old_content)).ok());
    WriteFaultInjector injector(/*seed=*/1000 + kill_at, kill_at);
    Status s;
    {
      InterceptorScope scope(&injector);
      s = write_file_atomic(path, std::string_view(new_content));
    }
    EXPECT_TRUE(injector.killed()) << "kill_at=" << kill_at;
    EXPECT_FALSE(s.ok()) << "kill_at=" << kill_at;
    std::string after;
    ASSERT_TRUE(read_file(path, &after).ok()) << "kill_at=" << kill_at;
    EXPECT_TRUE(after == old_content || after == new_content)
        << "kill_at=" << kill_at << " left torn destination: " << after;
    if (kill_at < 3) {
      // Stages before the rename can never expose the new content.
      EXPECT_EQ(after, old_content) << "kill_at=" << kill_at;
    }
    if (kill_at == 4) {
      // The sync-dir stage runs after the rename landed.
      EXPECT_EQ(after, new_content);
    }
  }
  // Crash mode deliberately leaves torn temp files behind (a dead process
  // runs no destructors); clean the whole directory.
  fs::remove_all(dir);
}

// Fail (not crash) decisions are clean errors: destination untouched and
// the temp file removed by the writer's own error path.
TEST(AtomicWriteDurabilityTest, InjectedFailureCleansUpTempFile) {
  class FailAt : public WriteInterceptor {
   public:
    explicit FailAt(WriteOp op) : op_(op) {}
    Decision on_op(WriteOp op, const std::string&) override {
      Decision d;
      d.fail = op == op_;
      return d;
    }

   private:
    WriteOp op_;
  };

  const std::string dir = temp_path("spider_io_fail_stages");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/target.bin";
  const std::string old_content = "previous";

  for (const WriteOp op : {WriteOp::kOpen, WriteOp::kWrite,
                           WriteOp::kSyncFile, WriteOp::kRename}) {
    ASSERT_TRUE(write_file_atomic(path, std::string_view(old_content)).ok());
    FailAt fail(op);
    Status s;
    {
      InterceptorScope scope(&fail);
      s = write_file_atomic(path, std::string_view("never lands"));
    }
    EXPECT_FALSE(s.ok()) << write_op_name(op);
    EXPECT_EQ(s.code(), StatusCode::kIoError) << write_op_name(op);
    std::string after;
    ASSERT_TRUE(read_file(path, &after).ok()) << write_op_name(op);
    EXPECT_EQ(after, old_content) << write_op_name(op);
    // No temp litter: the directory holds exactly the destination.
    std::size_t entries = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      (void)entry;
      ++entries;
    }
    EXPECT_EQ(entries, 1u) << write_op_name(op);
  }
  fs::remove_all(dir);
}

/// RAII install/remove for the process-wide map interceptor.
class MapInterceptorScope {
 public:
  explicit MapInterceptorScope(MapInterceptor* i) { set_map_interceptor(i); }
  ~MapInterceptorScope() { set_map_interceptor(nullptr); }
};

/// Fails one map stage, optionally lying about the length at kStat.
class MapFaultAt : public MapInterceptor {
 public:
  explicit MapFaultAt(MapOp op) : op_(op) {}
  MapFaultAt(MapOp op, std::size_t truncate_to)
      : op_(op), truncate_to_(truncate_to), use_truncate_(true) {}
  Decision on_op(MapOp op, const std::string&) override {
    Decision d;
    if (op == op_) {
      if (use_truncate_) {
        d.truncate_to = truncate_to_;
      } else {
        d.fail = true;
      }
    }
    return d;
  }

 private:
  MapOp op_;
  std::size_t truncate_to_ = 0;
  bool use_truncate_ = false;
};

TEST(MappedFileTest, BytesMatchEagerRead) {
  const std::string path = temp_path("spider_io_test_map.bin");
  const auto bytes = make_bytes(70'001, 11);
  ASSERT_TRUE(write_file_atomic(path, std::span<const std::uint8_t>(bytes))
                  .ok());
  MappedFile map;
  ASSERT_TRUE(map.open(path).ok());
  EXPECT_TRUE(map.is_open());
  EXPECT_EQ(map.path(), path);
  ASSERT_EQ(map.bytes().size(), bytes.size());
  EXPECT_EQ(std::vector<std::uint8_t>(map.bytes().begin(), map.bytes().end()),
            bytes);
  map.close();
  EXPECT_FALSE(map.is_open());
  EXPECT_TRUE(map.bytes().empty());
  std::remove(path.c_str());
}

TEST(MappedFileTest, EmptyFileMapsToEmptySpan) {
  const std::string path = temp_path("spider_io_test_map_empty.bin");
  ASSERT_TRUE(write_file_atomic(path, std::string_view("")).ok());
  MappedFile map;
  ASSERT_TRUE(map.open(path).ok());
  EXPECT_TRUE(map.is_open());
  EXPECT_TRUE(map.bytes().empty());
  std::remove(path.c_str());
}

TEST(MappedFileTest, MissingFileIsNotFoundWithPathContext) {
  MappedFile map;
  const Status s = map.open(temp_path("spider_io_test_map_missing.bin"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("map_missing"), std::string::npos);
  EXPECT_FALSE(map.is_open());
}

TEST(MappedFileTest, MappingADirectoryFails) {
  // open(O_RDONLY) on a directory succeeds but mmap refuses it — the
  // unreadable-as-bytes case that a permissions check cannot catch when
  // the test runs as root.
  MappedFile map;
  const Status s = map.open(fs::temp_directory_path().string());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_FALSE(map.is_open());
}

TEST(MappedFileTest, InjectedFaultAtEveryStageLeavesClosed) {
  const std::string path = temp_path("spider_io_test_map_fault.bin");
  ASSERT_TRUE(write_file_atomic(path, std::string_view("payload")).ok());
  for (const MapOp op : {MapOp::kOpen, MapOp::kStat, MapOp::kMap}) {
    MapFaultAt fault(op);
    MapInterceptorScope scope(&fault);
    MappedFile map;
    const Status s = map.open(path);
    ASSERT_FALSE(s.ok()) << map_op_name(op);
    EXPECT_EQ(s.code(), StatusCode::kIoError) << map_op_name(op);
    EXPECT_NE(s.message().find(map_op_name(op)), std::string::npos);
    EXPECT_FALSE(map.is_open()) << map_op_name(op);
  }
  std::remove(path.c_str());
}

TEST(MappedFileTest, PartialMapSurfacesShorterSpan) {
  // A file that shrank between the directory scan and the map: the map
  // succeeds but covers fewer bytes, and the codec on top must treat the
  // missing tail as truncation (decode_scol already does).
  const std::string path = temp_path("spider_io_test_map_partial.bin");
  const auto bytes = make_bytes(4096, 13);
  ASSERT_TRUE(write_file_atomic(path, std::span<const std::uint8_t>(bytes))
                  .ok());
  MapFaultAt fault(MapOp::kStat, /*truncate_to=*/100);
  MapInterceptorScope scope(&fault);
  MappedFile map;
  ASSERT_TRUE(map.open(path).ok());
  ASSERT_EQ(map.bytes().size(), 100u);
  EXPECT_TRUE(std::equal(map.bytes().begin(), map.bytes().end(),
                         bytes.begin()));
  std::remove(path.c_str());
}

TEST(MappedFileTest, MoveTransfersOwnership) {
  const std::string path = temp_path("spider_io_test_map_move.bin");
  ASSERT_TRUE(write_file_atomic(path, std::string_view("abcdef")).ok());
  MappedFile a;
  ASSERT_TRUE(a.open(path).ok());
  MappedFile b = std::move(a);
  EXPECT_FALSE(a.is_open());
  ASSERT_TRUE(b.is_open());
  ASSERT_EQ(b.bytes().size(), 6u);
  EXPECT_EQ(b.bytes()[0], 'a');
  std::remove(path.c_str());
}

// Kill-at-op counting spans writes: with one kill index per run, a sweep
// visits every write boundary of a multi-write program exactly once, and
// every write after the kill fails (a dead process writes nothing).
TEST(AtomicWriteDurabilityTest, DeadModeFailsAllLaterWrites) {
  const std::string dir = temp_path("spider_io_dead_mode");
  fs::remove_all(dir);
  fs::create_directories(dir);
  WriteFaultInjector injector(/*seed=*/3, /*kill_at_op=*/7);  // mid 2nd write
  {
    InterceptorScope scope(&injector);
    EXPECT_TRUE(
        write_file_atomic(dir + "/a.bin", std::string_view("aaa")).ok());
    EXPECT_FALSE(
        write_file_atomic(dir + "/b.bin", std::string_view("bbb")).ok());
    EXPECT_FALSE(
        write_file_atomic(dir + "/c.bin", std::string_view("ccc")).ok());
  }
  EXPECT_TRUE(injector.killed());
  std::string a;
  EXPECT_TRUE(read_file(dir + "/a.bin", &a).ok());
  EXPECT_EQ(a, "aaa");
  EXPECT_FALSE(fs::exists(dir + "/c.bin"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace spider
