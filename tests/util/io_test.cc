// util/io: EINTR retry + short-read loops (driven by the fault harness's
// adversarial FaultyFile) and the temp-file + atomic-rename writer.
#include "util/io.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "util/fault.h"
#include "util/prng.h"

namespace spider {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> make_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return out;
}

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(ReadExactlyTest, SurvivesShortReadsAndEintr) {
  const auto bytes = make_bytes(10'000, 1);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FaultyFile file(bytes, seed, /*eintr_probability=*/0.3, /*max_chunk=*/7);
    std::vector<std::uint8_t> got(bytes.size());
    IoStats stats;
    const Status s = read_exactly(
        [&](void* buf, std::size_t n) { return file.read(buf, n); },
        got.data(), got.size(), &stats);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.to_string();
    EXPECT_EQ(got, bytes) << "seed " << seed;
    // With a 7-byte serve cap on a 10 KB payload, the loop must have been
    // exercised thousands of times.
    EXPECT_EQ(stats.eintr_retries, file.interruptions());
    EXPECT_GT(stats.short_reads, 100u);
  }
}

TEST(ReadExactlyTest, EofBeforeCountIsTruncated) {
  const auto bytes = make_bytes(100, 2);
  FaultyFile file(bytes, 3, /*eintr_probability=*/0.1, /*max_chunk=*/16);
  std::vector<std::uint8_t> got(bytes.size() + 1);
  const Status s = read_exactly(
      [&](void* buf, std::size_t n) { return file.read(buf, n); }, got.data(),
      got.size());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTruncated);
}

TEST(ReadUntilEofTest, ReassemblesExactly) {
  const auto bytes = make_bytes(33'333, 4);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FaultyFile file(bytes, seed, /*eintr_probability=*/0.25, /*max_chunk=*/11);
    std::vector<std::uint8_t> got;
    IoStats stats;
    const Status s = read_until_eof(
        [&](void* buf, std::size_t n) { return file.read(buf, n); }, &got,
        bytes.size(), &stats);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.to_string();
    EXPECT_EQ(got, bytes) << "seed " << seed;
    EXPECT_EQ(stats.eintr_retries, file.interruptions());
  }
}

TEST(FileRoundTripTest, WriteAtomicThenRead) {
  const std::string path = temp_path("spider_io_test_roundtrip.bin");
  const auto bytes = make_bytes(50'000, 5);
  ASSERT_TRUE(write_file_atomic(path, std::span<const std::uint8_t>(bytes))
                  .ok());
  std::vector<std::uint8_t> got;
  IoStats stats;
  ASSERT_TRUE(read_file(path, &got, &stats).ok());
  EXPECT_EQ(got, bytes);
  std::remove(path.c_str());
}

TEST(FileRoundTripTest, StringOverloads) {
  const std::string path = temp_path("spider_io_test_text.psv");
  const std::string text = "/a|1|2|3|4|5|666|7|\n/b|1|2|3|4|5|666|8|\n";
  ASSERT_TRUE(write_file_atomic(path, std::string_view(text)).ok());
  std::string got;
  ASSERT_TRUE(read_file(path, &got).ok());
  EXPECT_EQ(got, text);
  std::remove(path.c_str());
}

TEST(FileRoundTripTest, AtomicWriteReplacesAndLeavesNoTemp) {
  const std::string path = temp_path("spider_io_test_replace.bin");
  ASSERT_TRUE(write_file_atomic(path, std::string_view("old")).ok());
  ASSERT_TRUE(write_file_atomic(path, std::string_view("new contents")).ok());
  std::string got;
  ASSERT_TRUE(read_file(path, &got).ok());
  EXPECT_EQ(got, "new contents");
  // The temp file must be renamed away, not left behind.
  std::size_t leftovers = 0;
  for (const auto& entry : fs::directory_iterator(fs::temp_directory_path())) {
    if (entry.path().string().find("spider_io_test_replace.bin.tmp") !=
        std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0u);
  std::remove(path.c_str());
}

TEST(FileErrorTest, MissingFileIsNotFoundWithPathContext) {
  std::vector<std::uint8_t> got;
  const Status s = read_file(temp_path("spider_io_test_missing.bin"), &got);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("spider_io_test_missing.bin"),
            std::string::npos);
}

TEST(FileErrorTest, UnwritableTargetFailsWithoutTrace) {
  const Status s = write_file_atomic(
      temp_path("spider_io_no_such_dir") + "/x.bin", std::string_view("x"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace spider
