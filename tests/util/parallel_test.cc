#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace spider {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForChunkedTest, ChunksCoverRangeWithoutOverlap) {
  constexpr std::size_t kN = 12345;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for_chunked(kN, 100, [&](std::size_t begin, std::size_t end) {
    EXPECT_LE(end - begin, 100u);
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(visits[i].load(), 1);
}

TEST(ParallelReduceTest, SumMatchesSerial) {
  constexpr std::size_t kN = 1000000;
  const std::uint64_t expected = kN * (kN - 1) / 2;
  const std::uint64_t sum = parallel_reduce<std::uint64_t>(
      kN, 0, [](std::uint64_t& acc, std::size_t i) { acc += i; },
      [](std::uint64_t& into, std::uint64_t& from) { into += from; });
  EXPECT_EQ(sum, expected);
}

TEST(ParallelReduceTest, CombineOrderIsDeterministic) {
  // Concatenation is order-sensitive; the reduce contract promises
  // chunk-order combination, so the result must equal the serial string.
  constexpr std::size_t kN = 1000;
  const std::string result = parallel_reduce<std::string>(
      kN, std::string(),
      [](std::string& acc, std::size_t i) { acc += static_cast<char>('a' + i % 26); },
      [](std::string& into, std::string& from) { into += from; },
      nullptr, /*grain=*/64);
  std::string expected;
  for (std::size_t i = 0; i < kN; ++i) {
    expected += static_cast<char>('a' + i % 26);
  }
  EXPECT_EQ(result, expected);
}

TEST(ParallelForTest, NestedCallsExecuteInline) {
  // A parallel_for inside a pool worker must not deadlock.
  std::atomic<std::uint64_t> total{0};
  parallel_for(
      64,
      [&](std::size_t) {
        parallel_for(100, [&](std::size_t) { total.fetch_add(1); }, nullptr,
                     10);
      },
      nullptr, /*grain=*/1);
  EXPECT_EQ(total.load(), 6400u);
}

TEST(ParallelForTest, WorksWithExplicitSmallPool) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  parallel_for(10000, [&](std::size_t i) { total.fetch_add(i); }, &pool);
  EXPECT_EQ(total.load(), 10000ull * 9999 / 2);
}

TEST(ParallelForTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::uint64_t total = 0;  // no atomics needed: guaranteed inline
  parallel_for(1000, [&](std::size_t i) { total += i; }, &pool);
  EXPECT_EQ(total, 1000ull * 999 / 2);
}

// Stress the chunk-claiming logic across grain sizes.
class GrainSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GrainSweep, SumIsExact) {
  const std::size_t grain = GetParam();
  constexpr std::size_t kN = 54321;
  std::atomic<std::uint64_t> total{0};
  parallel_for(kN, [&](std::size_t i) { total.fetch_add(i + 1); }, nullptr,
               grain);
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kN) * (kN + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Grains, GrainSweep,
                         ::testing::Values(1, 7, 64, 1000, 54321, 100000));

}  // namespace
}  // namespace spider
