#!/usr/bin/env bash
# Tier-1 gate: the full test suite on the plain build, then the robustness
# suites (fault injection, formats, IO) again under ASan+UBSan. Run from
# the repo root:
#
#   scripts/tier1.sh
#
# The sanitizer pass is scoped to the ingest/robustness tests rather than
# the whole suite to keep the gate fast; SPIDER_SANITIZE=ON works on any
# target if a full sanitized run is wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> tier 1: plain build + full suite"
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "==> tier 1: ASan+UBSan build + robustness suites"
cmake -B build-asan -S . -DSPIDER_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}" --target \
    snapshot_fault_injection_test snapshot_scol_test snapshot_scol_v2_test \
    snapshot_psv_test snapshot_psv_fuzz_test snapshot_series_test \
    util_io_test util_status_test
for t in snapshot_fault_injection_test snapshot_scol_test \
         snapshot_scol_v2_test snapshot_psv_test snapshot_psv_fuzz_test \
         snapshot_series_test util_io_test util_status_test; do
  echo "--> ${t} (sanitized)"
  ./build-asan/tests/"${t}"
done

echo "tier 1 OK"
