#!/usr/bin/env bash
# Tier-1 gate: the full test suite on the plain build, then the robustness
# suites (fault injection, formats, IO) again under ASan+UBSan. Run from
# the repo root:
#
#   scripts/tier1.sh
#
# The sanitizer passes are scoped rather than suite-wide to keep the gate
# fast: ASan+UBSan covers the ingest/robustness and aggregation tests,
# TSan covers the parallel scan/runner/aggregation-merge tests. SPIDER_SANITIZE=ON (address) or
# SPIDER_SANITIZE=thread works on any target if a full sanitized run is
# wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> tier 1: plain build + full suite"
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "==> tier 1: bench smoke (tiny-scale harness run-through)"
ctest --test-dir build --output-on-failure -L bench-smoke -j"${JOBS}"

# Out-of-core regression guard: the mixed-residency streaming study must
# fit (and pass, bit-identical to resident) under a 512 MB address-space
# cap — a whole-series or whole-snapshot materialization sneaking back
# into the streamed path blows straight through it. Guarded because some
# environments forbid lowering RLIMIT_AS.
echo "==> tier 1: streaming study under a 512 MB address-space cap"
if bash -c 'ulimit -v 524288' 2>/dev/null; then
  bash -c 'ulimit -v 524288 && exec ./build/tests/study_streaming_test \
      --gtest_filter=StreamingStudyTest.MixedResidencyBudgetMatchesResident'
else
  echo "--> skipped: this environment does not permit ulimit -v"
fi

echo "==> tier 1: ASan+UBSan build + robustness suites"
cmake -B build-asan -S . -DSPIDER_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}" --target \
    snapshot_fault_injection_test snapshot_scol_test snapshot_scol_v2_test \
    snapshot_psv_test snapshot_psv_fuzz_test snapshot_series_test \
    util_io_test util_retry_test util_status_test engine_agg_test \
    engine_flat_map_test engine_spill_test study_streaming_test \
    study_checkpoint_test
for t in snapshot_fault_injection_test snapshot_scol_test \
         snapshot_scol_v2_test snapshot_psv_test snapshot_psv_fuzz_test \
         snapshot_series_test util_io_test util_retry_test \
         util_status_test engine_agg_test engine_flat_map_test \
         engine_spill_test; do
  echo "--> ${t} (sanitized)"
  ./build-asan/tests/"${t}"
done
# Streaming parity under ASan: the damaged/gapped case drives the mmap'd
# group reader's salvage replay, partition-file regeneration, and the
# spill join's checksummed record framing against corrupt inputs — the
# out-of-core layer's hostile-input surface. The thread-width sweep stays
# in the plain build (big fixture; widths don't change what ASan sees).
echo "--> study_streaming_test (sanitized, damaged+gapped parity)"
./build-asan/tests/study_streaming_test \
    --gtest_filter='StreamingStudyFaultTest.*:StreamingStudyBoundaryTest.*'
# Crash-recovery under ASan: the codec, the resume validation paths, and
# the corruption/gap cases chew through every deserializer with hostile
# inputs — exactly where ASan earns its keep. The exhaustive kill sweep is
# skipped here (big fixture, hundreds of study runs); the resume cases
# drive the same save/load code on every analyzer.
echo "--> study_checkpoint_test (sanitized, codec+resume cases)"
./build-asan/tests/study_checkpoint_test \
    --gtest_filter='CheckpointCodecTest.*:CheckpointResumeTest.*'

echo "==> tier 1: TSan build + parallel scan/runner suites"
cmake -B build-tsan -S . -DSPIDER_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"${JOBS}" --target \
    util_parallel_test engine_scan_test engine_partition_test \
    engine_diff_parity_test engine_flat_map_test study_runner_test \
    study_scan_determinism_test study_incremental_test \
    study_streaming_test study_checkpoint_test
for t in util_parallel_test engine_scan_test engine_partition_test \
         engine_diff_parity_test engine_flat_map_test study_runner_test; do
  echo "--> ${t} (tsan)"
  ./build-tsan/tests/"${t}"
done
# The big-fixture thread sweep re-runs the whole study six times — minutes
# under TSan for no extra interleaving coverage. The gap and fault cases
# drive the same parallel runner (multi-thread pools, prefetch, projection)
# on small series; races don't care about scale.
echo "--> study_scan_determinism_test (tsan, gap+fault cases)"
./build-tsan/tests/study_scan_determinism_test \
    --gtest_filter='ScanDeterminismGapTest.*:ScanDeterminismFaultTest.*'
# Incremental-vs-scan under TSan: the delta path shares the scan's thread
# pool (fused diff kernel + scan-only analyzer roster), so the gap and
# salvage re-baseline cases exercise the mode switch under contention. The
# full churn sweep is skipped for the same big-fixture reason as above.
echo "--> study_incremental_test (tsan, gap+salvage re-baseline cases)"
./build-tsan/tests/study_incremental_test \
    --gtest_filter='IncrementalStudyTest.GappedSeriesForcesRebaseline:IncrementalStudyTest.SalvagedWeekForcesRebaseline'
# Checkpoint/resume under TSan: checkpoint writes interleave with the
# prefetch pipeline and the resume path hands restored state to the
# parallel scan — the gap-resume case crosses both boundaries on a
# multi-thread pool. The exhaustive kill sweep stays in the plain build
# (same big-fixture reasoning as above).
echo "--> study_checkpoint_test (tsan, resume cases)"
./build-tsan/tests/study_checkpoint_test \
    --gtest_filter='CheckpointResumeTest.ResumeAcrossGapPreservesDataQuality:CheckpointResumeTest.ScanOnlyMarkersForceFullRun'
# Streaming parity under TSan: the mixed-residency case runs the streamed
# weeks' prefetch pipeline, the spill writers, and the resident weeks'
# parallel scan on one multi-thread pool — the residency boundary is
# where the out-of-core path shares state across threads. The full
# thread-width sweep stays in the plain build (same big-fixture
# reasoning as the determinism harness above).
echo "--> study_streaming_test (tsan, mixed-residency + boundary cases)"
./build-tsan/tests/study_streaming_test \
    --gtest_filter='StreamingStudyTest.MixedResidencyBudgetMatchesResident:StreamingStudyBoundaryTest.*'

echo "tier 1 OK"
