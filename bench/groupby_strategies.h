// Group-by strategies shared by bench_groupby and the bench_engine_micro
// BM_GroupBy* rows.
//
// The `legacy_*` functions are VENDORED copies of the seed's aggregation
// path — per-row std::string key construction into std::unordered_map
// partials, folded with the seed's sum-reserving merge — frozen here so
// the baseline can never inherit the flat aggregation layer (same
// discipline as LegacySeedPathIndex in bench_diff.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/agg.h"
#include "engine/dict.h"
#include "snapshot/record.h"
#include "snapshot/table.h"
#include "util/parallel.h"

namespace spider::bench {

using LegacyStringCounts = std::unordered_map<std::string, std::uint64_t>;
using LegacyU64Counts = std::unordered_map<std::uint64_t, std::uint64_t>;

inline std::size_t seed_grain(std::size_t n, ThreadPool* pool) {
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  const std::size_t width = std::max(1u, p.size());
  return std::max<std::size_t>(kGrainMin, (n + width - 1) / width);
}

/// Frozen seed string group-by: one unordered_map partial per pool-width
/// chunk, a freshly constructed std::string key per row, and the seed's
/// sum-reserving copy merge of the partials in chunk order.
inline LegacyStringCounts legacy_group_by_extension(const SnapshotTable& t,
                                                    ThreadPool* pool) {
  const std::size_t n = t.size();
  const std::size_t grain = seed_grain(n, pool);
  std::vector<LegacyStringCounts> partials(n == 0 ? 0
                                                  : (n + grain - 1) / grain);
  parallel_for_chunked(
      n, grain,
      [&](std::size_t begin, std::size_t end) {
        LegacyStringCounts& acc = partials[begin / grain];
        for (std::size_t row = begin; row < end; ++row) {
          if (!t.is_dir(row)) {
            acc[std::string(path_extension(t.path(row)))] += 1;
          }
        }
      },
      pool);
  LegacyStringCounts result;
  for (const LegacyStringCounts& partial : partials) {
    result.reserve(result.size() + partial.size());  // the seed's sum-reserve
    for (const auto& [key, count] : partial) result[key] += count;
  }
  return result;
}

/// Frozen seed 64-bit group-by (gid keys), same shape as the string path.
inline LegacyU64Counts legacy_group_by_gid(const SnapshotTable& t,
                                           ThreadPool* pool) {
  const std::size_t n = t.size();
  const std::size_t grain = seed_grain(n, pool);
  std::vector<LegacyU64Counts> partials(n == 0 ? 0 : (n + grain - 1) / grain);
  parallel_for_chunked(
      n, grain,
      [&](std::size_t begin, std::size_t end) {
        LegacyU64Counts& acc = partials[begin / grain];
        for (std::size_t row = begin; row < end; ++row) {
          if (!t.is_dir(row)) acc[t.gid(row)] += 1;
        }
      },
      pool);
  LegacyU64Counts result;
  for (const LegacyU64Counts& partial : partials) {
    result.reserve(result.size() + partial.size());
    for (const auto& [key, count] : partial) result[key] += count;
  }
  return result;
}

/// Dictionary-encoded group-by result: `counts[id]` for ids of `dict`.
struct DictCounts {
  StringDict dict;
  std::vector<std::uint64_t> counts;
};

/// The flat tier's string group-by (the extensions analyzer's discipline):
/// each chunk interns into a private StringDict and counts dense u32 ids
/// in a plain vector; partials fold in chunk order by re-interning names
/// into the global dictionary.
inline DictCounts dict_group_by_extension(const SnapshotTable& t,
                                          ThreadPool* pool) {
  struct Part {
    StringDict dict;
    std::vector<std::uint64_t> counts;
  };
  const std::size_t n = t.size();
  const std::size_t grain = seed_grain(n, pool);
  std::vector<Part> parts(n == 0 ? 0 : (n + grain - 1) / grain);
  parallel_for_chunked(
      n, grain,
      [&](std::size_t begin, std::size_t end) {
        Part& part = parts[begin / grain];
        // Snapshot rows are path-sorted, so runs of files share an
        // extension; memoizing the previous one skips the hash + probe.
        std::string_view last_ext;
        std::uint32_t last_id = 0;
        bool have_last = false;
        for (std::size_t row = begin; row < end; ++row) {
          if (t.is_dir(row)) continue;
          const std::string_view ext = path_extension(t.path(row));
          if (!have_last || ext != last_ext) {
            last_id = part.dict.intern(ext);
            last_ext = ext;  // views the table's storage — stays valid
            have_last = true;
            if (last_id == part.counts.size()) part.counts.push_back(0);
          }
          ++part.counts[last_id];
        }
      },
      pool);
  DictCounts out;
  for (const Part& part : parts) {
    for (std::uint32_t lid = 0; lid < part.dict.size(); ++lid) {
      const std::uint32_t gid = out.dict.intern(part.dict.name(lid));
      if (gid == out.counts.size()) out.counts.push_back(0);
      out.counts[gid] += part.counts[lid];
    }
  }
  return out;
}

/// The flat tier's 64-bit group-by: per-chunk FlatCountMap partials folded
/// by the radix-partitioned merge (engine/agg.h).
inline FlatCountMapRaw flat_group_by_gid(const SnapshotTable& t,
                                         ThreadPool* pool) {
  return parallel_count_flat<FingerprintKeyMix>(
      t.size(),
      [&t](std::size_t row, auto emit) {
        if (!t.is_dir(row)) emit(t.gid(row), 1);
      },
      pool, seed_grain(t.size(), pool));
}

/// Canonical (key, count) form for the bit-identity self-checks.
inline std::vector<std::pair<std::string, std::uint64_t>> canonical(
    const LegacyStringCounts& counts) {
  std::vector<std::pair<std::string, std::uint64_t>> entries(counts.begin(),
                                                             counts.end());
  std::sort(entries.begin(), entries.end());
  return entries;
}

inline std::vector<std::pair<std::string, std::uint64_t>> canonical(
    const DictCounts& counts) {
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  entries.reserve(counts.dict.size());
  for (std::uint32_t id = 0; id < counts.dict.size(); ++id) {
    entries.emplace_back(std::string(counts.dict.name(id)), counts.counts[id]);
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

inline std::vector<std::pair<std::uint64_t, std::uint64_t>> canonical(
    const LegacyU64Counts& counts) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(counts.begin(),
                                                               counts.end());
  std::sort(entries.begin(), entries.end());
  return entries;
}

inline std::vector<std::pair<std::uint64_t, std::uint64_t>> canonical(
    const FlatCountMapRaw& counts) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  entries.reserve(counts.size());
  counts.for_each([&entries](std::uint64_t key, std::uint64_t count) {
    entries.emplace_back(key, count);
  });
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace spider::bench
