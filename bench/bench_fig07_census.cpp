// Regenerates Fig 7: unique files/directories per domain and dir ratios.
#include "bench_common.h"

#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 7 — unique files and directories per domain",
                   "4.07B files + 275M dirs at full scale; >30% of domains "
                   "above 100M entries; dirs ~15% of entries on average; "
                   "atm 90% dirs, hep 67%");

  CensusAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();
  std::cout << "\nScaled paper totals at scale " << env.config.scale << ": "
            << format_count(4.069e9 * env.config.scale) << " files, "
            << format_count(2.748e8 * env.config.scale) << " dirs\n";
  return 0;
}
