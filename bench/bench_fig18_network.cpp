// Regenerates Fig 18: the file-generation network and its power-law
// degree distribution.
#include "bench_common.h"

#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 18 — file generation network degree distribution",
                   "1,362 users + 380 projects; log-log degree distribution "
                   "follows a descending line (power law), like real-world "
                   "social networks");

  ParticipationAnalyzer participation(*env.resolver);
  NetworkAnalyzer network(*env.resolver, participation);
  StudyAnalyzer* analyzers[] = {&participation, &network};
  run_study(*env.generator, analyzers);
  std::cout << network.render();

  // Degree histogram series (the figure's log-log points).
  const auto& plan = env.resolver->plan();
  const BipartiteGraph graph(
      static_cast<std::uint32_t>(plan.users.size()),
      static_cast<std::uint32_t>(plan.projects.size()),
      participation.result().observed);
  const auto hist = degree_histogram(graph.graph());
  std::cout << "\ndegree histogram (log-log points):\n";
  AsciiTable t({"degree", "vertices"});
  for (std::size_t d = 1; d < hist.size(); ++d) {
    if (hist[d] > 0) {
      t.add_row({std::to_string(d), std::to_string(hist[d])});
    }
  }
  t.print(std::cout);
  return 0;
}
