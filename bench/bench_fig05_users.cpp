// Regenerates Fig 5: active-user profile by organization type and domain.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 5 — profile of active users",
                   "1,362 active users; >50% government, ~24% academia, "
                   "~19% industry; >70% domain scientists");

  UserProfileAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();
  return 0;
}
