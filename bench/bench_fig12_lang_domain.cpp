// Regenerates Fig 12: per-domain language share breakdown.
#include "bench_common.h"

#include "synth/langmap.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 12 — language popularity per science domain",
                   "C/C++ popular across nearly all domains; matlab "
                   "dominates nfu and pss; python dominant in aph/ard/tur");

  LanguagesAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  const LanguagesResult& r = analyzer.result();

  // Full share matrix for a compact language set.
  const char* kShown[] = {"C", "C++", "Python", "Fortran", "Matlab", "R",
                          "Prolog", "Shell"};
  std::vector<std::string> header{"domain"};
  for (const char* lang : kShown) header.push_back(lang);
  AsciiTable t(header);
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    std::uint64_t total = 0;
    for (const std::uint64_t c : r.by_domain[d]) total += c;
    if (total == 0) continue;
    std::vector<std::string> row{profiles[d].id};
    for (const char* lang : kShown) {
      const int l = language_index(lang);
      const std::uint64_t c = r.by_domain[d][static_cast<std::size_t>(l)];
      row.push_back(format_percent(static_cast<double>(c) /
                                   static_cast<double>(total)));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}
