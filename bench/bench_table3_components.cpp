// Regenerates Table 3: the connected-component size distribution and the
// giant component's diameter/center structure.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Table 3 — connected components of the network",
                   "160 components; sizes {2:94, 3:31, 4:15, 5:7, 7:6, 8:1, "
                   "9:2, 11:1, 14:1, 18:1}; giant = 1,259 vertices (1,051 "
                   "users + 208 projects), diameter 18, centers within 10 "
                   "hops");

  ParticipationAnalyzer participation(*env.resolver);
  NetworkAnalyzer network(*env.resolver, participation);
  StudyAnalyzer* analyzers[] = {&participation, &network};
  run_study(*env.generator, analyzers);
  std::cout << network.render();
  return 0;
}
