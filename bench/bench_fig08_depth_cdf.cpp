// Regenerates Fig 8: the project-depth CDF and per-user/per-project unique
// file-count CDFs.
#include "bench_common.h"

#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 8 — directory depth and file count CDFs",
                   "knee at depth 5; >30% of projects deeper than 10, <3% "
                   "deeper than 15; max 432 (gen) / 2030 (stf); median user "
                   "2K files vs median project 20K; 16% of projects >1M");

  CensusAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  const CensusResult& r = analyzer.result();

  std::cout << "Fig 8(a): per-project max directory depth CDF\n";
  AsciiTable a({"depth", "CDF"});
  for (const double x : {4.0, 5.0, 7.0, 10.0, 15.0, 20.0, 30.0, 432.0, 2030.0}) {
    a.add_row({format_double(x, 0),
               format_percent(r.project_max_depth.fraction_at_most(x))});
  }
  a.print(std::cout);
  std::cout << "deepest path observed: " << r.max_depth
            << " (paper: 2,030 stf stress tree)\n";

  std::cout << "\nFig 8(b): unique files per user vs per project\n";
  AsciiTable b({"quantile", "files/user", "files/project"});
  for (const double q : {0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    b.add_row({format_double(q, 2),
               format_count(r.files_per_user.quantile(q)),
               format_count(r.files_per_project.quantile(q))});
  }
  b.print(std::cout);
  std::cout << "median project / median user file ratio: "
            << format_double(r.median_files_per_project /
                                 std::max(1.0, r.median_files_per_user),
                             1)
            << "x (paper: ~10x)\n";
  const double scaled_million = 1e6 * env.config.scale;
  std::cout << "projects with >" << format_count(scaled_million)
            << " files (1M paper-scaled): "
            << format_percent(
                   1.0 - r.files_per_project.fraction_at_most(scaled_million))
            << " (paper: 16%)\n";
  return 0;
}
