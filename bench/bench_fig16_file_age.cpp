// Regenerates Fig 16: average file age (atime - mtime) per snapshot.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 16 — file age vs the 90-day purge window",
                   "average age exceeds 90 days in 86% of snapshots; median "
                   "138 days, max 214 -> the purge window is arguably too "
                   "tight");

  FileAgeAnalyzer analyzer(env.config.purge_days);
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();
  return 0;
}
