// Regenerates Fig 11: language popularity ranking vs IEEE Spectrum.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 11 — programming language popularity",
                   "IEEE top-5 (C/Java/Python/C++/R) all popular; shell "
                   "5th; Fortran 6th (IEEE 28th); Prolog 8th (IEEE 37th, "
                   "the .pl quirk); COBOL 12th; Ada 16th; Go/Scala/Swift "
                   "present");

  LanguagesAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();
  return 0;
}
