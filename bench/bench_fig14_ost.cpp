// Regenerates Fig 14: OST stripe-count usage per domain.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 14 — OST counts per science domain",
                   "default stripe count 4; 20 of 35 domains tune it; "
                   "ast/csc/bip stripe wide, maximum 1,008");

  StripingAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();
  return 0;
}
