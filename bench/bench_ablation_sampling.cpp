// Ablation: snapshot sampling cadence. The paper sampled one snapshot per
// week out of OLCF's daily collection; this sweep re-runs the diff-based
// analyses at 1x/2x/4x coarser cadence to show which findings are robust
// to sampling (growth, ages) and which wash out (weekly churn, burstiness
// sample counts).
#include "bench_common.h"

#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv, /*default_scale=*/1e-4);
  env.print_header("Ablation — snapshot sampling cadence",
                   "the paper's weekly sampling is itself a design choice; "
                   "diff-based metrics depend on it");

  AsciiTable t({"cadence", "snapshots", "new %", "deleted %", "readonly %",
                "untouched %", "median avg age", "burst samples"});
  for (const std::size_t stride : {1u, 2u, 4u}) {
    StridedSource strided(*env.generator, stride);
    AccessPatternsAnalyzer access;
    FileAgeAnalyzer ages(env.config.purge_days);
    BurstinessAnalyzer bursts(*env.resolver, env.burst_min_files());
    StudyAnalyzer* analyzers[] = {&access, &ages, &bursts};
    run_study(strided, analyzers);

    t.add_row({"every " + std::to_string(stride) + " week(s)",
               std::to_string(strided.count()),
               format_percent(access.result().avg_new),
               format_percent(access.result().avg_deleted),
               format_percent(access.result().avg_readonly),
               format_percent(access.result().avg_untouched),
               format_double(ages.result().median_of_averages, 0),
               std::to_string(bursts.result().qualifying_write_samples)});
  }
  t.print(std::cout);
  std::cout << "\nCoarser cadences inflate per-interval churn (more files "
               "turn over between samples), shrink 'untouched', and starve "
               "the week-defined burstiness metric — growth and age curves "
               "are cadence-robust.\n";
  return 0;
}
