// Extension experiment (the paper's §7 future work): fuse the scheduler
// job log with the snapshot analysis. Validates that snapshot-diff churn
// tracks real scheduler activity and characterizes files-per-job.
#include "bench_common.h"

#include "study/joblog.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv, /*default_scale=*/1e-4);
  env.print_header("Extension — job-log fusion",
                   "paper §7: 'combining multiple system logs (e.g., job "
                   "logs) and publication data will allow more interesting "
                   "insights'");

  const JobLogResult result = analyze_job_log(*env.generator, *env.resolver);
  std::cout << render_job_log(result);
  return 0;
}
