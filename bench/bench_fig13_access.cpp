// Regenerates Fig 13: weekly access-pattern breakdown via the
// adjacent-snapshot diff join.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 13 — file access pattern breakdown",
                   "weekly averages: 22% new, 13% deleted, 3% readonly, "
                   "10% updated, 76% untouched");

  AccessPatternsAnalyzer analyzer;
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();
  return 0;
}
