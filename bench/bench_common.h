// Shared scaffolding for the table/figure regeneration harnesses.
//
// Every harness simulates the facility at a configurable scale (default
// 2e-4 of Spider II's file volume — the user/project/network side is always
// full-scale), streams the weekly snapshots through the relevant analyzers,
// and prints the measured rows next to the paper's published values.
//
// Common flags: --scale=<double> --weeks=<n> --seed=<n> --no-gaps
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "study/full_study.h"
#include "synth/generator.h"
#include "util/cli.h"

namespace spider::bench {

struct BenchEnv {
  FacilityConfig config;
  std::unique_ptr<FacilityGenerator> generator;
  std::unique_ptr<Resolver> resolver;

  static BenchEnv from_args(int argc, char** argv,
                            double default_scale = 2e-4) {
    const CliArgs args(argc, argv);
    BenchEnv env;
    env.config.scale = args.get_double("scale", default_scale);
    env.config.weeks =
        static_cast<std::size_t>(args.get_int("weeks", 86));
    env.config.seed =
        static_cast<std::uint64_t>(args.get_int("seed", 20150105));
    env.config.maintenance_gaps = !args.get_bool("no-gaps", false);
    env.generator = std::make_unique<FacilityGenerator>(env.config);
    env.resolver = std::make_unique<Resolver>(env.generator->plan());
    return env;
  }

  /// Fig 17's 100-files-per-project-week filter, scaled with file volume
  /// (the paper's 100 applies at scale 1.0) and floored so the statistic
  /// keeps meaning at tiny scales.
  std::size_t burst_min_files() const {
    const double scaled = 100.0 * config.scale;
    return static_cast<std::size_t>(scaled < 10.0 ? 10.0 : scaled);
  }

  void print_header(const char* experiment, const char* paper_ref) const {
    std::printf("== %s ==\n", experiment);
    std::printf("paper: %s\n", paper_ref);
    std::printf(
        "synthetic facility: scale=%g (files; users/projects full-scale), "
        "weeks=%zu, snapshots=%zu, seed=%llu\n\n",
        config.scale, config.weeks, generator->count(),
        static_cast<unsigned long long>(config.seed));
  }
};

}  // namespace spider::bench
