// Group-by aggregation benchmark: the flat aggregation layer (DESIGN.md
// §12) versus the PRE-REWRITE std::unordered_map path, vendored in
// groupby_strategies.h as `legacy` so the baseline doesn't move when the
// library improves.
//
// Two key shapes over one generated weekly snapshot:
//   * string keys (file extensions) — legacy unordered_map<std::string>
//     versus the dictionary-encoded path (per-chunk StringDict + dense
//     count vectors, ordered merge);
//   * 64-bit keys (gids) — legacy unordered_map<uint64_t> versus
//     FlatCountMap with the radix-partitioned merge.
//
// Every run is checked against the legacy 1-thread reference counts
// before any number is reported, and the results land in
// BENCH_groupby.json.
//
// Flags: --scale (default 2e-4), --seed, --reps=<n> best-of-n (default
// 5), --out=<path> for the JSON.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "groupby_strategies.h"
#include "synth/generator.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace spider;
using namespace spider::bench;

struct Timing {
  double seconds = 1e300;
  bool identical = true;
};

/// Best-of-`reps` wall time; every rep's counts must canonicalize to the
/// reference exactly.
template <typename Fn, typename Canonical>
Timing time_strategy(int reps, const Canonical& reference, Fn&& fn) {
  Timing best;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = fn();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (canonical(result) != reference) best.identical = false;
    best.seconds = std::min(best.seconds, elapsed);
  }
  return best;
}

std::string ms(double seconds) { return format_double(1000.0 * seconds, 2); }

struct Setting {
  unsigned threads;
  Timing legacy_string, dict_string, legacy_u64, flat_u64;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 2e-4);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20150105));
  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 5)));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("== Group-by aggregation — flat/dictionary layer vs legacy ==\n");
  std::printf(
      "one generated weekly snapshot; legacy = vendored seed "
      "unordered_map path; best of %d rep(s)\n\n",
      reps);

  FacilityConfig config;
  config.scale = scale;
  config.weeks = 1;
  config.seed = seed;
  config.maintenance_gaps = false;
  FacilityGenerator generator(config);
  std::vector<Snapshot> snaps;
  generator.visit_move(
      [&](std::size_t, Snapshot&& snap) { snaps.push_back(std::move(snap)); });
  if (snaps.empty()) {
    std::fprintf(stderr, "generator produced no snapshots\n");
    return 1;
  }
  const SnapshotTable& t = snaps[0].table;

  // The bit-identity yardstick for every strategy at every thread count.
  ThreadPool one(1);
  const auto string_reference =
      canonical(legacy_group_by_extension(t, &one));
  const auto u64_reference = canonical(legacy_group_by_gid(t, &one));

  std::printf("scale %g: %s rows, %s files, %zu distinct extensions, %zu "
              "distinct gids\n",
              scale, format_with_commas(t.size()).c_str(),
              format_with_commas(t.file_count()).c_str(),
              string_reference.size(), u64_reference.size());

  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  bool identical = true;
  std::vector<Setting> settings;
  AsciiTable table(
      {"threads", "keys", "legacy ms", "flat ms", "speedup"});
  for (const unsigned threads : thread_counts) {
    ThreadPool pool(threads);
    Setting setting;
    setting.threads = threads;

    setting.legacy_string = time_strategy(reps, string_reference, [&] {
      return legacy_group_by_extension(t, &pool);
    });
    setting.dict_string = time_strategy(reps, string_reference, [&] {
      return dict_group_by_extension(t, &pool);
    });
    setting.legacy_u64 = time_strategy(
        reps, u64_reference, [&] { return legacy_group_by_gid(t, &pool); });
    setting.flat_u64 = time_strategy(
        reps, u64_reference, [&] { return flat_group_by_gid(t, &pool); });

    identical = identical && setting.legacy_string.identical &&
                setting.dict_string.identical && setting.legacy_u64.identical &&
                setting.flat_u64.identical;

    table.add_row({std::to_string(threads), "string (ext)",
                   ms(setting.legacy_string.seconds),
                   ms(setting.dict_string.seconds),
                   format_double(setting.legacy_string.seconds /
                                     setting.dict_string.seconds,
                                 2) +
                       "x"});
    table.add_row({std::to_string(threads), "u64 (gid)",
                   ms(setting.legacy_u64.seconds),
                   ms(setting.flat_u64.seconds),
                   format_double(setting.legacy_u64.seconds /
                                     setting.flat_u64.seconds,
                                 2) +
                       "x"});
    settings.push_back(setting);
  }
  table.print(std::cout);
  std::printf("count-identity self-check: %s\n\n",
              identical ? "ok (all strategies, all thread counts)" : "FAILED");
  if (!identical) return 1;

  const std::string json_path = args.get("out", "BENCH_groupby.json");
  std::ofstream json(json_path);
  json << "{\n  \"reps\": " << reps << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"scale\": " << scale << ",\n  \"rows\": " << t.size()
       << ",\n  \"files\": " << t.file_count()
       << ",\n  \"distinct_extensions\": " << string_reference.size()
       << ",\n  \"distinct_gids\": " << u64_reference.size()
       << ",\n  \"bit_identical\": " << (identical ? "true" : "false")
       << ",\n  \"settings\": [\n";
  for (std::size_t i = 0; i < settings.size(); ++i) {
    const Setting& s = settings[i];
    json << "    {\"threads\": " << s.threads
         << ", \"string_legacy_ms\": " << 1000.0 * s.legacy_string.seconds
         << ", \"string_dict_ms\": " << 1000.0 * s.dict_string.seconds
         << ", \"speedup_dict_vs_legacy\": "
         << s.legacy_string.seconds / s.dict_string.seconds
         << ", \"u64_legacy_ms\": " << 1000.0 * s.legacy_u64.seconds
         << ", \"u64_flat_ms\": " << 1000.0 * s.flat_u64.seconds
         << ", \"speedup_flat_vs_legacy\": "
         << s.legacy_u64.seconds / s.flat_u64.seconds << "}"
         << (i + 1 < settings.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
