// Regenerates Fig 9: per-domain directory-depth five-number summaries,
// compared against the paper's Table 1 [median, max] column.
#include "bench_common.h"

#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 9 — directory depth trends per domain",
                   "Table 1 Dir.Depth column: e.g. aph [10,22], mat [16,29], "
                   "gen [10,432], stf [12,2030]");

  CensusAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  const CensusResult& r = analyzer.result();

  AsciiTable t({"domain", "min", "q25", "median", "q75", "max",
                "paper [med,max]"});
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const FiveNumber& fn = r.depth_by_domain[d];
    if (fn.count == 0) continue;
    t.add_row({profiles[d].id, format_double(fn.min, 0),
               format_double(fn.q25, 0), format_double(fn.median, 0),
               format_double(fn.q75, 0), format_double(fn.max, 0),
               "[" + std::to_string(profiles[d].depth_median) + ", " +
                   std::to_string(profiles[d].depth_max) + "]"});
  }
  t.print(std::cout);
  return 0;
}
