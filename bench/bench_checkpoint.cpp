// Checkpoint overhead and restore-vs-rerun harness (DESIGN.md §14).
//
// Two questions, both on a fixed-churn synthetic series studied by the
// fully delta-capable roster (the only roster that can resume — FullStudy's
// scan-only analyzers record re-baseline markers):
//
//   1. What does writing a .sckpt every week cost, on top of the plain
//      incremental run? (write path: serialize + fsync + rename + dir fsync)
//   2. After a crash at the end of the series, what does resuming from the
//      checkpoint cost, compared to re-running the study from scratch —
//      the work the checkpoint exists to avoid?
//
// Emits BENCH_checkpoint.json with both ratios and the checkpoint size,
// and self-checks that the plain, checkpointed, and resumed runs all
// render byte-identical bundles (exit 1 otherwise).
//
// Flags: --scale / --weeks / --seed (bench_common), --churn=<frac>
// (default 0.05), --reps=<n> best-of-n timing (default 3), --out=<path>.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "snapshot/series.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace spider;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The resumable roster: every analyzer implements save/load_state.
struct DeltaStudy {
  explicit DeltaStudy(const Resolver& resolver)
      : user_profile(resolver),
        participation(resolver),
        census(resolver),
        extensions(resolver),
        languages(resolver) {}

  UserProfileAnalyzer user_profile;
  ParticipationAnalyzer participation;
  CensusAnalyzer census;
  ExtensionsAnalyzer extensions;
  LanguagesAnalyzer languages;
  AccessPatternsAnalyzer access_patterns;
  GrowthAnalyzer growth;
  FileAgeAnalyzer file_age;

  std::vector<StudyAnalyzer*> roster() {
    return {&user_profile, &participation,   &census, &extensions,
            &languages,    &access_patterns, &growth, &file_age};
  }

  std::string render() const {
    std::string out;
    out += user_profile.render();
    out += participation.render();
    out += census.render();
    out += extensions.render();
    out += languages.render();
    out += access_patterns.render();
    out += growth.render();
    out += file_age.render();
    return out;
  }
};

struct RunResult {
  double seconds = 0;
  std::string bundle;
  CheckpointReport report;
};

RunResult run_once(const std::string& series_dir, const Resolver& resolver,
                   ThreadPool& pool, const std::string& ckpt_path,
                   bool resume) {
  DirectorySeries series;
  std::string error;
  if (!series.open(series_dir, &error)) {
    std::fprintf(stderr, "open %s: %s\n", series_dir.c_str(), error.c_str());
    std::exit(1);
  }
  DeltaStudy study(resolver);
  StudyOptions options;
  options.pool = &pool;
  options.incremental = true;
  options.checkpoint.path = ckpt_path;
  options.checkpoint.resume = resume;
  RunResult result;
  options.checkpoint_report = &result.report;
  const std::vector<StudyAnalyzer*> roster = study.roster();
  const auto start = std::chrono::steady_clock::now();
  run_study(series, roster, options);
  result.seconds = seconds_since(start);
  result.bundle = study.render();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  auto env = bench::BenchEnv::from_args(argc, argv, /*default_scale=*/2e-4);
  env.config.weeks = static_cast<std::size_t>(args.get_int("weeks", 24));
  env.config.maintenance_gaps = false;
  const double churn = args.get_double("churn", 0.05);
  env.config.churn_create = churn;
  env.config.churn_update = churn;
  env.config.churn_delete = churn;
  env.generator = std::make_unique<FacilityGenerator>(env.config);
  env.resolver = std::make_unique<Resolver>(env.generator->plan());
  env.print_header("Checkpoint/resume — write overhead and restore cost",
                   "crash-safe resume vs re-running the study (DESIGN.md §14)");

  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 3)));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(hw);
  auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) best = std::min(best, fn());
    return best;
  };

  namespace fs = std::filesystem;
  const fs::path work =
      fs::temp_directory_path() / "spider_bench_checkpoint_series";
  fs::remove_all(work);
  std::string error;
  std::size_t total_rows = 0;
  {
    if (!save_series(*env.generator, work.string(), &error)) {
      std::fprintf(stderr, "save_series: %s\n", error.c_str());
      return 1;
    }
    env.generator->visit([&](std::size_t, const Snapshot& snap) {
      total_rows += snap.table.size();
    });
  }
  const std::string ckpt = (work / "study.sckpt").string();
  const double dweeks = static_cast<double>(env.config.weeks);

  // 1. Plain incremental run (the re-run baseline) vs checkpoint-every-week.
  std::string plain_bundle;
  const double plain_s = best_of([&] {
    RunResult r = run_once(work.string(), *env.resolver, pool, "", false);
    plain_bundle = std::move(r.bundle);
    return r.seconds;
  });
  std::string ckpt_bundle;
  std::size_t checkpoints_written = 0;
  const double ckpt_s = best_of([&] {
    fs::remove(ckpt);  // measure the write path, not a resume
    RunResult r = run_once(work.string(), *env.resolver, pool, ckpt, false);
    ckpt_bundle = std::move(r.bundle);
    checkpoints_written = r.report.checkpoints_written;
    return r.seconds;
  });
  const std::uintmax_t ckpt_bytes = fs::file_size(ckpt);

  // 2. Crash-at-the-end restore: the checkpoint on disk holds the last
  // analyzed week; a resumed run re-decodes only that week, restores the
  // blobs, and renders.
  std::string resumed_bundle;
  bool resumed = false;
  const double restore_s = best_of([&] {
    RunResult r = run_once(work.string(), *env.resolver, pool, ckpt, true);
    resumed_bundle = std::move(r.bundle);
    resumed = r.report.resumed;
    return r.seconds;
  });

  if (plain_bundle != ckpt_bundle || plain_bundle != resumed_bundle) {
    std::fprintf(stderr,
                 "FAIL: checkpointed/resumed bundles differ from the plain "
                 "incremental run\n");
    return 1;
  }
  if (!resumed) {
    std::fprintf(stderr, "FAIL: restore run did not resume\n");
    return 1;
  }

  const double write_overhead = ckpt_s / plain_s - 1.0;
  const double restore_ratio = restore_s / plain_s;
  AsciiTable out({"metric", "value"});
  out.add_row({"rows (all weeks)", format_with_commas(total_rows)});
  out.add_row({"plain incremental", format_double(1000.0 * plain_s / dweeks,
                                                  2) + " ms/week"});
  out.add_row({"with weekly checkpoint",
               format_double(1000.0 * ckpt_s / dweeks, 2) + " ms/week"});
  out.add_row({"write overhead",
               format_double(100.0 * write_overhead, 1) + "%"});
  out.add_row({"checkpoint size",
               format_with_commas(static_cast<std::uint64_t>(ckpt_bytes)) +
                   " bytes"});
  out.add_row({"restore + render", format_double(1000.0 * restore_s, 1) +
                                       " ms"});
  out.add_row({"full re-run", format_double(1000.0 * plain_s, 1) + " ms"});
  out.add_row({"restore / re-run", format_double(restore_ratio, 3) + "x"});
  out.print(std::cout);
  std::printf("\nbundles byte-identical across plain, checkpointed and "
              "resumed runs (%u threads, %zu weeks, %zu checkpoints)\n",
              hw, static_cast<std::size_t>(env.config.weeks),
              checkpoints_written);

  const std::string json_path = args.get("out", "BENCH_checkpoint.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"scale\": " << env.config.scale << ",\n"
       << "  \"weeks\": " << env.config.weeks << ",\n"
       << "  \"churn\": " << churn << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"threads\": " << hw << ",\n"
       << "  \"rows_total\": " << total_rows << ",\n"
       << "  \"identical_bundles\": true,\n"
       << "  \"plain_week_ms\": " << 1000.0 * plain_s / dweeks << ",\n"
       << "  \"checkpoint_week_ms\": " << 1000.0 * ckpt_s / dweeks << ",\n"
       << "  \"write_overhead_frac\": " << write_overhead << ",\n"
       << "  \"checkpoint_bytes\": " << ckpt_bytes << ",\n"
       << "  \"restore_ms\": " << 1000.0 * restore_s << ",\n"
       << "  \"full_rerun_ms\": " << 1000.0 * plain_s << ",\n"
       << "  \"restore_over_rerun\": " << restore_ratio << "\n"
       << "}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  fs::remove_all(work);
  return 0;
}
