// Regenerates Fig 17: write/read burstiness (cv of within-week mtimes of
// new files and atimes of readonly files, per project-week).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 17 — burstiness of file operations",
                   "write cv mostly 0.1-1.0; read cv ~100x lower "
                   "(0.001-0.01); aph/bio/med burstier than the rest; "
                   "projects under 100 files/week excluded");

  BurstinessAnalyzer analyzer(*env.resolver, env.burst_min_files());
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();
  return 0;
}
