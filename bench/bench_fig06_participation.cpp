// Regenerates Fig 6: projects-per-user / users-per-project CDFs and the
// per-domain median membership.
#include "bench_common.h"

#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 6 — user participation across projects",
                   ">60% of users in >1 project, 20% in >2, 2% in >=8; "
                   "40% of projects <3 users, 20% >10; cli/env/nfi/chp "
                   "medians >10");

  ParticipationAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();

  // CDF curves as printable series (the figure's axes).
  const auto& r = analyzer.result();
  std::cout << "\nFig 6(a) CDF points (projects per user):\n";
  AsciiTable a({"projects", "CDF"});
  for (const double x : {1.0, 2.0, 3.0, 5.0, 8.0, 12.0}) {
    a.add_row({format_double(x, 0),
               format_percent(r.projects_per_user.fraction_at_most(x))});
  }
  a.print(std::cout);
  std::cout << "\nFig 6(b) CDF points (users per project):\n";
  AsciiTable b({"users", "CDF"});
  for (const double x : {1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 40.0}) {
    b.add_row({format_double(x, 0),
               format_percent(r.users_per_project.fraction_at_most(x))});
  }
  b.print(std::cout);
  return 0;
}
