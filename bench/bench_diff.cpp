// Diff join strategy benchmark: the radix-partitioned join (DESIGN.md §11)
// and the tuned hash/sort-merge strategies versus the PRE-REWRITE
// diff_snapshots, vendored below as `legacy` so the baseline doesn't move
// when the library improves.
//
// For each of two scale factors the harness generates one adjacent weekly
// snapshot pair and times build / probe / sweep per strategy at several
// thread counts, best-of --reps. One diff = one week of the study's join
// work, so `total ms` is exactly the diff time-per-week. Every run is
// checked byte-identical against the legacy 1-thread reference before any
// number is reported, and the results land in BENCH_diff.json.
//
// Flags: --scale / --scale2 (the two factors), --seed (bench_common),
// --reps=<n> best-of-n (default 3), --out=<path> for the JSON.
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/diff.h"
#include "engine/hash_index.h"
#include "snapshot/series.h"
#include "synth/generator.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace spider;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The seed's PathIndex, frozen: 4-byte row slots (row + 1, 0 = empty), no
/// in-slot fingerprint, so every occupied candidate is confirmed through a
/// random read of the hash column. The library's PathIndex has since
/// gained fingerprint slots, prefetch, and a subset mode — the baseline
/// must not inherit any of that.
class LegacySeedPathIndex {
 public:
  static constexpr std::uint32_t kNotFound = 0xffff'ffffu;
  explicit LegacySeedPathIndex(const SnapshotTable& table, bool files_only)
      : table_(table) {
    const std::size_t rows = table.size();
    const std::size_t capacity =
        std::bit_ceil(std::max<std::size_t>(rows * 2, 16));
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (std::size_t row = 0; row < rows; ++row) {
      if (files_only && table.is_dir(row)) continue;
      std::uint64_t slot = table.path_hash(row) & mask_;
      for (;;) {
        if (slots_[slot] == 0) {
          slots_[slot] = static_cast<std::uint32_t>(row) + 1;
          break;
        }
        const std::uint32_t other = slots_[slot] - 1;
        if (table_.path_hash(other) == table.path_hash(row) &&
            table_.path(other) == table.path(row)) {
          break;  // duplicate path: keep the first row
        }
        slot = (slot + 1) & mask_;
      }
    }
  }
  std::uint32_t lookup(std::uint64_t hash, std::string_view path) const {
    std::uint64_t slot = hash & mask_;
    for (;;) {
      const std::uint32_t stored = slots_[slot];
      if (stored == 0) return kNotFound;
      const std::uint32_t row = stored - 1;
      if (table_.path_hash(row) == hash && table_.path(row) == path) {
        return row;
      }
      slot = (slot + 1) & mask_;
    }
  }

 private:
  const SnapshotTable& table_;
  std::vector<std::uint32_t> slots_;  // row + 1; 0 = empty
  std::uint64_t mask_ = 0;
};

/// The seed's diff_snapshots, frozen: whole-table seed index built
/// serially, match flags over every previous-week row (directories
/// included, zeroed one by one), parallel probe with three random
/// timestamp-column reads per hit, serial deleted sweep re-testing is_dir
/// per row. Only the pool is threaded through so thread-count settings
/// compare like for like.
DiffResult legacy_diff_snapshots(const SnapshotTable& prev,
                                 const SnapshotTable& cur, ThreadPool* pool,
                                 DiffBreakdown* breakdown) {
  DiffResult result;
  result.prev_files = prev.file_count();
  result.cur_files = cur.file_count();

  auto mark = std::chrono::steady_clock::now();
  const LegacySeedPathIndex index(prev, /*files_only=*/true);
  std::unique_ptr<std::atomic<std::uint8_t>[]> matched(
      new std::atomic<std::uint8_t>[prev.size()]);
  for (std::size_t i = 0; i < prev.size(); ++i) {
    matched[i].store(0, std::memory_order_relaxed);
  }
  breakdown->build_s = seconds_since(mark);
  mark = std::chrono::steady_clock::now();

  struct Partial {
    std::vector<std::uint32_t> rows[4];  // new, updated, readonly, untouched
  };
  constexpr std::size_t kGrain = 8192;
  const std::size_t n = cur.size();
  const std::size_t chunks = n == 0 ? 0 : (n + kGrain - 1) / kGrain;
  std::vector<Partial> partials(chunks);

  parallel_for_chunked(
      n, kGrain,
      [&](std::size_t begin, std::size_t end) {
        Partial& p = partials[begin / kGrain];
        for (std::size_t row = begin; row < end; ++row) {
          if (cur.is_dir(row)) continue;
          const std::uint32_t prev_row =
              index.lookup(cur.path_hash(row), cur.path(row));
          if (prev_row == LegacySeedPathIndex::kNotFound) {
            p.rows[0].push_back(static_cast<std::uint32_t>(row));
            continue;
          }
          matched[prev_row].store(1, std::memory_order_relaxed);
          const bool atime_same = cur.atime(row) == prev.atime(prev_row);
          const bool mtime_same = cur.mtime(row) == prev.mtime(prev_row);
          const bool ctime_same = cur.ctime(row) == prev.ctime(prev_row);
          if (mtime_same && ctime_same && atime_same) {
            p.rows[3].push_back(static_cast<std::uint32_t>(row));
          } else if (mtime_same && ctime_same) {
            p.rows[2].push_back(static_cast<std::uint32_t>(row));
          } else {
            p.rows[1].push_back(static_cast<std::uint32_t>(row));
          }
        }
      },
      pool);
  breakdown->probe_s = seconds_since(mark);
  mark = std::chrono::steady_clock::now();

  std::size_t totals[4] = {0, 0, 0, 0};
  for (const Partial& p : partials) {
    for (int k = 0; k < 4; ++k) totals[k] += p.rows[k].size();
  }
  result.new_rows.reserve(totals[0]);
  result.updated_rows.reserve(totals[1]);
  result.readonly_rows.reserve(totals[2]);
  result.untouched_rows.reserve(totals[3]);
  for (Partial& p : partials) {
    result.new_rows.insert(result.new_rows.end(), p.rows[0].begin(),
                           p.rows[0].end());
    result.updated_rows.insert(result.updated_rows.end(), p.rows[1].begin(),
                               p.rows[1].end());
    result.readonly_rows.insert(result.readonly_rows.end(), p.rows[2].begin(),
                                p.rows[2].end());
    result.untouched_rows.insert(result.untouched_rows.end(),
                                 p.rows[3].begin(), p.rows[3].end());
  }
  for (std::size_t row = 0; row < prev.size(); ++row) {
    if (prev.is_dir(row)) continue;
    if (matched[row].load(std::memory_order_relaxed) == 0) {
      result.deleted_rows.push_back(static_cast<std::uint32_t>(row));
    }
  }
  breakdown->sweep_s = seconds_since(mark);
  return result;
}

bool results_equal(const DiffResult& a, const DiffResult& b) {
  return a.prev_files == b.prev_files && a.cur_files == b.cur_files &&
         a.new_rows == b.new_rows && a.readonly_rows == b.readonly_rows &&
         a.updated_rows == b.updated_rows &&
         a.untouched_rows == b.untouched_rows &&
         a.deleted_rows == b.deleted_rows;
}

struct Timing {
  DiffBreakdown phases;
  double total = 0;
  bool identical = true;
};

/// Best-of-reps timing of one strategy; every rep's result is checked
/// against the reference.
template <typename Fn>
Timing time_strategy(int reps, const DiffResult& reference, Fn&& fn) {
  Timing best;
  best.total = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    DiffBreakdown phases;
    const DiffResult result = fn(&phases);
    const double total = phases.build_s + phases.probe_s + phases.sweep_s;
    if (!results_equal(result, reference)) best.identical = false;
    if (total < best.total) {
      best.total = total;
      best.phases = phases;
    }
  }
  return best;
}

struct StrategyRow {
  std::string name;
  Timing timing;
};

struct Setting {
  unsigned threads;
  std::vector<StrategyRow> strategies;
};

std::string ms(double seconds) { return format_double(1000.0 * seconds, 2); }

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale_a = args.get_double("scale", 2e-4);
  const double scale_b = args.get_double("scale2", 1e-3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20150105));
  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 3)));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("== Diff join strategies — radix-partitioned vs legacy ==\n");
  std::printf(
      "one adjacent weekly pair per scale; total ms = diff time-per-week; "
      "best of %d rep(s)\n\n",
      reps);

  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  struct ScaleReport {
    double scale;
    std::size_t prev_rows, cur_rows, prev_files, cur_files;
    std::vector<Setting> settings;
    bool identical = true;
  };
  std::vector<ScaleReport> reports;

  for (const double scale : {scale_a, scale_b}) {
    FacilityConfig config;
    config.scale = scale;
    config.weeks = 2;
    config.seed = seed;
    config.maintenance_gaps = false;
    FacilityGenerator generator(config);
    std::vector<Snapshot> snaps;
    generator.visit_move(
        [&](std::size_t, Snapshot&& snap) { snaps.push_back(std::move(snap)); });
    if (snaps.size() < 2) {
      std::fprintf(stderr, "generator produced %zu week(s), need 2\n",
                   snaps.size());
      return 1;
    }
    const SnapshotTable& prev = snaps[0].table;
    const SnapshotTable& cur = snaps[1].table;

    ScaleReport report;
    report.scale = scale;
    report.prev_rows = prev.size();
    report.cur_rows = cur.size();
    report.prev_files = prev.file_count();
    report.cur_files = cur.file_count();

    // The bit-identity yardstick for every strategy at every thread count.
    ThreadPool one(1);
    DiffBreakdown ref_phases;
    const DiffResult reference =
        legacy_diff_snapshots(prev, cur, &one, &ref_phases);

    std::printf("scale %g: prev %s rows / cur %s rows (%s / %s files)\n",
                scale, format_with_commas(prev.size()).c_str(),
                format_with_commas(cur.size()).c_str(),
                format_with_commas(prev.file_count()).c_str(),
                format_with_commas(cur.file_count()).c_str());

    AsciiTable table({"threads", "strategy", "build ms", "probe ms",
                      "sweep ms", "total ms", "vs legacy"});
    for (const unsigned threads : thread_counts) {
      ThreadPool pool(threads);
      Setting setting;
      setting.threads = threads;

      const Timing legacy =
          time_strategy(reps, reference, [&](DiffBreakdown* phases) {
            return legacy_diff_snapshots(prev, cur, &pool, phases);
          });
      setting.strategies.push_back({"legacy", legacy});

      const Timing hash =
          time_strategy(reps, reference, [&](DiffBreakdown* phases) {
            return diff_snapshots(prev, cur, &pool, phases);
          });
      setting.strategies.push_back({"hash", hash});

      if (threads == 1) {
        // Sort-merge is serial; one setting is enough.
        const Timing sortmerge =
            time_strategy(reps, reference, [&](DiffBreakdown* phases) {
              return diff_snapshots_sortmerge(prev, cur, phases);
            });
        setting.strategies.push_back({"sortmerge", sortmerge});
      }

      const Timing partitioned =
          time_strategy(reps, reference, [&](DiffBreakdown* phases) {
            return diff_snapshots_partitioned(prev, cur, &pool, phases);
          });
      setting.strategies.push_back({"partitioned", partitioned});

      for (const StrategyRow& row : setting.strategies) {
        if (!row.timing.identical) report.identical = false;
        table.add_row({std::to_string(threads), row.name,
                       ms(row.timing.phases.build_s),
                       ms(row.timing.phases.probe_s),
                       ms(row.timing.phases.sweep_s), ms(row.timing.total),
                       format_double(legacy.total / row.timing.total, 2) +
                           "x"});
      }
      report.settings.push_back(std::move(setting));
    }
    table.print(std::cout);
    std::printf("bit-identity self-check: %s\n\n",
                report.identical ? "ok (all strategies, all thread counts)"
                                 : "FAILED");
    reports.push_back(std::move(report));
    if (!reports.back().identical) return 1;
  }

  const std::string json_path = args.get("out", "BENCH_diff.json");
  std::ofstream json(json_path);
  json << "{\n  \"reps\": " << reps << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"scales\": [\n";
  for (std::size_t s = 0; s < reports.size(); ++s) {
    const ScaleReport& report = reports[s];
    json << "    {\n      \"scale\": " << report.scale
         << ",\n      \"prev_rows\": " << report.prev_rows
         << ",\n      \"cur_rows\": " << report.cur_rows
         << ",\n      \"prev_files\": " << report.prev_files
         << ",\n      \"cur_files\": " << report.cur_files
         << ",\n      \"bit_identical\": "
         << (report.identical ? "true" : "false")
         << ",\n      \"settings\": [\n";
    for (std::size_t i = 0; i < report.settings.size(); ++i) {
      const Setting& setting = report.settings[i];
      double legacy_total = 0, partitioned_total = 0;
      json << "        {\"threads\": " << setting.threads;
      for (const StrategyRow& row : setting.strategies) {
        if (row.name == "legacy") legacy_total = row.timing.total;
        if (row.name == "partitioned") partitioned_total = row.timing.total;
        json << ", \"" << row.name << "_ms\": {\"build\": "
             << 1000.0 * row.timing.phases.build_s
             << ", \"probe\": " << 1000.0 * row.timing.phases.probe_s
             << ", \"sweep\": " << 1000.0 * row.timing.phases.sweep_s
             << ", \"total\": " << 1000.0 * row.timing.total << "}";
      }
      json << ", \"speedup_partitioned_vs_legacy\": "
           << legacy_total / partitioned_total << "}"
           << (i + 1 < report.settings.size() ? "," : "") << "\n";
    }
    json << "      ]\n    }" << (s + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
