// Regenerates Fig 15: growth of the file/directory population.
#include "bench_common.h"

#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 15 — growth in number of files and directories",
                   "files grow 200M (Jan 2015) -> ~1B (Jul 2016); directory "
                   "count comparatively steady, <10% of entries late");

  GrowthAnalyzer analyzer;
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();
  std::cout << "scaled paper endpoints at scale " << env.config.scale << ": "
            << format_count(200e6 * env.config.scale) << " -> "
            << format_count(1000e6 * env.config.scale) << " files\n";
  return 0;
}
