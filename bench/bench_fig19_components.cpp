// Regenerates Fig 19: per-domain giant-component share and probability.
#include "bench_common.h"

#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 19 — giant-component membership per domain",
                   "csc contributes the most projects (~18%); >70% of "
                   "chp/env/cli projects are inside the giant component");

  ParticipationAnalyzer participation(*env.resolver);
  NetworkAnalyzer network(*env.resolver, participation);
  StudyAnalyzer* analyzers[] = {&participation, &network};
  run_study(*env.generator, analyzers);

  const NetworkResult& r = network.result();
  AsciiTable t({"domain", "share of giant (19a)", "P(in giant) (19b)",
                "paper Network %"});
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    t.add_row({profiles[d].id,
               format_percent(r.giant_share_by_domain[d]),
               format_percent(r.giant_probability_by_domain[d]),
               format_double(profiles[d].network_pct, 1) + "%"});
  }
  t.print(std::cout);
  return 0;
}
