// Out-of-core scaling harness (DESIGN.md §15): at each requested scale,
// generate a snapshot series straight to .scol via the streaming writer
// (never materializing a snapshot table), then run the full study twice —
// resident (streaming=false, the bit-identical reference) and out-of-core
// under a memory budget of one quarter of the resident run's peak RSS —
// and record rows/s plus max-RSS for both.
//
// Every measured phase runs in a fork()ed child so VmHWM (from
// /proc/self/status) reflects that phase alone: the parent never decodes
// a snapshot and never starts a thread pool. The harness self-checks that
// the streamed and resident bundles are byte-identical and exits nonzero
// when they are not.
//
// At scales whose resident reference cannot fit the machine — the whole
// reason the streaming path exists — the reference is skipped: its peak
// is projected from the last measured scale's per-row peak (resident
// footprint is proportional to the largest week), the budget derives
// from the projection, and the JSON row says resident_measured: false.
// Bundle identity at those scales rests on the smaller measured scales
// plus the parity test suite.
//
// Emits BENCH_scale.json: one row per scale with resident/streaming
// seconds, rows/s, peak-RSS kB, the derived budget, and the peak ratio.
//
// Flags: --scales=0.01,0.1 (default), --weeks=<n> (default 8),
// --seed=<n>, --threads=<n> (default hw), --out=<path>.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "snapshot/scol.h"
#include "snapshot/series.h"
#include "study/full_study.h"
#include "synth/generator.h"
#include "util/cli.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace spider;
namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Peak resident set of this process, in kB, from /proc/self/status.
std::uint64_t vm_hwm_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

std::string render_bundle(const FullStudy& study) {
  std::string out;
  out += study.render_table1();
  out += study.render_data_quality();
  out += study.user_profile.render();
  out += study.participation.render();
  out += study.census.render();
  out += study.extensions.render();
  out += study.languages.render();
  out += study.access_patterns.render();
  out += study.striping.render();
  out += study.growth.render();
  out += study.file_age.render();
  out += study.burstiness.render();
  out += study.network.render();
  out += study.collaboration.render();
  return out;
}

struct RunStats {
  bool ok = false;
  double seconds = 0;
  std::uint64_t peak_kb = 0;
  std::uint64_t bundle_hash = 0;
  std::uint64_t bundle_len = 0;
};

/// Forks, runs `fn` in the child (which appends its numbers to
/// `stats_path`), and parses the result. A nonzero child exit or a
/// missing stats file reports !ok.
template <typename Fn>
RunStats run_in_child(const std::string& stats_path, Fn&& fn) {
  std::error_code ec;
  fs::remove(stats_path, ec);
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return {};
  }
  if (pid == 0) {
    const int rc = fn(stats_path);
    std::_Exit(rc);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return {};
  }
  std::ifstream in(stats_path);
  if (!in) return {};
  RunStats stats;
  in >> stats.seconds >> stats.peak_kb >> stats.bundle_hash >>
      stats.bundle_len;
  stats.ok = static_cast<bool>(in);
  return stats;
}

/// The child-side study measurement: open the on-disk series, run the
/// full study (resident when budget == 0, out-of-core otherwise), and
/// record elapsed seconds / peak RSS / bundle fingerprint.
int measure_study(const std::string& stats_path, const std::string& series_dir,
                  const FacilityConfig& config, std::size_t burst_min,
                  unsigned threads, std::size_t budget) {
  DirectorySeries series;
  std::string error;
  if (!series.open(series_dir, &error)) {
    std::fprintf(stderr, "open failed: %s\n", error.c_str());
    return 1;
  }
  FacilityGenerator generator(config);  // only for the resolver's plan
  Resolver resolver(generator.plan());
  ThreadPool pool(threads);
  FullStudy study(resolver, burst_min);
  StudyOptions options;
  options.pool = &pool;
  options.streaming = budget > 0;
  options.memory_budget = budget;
  const auto start = std::chrono::steady_clock::now();
  study.run(series, options);
  const double elapsed = seconds_since(start);
  const std::string bundle = render_bundle(study);
  std::ofstream out(stats_path);
  out << elapsed << " " << vm_hwm_kb() << " "
      << hash_bytes(std::string_view(bundle)) << " " << bundle.size() << "\n";
  return out ? 0 : 1;
}

struct ScalePoint {
  double scale = 0;
  std::uint64_t rows_total = 0;
  std::uint64_t max_week_rows = 0;
  RunStats resident;
  bool resident_measured = false;  // else resident.peak_kb is projected
  RunStats streaming;
  std::size_t budget = 0;
  bool identical = false;
};

/// MemAvailable in kB, the guard against launching a resident reference
/// the container cannot hold. 0 when /proc is unreadable (no guard).
std::uint64_t mem_available_kb() {
  std::ifstream in("/proc/meminfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("MemAvailable:", 0) == 0) {
      return std::strtoull(line.c_str() + 13, nullptr, 10);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  FacilityConfig config;
  config.weeks = static_cast<std::size_t>(args.get_int("weeks", 8));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20150105));
  config.maintenance_gaps = !args.get_bool("no-gaps", false);

  std::vector<double> scales;
  {
    std::stringstream ss(args.get("scales", "0.01,0.1"));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) scales.push_back(std::strtod(tok.c_str(), nullptr));
    }
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads = static_cast<unsigned>(
      args.get_int("threads", static_cast<std::int64_t>(hw)));

  const fs::path work = fs::temp_directory_path() /
                        ("spider-bench-scale-" + std::to_string(getpid()));
  fs::create_directories(work);
  const std::string stats_path = (work / "stats.txt").string();

  std::printf("== Out-of-core scaling — resident vs streaming full study ==\n");
  std::printf("weeks=%zu seed=%llu threads=%u; budget = resident peak / 4\n\n",
              config.weeks, static_cast<unsigned long long>(config.seed),
              threads);

  std::vector<ScalePoint> points;
  int rc = 0;
  for (const double scale : scales) {
    config.scale = scale;
    const double scaled_burst = 100.0 * scale;
    const std::size_t burst_min =
        static_cast<std::size_t>(scaled_burst < 10.0 ? 10.0 : scaled_burst);
    const std::string series_dir =
        (work / ("series_" + std::to_string(points.size()))).string();

    // Phase 1 (child): generate the series group-at-a-time. The streamed
    // writer is what makes the large scales producible here at all.
    const RunStats gen = run_in_child(stats_path, [&](const std::string& sp) {
      FacilityGenerator generator(config);
      const auto start = std::chrono::steady_clock::now();
      const Status s = save_series_streamed(generator, series_dir);
      if (!s.ok()) {
        std::fprintf(stderr, "generate failed: %s\n", s.to_string().c_str());
        return 1;
      }
      std::ofstream out(sp);
      out << seconds_since(start) << " " << vm_hwm_kb() << " 0 0\n";
      return out ? 0 : 1;
    });
    if (!gen.ok) {
      std::fprintf(stderr, "FAIL: generation at scale %g\n", scale);
      rc = 1;
      break;
    }

    // Row counts come from the group directories alone — no decode.
    std::uint64_t rows_total = 0, max_week_rows = 0;
    {
      DirectorySeries listing;
      std::string error;
      if (!listing.open(series_dir, &error)) {
        std::fprintf(stderr, "FAIL: %s\n", error.c_str());
        rc = 1;
        break;
      }
      for (const std::string& file : listing.files()) {
        ScolGroupReader reader;
        if (reader.open(file).ok()) {
          rows_total += reader.rows();
          max_week_rows = std::max(max_week_rows, reader.rows());
        }
      }
    }

    ScalePoint point;
    point.scale = scale;
    point.rows_total = rows_total;
    point.max_week_rows = max_week_rows;

    // The resident reference only runs when the container can plausibly
    // hold it: its peak is proportional to the largest week, so project
    // from the last measured scale's per-row peak and skip (budgeting
    // from the projection instead) when the projection exceeds what is
    // available. At scales this harness exists for, the resident path
    // NOT fitting is the expected outcome, not a failure.
    const std::uint64_t avail_kb = mem_available_kb();
    std::uint64_t projected_kb = 0;
    for (auto it = points.rbegin(); it != points.rend(); ++it) {
      if (it->resident_measured && it->max_week_rows > 0) {
        projected_kb = static_cast<std::uint64_t>(
            static_cast<double>(it->resident.peak_kb) /
            static_cast<double>(it->max_week_rows) *
            static_cast<double>(max_week_rows));
        break;
      }
    }
    const bool skip_resident = projected_kb > 0 && avail_kb > 0 &&
                               projected_kb > avail_kb * 8 / 10;
    if (skip_resident) {
      point.resident.ok = true;
      point.resident.peak_kb = projected_kb;
      point.resident_measured = false;
      std::printf(
          "scale %-7g: resident reference skipped — projected peak %s kB "
          "exceeds 80%% of available %s kB; budgeting from the projection\n",
          scale, format_with_commas(projected_kb).c_str(),
          format_with_commas(avail_kb).c_str());
    } else {
      point.resident = run_in_child(stats_path, [&](const std::string& sp) {
        return measure_study(sp, series_dir, config, burst_min, threads,
                             /*budget=*/0);
      });
      point.resident_measured = true;
      if (!point.resident.ok) {
        std::fprintf(stderr, "FAIL: resident study at scale %g\n", scale);
        rc = 1;
        break;
      }
    }
    point.budget =
        static_cast<std::size_t>(point.resident.peak_kb * 1024 / 4);
    point.streaming = run_in_child(stats_path, [&](const std::string& sp) {
      return measure_study(sp, series_dir, config, burst_min, threads,
                           point.budget);
    });
    if (!point.streaming.ok) {
      std::fprintf(stderr, "FAIL: streaming study at scale %g\n", scale);
      rc = 1;
      break;
    }
    point.identical =
        !point.resident_measured ||
        (point.resident.bundle_hash == point.streaming.bundle_hash &&
         point.resident.bundle_len == point.streaming.bundle_len);
    if (!point.identical) {
      std::fprintf(stderr,
                   "FAIL: streamed bundle differs from resident at scale %g\n",
                   scale);
      rc = 1;
    }
    if (point.resident_measured) {
      std::printf(
          "scale %-7g %s rows: resident %.2fs (%s rows/s, peak %s kB) | "
          "streaming under %s kB budget %.2fs (%s rows/s, peak %s kB)\n",
          scale, format_with_commas(rows_total).c_str(),
          point.resident.seconds,
          format_with_commas(static_cast<std::uint64_t>(
                                 rows_total /
                                 std::max(1e-9, point.resident.seconds)))
              .c_str(),
          format_with_commas(point.resident.peak_kb).c_str(),
          format_with_commas(point.budget / 1024).c_str(),
          point.streaming.seconds,
          format_with_commas(static_cast<std::uint64_t>(
                                 rows_total /
                                 std::max(1e-9, point.streaming.seconds)))
              .c_str(),
          format_with_commas(point.streaming.peak_kb).c_str());
    } else {
      std::printf(
          "scale %-7g %s rows: streaming under %s kB budget %.2fs "
          "(%s rows/s, peak %s kB)\n",
          scale, format_with_commas(rows_total).c_str(),
          format_with_commas(point.budget / 1024).c_str(),
          point.streaming.seconds,
          format_with_commas(static_cast<std::uint64_t>(
                                 rows_total /
                                 std::max(1e-9, point.streaming.seconds)))
              .c_str(),
          format_with_commas(point.streaming.peak_kb).c_str());
    }
    points.push_back(point);
    std::error_code ec;
    fs::remove_all(series_dir, ec);
    if (rc != 0) break;
  }

  if (rc == 0 && !points.empty()) {
    AsciiTable t({"scale", "rows", "resident rows/s", "streaming rows/s",
                  "resident peak kB", "streaming peak kB", "peak ratio"});
    for (const ScalePoint& p : points) {
      t.add_row(
          {format_double(p.scale, 6), format_with_commas(p.rows_total),
           p.resident_measured
               ? format_with_commas(static_cast<std::uint64_t>(
                     p.rows_total / std::max(1e-9, p.resident.seconds)))
               : "-",
           format_with_commas(static_cast<std::uint64_t>(
               p.rows_total / std::max(1e-9, p.streaming.seconds))),
           format_with_commas(p.resident.peak_kb) +
               (p.resident_measured ? "" : " (proj)"),
           format_with_commas(p.streaming.peak_kb),
           format_double(static_cast<double>(p.streaming.peak_kb) /
                             std::max<double>(1, p.resident.peak_kb),
                         2)});
    }
    std::printf("\n");
    t.print(std::cout);
    std::printf("\nbundles byte-identical at every measured scale\n");

    const std::string json_path = args.get("out", "BENCH_scale.json");
    std::ofstream json(json_path);
    json << "{\n"
         << "  \"weeks\": " << config.weeks << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"budget_fraction_of_resident_peak\": 0.25,\n"
         << "  \"identical_bundles\": true,\n"
         << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const ScalePoint& p = points[i];
      json << "    {\"scale\": " << p.scale
           << ", \"rows_total\": " << p.rows_total
           << ", \"max_week_rows\": " << p.max_week_rows
           << ", \"resident_measured\": "
           << (p.resident_measured ? "true" : "false");
      if (p.resident_measured) {
        json << ", \"resident_seconds\": " << p.resident.seconds
             << ", \"resident_rows_per_s\": "
             << p.rows_total / std::max(1e-9, p.resident.seconds);
      }
      json << ", \"resident_peak_rss_kb\": " << p.resident.peak_kb
           << ", \"memory_budget_bytes\": " << p.budget
           << ", \"streaming_seconds\": " << p.streaming.seconds
           << ", \"streaming_rows_per_s\": "
           << p.rows_total / std::max(1e-9, p.streaming.seconds)
           << ", \"streaming_peak_rss_kb\": " << p.streaming.peak_kb << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    if (!json) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      rc = 1;
    } else {
      std::printf("wrote %s\n", json_path.c_str());
    }
  }

  std::error_code ec;
  fs::remove_all(work, ec);
  return rc;
}
