// Ablation: the .scol columnar format's per-encoding contribution —
// mirrors the paper's PSV -> Parquet conversion claim (119 GB -> 28 GB,
// ~4x) by toggling each encoding knob and measuring footprint and
// decode throughput on a real generated snapshot.
#include <chrono>
#include <sstream>

#include "bench_common.h"
#include "snapshot/psv.h"
#include "snapshot/scol.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv, /*default_scale=*/2e-4);
  env.config.weeks = 12;  // one snapshot is enough; grab a mid-study week
  env.generator = std::make_unique<FacilityGenerator>(env.config);
  env.print_header("Ablation — .scol columnar encodings",
                   "paper: PSV->Parquet shrank 119 GB/day to 28 GB (~4.3x) "
                   "and sped up every scan");

  // Take the last emitted snapshot.
  SnapshotTable table;
  env.generator->visit([&](std::size_t week, const Snapshot& snap) {
    if (week + 1 == env.generator->count()) {
      table.reserve(snap.table.size());
      for (std::size_t i = 0; i < snap.table.size(); ++i) {
        table.add(snap.table.path(i), snap.table.atime(i),
                  snap.table.ctime(i), snap.table.mtime(i), snap.table.uid(i),
                  snap.table.gid(i), snap.table.mode(i), snap.table.inode(i),
                  snap.table.osts(i));
      }
    }
  });

  std::ostringstream psv;
  const std::uint64_t psv_bytes = write_psv(table, psv);
  std::printf("snapshot: %zu rows; PSV size %s bytes\n\n", table.size(),
              format_with_commas(psv_bytes).c_str());

  struct Case {
    const char* name;
    ScolOptions options;
  };
  const Case cases[] = {
      {"all encodings on (default)", {}},
      {"no path front-coding", {.front_code_paths = false}},
      {"no timestamp deltas", {.delta_timestamps = false}},
      {"no id RLE", {.rle_ids = false}},
      {"no inode deltas", {.delta_inodes = false}},
      {"everything off (plain)",
       {.front_code_paths = false, .delta_timestamps = false,
        .rle_ids = false, .delta_inodes = false}},
  };

  AsciiTable t({"configuration", "bytes", "vs PSV", "paths", "timestamps",
                "ids", "inode", "ost", "decode ms"});
  for (const Case& c : cases) {
    const auto image = encode_scol(table, c.options);
    const ScolColumnSizes sizes = scol_column_sizes(table, c.options);

    const auto start = std::chrono::steady_clock::now();
    SnapshotTable decoded;
    std::string error;
    if (!decode_scol(image, &decoded, &error)) {
      std::fprintf(stderr, "decode failed: %s\n", error.c_str());
      return 1;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    t.add_row({c.name, format_with_commas(image.size()),
               format_double(static_cast<double>(psv_bytes) /
                                 static_cast<double>(image.size()),
                             2) + "x",
               format_count(static_cast<double>(sizes.paths)),
               format_count(static_cast<double>(sizes.atime + sizes.ctime +
                                                sizes.mtime)),
               format_count(static_cast<double>(sizes.uid + sizes.gid +
                                                sizes.mode)),
               format_count(static_cast<double>(sizes.inode)),
               format_count(static_cast<double>(sizes.ost)),
               format_double(ms, 1)});
  }
  t.print(std::cout);
  std::cout << "\nThe default configuration should sit in the paper's ~4x "
               "reduction neighbourhood vs PSV.\n";
  return 0;
}
