// Regenerates Table 2: per-domain top-3 file extensions with shares.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Table 2 — file extension popularity per domain",
                   "domain-specific types dominate a few domains: bio pdbqt "
                   "97.6%, nph bb 79.1%, chp xyz 63.4%, bip bz2 54.8%; 12 "
                   "domains have no extension above 10%");

  ExtensionsAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  std::cout << analyzer.render();
  return 0;
}
