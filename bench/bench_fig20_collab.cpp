// Regenerates Fig 20: user-pair collaboration shares per domain.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 20 — collaboration across users",
                   "~0.93M user pairs, ~1% collaborate; cli leads (45.8%), "
                   "then csc (38.5%) and nfi (15.0%); one extreme pair "
                   "shares 6 projects (5 cli + 1 csc)");

  ParticipationAnalyzer participation(*env.resolver);
  CollaborationAnalyzer collaboration(*env.resolver, participation);
  StudyAnalyzer* analyzers[] = {&participation, &collaboration};
  run_study(*env.generator, analyzers);
  std::cout << collaboration.render();
  return 0;
}
