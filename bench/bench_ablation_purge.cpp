// Ablation: purge-window sweep (60 / 90 / 120 / 180 days) — quantifies the
// paper's Observation 8 discussion ("the 90-day window potentially needs
// to be increased") by re-running the facility under each policy and
// measuring file ages, purge losses, and the standing population.
#include "bench_common.h"

#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto base = bench::BenchEnv::from_args(argc, argv, /*default_scale=*/1e-4);
  base.print_header("Ablation — purge window sweep",
                    "paper: median avg file age 138 days > 90-day window; "
                    "files are re-read long after the purge horizon");

  AsciiTable t({"purge window (days)", "median avg age (days)",
                "snapshots above window", "final live files",
                "weekly deleted %"});
  for (const int purge_days : {60, 90, 120, 180}) {
    FacilityConfig config = base.config;
    config.purge_days = purge_days;
    FacilityGenerator generator(config);

    FileAgeAnalyzer ages(purge_days);
    GrowthAnalyzer growth;
    AccessPatternsAnalyzer access;
    StudyAnalyzer* analyzers[] = {&ages, &growth, &access};
    run_study(generator, analyzers);

    t.add_row({std::to_string(purge_days),
               format_double(ages.result().median_of_averages, 0),
               format_percent(ages.result().fraction_above_purge),
               format_with_commas(growth.result().points.back().files),
               format_percent(access.result().avg_deleted)});
  }
  t.print(std::cout);
  std::cout << "\nA tighter window purges still-useful data (higher deleted "
               "share, smaller standing population); a looser one lets ages "
               "grow well past the default 90 days.\n";
  return 0;
}
