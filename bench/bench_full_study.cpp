// Full-study throughput harness: the shared-scan parallel runner versus
// the pre-refactor serial loop (per-analyzer observe() + deep-copy
// retention), on one materialized synthetic series.
//
// Measures weeks/sec and per-week ms at 1, half, and all hardware threads,
// self-checks that every thread setting renders byte-identical results,
// and emits BENCH_full_study.json (alongside the human-readable table) so
// the perf trajectory is machine-diffable across PRs.
//
// Flags: --scale / --weeks / --seed / --no-gaps (bench_common),
// --reps=<n> best-of-n timing (default 2), --out=<path> for the JSON.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.h"
#include "engine/diff.h"
#include "snapshot/series.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace spider;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Every user-visible string the study produces; two runs agree iff this
/// is byte-identical.
std::string render_bundle(const FullStudy& study) {
  std::string out;
  out += study.render_table1();
  out += study.render_data_quality();
  out += study.user_profile.render();
  out += study.participation.render();
  out += study.census.render();
  out += study.extensions.render();
  out += study.languages.render();
  out += study.access_patterns.render();
  out += study.striping.render();
  out += study.growth.render();
  out += study.file_age.render();
  out += study.burstiness.render();
  out += study.network.render();
  out += study.collaboration.render();
  return out;
}

/// The pre-refactor runner, reconstructed as a baseline: one serial
/// observe() call per analyzer per week, the shared diff, and — the cost
/// the refactor removed — a full deep copy of every snapshot to retain it
/// as next week's `prev`.
double run_serial_baseline(SnapshotSource& series, const Resolver& resolver,
                           std::size_t burst_min_files, std::string* bundle) {
  FullStudy study(resolver, burst_min_files);
  StudyAnalyzer* analyzers[] = {
      &study.user_profile, &study.participation, &study.census,
      &study.extensions,   &study.languages,     &study.access_patterns,
      &study.striping,     &study.growth,        &study.file_age,
      &study.burstiness,   &study.network,       &study.collaboration,
  };
  series.set_columns(kColMaskAll);  // the old runner decoded everything

  const auto start = std::chrono::steady_clock::now();
  Snapshot prev;
  bool have_prev = false;
  std::size_t last_week = 0;
  series.visit([&](std::size_t week, const Snapshot& snap) {
    WeekObservation obs;
    obs.week = week;
    obs.snap = &snap;
    obs.prev = have_prev ? &prev : nullptr;
    obs.gap_before = have_prev && week != last_week + 1;
    DiffResult diff;
    if (have_prev && !obs.gap_before) {
      diff = diff_snapshots(prev.table, snap.table);
      obs.diff = &diff;
    }
    for (StudyAnalyzer* analyzer : analyzers) analyzer->observe(obs);
    prev.taken_at = snap.taken_at;
    prev.table = snap.table.clone();  // the old copy_snapshot
    have_prev = true;
    last_week = week;
  });
  for (StudyAnalyzer* analyzer : analyzers) analyzer->finish();
  const double elapsed = seconds_since(start);
  if (bundle) *bundle = render_bundle(study);
  return elapsed;
}

double run_parallel(SnapshotSource& series, const Resolver& resolver,
                    std::size_t burst_min_files, ThreadPool& pool,
                    std::string* bundle) {
  FullStudy study(resolver, burst_min_files);
  StudyOptions options;
  options.pool = &pool;
  const auto start = std::chrono::steady_clock::now();
  study.run(series, options);
  const double elapsed = seconds_since(start);
  if (bundle) *bundle = render_bundle(study);
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  auto env = bench::BenchEnv::from_args(argc, argv, /*default_scale=*/2e-4);
  env.config.weeks = static_cast<std::size_t>(args.get_int("weeks", 24));
  env.generator = std::make_unique<FacilityGenerator>(env.config);
  env.resolver = std::make_unique<Resolver>(env.generator->plan());
  env.print_header("Full-study throughput — shared-scan parallel runner",
                   "one parallel pass feeds all twelve analyzers");

  // Materialize the series so timings measure the study pass, not the
  // simulation.
  SnapshotSeries series;
  std::size_t total_rows = 0;
  env.generator->visit_move([&](std::size_t, Snapshot&& snap) {
    total_rows += snap.table.size();
    series.add(std::move(snap));
  });
  const std::size_t weeks = series.count();
  const double dweeks = static_cast<double>(weeks);
  std::printf("series: %zu weeks, %s rows total\n\n", weeks,
              format_with_commas(total_rows).c_str());

  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 2)));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned half = std::max(1u, hw / 2);
  const std::size_t burst_min = env.burst_min_files();

  auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) best = std::min(best, fn());
    return best;
  };

  std::string baseline_bundle;
  const double baseline_s = best_of([&] {
    return run_serial_baseline(series, *env.resolver, burst_min,
                               &baseline_bundle);
  });

  struct Setting {
    unsigned threads;
    double seconds;
  };
  std::vector<Setting> settings;
  std::string reference_bundle;
  for (const unsigned threads : {1u, half, hw}) {
    ThreadPool pool(threads);
    std::string bundle;
    const double s = best_of([&] {
      return run_parallel(series, *env.resolver, burst_min, pool, &bundle);
    });
    if (reference_bundle.empty()) {
      reference_bundle = bundle;
    } else if (bundle != reference_bundle) {
      std::fprintf(stderr,
                   "FAIL: results at %u threads differ from the 1-thread "
                   "reference\n",
                   threads);
      return 1;
    }
    settings.push_back(Setting{threads, s});
  }
  const bool baseline_parity = baseline_bundle == reference_bundle;
  if (!baseline_parity) {
    // The serial loop folds floating point row-by-row, the kernels fold
    // chunk-by-chunk; renders round, so a mismatch is worth a look but is
    // not by itself a correctness failure (the hard guarantee is identical
    // results across thread counts, checked above).
    std::fprintf(stderr,
                 "note: baseline render differs from the parallel runner "
                 "(chunked FP folds)\n");
  }

  AsciiTable out({"configuration", "per-week ms", "weeks/s", "speedup"});
  const auto row = [&](const std::string& name, double s) {
    out.add_row({name, format_double(1000.0 * s / dweeks, 1),
                 format_double(dweeks / s, 2),
                 format_double(baseline_s / s, 2) + "x"});
  };
  row("serial baseline (observe + copy)", baseline_s);
  for (const Setting& s : settings) {
    row("parallel runner, " + std::to_string(s.threads) + " thread(s)",
        s.seconds);
  }
  out.print(std::cout);
  std::printf("\nresults byte-identical across {1, %u, %u} threads; "
              "baseline parity: %s\n",
              half, hw, baseline_parity ? "exact" : "rounded");

  const std::string json_path = args.get("out", "BENCH_full_study.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"weeks\": " << weeks << ",\n"
       << "  \"rows_total\": " << total_rows << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"serial_baseline_week_ms\": " << 1000.0 * baseline_s / dweeks
       << ",\n"
       << "  \"serial_baseline_weeks_per_s\": " << dweeks / baseline_s
       << ",\n"
       << "  \"baseline_parity\": " << (baseline_parity ? "true" : "false")
       << ",\n"
       << "  \"parallel\": [\n";
  for (std::size_t i = 0; i < settings.size(); ++i) {
    const Setting& s = settings[i];
    json << "    {\"threads\": " << s.threads
         << ", \"week_ms\": " << 1000.0 * s.seconds / dweeks
         << ", \"weeks_per_s\": " << dweeks / s.seconds
         << ", \"speedup_vs_serial\": " << baseline_s / s.seconds << "}"
         << (i + 1 < settings.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
