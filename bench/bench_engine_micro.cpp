// Engine microbenchmarks (google-benchmark): the analysis-framework side
// of the paper — format codecs, the diff join, aggregation, distinct
// counting, and the graph kernels. Mirrors the paper's claim that the
// columnar conversion makes the pipeline "timely".
#include <benchmark/benchmark.h>

#include <sstream>

#include "engine/agg.h"
#include "engine/diff.h"
#include "groupby_strategies.h"
#include "engine/hash_index.h"
#include "engine/u64set.h"
#include "graph/components.h"
#include "graph/metrics.h"
#include "snapshot/psv.h"
#include "snapshot/scol.h"
#include "synth/plan.h"
#include "util/parallel.h"
#include "util/prng.h"

namespace spider {
namespace {

/// Deterministic synthetic snapshot shared by the benchmarks.
const SnapshotTable& fixture_table() {
  static const SnapshotTable table = [] {
    Rng rng(99);
    SnapshotTable t;
    std::int64_t mtime = 1'420'416'000;
    for (std::size_t i = 0; i < 200'000; ++i) {
      RawRecord rec;
      const std::size_t proj = i / 500;
      rec.path = "/lustre/atlas2/proj" + std::to_string(proj) + "/u" +
                 std::to_string(proj % 9) + "/run" + std::to_string(i % 40) +
                 "/step." + std::to_string(i);
      mtime += static_cast<std::int64_t>(rng.uniform_u64(300));
      rec.mtime = rec.ctime = mtime;
      rec.atime = mtime + static_cast<std::int64_t>(rng.uniform_u64(86'400));
      rec.uid = static_cast<std::uint32_t>(10'000 + proj % 700);
      rec.gid = static_cast<std::uint32_t>(3'000 + proj);
      rec.mode = (i % 25 == 0) ? (kModeDirectory | 0775)
                               : (kModeRegular | 0664);
      rec.inode = 1'000'000'000ULL + i;
      if (!rec.is_dir()) {
        for (int s = 0; s < 4; ++s) {
          rec.osts.push_back(
              static_cast<std::uint32_t>(rng.uniform_u64(2016)));
        }
      }
      t.add(rec);
    }
    return t;
  }();
  return table;
}

/// A mutated copy of the fixture, for the diff benchmarks.
const SnapshotTable& mutated_table() {
  static const SnapshotTable table = [] {
    const SnapshotTable& base = fixture_table();
    Rng rng(100);
    SnapshotTable t;
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (rng.chance(0.10)) continue;  // deleted
      RawRecord rec = base.row(i);
      const double r = rng.uniform();
      if (r < 0.05) {
        rec.atime += 3600;  // readonly
      } else if (r < 0.15) {
        rec.atime = rec.ctime = rec.mtime = rec.mtime + 7200;  // updated
      }
      t.add(rec);
    }
    for (std::size_t i = 0; i < 20'000; ++i) {  // new files
      RawRecord rec;
      rec.path = "/lustre/atlas2/projX/u0/fresh/f" + std::to_string(i);
      rec.atime = rec.ctime = rec.mtime = 1'425'000'000 + static_cast<std::int64_t>(i);
      rec.uid = 10'001;
      rec.gid = 3'001;
      rec.osts = {1, 2, 3, 4};
      t.add(rec);
    }
    return t;
  }();
  return table;
}

void BM_PsvFormatRecord(benchmark::State& state) {
  const RawRecord rec = fixture_table().row(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psv_format_record(rec));
  }
}
BENCHMARK(BM_PsvFormatRecord);

void BM_PsvParseRecord(benchmark::State& state) {
  const std::string line = psv_format_record(fixture_table().row(1));
  RawRecord rec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(psv_parse_record(line, &rec));
  }
}
BENCHMARK(BM_PsvParseRecord);

void BM_PsvWriteTable(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    std::ostringstream os;
    benchmark::DoNotOptimize(write_psv(t, os));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_PsvWriteTable);

void BM_ScolEncode(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_scol(t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_ScolEncode);

void BM_ScolDecode(benchmark::State& state) {
  const auto image = encode_scol(fixture_table());
  for (auto _ : state) {
    SnapshotTable t;
    benchmark::DoNotOptimize(decode_scol(image, &t));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fixture_table().size()));
}
BENCHMARK(BM_ScolDecode);

void BM_PathIndexBuild(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    PathIndex index(t, /*files_only=*/true);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_PathIndexBuild);

void BM_DiffHashJoin(benchmark::State& state) {
  const SnapshotTable& prev = fixture_table();
  const SnapshotTable& cur = mutated_table();
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff_snapshots(prev, cur));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(prev.size() + cur.size()));
}
BENCHMARK(BM_DiffHashJoin);

void BM_DiffSortMerge(benchmark::State& state) {
  const SnapshotTable& prev = fixture_table();
  const SnapshotTable& cur = mutated_table();
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff_snapshots_sortmerge(prev, cur));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(prev.size() + cur.size()));
}
BENCHMARK(BM_DiffSortMerge);

void BM_PartitionedIndexBuild(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    PartitionedPathIndex index(t);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_PartitionedIndexBuild);

void BM_DiffPartitioned(benchmark::State& state) {
  const SnapshotTable& prev = fixture_table();
  const SnapshotTable& cur = mutated_table();
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff_snapshots_partitioned(prev, cur));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(prev.size() + cur.size()));
}
BENCHMARK(BM_DiffPartitioned);

void BM_GroupByExtension(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    auto counts = parallel_count<std::string>(
        t.size(), [&t](std::size_t row, auto emit) {
          if (!t.is_dir(row)) {
            emit(std::string(path_extension(t.path(row))), 1);
          }
        });
    benchmark::DoNotOptimize(counts.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_GroupByExtension);

// The seed's string group-by, vendored in groupby_strategies.h — the
// frozen baseline the flat/dictionary rows are measured against.
void BM_GroupByExtensionLegacy(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    const auto counts = bench::legacy_group_by_extension(t, nullptr);
    benchmark::DoNotOptimize(counts.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_GroupByExtensionLegacy);

void BM_GroupByExtensionDict(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    const auto counts = bench::dict_group_by_extension(t, nullptr);
    benchmark::DoNotOptimize(counts.dict.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_GroupByExtensionDict);

void BM_GroupByU64Legacy(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    const auto counts = bench::legacy_group_by_gid(t, nullptr);
    benchmark::DoNotOptimize(counts.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_GroupByU64Legacy);

void BM_GroupByU64Flat(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    const auto counts = bench::flat_group_by_gid(t, nullptr);
    benchmark::DoNotOptimize(counts.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_GroupByU64Flat);

void BM_DistinctInsert(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  for (auto _ : state) {
    U64Set set(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) set.insert(t.path_hash(i));
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_DistinctInsert);

void BM_HashPath(benchmark::State& state) {
  const std::string path(static_cast<std::size_t>(state.range(0)), 'p');
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_bytes(path));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashPath)->Arg(16)->Arg(64)->Arg(256);

// --- network kernels on the full-scale facility plan ---------------------

const FacilityPlan& fixture_plan() {
  static const FacilityPlan plan = plan_facility(20150105);
  return plan;
}

void BM_PlanFacility(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_facility(42));
  }
}
BENCHMARK(BM_PlanFacility);

void BM_ConnectedComponents(benchmark::State& state) {
  const FacilityPlan& plan = fixture_plan();
  const BipartiteGraph graph(
      static_cast<std::uint32_t>(plan.users.size()),
      static_cast<std::uint32_t>(plan.projects.size()), plan.memberships);
  for (auto _ : state) {
    benchmark::DoNotOptimize(connected_components(graph.graph()));
  }
}
BENCHMARK(BM_ConnectedComponents);

void BM_GiantDiameterExact(benchmark::State& state) {
  const FacilityPlan& plan = fixture_plan();
  const BipartiteGraph graph(
      static_cast<std::uint32_t>(plan.users.size()),
      static_cast<std::uint32_t>(plan.projects.size()), plan.memberships);
  const ComponentInfo info = connected_components(graph.graph());
  const auto giant = info.members(info.largest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(component_diameter(graph.graph(), giant));
  }
}
BENCHMARK(BM_GiantDiameterExact);

void BM_DoubleSweepBound(benchmark::State& state) {
  const FacilityPlan& plan = fixture_plan();
  const BipartiteGraph graph(
      static_cast<std::uint32_t>(plan.users.size()),
      static_cast<std::uint32_t>(plan.projects.size()), plan.memberships);
  for (auto _ : state) {
    benchmark::DoNotOptimize(double_sweep_lower_bound(graph.graph(), 0));
  }
}
BENCHMARK(BM_DoubleSweepBound);

void BM_CollaborationPairs(benchmark::State& state) {
  const FacilityPlan& plan = fixture_plan();
  std::vector<std::vector<std::uint32_t>> members;
  std::vector<std::uint32_t> domains;
  for (const ProjectInfo& project : plan.projects) {
    members.push_back(project.members);
    domains.push_back(static_cast<std::uint32_t>(project.domain));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(collaboration_stats(
        static_cast<std::uint32_t>(plan.users.size()), members, domains,
        domain_count()));
  }
}
BENCHMARK(BM_CollaborationPairs);

// --- parallel substrate ----------------------------------------------------

void BM_ParallelReduceSum(benchmark::State& state) {
  const std::size_t n = 1'000'000;
  for (auto _ : state) {
    const std::uint64_t sum = parallel_reduce<std::uint64_t>(
        n, 0, [](std::uint64_t& acc, std::size_t i) { acc += i; },
        [](std::uint64_t& into, std::uint64_t& from) { into += from; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelReduceSum);

void BM_ScanWithPoolSize(benchmark::State& state) {
  const SnapshotTable& t = fixture_table();
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::atomic<std::uint64_t> dirs{0};
    parallel_for(
        t.size(),
        [&](std::size_t i) {
          if (t.is_dir(i)) dirs.fetch_add(1, std::memory_order_relaxed);
        },
        &pool);
    benchmark::DoNotOptimize(dirs.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_ScanWithPoolSize)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace spider

BENCHMARK_MAIN();
