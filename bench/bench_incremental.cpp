// Incremental-vs-scan harness: on fixed-churn synthetic series, compare
// the full-scan pipeline (every analyzer re-reads every row every week)
// against the incremental engine (delta-capable analyzers consume the
// week's diff; only the scan-only analyzers walk the snapshot). The point
// of DESIGN.md §13 is that week N+1 should cost proportional to churn,
// not snapshot size — this harness traces the churn-vs-cost curve and
// self-checks that both modes render byte-identical bundles at every
// point.
//
// Emits BENCH_incremental.json (the curve plus the 5%-churn headline
// ratio) so the speedup is machine-diffable across PRs.
//
// Flags: --scale / --weeks / --seed (bench_common), --churn=<frac> to
// pin a single churn level instead of the default {1%, 5%, 20%, 50%}
// sweep, --reps=<n> best-of-n timing (default 3), --out=<path>.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "snapshot/series.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace spider;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string render_bundle(const FullStudy& study) {
  std::string out;
  out += study.render_table1();
  out += study.render_data_quality();
  out += study.user_profile.render();
  out += study.participation.render();
  out += study.census.render();
  out += study.extensions.render();
  out += study.languages.render();
  out += study.access_patterns.render();
  out += study.striping.render();
  out += study.growth.render();
  out += study.file_age.render();
  out += study.burstiness.render();
  out += study.network.render();
  out += study.collaboration.render();
  return out;
}

double run_study(SnapshotSource& series, const Resolver& resolver,
                 std::size_t burst_min_files, ThreadPool& pool,
                 bool incremental, std::string* bundle) {
  FullStudy study(resolver, burst_min_files);
  StudyOptions options;
  options.pool = &pool;
  options.incremental = incremental;
  const auto start = std::chrono::steady_clock::now();
  study.run(series, options);
  const double elapsed = seconds_since(start);
  if (bundle) *bundle = render_bundle(study);
  return elapsed;
}

struct CurvePoint {
  double churn = 0;
  std::size_t rows_total = 0;
  double scan_week_ms = 0;
  double incremental_week_ms = 0;
  double ratio = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  auto env = bench::BenchEnv::from_args(argc, argv, /*default_scale=*/2e-4);
  env.config.weeks = static_cast<std::size_t>(args.get_int("weeks", 24));
  env.config.maintenance_gaps = false;

  std::vector<double> churns = {0.01, 0.05, 0.20, 0.50};
  const double pinned = args.get_double("churn", -1.0);
  if (pinned >= 0) churns = {pinned};

  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 3)));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(hw);
  auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) best = std::min(best, fn());
    return best;
  };

  bool printed_header = false;
  std::vector<CurvePoint> curve;
  for (const double churn : churns) {
    env.config.churn_create = churn;
    env.config.churn_update = churn;
    env.config.churn_delete = churn;
    env.generator = std::make_unique<FacilityGenerator>(env.config);
    env.resolver = std::make_unique<Resolver>(env.generator->plan());
    if (!printed_header) {
      env.print_header(
          "Incremental study — delta-driven analyzers vs full scan",
          "week N+1 cost proportional to churn, not snapshot size");
      printed_header = true;
    }

    // Materialize the series so timings measure the study pass, not the
    // simulation.
    SnapshotSeries series;
    std::size_t total_rows = 0;
    env.generator->visit_move([&](std::size_t, Snapshot&& snap) {
      total_rows += snap.table.size();
      series.add(std::move(snap));
    });
    const double dweeks = static_cast<double>(series.count());
    const std::size_t burst_min = env.burst_min_files();

    std::string scan_bundle;
    const double scan_s = best_of([&] {
      return run_study(series, *env.resolver, burst_min, pool,
                       /*incremental=*/false, &scan_bundle);
    });
    std::string inc_bundle;
    const double inc_s = best_of([&] {
      return run_study(series, *env.resolver, burst_min, pool,
                       /*incremental=*/true, &inc_bundle);
    });
    if (scan_bundle != inc_bundle) {
      std::fprintf(stderr,
                   "FAIL: incremental render differs from the full-scan "
                   "pipeline at churn=%g\n",
                   churn);
      return 1;
    }
    CurvePoint point;
    point.churn = churn;
    point.rows_total = total_rows;
    point.scan_week_ms = 1000.0 * scan_s / dweeks;
    point.incremental_week_ms = 1000.0 * inc_s / dweeks;
    point.ratio = inc_s / scan_s;
    curve.push_back(point);
    std::printf("churn %4.1f%%: %s rows, scan %.1f ms/week, incremental "
                "%.1f ms/week (%.0f%%)\n",
                100.0 * churn, format_with_commas(total_rows).c_str(),
                point.scan_week_ms, point.incremental_week_ms,
                100.0 * point.ratio);
  }

  AsciiTable out({"churn", "scan ms/week", "incremental ms/week", "vs scan"});
  for (const CurvePoint& p : curve) {
    out.add_row({format_double(100.0 * p.churn, 1) + "%",
                 format_double(p.scan_week_ms, 1),
                 format_double(p.incremental_week_ms, 1),
                 format_double(p.ratio, 2) + "x"});
  }
  std::printf("\n");
  out.print(std::cout);
  std::printf("\nbundles byte-identical at every churn level (%u threads, "
              "%zu weeks)\n",
              hw, static_cast<std::size_t>(env.config.weeks));

  const std::string json_path = args.get("out", "BENCH_incremental.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"scale\": " << env.config.scale << ",\n"
       << "  \"weeks\": " << env.config.weeks << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"threads\": " << hw << ",\n"
       << "  \"identical_bundles\": true,\n"
       << "  \"curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const CurvePoint& p = curve[i];
    json << "    {\"churn\": " << p.churn
         << ", \"rows_total\": " << p.rows_total
         << ", \"scan_week_ms\": " << p.scan_week_ms
         << ", \"incremental_week_ms\": " << p.incremental_week_ms
         << ", \"incremental_over_scan\": " << p.ratio << "}"
         << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
