// Regenerates Fig 10: weekly shares of the 20 most popular extensions,
// including the .bb (Jul 2015) and .xyz (Feb 2016) campaign spikes.
#include "bench_common.h"

#include "util/table.h"
#include "util/timeutil.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Fig 10 — top-20 extension share trend",
                   "'other' ~35% and 'no extension' ~16% on average; .bb "
                   "spike around July 2015; .xyz spike around February 2016");

  ExtensionsAnalyzer analyzer(*env.resolver);
  run_study(*env.generator, analyzer);
  const ExtensionsResult& r = analyzer.result();

  std::cout << "global top-20 extensions by unique files:\n";
  AsciiTable top({"rank", "ext", "unique files"});
  for (std::size_t k = 0; k < r.global_top.size(); ++k) {
    top.add_row({std::to_string(k + 1), r.global_top[k].first,
                 format_with_commas(r.global_top[k].second)});
  }
  top.print(std::cout);

  // Track the campaign extensions over time.
  int bb = -1, xyz = -1;
  for (std::size_t k = 0; k < r.global_top.size(); ++k) {
    if (r.global_top[k].first == "bb") bb = static_cast<int>(k);
    if (r.global_top[k].first == "xyz") xyz = static_cast<int>(k);
  }
  std::cout << "\nweekly shares (watch .bb rise mid-2015, .xyz early 2016):\n";
  AsciiTable trend({"snapshot", "none", "other", ".bb", ".xyz"});
  const std::size_t step =
      std::max<std::size_t>(1, r.snapshot_dates.size() / 18);
  for (std::size_t w = 0; w < r.snapshot_dates.size(); w += step) {
    trend.add_row(
        {date_iso(r.snapshot_dates[w]), format_percent(r.share_none[w]),
         format_percent(r.share_other[w]),
         bb >= 0 ? format_percent(r.share_top[w][static_cast<std::size_t>(bb)])
                 : "-",
         xyz >= 0
             ? format_percent(r.share_top[w][static_cast<std::size_t>(xyz)])
             : "-"});
  }
  trend.print(std::cout);
  return 0;
}
