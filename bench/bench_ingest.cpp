// Ingest throughput harness: the PSV -> table and .scol <-> table hot
// paths, single-threaded versus pooled, on one generated snapshot.
//
// The paper's pipeline hinged on the PSV -> Parquet conversion "speeding up
// every scan"; this harness tracks the reproduction's equivalent — parallel
// PSV parsing and the row-group .scol v2 codec — from PR 1 onward. Emits
// BENCH_ingest.json (alongside the human-readable table) so the perf
// trajectory is machine-diffable across PRs.
//
// Flags: --scale / --weeks / --seed (bench_common), --threads=<n> for the
// wide pool (default: hardware concurrency), --out=<path> for the JSON.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.h"
#include "snapshot/psv.h"
#include "snapshot/scol.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using spider::SnapshotTable;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-three wall time for `fn`, which must be idempotent.
template <typename Fn>
double best_seconds(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

bool tables_identical(const SnapshotTable& a, const SnapshotTable& b) {
  if (a.size() != b.size() || a.file_count() != b.file_count()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.path_hash(i) != b.path_hash(i) || a.inode(i) != b.inode(i) ||
        a.mtime(i) != b.mtime(i) || a.stripe_count(i) != b.stripe_count(i)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spider;
  const CliArgs args(argc, argv);
  auto env = bench::BenchEnv::from_args(argc, argv, /*default_scale=*/1e-3);
  env.config.weeks = 12;  // one snapshot is enough; grab a mid-study week
  env.generator = std::make_unique<FacilityGenerator>(env.config);
  env.print_header("Ingest throughput — PSV parse, .scol encode/decode",
                   "PSV->Parquet conversion sped up every scan");

  SnapshotTable table;
  env.generator->visit([&](std::size_t week, const Snapshot& snap) {
    if (week + 1 == env.generator->count()) {
      table.reserve(snap.table.size());
      for (std::size_t i = 0; i < snap.table.size(); ++i) {
        table.add(snap.table.path(i), snap.table.atime(i),
                  snap.table.ctime(i), snap.table.mtime(i), snap.table.uid(i),
                  snap.table.gid(i), snap.table.mode(i), snap.table.inode(i),
                  snap.table.osts(i));
      }
    }
  });

  ThreadPool one(1);
  const unsigned wide_threads = static_cast<unsigned>(
      args.get_int("threads", std::max(1u, std::thread::hardware_concurrency())));
  ThreadPool wide(wide_threads);

  std::ostringstream psv_stream;
  const std::uint64_t psv_bytes = write_psv(table, psv_stream);
  const std::string psv_text = psv_stream.str();
  const double rows = static_cast<double>(table.size());
  const double psv_mb = static_cast<double>(psv_bytes) / (1024.0 * 1024.0);
  std::printf("snapshot: %zu rows; PSV %s bytes; wide pool: %u threads\n\n",
              table.size(), format_with_commas(psv_bytes).c_str(),
              wide_threads);

  // --- PSV parse -----------------------------------------------------------
  SnapshotTable psv_serial_out;
  const double psv_serial_s = best_seconds([&] {
    SnapshotTable t;
    std::string error;
    if (!read_psv_buffer(psv_text, &t, &error, &one)) {
      std::fprintf(stderr, "psv parse failed: %s\n", error.c_str());
      std::exit(1);
    }
    psv_serial_out = std::move(t);
  });
  SnapshotTable psv_wide_out;
  const double psv_wide_s = best_seconds([&] {
    SnapshotTable t;
    std::string error;
    if (!read_psv_buffer(psv_text, &t, &error, &wide)) {
      std::fprintf(stderr, "psv parse failed: %s\n", error.c_str());
      std::exit(1);
    }
    psv_wide_out = std::move(t);
  });
  if (!tables_identical(psv_serial_out, psv_wide_out) ||
      !tables_identical(psv_serial_out, table)) {
    std::fprintf(stderr, "parallel PSV parse diverged from serial result\n");
    return 1;
  }

  // --- .scol encode / decode ----------------------------------------------
  const ScolOptions options;
  std::vector<std::uint8_t> image;
  const double enc_serial_s =
      best_seconds([&] { image = encode_scol(table, options, &one); });
  std::vector<std::uint8_t> image_wide;
  const double enc_wide_s =
      best_seconds([&] { image_wide = encode_scol(table, options, &wide); });
  if (image != image_wide) {
    std::fprintf(stderr, "parallel encode diverged from serial image\n");
    return 1;
  }

  SnapshotTable dec_serial_out;
  const double dec_serial_s = best_seconds([&] {
    SnapshotTable t;
    std::string error;
    if (!decode_scol(image, &t, &error, &one)) {
      std::fprintf(stderr, "decode failed: %s\n", error.c_str());
      std::exit(1);
    }
    dec_serial_out = std::move(t);
  });
  SnapshotTable dec_wide_out;
  const double dec_wide_s = best_seconds([&] {
    SnapshotTable t;
    std::string error;
    if (!decode_scol(image, &t, &error, &wide)) {
      std::fprintf(stderr, "decode failed: %s\n", error.c_str());
      std::exit(1);
    }
    dec_wide_out = std::move(t);
  });
  if (!tables_identical(dec_serial_out, dec_wide_out) ||
      !tables_identical(dec_serial_out, table)) {
    std::fprintf(stderr, "parallel decode diverged from serial result\n");
    return 1;
  }

  AsciiTable out({"stage", "1 thread", std::to_string(wide_threads) + " threads",
                  "speedup", "unit"});
  const auto row = [&](const char* stage, double serial_s, double wide_s,
                       double quantity, const char* unit) {
    out.add_row({stage, format_count(quantity / serial_s),
                 format_count(quantity / wide_s),
                 format_double(serial_s / wide_s, 2) + "x", unit});
  };
  row("psv parse", psv_serial_s, psv_wide_s, psv_mb, "MB/s");
  row("scol encode", enc_serial_s, enc_wide_s, rows, "rows/s");
  row("scol decode", dec_serial_s, dec_wide_s, rows, "rows/s");
  out.print(std::cout);
  std::printf("\nscol image: %s bytes (%.2fx vs PSV)\n",
              format_with_commas(image.size()).c_str(),
              static_cast<double>(psv_bytes) /
                  static_cast<double>(image.size()));

  const std::string json_path = args.get("out", "BENCH_ingest.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"rows\": " << table.size() << ",\n"
       << "  \"psv_bytes\": " << psv_bytes << ",\n"
       << "  \"scol_bytes\": " << image.size() << ",\n"
       << "  \"threads_wide\": " << wide_threads << ",\n"
       << "  \"psv_parse_mb_per_s_1t\": " << psv_mb / psv_serial_s << ",\n"
       << "  \"psv_parse_mb_per_s_nt\": " << psv_mb / psv_wide_s << ",\n"
       << "  \"psv_parse_speedup\": " << psv_serial_s / psv_wide_s << ",\n"
       << "  \"scol_encode_rows_per_s_1t\": " << rows / enc_serial_s << ",\n"
       << "  \"scol_encode_rows_per_s_nt\": " << rows / enc_wide_s << ",\n"
       << "  \"scol_encode_speedup\": " << enc_serial_s / enc_wide_s << ",\n"
       << "  \"scol_decode_rows_per_s_1t\": " << rows / dec_serial_s << ",\n"
       << "  \"scol_decode_rows_per_s_nt\": " << rows / dec_wide_s << ",\n"
       << "  \"scol_decode_speedup\": " << dec_serial_s / dec_wide_s << "\n"
       << "}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
