// Regenerates the paper's Table 1: the per-domain summary across all five
// analysis dimensions, measured from the synthetic snapshot series.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace spider;
  auto env = bench::BenchEnv::from_args(argc, argv);
  env.print_header("Table 1 — per-domain summary",
                   "35 domains x {entries, depth, extensions, languages, "
                   "OST, burstiness, network, collaboration}");

  FullStudy study(*env.resolver, env.burst_min_files());
  study.run(*env.generator);
  std::cout << study.render_table1() << "\n";
  std::cout << "Reference: compare each column against Table 1 in the "
               "paper; entry counts scale by "
            << env.config.scale << " of Spider II.\n";
  return 0;
}
