#include "snapshot/psv.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/hash.h"
#include "util/io.h"
#include "util/parallel.h"

namespace spider {

namespace {

/// Skipped lines kept verbatim in a report; the tally stays exact beyond
/// this, the sample just stops growing.
constexpr std::size_t kMaxBadLineSample = 32;

/// Synthesizes the per-stripe hexadecimal object id LustreDU records; the
/// value itself is opaque to every analysis, but keeping the field shape
/// exercises the same parsing cost profile as the real collector output.
std::uint32_t object_id(std::uint64_t inode, std::uint32_t ost) {
  return static_cast<std::uint32_t>(
      hash_combine(inode, ost) & 0x0fff'ffffULL);
}

bool parse_u64(std::string_view s, int base, std::uint64_t* out) {
  if (s.empty()) return false;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), *out, base);
  return res.ec == std::errc() && res.ptr == s.data() + s.size();
}

bool parse_i64(std::string_view s, std::int64_t* out) {
  if (s.empty()) return false;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), *out, 10);
  return res.ec == std::errc() && res.ptr == s.data() + s.size();
}

bool fail(std::string* error, std::string_view reason) {
  if (error) *error = std::string(reason);
  return false;
}

void record_bad_line(PsvReadReport* report, std::size_t line,
                     const std::string& reason) {
  if (!report) return;
  ++report->by_reason[reason];
  if (report->bad_lines.size() < kMaxBadLineSample) {
    report->bad_lines.push_back(PsvBadLine{line, reason});
  }
}

Status over_budget_status(std::size_t budget, std::size_t bad,
                          std::size_t first_line,
                          const std::string& first_reason) {
  const std::string first =
      "line " + std::to_string(first_line) + ": " + first_reason;
  if (budget == 0) return Status::corruption(first);
  return Status::resource_exhausted(
      std::to_string(bad) + " malformed lines exceed max_bad_lines=" +
      std::to_string(budget) + "; first: " + first);
}

}  // namespace

std::string PsvReadReport::summary() const {
  std::string out = "ingested " + std::to_string(rows_ingested) + " rows";
  if (clean()) return out;
  out += "; skipped " + std::to_string(lines_skipped) + "/" +
         std::to_string(lines_total) + " lines (";
  bool first = true;
  for (const auto& [reason, count] : by_reason) {
    if (!first) out += ", ";
    first = false;
    out += reason + ": " + std::to_string(count);
  }
  out += ")";
  return out;
}

std::string psv_format_record(const RawRecord& rec) {
  std::string line;
  line.reserve(rec.path.size() + 96 + rec.osts.size() * 14);
  line += rec.path;
  // Worst case: 3x 20-digit timestamps + uid/gid/mode/inode + pipes < 128.
  char buf[128];
  std::snprintf(buf, sizeof(buf), "|%lld|%lld|%lld|%u|%u|%o|%llu|",
                static_cast<long long>(rec.atime),
                static_cast<long long>(rec.ctime),
                static_cast<long long>(rec.mtime), rec.uid, rec.gid, rec.mode,
                static_cast<unsigned long long>(rec.inode));
  line += buf;
  for (std::size_t i = 0; i < rec.osts.size(); ++i) {
    if (i) line += ',';
    std::snprintf(buf, sizeof(buf), "%u:%x", rec.osts[i],
                  object_id(rec.inode, rec.osts[i]));
    line += buf;
  }
  return line;
}

bool psv_parse_record(std::string_view line, RawRecord* rec,
                      std::string* error) {
  // Split into the 9 pipe-separated fields. Paths on Spider II do not
  // contain '|'; LustreDU relies on the same invariant.
  std::string_view fields[9];
  std::size_t field = 0;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '|') {
      if (field >= 9) return fail(error, "too many fields");
      fields[field++] = line.substr(begin, i - begin);
      begin = i + 1;
    }
  }
  if (field != 9) return fail(error, "expected 9 fields");

  rec->path = std::string(fields[0]);
  if (rec->path.empty() || rec->path[0] != '/') {
    return fail(error, "path must be absolute");
  }
  if (!parse_i64(fields[1], &rec->atime)) return fail(error, "bad atime");
  if (!parse_i64(fields[2], &rec->ctime)) return fail(error, "bad ctime");
  if (!parse_i64(fields[3], &rec->mtime)) return fail(error, "bad mtime");

  std::uint64_t v = 0;
  if (!parse_u64(fields[4], 10, &v)) return fail(error, "bad uid");
  rec->uid = static_cast<std::uint32_t>(v);
  if (!parse_u64(fields[5], 10, &v)) return fail(error, "bad gid");
  rec->gid = static_cast<std::uint32_t>(v);
  if (!parse_u64(fields[6], 8, &v)) return fail(error, "bad mode");
  rec->mode = static_cast<std::uint32_t>(v);
  if (!parse_u64(fields[7], 10, &v)) return fail(error, "bad inode");
  rec->inode = v;

  rec->osts.clear();
  const std::string_view osts = fields[8];
  if (!osts.empty()) {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= osts.size(); ++i) {
      if (i == osts.size() || osts[i] == ',') {
        std::string_view entry = osts.substr(start, i - start);
        const std::size_t colon = entry.find(':');
        if (colon != std::string_view::npos) entry = entry.substr(0, colon);
        std::uint64_t ost = 0;
        if (!parse_u64(entry, 10, &ost)) return fail(error, "bad ost entry");
        rec->osts.push_back(static_cast<std::uint32_t>(ost));
        start = i + 1;
      }
    }
  }
  return true;
}

std::uint64_t write_psv(const SnapshotTable& table, std::ostream& os) {
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::string line = psv_format_record(table.row(i));
    os << line << '\n';
    bytes += line.size() + 1;
  }
  return bytes;
}

Status read_psv(std::istream& is, SnapshotTable* table,
                const PsvOptions& options, PsvReadReport* report) {
  if (report) *report = PsvReadReport{};
  std::string line;
  std::size_t line_no = 0;
  std::size_t bad = 0;
  std::size_t first_bad_line = 0;
  std::string first_bad_reason;
  RawRecord rec;
  while (std::getline(is, line)) {
    ++line_no;
    if (report) report->lines_total = line_no;
    if (line.empty()) continue;
    std::string why;
    if (!psv_parse_record(line, &rec, &why)) {
      ++bad;
      if (bad == 1) {
        first_bad_line = line_no;
        first_bad_reason = why;
      }
      if (bad > options.max_bad_lines) {
        return over_budget_status(options.max_bad_lines, bad, first_bad_line,
                                  first_bad_reason);
      }
      record_bad_line(report, line_no, why);
      if (report) ++report->lines_skipped;
      continue;
    }
    table->add(rec);
    if (report) ++report->rows_ingested;
  }
  return Status();
}

Status read_psv_buffer(std::string_view text, SnapshotTable* table,
                       const PsvOptions& options, PsvReadReport* report,
                       ThreadPool* pool) {
  if (report) *report = PsvReadReport{};
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  const std::size_t budget = options.max_bad_lines;

  // Shard boundaries: roughly even byte cuts, each advanced to the next
  // newline so no line straddles two shards. A few shards per worker give
  // the dynamic scheduler room to balance skewed path lengths; small
  // buffers stay in one shard and parse inline.
  constexpr std::size_t kMinShardBytes = 1 << 16;
  const std::size_t want =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   4 * p.size(), text.size() / kMinShardBytes));
  std::vector<std::size_t> starts;
  starts.push_back(0);
  for (std::size_t s = 1; s < want; ++s) {
    std::size_t cut = s * (text.size() / want);
    const std::size_t nl = text.find('\n', cut);
    if (nl == std::string_view::npos) break;
    cut = nl + 1;
    if (cut > starts.back() && cut < text.size()) starts.push_back(cut);
  }
  const std::size_t shards = starts.size();

  struct ShardResult {
    SnapshotTable staged;
    std::size_t lines = 0;  // lines consumed (including empty ones)
    /// Bad lines in shard-local 1-based numbering, in order. A shard stops
    /// parsing once its own bad count exceeds the global budget (the whole
    /// read must fail then, so finishing the shard is wasted work).
    std::vector<PsvBadLine> bad;
    bool gave_up = false;
  };
  std::vector<ShardResult> results(shards);

  parallel_for(
      shards,
      [&](std::size_t s) {
        ShardResult& r = results[s];
        const std::size_t end =
            s + 1 < shards ? starts[s + 1] : text.size();
        std::string_view body = text.substr(starts[s], end - starts[s]);
        RawRecord rec;
        std::string why;
        while (!body.empty()) {
          const std::size_t nl = body.find('\n');
          const std::string_view line =
              nl == std::string_view::npos ? body : body.substr(0, nl);
          body.remove_prefix(nl == std::string_view::npos ? body.size()
                                                          : nl + 1);
          ++r.lines;
          if (line.empty()) continue;
          if (!psv_parse_record(line, &rec, &why)) {
            r.bad.push_back(PsvBadLine{r.lines, why});
            if (r.bad.size() > budget) {
              r.gave_up = true;
              break;
            }
            continue;
          }
          r.staged.add(rec);
        }
      },
      &p, /*grain=*/1);

  // Join: convert shard-local bad-line numbers to global ones, then decide
  // all-or-nothing. Nothing is spliced unless the whole buffer fits the
  // budget, so a failed read leaves `table` untouched.
  std::size_t line_base = 0;
  std::size_t total_bad = 0;
  std::size_t first_bad_line = 0;
  std::string first_bad_reason;
  for (std::size_t s = 0; s < shards; ++s) {
    for (const PsvBadLine& b : results[s].bad) {
      ++total_bad;
      if (total_bad == 1) {
        first_bad_line = line_base + b.line;
        first_bad_reason = b.reason;
      }
    }
    line_base += results[s].lines;
  }
  if (report) report->lines_total = line_base;

  if (total_bad > budget || std::any_of(results.begin(), results.end(),
                                        [](const ShardResult& r) {
                                          return r.gave_up;
                                        })) {
    if (report) *report = PsvReadReport{};
    return over_budget_status(budget, total_bad, first_bad_line,
                              first_bad_reason);
  }

  line_base = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    for (const PsvBadLine& b : results[s].bad) {
      record_bad_line(report, line_base + b.line, b.reason);
      if (report) ++report->lines_skipped;
    }
    line_base += results[s].lines;
  }
  if (report) report->lines_total = line_base;
  for (ShardResult& r : results) {
    if (report) report->rows_ingested += r.staged.size();
    table->append_table(std::move(r.staged));
  }
  return Status();
}

Status write_psv_file(const SnapshotTable& table, const std::string& file,
                      const PsvOptions& /*options*/) {
  std::ostringstream os;
  write_psv(table, os);
  return write_file_atomic(file, std::string_view(os.view()));
}

Status read_psv_file(const std::string& file, SnapshotTable* table,
                     const PsvOptions& options, PsvReadReport* report) {
  std::string text;
  Status s = read_file(file, &text);
  if (!s.ok()) return s;
  return read_psv_buffer(text, table, options, report).with_context(file);
}

bool read_psv(std::istream& is, SnapshotTable* table, std::string* error) {
  const Status s = read_psv(is, table, PsvOptions{});
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

bool read_psv_buffer(std::string_view text, SnapshotTable* table,
                     std::string* error, ThreadPool* pool) {
  const Status s = read_psv_buffer(text, table, PsvOptions{}, nullptr, pool);
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

bool write_psv_file(const SnapshotTable& table, const std::string& file,
                    std::string* error) {
  const Status s = write_psv_file(table, file, PsvOptions{});
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

bool read_psv_file(const std::string& file, SnapshotTable* table,
                   std::string* error) {
  const Status s = read_psv_file(file, table, PsvOptions{});
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

}  // namespace spider
