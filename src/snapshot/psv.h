// PSV (pipe-separated values) snapshot format — the LustreDU on-disk layout
// the paper's pipeline starts from (Figure 2):
//
//   PATH|ATIME|CTIME|MTIME|UID|GID|MODE|INODE|OST:OBJ,OST:OBJ,...
//
// MODE is octal; the OST field lists "index:objid" pairs (we synthesize the
// hexadecimal object ids from the inode, and parsers keep only the index,
// which is all the analyses use). Directories have an empty OST field.
//
// Failure model (see DESIGN.md §9): collector output in the wild contains
// the occasional mangled line (interrupted walks, torn appends, encoding
// accidents). PsvOptions::max_bad_lines gives ingest a salvage budget:
// malformed lines are skipped and tallied per reason in a PsvReadReport,
// and the read only fails once the damage exceeds the budget. The default
// budget of zero preserves strict all-or-nothing ingest.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "snapshot/record.h"
#include "snapshot/table.h"
#include "util/status.h"

namespace spider {

class ThreadPool;

struct PsvOptions {
  /// How many malformed lines a read may skip before it fails with
  /// kResourceExhausted. 0 = strict: the first bad line fails the read.
  std::size_t max_bad_lines = 0;
};

/// One skipped line, as sampled by a salvaging read.
struct PsvBadLine {
  std::size_t line = 0;  // 1-based, global to the input
  std::string reason;    // parse failure ("bad mtime", "expected 9 fields")
};

/// Loss accounting for a PSV read.
struct PsvReadReport {
  std::uint64_t lines_total = 0;    // lines consumed (including empty ones)
  std::uint64_t rows_ingested = 0;  // rows appended to the table
  std::uint64_t lines_skipped = 0;  // malformed lines dropped
  /// Skip tally keyed by parse-failure reason (deterministic order).
  std::map<std::string, std::uint64_t> by_reason;
  /// Sample of skipped lines (capped; enough to locate the damage).
  std::vector<PsvBadLine> bad_lines;

  bool clean() const { return lines_skipped == 0; }
  /// "ingested 9998 rows; skipped 2/10000 lines (bad mtime: 1, ...)".
  std::string summary() const;
};

/// Formats one record as a PSV line (no trailing newline).
std::string psv_format_record(const RawRecord& rec);

/// Parses one PSV line. On failure returns false and, if `error` is
/// non-null, stores a human-readable reason.
bool psv_parse_record(std::string_view line, RawRecord* rec,
                      std::string* error = nullptr);

/// Streams a whole table out as PSV text; returns bytes written.
std::uint64_t write_psv(const SnapshotTable& table, std::ostream& os);

/// Appends all records from a PSV stream into `table`, skipping up to
/// options.max_bad_lines malformed lines (tallied in `report`). Serial and
/// streaming: rows before a fatal line have already been appended when the
/// read fails. Prefer read_psv_buffer when the whole text is in memory —
/// it is parallel and all-or-nothing.
Status read_psv(std::istream& is, SnapshotTable* table,
                const PsvOptions& options, PsvReadReport* report = nullptr);

/// Appends all records from an in-memory PSV buffer into `table`. The
/// buffer is split on newline boundaries into shards that parse
/// concurrently on `pool` (null = the process-global pool) into staging
/// tables, which are spliced in shard order — row order, calibration
/// counts, and path hashes are identical to the serial reader's.
///
/// Malformed lines are skipped and tallied while they fit in
/// options.max_bad_lines; beyond the budget the read fails (strict mode
/// fails with kCorruption naming the earliest bad line, a blown budget
/// with kResourceExhausted) and appends *nothing*.
Status read_psv_buffer(std::string_view text, SnapshotTable* table,
                       const PsvOptions& options,
                       PsvReadReport* report = nullptr,
                       ThreadPool* pool = nullptr);

/// File-based wrappers. Reading slurps the file with retrying IO (util/io.h)
/// and uses the parallel buffer path; writing goes through a temp file +
/// atomic rename, so a crash mid-write never leaves a torn snapshot.
Status write_psv_file(const SnapshotTable& table, const std::string& file,
                      const PsvOptions& options);
Status read_psv_file(const std::string& file, SnapshotTable* table,
                     const PsvOptions& options,
                     PsvReadReport* report = nullptr);

/// Legacy shims (pre-Status convention), strict ingest only. Retained for
/// one PR; new callers use the Status overloads.
bool read_psv(std::istream& is, SnapshotTable* table,
              std::string* error = nullptr);
bool read_psv_buffer(std::string_view text, SnapshotTable* table,
                     std::string* error = nullptr, ThreadPool* pool = nullptr);
bool write_psv_file(const SnapshotTable& table, const std::string& file,
                    std::string* error = nullptr);
bool read_psv_file(const std::string& file, SnapshotTable* table,
                   std::string* error = nullptr);

}  // namespace spider
