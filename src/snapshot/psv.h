// PSV (pipe-separated values) snapshot format — the LustreDU on-disk layout
// the paper's pipeline starts from (Figure 2):
//
//   PATH|ATIME|CTIME|MTIME|UID|GID|MODE|INODE|OST:OBJ,OST:OBJ,...
//
// MODE is octal; the OST field lists "index:objid" pairs (we synthesize the
// hexadecimal object ids from the inode, and parsers keep only the index,
// which is all the analyses use). Directories have an empty OST field.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "snapshot/record.h"
#include "snapshot/table.h"

namespace spider {

class ThreadPool;

/// Formats one record as a PSV line (no trailing newline).
std::string psv_format_record(const RawRecord& rec);

/// Parses one PSV line. On failure returns false and, if `error` is
/// non-null, stores a human-readable reason.
bool psv_parse_record(std::string_view line, RawRecord* rec,
                      std::string* error = nullptr);

/// Streams a whole table out as PSV text; returns bytes written.
std::uint64_t write_psv(const SnapshotTable& table, std::ostream& os);

/// Appends all records from a PSV stream into `table`. Stops at the first
/// malformed line and reports it (line number + reason) via `error`.
/// Serial; kept for stream-shaped inputs. Prefer read_psv_buffer when the
/// whole text is in memory.
bool read_psv(std::istream& is, SnapshotTable* table,
              std::string* error = nullptr);

/// Appends all records from an in-memory PSV buffer into `table`. The
/// buffer is split on newline boundaries into shards that parse
/// concurrently on `pool` (null = the process-global pool) into staging
/// tables, which are spliced in shard order — row order, calibration
/// counts, and path hashes are identical to the serial reader's. On a
/// malformed line, reports the earliest offending line (global 1-based
/// number + reason) via `error` and appends nothing (unlike the streaming
/// reader, which has already added the rows before the bad line).
bool read_psv_buffer(std::string_view text, SnapshotTable* table,
                     std::string* error = nullptr, ThreadPool* pool = nullptr);

/// File-based convenience wrappers. Reading slurps the file and uses the
/// parallel buffer path.
bool write_psv_file(const SnapshotTable& table, const std::string& file,
                    std::string* error = nullptr);
bool read_psv_file(const std::string& file, SnapshotTable* table,
                   std::string* error = nullptr);

}  // namespace spider
