#include "snapshot/series.h"

#include <algorithm>
#include <filesystem>

#include "snapshot/scol.h"
#include "util/timeutil.h"

namespace spider {

namespace fs = std::filesystem;

namespace {

/// Parses "snap_YYYYMMDD.scol" -> epoch seconds; returns false otherwise.
bool parse_snapshot_name(const std::string& name, std::int64_t* taken_at) {
  constexpr std::string_view kPrefix = "snap_";
  constexpr std::string_view kSuffix = ".scol";
  if (name.size() != kPrefix.size() + 8 + kSuffix.size()) return false;
  if (name.rfind(kPrefix, 0) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  const std::string digits = name.substr(kPrefix.size(), 8);
  if (!std::all_of(digits.begin(), digits.end(),
                   [](char c) { return c >= '0' && c <= '9'; })) {
    return false;
  }
  CivilDate date;
  date.year = std::stoi(digits.substr(0, 4));
  date.month = static_cast<unsigned>(std::stoi(digits.substr(4, 2)));
  date.day = static_cast<unsigned>(std::stoi(digits.substr(6, 2)));
  if (date.month < 1 || date.month > 12 || date.day < 1 || date.day > 31) {
    return false;
  }
  *taken_at = epoch_from_civil(date);
  return true;
}

}  // namespace

bool DirectorySeries::open(const std::string& directory, std::string* error) {
  files_.clear();
  taken_at_.clear();
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    if (error) *error = "not a directory: " + directory;
    return false;
  }
  std::vector<std::pair<std::int64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    std::int64_t taken_at = 0;
    if (parse_snapshot_name(entry.path().filename().string(), &taken_at)) {
      found.emplace_back(taken_at, entry.path().string());
    }
  }
  if (ec) {
    if (error) *error = "cannot list directory: " + directory;
    return false;
  }
  if (found.empty()) {
    if (error) *error = "no snap_*.scol files in: " + directory;
    return false;
  }
  std::sort(found.begin(), found.end());
  for (auto& [taken_at, file] : found) {
    taken_at_.push_back(taken_at);
    files_.push_back(std::move(file));
  }
  return true;
}

void DirectorySeries::visit(const SnapshotVisitor& visitor) {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    Snapshot snap;
    snap.taken_at = taken_at_[i];
    std::string error;
    if (!read_scol_file(files_[i], &snap.table, &error)) {
      // A snapshot that fails integrity checks is skipped, matching how the
      // paper's pipeline tolerates missing/corrupt weeks (maintenance gaps).
      continue;
    }
    visitor(i, snap);
  }
}

bool save_series(SnapshotSource& source, const std::string& directory,
                 std::string* error) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    if (error) *error = "cannot create directory: " + directory;
    return false;
  }
  bool ok = true;
  std::string first_error;
  source.visit([&](std::size_t, const Snapshot& snap) {
    const std::string file =
        (fs::path(directory) / ("snap_" + date_tag(snap.taken_at) + ".scol"))
            .string();
    std::string why;
    if (!write_scol_file(snap.table, file, &why) && ok) {
      ok = false;
      first_error = why;
    }
  });
  if (!ok && error) *error = first_error;
  return ok;
}

}  // namespace spider
