#include "snapshot/series.h"

#include <algorithm>
#include <filesystem>

#include "snapshot/scol.h"
#include "util/io.h"
#include "util/timeutil.h"

namespace spider {

namespace fs = std::filesystem;

namespace {

/// Parses "snap_YYYYMMDD.scol" -> epoch seconds; returns false otherwise.
bool parse_snapshot_name(const std::string& name, std::int64_t* taken_at) {
  constexpr std::string_view kPrefix = "snap_";
  constexpr std::string_view kSuffix = ".scol";
  if (name.size() != kPrefix.size() + 8 + kSuffix.size()) return false;
  if (name.rfind(kPrefix, 0) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  const std::string digits = name.substr(kPrefix.size(), 8);
  if (!std::all_of(digits.begin(), digits.end(),
                   [](char c) { return c >= '0' && c <= '9'; })) {
    return false;
  }
  CivilDate date;
  date.year = std::stoi(digits.substr(0, 4));
  date.month = static_cast<unsigned>(std::stoi(digits.substr(4, 2)));
  date.day = static_cast<unsigned>(std::stoi(digits.substr(6, 2)));
  if (date.month < 1 || date.month > 12 || date.day < 1 || date.day > 31) {
    return false;
  }
  *taken_at = epoch_from_civil(date);
  return true;
}

}  // namespace

std::string SeriesGap::describe() const {
  std::string out = "week " + std::to_string(week);
  if (taken_at != 0) out += " (" + date_iso(taken_at) + ")";
  out += ": ";
  if (!file.empty()) out += file + ": ";
  out += status.to_string();
  return out;
}

Status DirectorySeries::open(const std::string& directory) {
  files_.clear();
  taken_at_.clear();
  slots_.clear();
  gaps_.clear();
  open_gaps_.clear();
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::not_found("not a directory: " + directory);
  }

  struct Entry {
    std::int64_t taken_at = 0;
    std::string file;
    Status status;  // non-ok when the entry itself is unreadable
  };
  std::vector<Entry> found;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    std::int64_t taken_at = 0;
    if (!parse_snapshot_name(entry.path().filename().string(), &taken_at)) {
      continue;
    }
    // Entries matching the snapshot pattern must be accounted for: a
    // stat failure or a non-file is a damaged week, not something to
    // silently drop from the study timeline.
    std::error_code stat_ec;
    const bool regular = entry.is_regular_file(stat_ec);
    Status status;
    if (stat_ec) {
      status = Status::io_error("cannot stat: " + stat_ec.message());
    } else if (!regular) {
      status = Status::failed_precondition("not a regular file");
    }
    found.push_back(Entry{taken_at, entry.path().string(), status});
  }
  if (ec) {
    return Status::io_error("cannot list directory: " + directory);
  }
  if (found.empty()) {
    return Status::not_found("no snap_*.scol files in: " + directory);
  }
  std::sort(found.begin(), found.end(),
            [](const Entry& a, const Entry& b) {
              return a.taken_at < b.taken_at;
            });

  // Collection-cadence gap detection: an interval much longer than the
  // median means weeks were never collected (maintenance windows in the
  // paper's own series). Those weeks get slots so diffs never silently
  // span them.
  std::int64_t median_interval = 0;
  if (found.size() >= 3) {
    std::vector<std::int64_t> intervals;
    intervals.reserve(found.size() - 1);
    for (std::size_t i = 1; i < found.size(); ++i) {
      intervals.push_back(found[i].taken_at - found[i - 1].taken_at);
    }
    std::nth_element(intervals.begin(),
                     intervals.begin() + intervals.size() / 2,
                     intervals.end());
    median_interval = intervals[intervals.size() / 2];
  }

  std::size_t slot = 0;
  for (std::size_t i = 0; i < found.size(); ++i) {
    if (i > 0 && median_interval > 0) {
      const std::int64_t interval = found[i].taken_at - found[i - 1].taken_at;
      if (interval > median_interval + median_interval / 2) {
        // Round to the nearest whole number of missed collections, capped
        // so a wild timestamp cannot inflate the timeline unboundedly.
        const std::int64_t missed = std::min<std::int64_t>(
            (interval + median_interval / 2) / median_interval - 1, 520);
        for (std::int64_t k = 0; k < missed; ++k) {
          gaps_.push_back(SeriesGap{
              slot++, found[i - 1].taken_at + median_interval * (k + 1), "",
              Status::not_found("no snapshot collected")});
        }
      }
    }
    if (found[i].status.ok()) {
      files_.push_back(std::move(found[i].file));
      taken_at_.push_back(found[i].taken_at);
      slots_.push_back(slot++);
    } else {
      gaps_.push_back(SeriesGap{slot++, found[i].taken_at,
                                std::move(found[i].file),
                                std::move(found[i].status)});
    }
  }
  std::sort(gaps_.begin(), gaps_.end(),
            [](const SeriesGap& a, const SeriesGap& b) {
              return a.week < b.week;
            });
  open_gaps_ = gaps_;
  if (files_.empty()) {
    return Status::failed_precondition("no readable snapshots in: " +
                                       directory)
        .caused_by(gaps_.front().status);
  }
  return Status();
}

bool DirectorySeries::open(const std::string& directory, std::string* error) {
  const Status s = open(directory);
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

void SnapshotSource::visit_move(const SnapshotMoveVisitor& visitor) {
  // Fallback for sources that only implement visit(): hand over a deep
  // copy. Overridden by every source that builds a per-week snapshot it
  // can give away.
  visit([&](std::size_t week, const Snapshot& snap) {
    Snapshot copy;
    copy.taken_at = snap.taken_at;
    copy.table = snap.table.clone();
    copy.degraded = snap.degraded;
    visitor(week, std::move(copy));
  });
}

void SnapshotSource::visit_from(std::size_t first_slot,
                                const SnapshotVisitor& visitor) {
  visit([&](std::size_t week, const Snapshot& snap) {
    if (week >= first_slot) visitor(week, snap);
  });
}

void SnapshotSource::visit_move_from(std::size_t first_slot,
                                     const SnapshotMoveVisitor& visitor) {
  visit_move([&](std::size_t week, Snapshot&& snap) {
    if (week >= first_slot) visitor(week, std::move(snap));
  });
}

void SnapshotSource::visit_streaming(std::size_t first_slot,
                                     const StreamChooser& chooser,
                                     const SnapshotMoveVisitor& move_visitor,
                                     const SnapshotStreamVisitor&) {
  // Sources without group-structured storage have nothing to stream:
  // every week is delivered resident regardless of the chooser.
  (void)chooser;
  visit_move_from(first_slot, move_visitor);
}

void DirectorySeries::visit(const SnapshotVisitor& visitor) {
  visit_move([&](std::size_t week, Snapshot&& snap) { visitor(week, snap); });
}

void DirectorySeries::visit_move(const SnapshotMoveVisitor& visitor) {
  visit_move_from(0, visitor);
}

void DirectorySeries::deliver_eager(std::size_t i,
                                    std::vector<std::uint8_t>& bytes,
                                    const SnapshotMoveVisitor& visitor) {
  Snapshot snap;
  snap.taken_at = taken_at_[i];
  SalvageReport report;
  // Read bytes (with retry for transient faults), then decode. Matches
  // read_scol_file's error shape: the Status carries the file context.
  const auto read_once = [&]() {
    bytes.clear();
    return read_fn_ ? read_fn_(files_[i], &bytes)
                    : read_file(files_[i], &bytes);
  };
  Status s = retry_policy_.enabled()
                 ? retry_with_backoff(retry_policy_, &retry_stats_, read_once)
                 : read_once();
  if (s.ok()) {
    s = decode_scol(bytes, &snap.table, scol_options_, &report)
            .with_context(files_[i]);
  }
  if (!s.ok()) {
    gaps_.push_back(SeriesGap{slots_[i], taken_at_[i], files_[i], s});
    return;
  }
  snap.degraded = !report.clean();
  visitor(slots_[i], std::move(snap));
}

void DirectorySeries::visit_move_from(std::size_t first_slot,
                                      const SnapshotMoveVisitor& visitor) {
  // Each traversal rediscovers decode damage from scratch (a file may have
  // been repaired or replaced between visits), on top of the structural
  // gaps open() found. When resuming (first_slot > 0) the skipped weeks
  // keep whatever damage accounting the checkpoint restored; re-reading
  // them here would defeat the point of resuming.
  gaps_ = open_gaps_;
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (slots_[i] < first_slot) continue;
    deliver_eager(i, bytes, visitor);
  }
  std::sort(gaps_.begin(), gaps_.end(),
            [](const SeriesGap& a, const SeriesGap& b) {
              return a.week < b.week;
            });
}

void DirectorySeries::visit_streaming(
    std::size_t first_slot, const StreamChooser& chooser,
    const SnapshotMoveVisitor& move_visitor,
    const SnapshotStreamVisitor& stream_visitor) {
  gaps_ = open_gaps_;
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (slots_[i] < first_slot) continue;
    // A scripted read_fn_ cannot feed the mapped reader, so its presence
    // (tests exercising transient-fault retries) forces the eager path —
    // the seam keeps seeing every read either way.
    if (chooser && stream_visitor && !read_fn_) {
      ScolGroupReader reader;
      // Maps the file and parses header + directory only — a failure here
      // is NOT recorded as a gap; the eager fallback below re-discovers
      // the damage through the canonical path so the gap carries the
      // byte-identical eager status (and retry accounting).
      const Status opened = reader.open(files_[i], scol_options_);
      if (opened.ok() && chooser(slots_[i], taken_at_[i], reader.rows())) {
        WeekGroupStream stream;
        stream.week = slots_[i];
        stream.taken_at = taken_at_[i];
        stream.file = files_[i];
        stream.reader = &reader;
        const Status s = stream_visitor(stream);
        if (!s.ok()) {
          // The visitor reports the raw decode verdict; the file context
          // is prepended here, mirroring deliver_eager's decode_scol call.
          gaps_.push_back(SeriesGap{slots_[i], taken_at_[i], files_[i],
                                    s.with_context(files_[i])});
        }
        continue;
      }
    }
    deliver_eager(i, bytes, move_visitor);
  }
  std::sort(gaps_.begin(), gaps_.end(),
            [](const SeriesGap& a, const SeriesGap& b) {
              return a.week < b.week;
            });
}

bool save_series(SnapshotSource& source, const std::string& directory,
                 std::string* error) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    if (error) *error = "cannot create directory: " + directory;
    return false;
  }
  bool ok = true;
  std::string first_error;
  source.visit([&](std::size_t, const Snapshot& snap) {
    const std::string file =
        (fs::path(directory) / ("snap_" + date_tag(snap.taken_at) + ".scol"))
            .string();
    std::string why;
    if (!write_scol_file(snap.table, file, &why) && ok) {
      ok = false;
      first_error = why;
    }
  });
  if (!ok && error) *error = first_error;
  return ok;
}

}  // namespace spider
