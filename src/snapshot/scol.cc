#include "snapshot/scol.h"

#include <cstring>
#include <map>

#include "snapshot/varint.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/parallel.h"

namespace spider {

namespace {

constexpr char kMagicV1[8] = {'S', 'C', 'O', 'L', '0', '0', '0', '1'};
constexpr char kMagicV2[8] = {'S', 'C', 'O', 'L', '0', '0', '0', '2'};

enum ColumnId : std::uint8_t {
  kColPaths = 1,
  kColAtime = 2,
  kColCtime = 3,
  kColMtime = 4,
  kColUid = 5,
  kColGid = 6,
  kColMode = 7,
  kColInode = 8,
  kColOst = 9,
};

enum Encoding : std::uint8_t {
  kEncPlainStrings = 0,  // varint length + bytes
  kEncFrontCoded = 1,    // varint shared-prefix + varint suffix len + bytes
  kEncZigzagAbs = 2,     // absolute zig-zag varint per row
  kEncDeltaPrev = 3,     // zig-zag varint delta vs previous row
  kEncDeltaMtime = 4,    // zig-zag varint delta vs same-row mtime
  kEncPlainVarint = 5,   // varint per row
  kEncRle = 6,           // (varint run length, varint value) pairs
  kEncOstLists = 7,      // varint count + varint values per row
};

void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool get_u64_le(std::span<const std::uint8_t> in, std::size_t& pos,
                std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 8;
  return true;
}

std::uint64_t payload_checksum(std::span<const std::uint8_t> payload) {
  return hash_bytes(std::string_view(
      reinterpret_cast<const char*>(payload.data()), payload.size()));
}

std::size_t shared_prefix(std::string_view a, std::string_view b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

/// Signed addition through unsigned arithmetic: corrupt delta payloads can
/// produce arbitrary operands, and plain `a + b` on int64 would be UB on
/// overflow (the sanitizer suite runs decode against random damage).
std::int64_t wrapping_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

// ---- column encoders ------------------------------------------------------
// Every encoder covers rows [begin, end) and starts from fresh state
// (empty front-coding prefix, zero delta base, new run), which is what
// makes a v2 row group decodable without its predecessors.

std::vector<std::uint8_t> encode_paths(const SnapshotTable& t,
                                       std::size_t begin, std::size_t end,
                                       bool front_code) {
  std::vector<std::uint8_t> out;
  std::string_view prev;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string_view p = t.path(i);
    if (front_code) {
      const std::size_t shared = shared_prefix(prev, p);
      put_varint(out, shared);
      put_varint(out, p.size() - shared);
      out.insert(out.end(), p.begin() + static_cast<std::ptrdiff_t>(shared),
                 p.end());
      prev = p;
    } else {
      put_varint(out, p.size());
      out.insert(out.end(), p.begin(), p.end());
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_i64_column(std::span<const std::int64_t> col,
                                            Encoding enc,
                                            std::span<const std::int64_t> base) {
  std::vector<std::uint8_t> out;
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    switch (enc) {
      case kEncZigzagAbs:
        put_zigzag(out, col[i]);
        break;
      case kEncDeltaPrev:
        put_zigzag(out, col[i] - prev);
        prev = col[i];
        break;
      case kEncDeltaMtime:
        put_zigzag(out, col[i] - base[i]);
        break;
      default:
        break;
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_u32_column(std::span<const std::uint32_t> col,
                                            bool rle) {
  std::vector<std::uint8_t> out;
  if (!rle) {
    for (const std::uint32_t v : col) put_varint(out, v);
    return out;
  }
  std::size_t i = 0;
  while (i < col.size()) {
    std::size_t run = 1;
    while (i + run < col.size() && col[i + run] == col[i]) ++run;
    put_varint(out, run);
    put_varint(out, col[i]);
    i += run;
  }
  return out;
}

std::vector<std::uint8_t> encode_inodes(std::span<const std::uint64_t> col,
                                        bool delta) {
  std::vector<std::uint8_t> out;
  std::uint64_t prev = 0;
  for (const std::uint64_t v : col) {
    if (delta) {
      put_zigzag(out, static_cast<std::int64_t>(v - prev));
      prev = v;
    } else {
      put_varint(out, v);
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_osts(const SnapshotTable& t,
                                      std::size_t begin, std::size_t end) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = begin; i < end; ++i) {
    const auto osts = t.osts(i);
    put_varint(out, osts.size());
    for (const std::uint32_t o : osts) put_varint(out, o);
  }
  return out;
}

void append_column(std::vector<std::uint8_t>& image, ColumnId id, Encoding enc,
                   const std::vector<std::uint8_t>& payload) {
  image.push_back(id);
  image.push_back(enc);
  put_u64_le(image, payload.size());
  put_u64_le(image, payload_checksum(payload));
  image.insert(image.end(), payload.begin(), payload.end());
}

/// Writes the column-count byte plus all nine column blocks for rows
/// [begin, end). The whole v1 body, and one v2 row group.
void encode_column_set(std::vector<std::uint8_t>& out, const SnapshotTable& t,
                       std::size_t begin, std::size_t end,
                       const ScolOptions& options) {
  const Encoding ts_enc =
      options.delta_timestamps ? kEncDeltaPrev : kEncZigzagAbs;
  const Encoding rel_enc =
      options.delta_timestamps ? kEncDeltaMtime : kEncZigzagAbs;
  const Encoding id_enc = options.rle_ids ? kEncRle : kEncPlainVarint;
  const std::size_t n = end - begin;

  out.push_back(9);  // column count
  append_column(out, kColPaths,
                options.front_code_paths ? kEncFrontCoded : kEncPlainStrings,
                encode_paths(t, begin, end, options.front_code_paths));
  append_column(out, kColMtime, ts_enc,
                encode_i64_column(t.mtimes().subspan(begin, n), ts_enc, {}));
  append_column(out, kColAtime, rel_enc,
                encode_i64_column(t.atimes().subspan(begin, n), rel_enc,
                                  t.mtimes().subspan(begin, n)));
  append_column(out, kColCtime, rel_enc,
                encode_i64_column(t.ctimes().subspan(begin, n), rel_enc,
                                  t.mtimes().subspan(begin, n)));
  append_column(out, kColUid, id_enc,
                encode_u32_column(t.uids().subspan(begin, n), options.rle_ids));
  append_column(out, kColGid, id_enc,
                encode_u32_column(t.gids().subspan(begin, n), options.rle_ids));
  append_column(out, kColMode, id_enc,
                encode_u32_column(t.modes().subspan(begin, n),
                                  options.rle_ids));
  append_column(out, kColInode,
                options.delta_inodes ? kEncDeltaPrev : kEncPlainVarint,
                encode_inodes(t.inodes().subspan(begin, n),
                              options.delta_inodes));
  append_column(out, kColOst, kEncOstLists, encode_osts(t, begin, end));
}

// ---- column decoders ------------------------------------------------------
// Decoders return a typed Status: kTruncated when the payload ends before
// its own framing says it should, kCorruption for values that cannot be
// valid (bad shared length, bad encoding id, overlong runs).

struct ColumnBlock {
  Encoding enc = kEncPlainStrings;
  std::span<const std::uint8_t> payload;
};

Status decode_paths(const ColumnBlock& block, std::size_t rows,
                    std::vector<std::string>* out) {
  // Every row costs at least one payload byte; rejecting implausible row
  // counts up front keeps a corrupted header from driving a huge reserve.
  if (rows > block.payload.size()) {
    return Status::corruption("paths: row count exceeds payload");
  }
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  std::string prev;
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t shared = 0, len = 0;
    if (block.enc == kEncFrontCoded) {
      if (!get_varint(block.payload, pos, shared)) {
        return Status::truncated("paths: truncated shared length");
      }
      if (shared > prev.size()) {
        return Status::corruption("paths: bad shared length");
      }
    }
    if (!get_varint(block.payload, pos, len)) {
      return Status::truncated("paths: truncated suffix length");
    }
    if (len > block.payload.size() - pos) {
      return Status::truncated("paths: truncated suffix bytes");
    }
    std::string path = prev.substr(0, shared);
    path.append(reinterpret_cast<const char*>(block.payload.data() + pos),
                len);
    pos += len;
    prev = path;
    out->push_back(std::move(path));
  }
  return Status();
}

Status decode_i64(const ColumnBlock& block, std::size_t rows,
                  std::span<const std::int64_t> base,
                  std::vector<std::int64_t>* out) {
  if (rows > block.payload.size()) {
    return Status::corruption("timestamp row count exceeds payload");
  }
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    std::int64_t v = 0;
    if (!get_zigzag(block.payload, pos, v)) {
      return Status::truncated("timestamp column truncated");
    }
    switch (block.enc) {
      case kEncZigzagAbs:
        break;
      case kEncDeltaPrev:
        v = wrapping_add(v, prev);
        prev = v;
        break;
      case kEncDeltaMtime:
        if (base.size() != rows) {
          return Status::corruption("missing mtime base");
        }
        v = wrapping_add(v, base[i]);
        break;
      default:
        return Status::corruption("bad timestamp encoding");
    }
    out->push_back(v);
  }
  return Status();
}

Status decode_u32(const ColumnBlock& block, std::size_t rows,
                  std::vector<std::uint32_t>* out) {
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  if (block.enc == kEncPlainVarint) {
    for (std::size_t i = 0; i < rows; ++i) {
      std::uint64_t v = 0;
      if (!get_varint(block.payload, pos, v)) {
        return Status::truncated("u32 column truncated");
      }
      out->push_back(static_cast<std::uint32_t>(v));
    }
    return Status();
  }
  if (block.enc != kEncRle) return Status::corruption("bad u32 encoding");
  while (out->size() < rows) {
    std::uint64_t run = 0, value = 0;
    if (!get_varint(block.payload, pos, run) ||
        !get_varint(block.payload, pos, value)) {
      return Status::truncated("rle column truncated");
    }
    if (run == 0 || out->size() + run > rows) {
      return Status::corruption("rle run overflows row count");
    }
    out->insert(out->end(), run, static_cast<std::uint32_t>(value));
  }
  return Status();
}

Status decode_inodes(const ColumnBlock& block, std::size_t rows,
                     std::vector<std::uint64_t>* out) {
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    if (block.enc == kEncDeltaPrev) {
      std::int64_t d = 0;
      if (!get_zigzag(block.payload, pos, d)) {
        return Status::truncated("inode column truncated");
      }
      prev += static_cast<std::uint64_t>(d);
      out->push_back(prev);
    } else if (block.enc == kEncPlainVarint) {
      std::uint64_t v = 0;
      if (!get_varint(block.payload, pos, v)) {
        return Status::truncated("inode column truncated");
      }
      out->push_back(v);
    } else {
      return Status::corruption("bad inode encoding");
    }
  }
  return Status();
}

Status decode_osts(const ColumnBlock& block, std::size_t rows,
                   std::vector<std::uint32_t>* offsets,
                   std::vector<std::uint32_t>* values) {
  offsets->clear();
  values->clear();
  offsets->reserve(rows + 1);
  offsets->push_back(0);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t count = 0;
    if (!get_varint(block.payload, pos, count)) {
      return Status::truncated("ost column truncated");
    }
    if (count > 4096) return Status::corruption("implausible stripe count");
    for (std::uint64_t k = 0; k < count; ++k) {
      std::uint64_t v = 0;
      if (!get_varint(block.payload, pos, v)) {
        return Status::truncated("ost column truncated");
      }
      values->push_back(static_cast<std::uint32_t>(v));
    }
    offsets->push_back(static_cast<std::uint32_t>(values->size()));
  }
  return Status();
}

/// Reads one column set (count byte + blocks) for `rows` rows starting at
/// `pos`, validating checksums, and appends the decoded rows to `table`.
/// The inverse of encode_column_set; the whole v1 body, one v2 row group.
/// On a non-ok Status `table` is untouched (rows append only at the end).
///
/// Projection: only columns in `columns` are decoded and materialized;
/// the rest read back as zero/empty. Checksum validation and structural
/// checks run for every block regardless, so a damaged image fails (or
/// salvages) identically at any projection.
Status decode_column_set(std::span<const std::uint8_t> bytes, std::size_t pos,
                         std::size_t rows, SnapshotTable* table,
                         ColumnMask columns) {
  if (pos >= bytes.size()) return Status::truncated("truncated column set");
  const std::uint8_t ncols = bytes[pos++];

  std::map<std::uint8_t, ColumnBlock> blocks;
  for (std::uint8_t c = 0; c < ncols; ++c) {
    if (pos + 2 > bytes.size()) {
      return Status::truncated("truncated column header");
    }
    const std::uint8_t id = bytes[pos++];
    const Encoding enc = static_cast<Encoding>(bytes[pos++]);
    std::uint64_t size = 0, checksum = 0;
    if (!get_u64_le(bytes, pos, size) || !get_u64_le(bytes, pos, checksum)) {
      return Status::truncated("truncated column header");
    }
    if (size > bytes.size() - pos) {
      return Status::truncated("truncated payload");
    }
    const auto payload = bytes.subspan(pos, size);
    if (payload_checksum(payload) != checksum) {
      return Status::corruption("column checksum mismatch");
    }
    blocks[id] = ColumnBlock{enc, payload};
    pos += size;
  }
  for (const std::uint8_t id :
       {kColPaths, kColAtime, kColCtime, kColMtime, kColUid, kColGid,
        kColMode, kColInode, kColOst}) {
    if (!blocks.count(id)) return Status::corruption("missing column");
  }

  // atime/ctime are deltas against same-row mtime: requesting either means
  // mtime has to be decoded (and is then materialized too — cheaper than a
  // shadow column, and callers asking for access times nearly always want
  // the modify time as well).
  if (columns & (kColMaskAtime | kColMaskCtime)) columns |= kColMaskMtime;

  std::vector<std::string> paths;
  std::vector<std::int64_t> atime, ctime, mtime;
  std::vector<std::uint32_t> uid, gid, mode, ost_offsets, ost_values;
  std::vector<std::uint64_t> inode;
  Status s;
  if ((columns & kColMaskPaths) &&
      !(s = decode_paths(blocks[kColPaths], rows, &paths)).ok()) {
    return s;
  }
  if ((columns & kColMaskMtime) &&
      !(s = decode_i64(blocks[kColMtime], rows, {}, &mtime)).ok()) {
    return s;
  }
  if ((columns & kColMaskAtime) &&
      !(s = decode_i64(blocks[kColAtime], rows, mtime, &atime)).ok()) {
    return s;
  }
  if ((columns & kColMaskCtime) &&
      !(s = decode_i64(blocks[kColCtime], rows, mtime, &ctime)).ok()) {
    return s;
  }
  if ((columns & kColMaskUid) &&
      !(s = decode_u32(blocks[kColUid], rows, &uid)).ok()) {
    return s;
  }
  if ((columns & kColMaskGid) &&
      !(s = decode_u32(blocks[kColGid], rows, &gid)).ok()) {
    return s;
  }
  if ((columns & kColMaskMode) &&
      !(s = decode_u32(blocks[kColMode], rows, &mode)).ok()) {
    return s;
  }
  if ((columns & kColMaskInode) &&
      !(s = decode_inodes(blocks[kColInode], rows, &inode)).ok()) {
    return s;
  }
  if ((columns & kColMaskOsts) &&
      !(s = decode_osts(blocks[kColOst], rows, &ost_offsets, &ost_values))
           .ok()) {
    return s;
  }

  table->reserve(table->size() + rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::span<const std::uint32_t> osts =
        ost_offsets.empty()
            ? std::span<const std::uint32_t>()
            : std::span<const std::uint32_t>(ost_values)
                  .subspan(ost_offsets[i], ost_offsets[i + 1] - ost_offsets[i]);
    table->add(paths.empty() ? std::string_view() : std::string_view(paths[i]),
               atime.empty() ? 0 : atime[i], ctime.empty() ? 0 : ctime[i],
               mtime.empty() ? 0 : mtime[i], uid.empty() ? 0 : uid[i],
               gid.empty() ? 0 : gid[i], mode.empty() ? 0 : mode[i],
               inode.empty() ? 0 : inode[i], osts);
  }
  return Status();
}

// ---- v1 (single column set) ----------------------------------------------

std::vector<std::uint8_t> encode_scol_v1(const SnapshotTable& table,
                                         const ScolOptions& options) {
  std::vector<std::uint8_t> image;
  image.insert(image.end(), kMagicV1, kMagicV1 + sizeof(kMagicV1));
  put_u64_le(image, table.size());
  encode_column_set(image, table, 0, table.size(), options);
  return image;
}

Status decode_scol_v1(std::span<const std::uint8_t> bytes,
                      SnapshotTable* table, ColumnMask columns) {
  std::size_t pos = sizeof(kMagicV1);
  std::uint64_t rows = 0;
  if (!get_u64_le(bytes, pos, rows)) {
    return Status::truncated("truncated header");
  }
  return decode_column_set(bytes, pos, rows, table, columns);
}

// ---- v2 (row groups) ------------------------------------------------------
//
//   magic "SCOL0002"
//   u64 total rows
//   u64 nominal group size (rows; last group may be short)
//   u64 group count
//   directory: per group { u64 rows, u64 byte size }
//   groups, concatenated in row order; each one column set
//
// Group byte offsets are the running sum of directory sizes, so the
// directory fully bounds every group before any payload is touched.

std::vector<std::uint8_t> encode_scol_v2(const SnapshotTable& table,
                                         const ScolOptions& options,
                                         ThreadPool* pool) {
  const std::size_t rows = table.size();
  const std::size_t group_size = std::max<std::size_t>(1, options.group_size);
  const std::size_t ngroups = (rows + group_size - 1) / group_size;

  std::vector<std::vector<std::uint8_t>> groups(ngroups);
  parallel_for(
      ngroups,
      [&](std::size_t g) {
        const std::size_t begin = g * group_size;
        const std::size_t end = std::min(begin + group_size, rows);
        encode_column_set(groups[g], table, begin, end, options);
      },
      pool, /*grain=*/1);

  std::size_t payload_bytes = 0;
  for (const auto& g : groups) payload_bytes += g.size();

  std::vector<std::uint8_t> image;
  image.reserve(sizeof(kMagicV2) + 3 * 8 + ngroups * 16 + payload_bytes);
  image.insert(image.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));
  put_u64_le(image, rows);
  put_u64_le(image, group_size);
  put_u64_le(image, ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::size_t begin = g * group_size;
    put_u64_le(image, std::min(group_size, rows - begin));
    put_u64_le(image, groups[g].size());
  }
  for (const auto& g : groups) image.insert(image.end(), g.begin(), g.end());
  return image;
}

Status decode_scol_v2(std::span<const std::uint8_t> bytes,
                      SnapshotTable* table, const ScolOptions& options,
                      SalvageReport* report, ThreadPool* pool) {
  ScolV2Layout layout;
  Status s = parse_scol_v2_layout(bytes, &layout);
  // Header/directory damage is unrecoverable: without trustworthy group
  // extents there is nothing to salvage against.
  if (!s.ok()) return s;

  const std::size_t ngroups = layout.group_rows.size();
  const bool salvage =
      options.on_corrupt_group != CorruptGroupPolicy::kFail;
  if (report) {
    *report = SalvageReport{};
    report->groups_total = ngroups;
    report->rows_total = layout.rows;
  }

  // Decode the in-bounds groups concurrently into per-group staging
  // tables; groups whose directory extent runs past the image are
  // truncation casualties and never touched.
  std::vector<SnapshotTable> staging(ngroups);
  std::vector<Status> group_status(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (layout.group_truncated[g]) {
      group_status[g] = Status::truncated("group extends past end of image");
    }
  }
  parallel_for(
      ngroups,
      [&](std::size_t g) {
        if (layout.group_truncated[g]) return;
        group_status[g] = decode_column_set(
            bytes.subspan(layout.group_begin[g], layout.group_len[g]), 0,
            layout.group_rows[g], &staging[g], options.columns);
      },
      pool, /*grain=*/1);

  std::uint64_t rows_lost = 0;
  std::size_t groups_lost = 0;
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (group_status[g].ok()) continue;
    // Failures report the lowest-numbered failing group first, so
    // messages are deterministic across thread schedules.
    if (!salvage) {
      return group_status[g].with_context("group " + std::to_string(g));
    }
    ++groups_lost;
    rows_lost += layout.group_rows[g];
    if (report) {
      ScolGroupDamage damage;
      damage.group = g;
      damage.rows = layout.group_rows[g];
      damage.status = group_status[g];
      if (options.on_corrupt_group == CorruptGroupPolicy::kQuarantine) {
        const std::size_t begin = std::min(layout.group_begin[g], bytes.size());
        const std::size_t len = std::min(layout.group_len[g],
                                         bytes.size() - begin);
        damage.quarantined.assign(bytes.begin() + begin,
                                  bytes.begin() + begin + len);
      }
      report->damage.push_back(std::move(damage));
    }
  }

  table->reserve(table->size() + layout.rows - rows_lost);
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (group_status[g].ok()) table->append_table(std::move(staging[g]));
  }
  if (report) {
    report->groups_lost = groups_lost;
    report->rows_lost = rows_lost;
    report->rows_recovered = layout.rows - rows_lost;
  }
  return Status();
}

}  // namespace

Status parse_scol_v2_layout(std::span<const std::uint8_t> bytes,
                            ScolV2Layout* layout) {
  *layout = ScolV2Layout{};
  if (bytes.size() < sizeof(kMagicV2) ||
      std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::corruption("bad magic");
  }
  std::size_t pos = sizeof(kMagicV2);
  std::uint64_t ngroups = 0;
  if (!get_u64_le(bytes, pos, layout->rows) ||
      !get_u64_le(bytes, pos, layout->group_size) ||
      !get_u64_le(bytes, pos, ngroups)) {
    return Status::truncated("truncated header");
  }
  if (ngroups > (bytes.size() - pos) / 16) {
    return Status::truncated("group directory exceeds image");
  }

  layout->group_rows.resize(ngroups);
  layout->group_begin.resize(ngroups);
  layout->group_len.resize(ngroups);
  layout->group_truncated.assign(ngroups, false);
  for (std::size_t g = 0; g < ngroups; ++g) {
    std::uint64_t size = 0;
    if (!get_u64_le(bytes, pos, layout->group_rows[g]) ||
        !get_u64_le(bytes, pos, size)) {
      return Status::truncated("truncated group directory");
    }
    layout->group_len[g] = static_cast<std::size_t>(size);
  }
  layout->payload_start = pos;

  std::uint64_t dir_rows = 0;
  std::size_t offset = pos;
  bool truncated_tail = false;
  for (std::size_t g = 0; g < ngroups; ++g) {
    dir_rows += layout->group_rows[g];
    layout->group_begin[g] = offset;
    // Once one group runs past the end, every later group does too (their
    // promised bytes simply are not there).
    if (truncated_tail || layout->group_len[g] > bytes.size() - offset) {
      truncated_tail = true;
      layout->group_truncated[g] = true;
      // Clamp the running offset so later extents stay well-defined.
      offset = bytes.size();
    } else {
      offset += layout->group_len[g];
    }
  }
  if (dir_rows != layout->rows) {
    return Status::corruption("group directory row mismatch");
  }
  return Status();
}

std::string SalvageReport::summary() const {
  if (clean()) {
    return "clean: " + std::to_string(rows_recovered) + " rows in " +
           std::to_string(groups_total) + " groups";
  }
  std::string out = "lost " + std::to_string(groups_lost) + "/" +
                    std::to_string(groups_total) + " groups (" +
                    std::to_string(rows_lost) + " of " +
                    std::to_string(rows_total) + " rows)";
  constexpr std::size_t kMaxListed = 8;
  for (std::size_t i = 0; i < damage.size() && i < kMaxListed; ++i) {
    out += "; group " + std::to_string(damage[i].group) + ": " +
           damage[i].status.to_string();
  }
  if (damage.size() > kMaxListed) {
    out += "; +" + std::to_string(damage.size() - kMaxListed) + " more";
  }
  return out;
}

std::vector<std::uint8_t> encode_scol(const SnapshotTable& table,
                                      const ScolOptions& options,
                                      ThreadPool* pool) {
  if (options.format_version == 1) return encode_scol_v1(table, options);
  return encode_scol_v2(table, options, pool);
}

Status decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                   const ScolOptions& options, SalvageReport* report,
                   ThreadPool* pool) {
  if (report) *report = SalvageReport{};
  if (bytes.size() >= sizeof(kMagicV2) &&
      std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    return decode_scol_v2(bytes, table, options, report, pool);
  }
  if (bytes.size() >= sizeof(kMagicV1) &&
      std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    // v1 is one whole-table column set: no per-group checksums to salvage
    // against, so the policy degenerates to strict decode.
    const Status s = decode_scol_v1(bytes, table, options.columns);
    if (s.ok() && report) {
      report->groups_total = 1;
      report->rows_total = report->rows_recovered = table->size();
    }
    return s;
  }
  return Status::corruption("bad magic");
}

bool decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                 std::string* error, ThreadPool* pool) {
  const Status s = decode_scol(bytes, table, ScolOptions{}, nullptr, pool);
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

ScolColumnSizes scol_column_sizes(const SnapshotTable& table,
                                  const ScolOptions& options) {
  ScolColumnSizes sizes;
  const Encoding ts_enc =
      options.delta_timestamps ? kEncDeltaPrev : kEncZigzagAbs;
  const Encoding rel_enc =
      options.delta_timestamps ? kEncDeltaMtime : kEncZigzagAbs;
  const std::size_t n = table.size();
  sizes.paths = encode_paths(table, 0, n, options.front_code_paths).size();
  sizes.mtime = encode_i64_column(table.mtimes(), ts_enc, {}).size();
  sizes.atime =
      encode_i64_column(table.atimes(), rel_enc, table.mtimes()).size();
  sizes.ctime =
      encode_i64_column(table.ctimes(), rel_enc, table.mtimes()).size();
  sizes.uid = encode_u32_column(table.uids(), options.rle_ids).size();
  sizes.gid = encode_u32_column(table.gids(), options.rle_ids).size();
  sizes.mode = encode_u32_column(table.modes(), options.rle_ids).size();
  sizes.inode = encode_inodes(table.inodes(), options.delta_inodes).size();
  sizes.ost = encode_osts(table, 0, n).size();
  sizes.total = sizes.paths + sizes.atime + sizes.ctime + sizes.mtime +
                sizes.uid + sizes.gid + sizes.mode + sizes.inode + sizes.ost;
  return sizes;
}

Status write_scol_file(const SnapshotTable& table, const std::string& file,
                       const ScolOptions& options) {
  const std::vector<std::uint8_t> image = encode_scol(table, options);
  return write_file_atomic(file, std::span<const std::uint8_t>(image));
}

Status read_scol_file(const std::string& file, SnapshotTable* table,
                      const ScolOptions& options, SalvageReport* report) {
  std::vector<std::uint8_t> bytes;
  Status s = read_file(file, &bytes);
  if (!s.ok()) return s;
  return decode_scol(bytes, table, options, report).with_context(file);
}

bool write_scol_file(const SnapshotTable& table, const std::string& file,
                     std::string* error, const ScolOptions& options) {
  const Status s = write_scol_file(table, file, options);
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

bool read_scol_file(const std::string& file, SnapshotTable* table,
                    std::string* error) {
  const Status s = read_scol_file(file, table, ScolOptions{});
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

}  // namespace spider
