#include "snapshot/scol.h"

#include <cstring>
#include <fstream>
#include <map>

#include "snapshot/varint.h"
#include "util/hash.h"
#include "util/parallel.h"

namespace spider {

namespace {

constexpr char kMagicV1[8] = {'S', 'C', 'O', 'L', '0', '0', '0', '1'};
constexpr char kMagicV2[8] = {'S', 'C', 'O', 'L', '0', '0', '0', '2'};

enum ColumnId : std::uint8_t {
  kColPaths = 1,
  kColAtime = 2,
  kColCtime = 3,
  kColMtime = 4,
  kColUid = 5,
  kColGid = 6,
  kColMode = 7,
  kColInode = 8,
  kColOst = 9,
};

enum Encoding : std::uint8_t {
  kEncPlainStrings = 0,  // varint length + bytes
  kEncFrontCoded = 1,    // varint shared-prefix + varint suffix len + bytes
  kEncZigzagAbs = 2,     // absolute zig-zag varint per row
  kEncDeltaPrev = 3,     // zig-zag varint delta vs previous row
  kEncDeltaMtime = 4,    // zig-zag varint delta vs same-row mtime
  kEncPlainVarint = 5,   // varint per row
  kEncRle = 6,           // (varint run length, varint value) pairs
  kEncOstLists = 7,      // varint count + varint values per row
};

void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool get_u64_le(std::span<const std::uint8_t> in, std::size_t& pos,
                std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 8;
  return true;
}

std::uint64_t payload_checksum(std::span<const std::uint8_t> payload) {
  return hash_bytes(std::string_view(
      reinterpret_cast<const char*>(payload.data()), payload.size()));
}

std::size_t shared_prefix(std::string_view a, std::string_view b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

// ---- column encoders ------------------------------------------------------
// Every encoder covers rows [begin, end) and starts from fresh state
// (empty front-coding prefix, zero delta base, new run), which is what
// makes a v2 row group decodable without its predecessors.

std::vector<std::uint8_t> encode_paths(const SnapshotTable& t,
                                       std::size_t begin, std::size_t end,
                                       bool front_code) {
  std::vector<std::uint8_t> out;
  std::string_view prev;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string_view p = t.path(i);
    if (front_code) {
      const std::size_t shared = shared_prefix(prev, p);
      put_varint(out, shared);
      put_varint(out, p.size() - shared);
      out.insert(out.end(), p.begin() + static_cast<std::ptrdiff_t>(shared),
                 p.end());
      prev = p;
    } else {
      put_varint(out, p.size());
      out.insert(out.end(), p.begin(), p.end());
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_i64_column(std::span<const std::int64_t> col,
                                            Encoding enc,
                                            std::span<const std::int64_t> base) {
  std::vector<std::uint8_t> out;
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    switch (enc) {
      case kEncZigzagAbs:
        put_zigzag(out, col[i]);
        break;
      case kEncDeltaPrev:
        put_zigzag(out, col[i] - prev);
        prev = col[i];
        break;
      case kEncDeltaMtime:
        put_zigzag(out, col[i] - base[i]);
        break;
      default:
        break;
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_u32_column(std::span<const std::uint32_t> col,
                                            bool rle) {
  std::vector<std::uint8_t> out;
  if (!rle) {
    for (const std::uint32_t v : col) put_varint(out, v);
    return out;
  }
  std::size_t i = 0;
  while (i < col.size()) {
    std::size_t run = 1;
    while (i + run < col.size() && col[i + run] == col[i]) ++run;
    put_varint(out, run);
    put_varint(out, col[i]);
    i += run;
  }
  return out;
}

std::vector<std::uint8_t> encode_inodes(std::span<const std::uint64_t> col,
                                        bool delta) {
  std::vector<std::uint8_t> out;
  std::uint64_t prev = 0;
  for (const std::uint64_t v : col) {
    if (delta) {
      put_zigzag(out, static_cast<std::int64_t>(v - prev));
      prev = v;
    } else {
      put_varint(out, v);
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_osts(const SnapshotTable& t,
                                      std::size_t begin, std::size_t end) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = begin; i < end; ++i) {
    const auto osts = t.osts(i);
    put_varint(out, osts.size());
    for (const std::uint32_t o : osts) put_varint(out, o);
  }
  return out;
}

void append_column(std::vector<std::uint8_t>& image, ColumnId id, Encoding enc,
                   const std::vector<std::uint8_t>& payload) {
  image.push_back(id);
  image.push_back(enc);
  put_u64_le(image, payload.size());
  put_u64_le(image, payload_checksum(payload));
  image.insert(image.end(), payload.begin(), payload.end());
}

/// Writes the column-count byte plus all nine column blocks for rows
/// [begin, end). The whole v1 body, and one v2 row group.
void encode_column_set(std::vector<std::uint8_t>& out, const SnapshotTable& t,
                       std::size_t begin, std::size_t end,
                       const ScolOptions& options) {
  const Encoding ts_enc =
      options.delta_timestamps ? kEncDeltaPrev : kEncZigzagAbs;
  const Encoding rel_enc =
      options.delta_timestamps ? kEncDeltaMtime : kEncZigzagAbs;
  const Encoding id_enc = options.rle_ids ? kEncRle : kEncPlainVarint;
  const std::size_t n = end - begin;

  out.push_back(9);  // column count
  append_column(out, kColPaths,
                options.front_code_paths ? kEncFrontCoded : kEncPlainStrings,
                encode_paths(t, begin, end, options.front_code_paths));
  append_column(out, kColMtime, ts_enc,
                encode_i64_column(t.mtimes().subspan(begin, n), ts_enc, {}));
  append_column(out, kColAtime, rel_enc,
                encode_i64_column(t.atimes().subspan(begin, n), rel_enc,
                                  t.mtimes().subspan(begin, n)));
  append_column(out, kColCtime, rel_enc,
                encode_i64_column(t.ctimes().subspan(begin, n), rel_enc,
                                  t.mtimes().subspan(begin, n)));
  append_column(out, kColUid, id_enc,
                encode_u32_column(t.uids().subspan(begin, n), options.rle_ids));
  append_column(out, kColGid, id_enc,
                encode_u32_column(t.gids().subspan(begin, n), options.rle_ids));
  append_column(out, kColMode, id_enc,
                encode_u32_column(t.modes().subspan(begin, n),
                                  options.rle_ids));
  append_column(out, kColInode,
                options.delta_inodes ? kEncDeltaPrev : kEncPlainVarint,
                encode_inodes(t.inodes().subspan(begin, n),
                              options.delta_inodes));
  append_column(out, kColOst, kEncOstLists, encode_osts(t, begin, end));
}

// ---- column decoders ------------------------------------------------------

struct ColumnBlock {
  Encoding enc = kEncPlainStrings;
  std::span<const std::uint8_t> payload;
};

bool fail(std::string* error, std::string_view reason) {
  if (error) *error = std::string(reason);
  return false;
}

bool decode_paths(const ColumnBlock& block, std::size_t rows,
                  std::vector<std::string>* out, std::string* error) {
  // Every row costs at least one payload byte; rejecting implausible row
  // counts up front keeps a corrupted header from driving a huge reserve.
  if (rows > block.payload.size()) {
    return fail(error, "paths: row count exceeds payload");
  }
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  std::string prev;
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t shared = 0, len = 0;
    if (block.enc == kEncFrontCoded) {
      if (!get_varint(block.payload, pos, shared)) {
        return fail(error, "paths: truncated shared length");
      }
      if (shared > prev.size()) return fail(error, "paths: bad shared length");
    }
    if (!get_varint(block.payload, pos, len)) {
      return fail(error, "paths: truncated suffix length");
    }
    if (pos + len > block.payload.size()) {
      return fail(error, "paths: truncated suffix bytes");
    }
    std::string path = prev.substr(0, shared);
    path.append(reinterpret_cast<const char*>(block.payload.data() + pos),
                len);
    pos += len;
    prev = path;
    out->push_back(std::move(path));
  }
  return true;
}

bool decode_i64(const ColumnBlock& block, std::size_t rows,
                std::span<const std::int64_t> base,
                std::vector<std::int64_t>* out, std::string* error) {
  if (rows > block.payload.size()) {
    return fail(error, "timestamp row count exceeds payload");
  }
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    std::int64_t v = 0;
    if (!get_zigzag(block.payload, pos, v)) {
      return fail(error, "timestamp column truncated");
    }
    switch (block.enc) {
      case kEncZigzagAbs:
        break;
      case kEncDeltaPrev:
        v += prev;
        prev = v;
        break;
      case kEncDeltaMtime:
        if (base.size() != rows) return fail(error, "missing mtime base");
        v += base[i];
        break;
      default:
        return fail(error, "bad timestamp encoding");
    }
    out->push_back(v);
  }
  return true;
}

bool decode_u32(const ColumnBlock& block, std::size_t rows,
                std::vector<std::uint32_t>* out, std::string* error) {
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  if (block.enc == kEncPlainVarint) {
    for (std::size_t i = 0; i < rows; ++i) {
      std::uint64_t v = 0;
      if (!get_varint(block.payload, pos, v)) {
        return fail(error, "u32 column truncated");
      }
      out->push_back(static_cast<std::uint32_t>(v));
    }
    return true;
  }
  if (block.enc != kEncRle) return fail(error, "bad u32 encoding");
  while (out->size() < rows) {
    std::uint64_t run = 0, value = 0;
    if (!get_varint(block.payload, pos, run) ||
        !get_varint(block.payload, pos, value)) {
      return fail(error, "rle column truncated");
    }
    if (run == 0 || out->size() + run > rows) {
      return fail(error, "rle run overflows row count");
    }
    out->insert(out->end(), run, static_cast<std::uint32_t>(value));
  }
  return true;
}

bool decode_inodes(const ColumnBlock& block, std::size_t rows,
                   std::vector<std::uint64_t>* out, std::string* error) {
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    if (block.enc == kEncDeltaPrev) {
      std::int64_t d = 0;
      if (!get_zigzag(block.payload, pos, d)) {
        return fail(error, "inode column truncated");
      }
      prev += static_cast<std::uint64_t>(d);
      out->push_back(prev);
    } else if (block.enc == kEncPlainVarint) {
      std::uint64_t v = 0;
      if (!get_varint(block.payload, pos, v)) {
        return fail(error, "inode column truncated");
      }
      out->push_back(v);
    } else {
      return fail(error, "bad inode encoding");
    }
  }
  return true;
}

bool decode_osts(const ColumnBlock& block, std::size_t rows,
                 std::vector<std::uint32_t>* offsets,
                 std::vector<std::uint32_t>* values, std::string* error) {
  offsets->clear();
  values->clear();
  offsets->reserve(rows + 1);
  offsets->push_back(0);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t count = 0;
    if (!get_varint(block.payload, pos, count)) {
      return fail(error, "ost column truncated");
    }
    if (count > 4096) return fail(error, "implausible stripe count");
    for (std::uint64_t k = 0; k < count; ++k) {
      std::uint64_t v = 0;
      if (!get_varint(block.payload, pos, v)) {
        return fail(error, "ost column truncated");
      }
      values->push_back(static_cast<std::uint32_t>(v));
    }
    offsets->push_back(static_cast<std::uint32_t>(values->size()));
  }
  return true;
}

/// Reads one column set (count byte + blocks) for `rows` rows starting at
/// `pos`, validating checksums, and appends the decoded rows to `table`.
/// The inverse of encode_column_set; the whole v1 body, one v2 row group.
bool decode_column_set(std::span<const std::uint8_t> bytes, std::size_t pos,
                       std::size_t rows, SnapshotTable* table,
                       std::string* error) {
  if (pos >= bytes.size()) return fail(error, "truncated column set");
  const std::uint8_t ncols = bytes[pos++];

  std::map<std::uint8_t, ColumnBlock> blocks;
  for (std::uint8_t c = 0; c < ncols; ++c) {
    if (pos + 2 > bytes.size()) return fail(error, "truncated column header");
    const std::uint8_t id = bytes[pos++];
    const Encoding enc = static_cast<Encoding>(bytes[pos++]);
    std::uint64_t size = 0, checksum = 0;
    if (!get_u64_le(bytes, pos, size) || !get_u64_le(bytes, pos, checksum)) {
      return fail(error, "truncated column header");
    }
    if (size > bytes.size() - pos) return fail(error, "truncated payload");
    const auto payload = bytes.subspan(pos, size);
    if (payload_checksum(payload) != checksum) {
      return fail(error, "column checksum mismatch");
    }
    blocks[id] = ColumnBlock{enc, payload};
    pos += size;
  }
  for (const std::uint8_t id :
       {kColPaths, kColAtime, kColCtime, kColMtime, kColUid, kColGid,
        kColMode, kColInode, kColOst}) {
    if (!blocks.count(id)) return fail(error, "missing column");
  }

  std::vector<std::string> paths;
  std::vector<std::int64_t> atime, ctime, mtime;
  std::vector<std::uint32_t> uid, gid, mode, ost_offsets, ost_values;
  std::vector<std::uint64_t> inode;
  if (!decode_paths(blocks[kColPaths], rows, &paths, error)) return false;
  if (!decode_i64(blocks[kColMtime], rows, {}, &mtime, error)) return false;
  if (!decode_i64(blocks[kColAtime], rows, mtime, &atime, error)) return false;
  if (!decode_i64(blocks[kColCtime], rows, mtime, &ctime, error)) return false;
  if (!decode_u32(blocks[kColUid], rows, &uid, error)) return false;
  if (!decode_u32(blocks[kColGid], rows, &gid, error)) return false;
  if (!decode_u32(blocks[kColMode], rows, &mode, error)) return false;
  if (!decode_inodes(blocks[kColInode], rows, &inode, error)) return false;
  if (!decode_osts(blocks[kColOst], rows, &ost_offsets, &ost_values, error)) {
    return false;
  }

  table->reserve(table->size() + rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::span<const std::uint32_t> osts =
        std::span<const std::uint32_t>(ost_values)
            .subspan(ost_offsets[i], ost_offsets[i + 1] - ost_offsets[i]);
    table->add(paths[i], atime[i], ctime[i], mtime[i], uid[i], gid[i], mode[i],
               inode[i], osts);
  }
  return true;
}

// ---- v1 (single column set) ----------------------------------------------

std::vector<std::uint8_t> encode_scol_v1(const SnapshotTable& table,
                                         const ScolOptions& options) {
  std::vector<std::uint8_t> image;
  image.insert(image.end(), kMagicV1, kMagicV1 + sizeof(kMagicV1));
  put_u64_le(image, table.size());
  encode_column_set(image, table, 0, table.size(), options);
  return image;
}

bool decode_scol_v1(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                    std::string* error) {
  std::size_t pos = sizeof(kMagicV1);
  std::uint64_t rows = 0;
  if (!get_u64_le(bytes, pos, rows)) return fail(error, "truncated header");
  return decode_column_set(bytes, pos, rows, table, error);
}

// ---- v2 (row groups) ------------------------------------------------------
//
//   magic "SCOL0002"
//   u64 total rows
//   u64 nominal group size (rows; last group may be short)
//   u64 group count
//   directory: per group { u64 rows, u64 byte size }
//   groups, concatenated in row order; each one column set
//
// Group byte offsets are the running sum of directory sizes, so the
// directory fully bounds every group before any payload is touched.

std::vector<std::uint8_t> encode_scol_v2(const SnapshotTable& table,
                                         const ScolOptions& options,
                                         ThreadPool* pool) {
  const std::size_t rows = table.size();
  const std::size_t group_size = std::max<std::size_t>(1, options.group_size);
  const std::size_t ngroups = (rows + group_size - 1) / group_size;

  std::vector<std::vector<std::uint8_t>> groups(ngroups);
  parallel_for(
      ngroups,
      [&](std::size_t g) {
        const std::size_t begin = g * group_size;
        const std::size_t end = std::min(begin + group_size, rows);
        encode_column_set(groups[g], table, begin, end, options);
      },
      pool, /*grain=*/1);

  std::size_t payload_bytes = 0;
  for (const auto& g : groups) payload_bytes += g.size();

  std::vector<std::uint8_t> image;
  image.reserve(sizeof(kMagicV2) + 3 * 8 + ngroups * 16 + payload_bytes);
  image.insert(image.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));
  put_u64_le(image, rows);
  put_u64_le(image, group_size);
  put_u64_le(image, ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::size_t begin = g * group_size;
    put_u64_le(image, std::min(group_size, rows - begin));
    put_u64_le(image, groups[g].size());
  }
  for (const auto& g : groups) image.insert(image.end(), g.begin(), g.end());
  return image;
}

bool decode_scol_v2(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                    std::string* error, ThreadPool* pool) {
  std::size_t pos = sizeof(kMagicV2);
  std::uint64_t rows = 0, group_size = 0, ngroups = 0;
  if (!get_u64_le(bytes, pos, rows) || !get_u64_le(bytes, pos, group_size) ||
      !get_u64_le(bytes, pos, ngroups)) {
    return fail(error, "truncated header");
  }
  if (ngroups > (bytes.size() - pos) / 16) {
    return fail(error, "implausible group count");
  }

  std::vector<std::uint64_t> group_rows(ngroups);
  std::vector<std::size_t> group_begin(ngroups), group_len(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    std::uint64_t size = 0;
    if (!get_u64_le(bytes, pos, group_rows[g]) ||
        !get_u64_le(bytes, pos, size)) {
      return fail(error, "truncated group directory");
    }
    group_len[g] = static_cast<std::size_t>(size);
  }
  std::uint64_t dir_rows = 0;
  std::size_t offset = pos;
  for (std::size_t g = 0; g < ngroups; ++g) {
    dir_rows += group_rows[g];
    if (group_len[g] > bytes.size() - offset) {
      return fail(error, "group extends past end of image");
    }
    group_begin[g] = offset;
    offset += group_len[g];
  }
  if (dir_rows != rows) return fail(error, "group directory row mismatch");

  // Decode groups concurrently into per-group staging tables; any failure
  // is reported for the lowest-numbered failing group so messages are
  // deterministic across schedules.
  std::vector<SnapshotTable> staging(ngroups);
  std::vector<std::string> group_error(ngroups);
  std::vector<std::uint8_t> ok(ngroups, 0);
  parallel_for(
      ngroups,
      [&](std::size_t g) {
        ok[g] = decode_column_set(bytes.subspan(group_begin[g], group_len[g]),
                                  0, group_rows[g], &staging[g],
                                  &group_error[g])
                    ? 1
                    : 0;
      },
      pool, /*grain=*/1);
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (!ok[g]) {
      return fail(error,
                  "group " + std::to_string(g) + ": " + group_error[g]);
    }
  }

  table->reserve(table->size() + rows);
  for (std::size_t g = 0; g < ngroups; ++g) {
    table->append_table(std::move(staging[g]));
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_scol(const SnapshotTable& table,
                                      const ScolOptions& options,
                                      ThreadPool* pool) {
  if (options.format_version == 1) return encode_scol_v1(table, options);
  return encode_scol_v2(table, options, pool);
}

bool decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                 std::string* error, ThreadPool* pool) {
  if (bytes.size() >= sizeof(kMagicV2) &&
      std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    return decode_scol_v2(bytes, table, error, pool);
  }
  if (bytes.size() >= sizeof(kMagicV1) &&
      std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    return decode_scol_v1(bytes, table, error);
  }
  return fail(error, "bad magic");
}

ScolColumnSizes scol_column_sizes(const SnapshotTable& table,
                                  const ScolOptions& options) {
  ScolColumnSizes sizes;
  const Encoding ts_enc =
      options.delta_timestamps ? kEncDeltaPrev : kEncZigzagAbs;
  const Encoding rel_enc =
      options.delta_timestamps ? kEncDeltaMtime : kEncZigzagAbs;
  const std::size_t n = table.size();
  sizes.paths = encode_paths(table, 0, n, options.front_code_paths).size();
  sizes.mtime = encode_i64_column(table.mtimes(), ts_enc, {}).size();
  sizes.atime =
      encode_i64_column(table.atimes(), rel_enc, table.mtimes()).size();
  sizes.ctime =
      encode_i64_column(table.ctimes(), rel_enc, table.mtimes()).size();
  sizes.uid = encode_u32_column(table.uids(), options.rle_ids).size();
  sizes.gid = encode_u32_column(table.gids(), options.rle_ids).size();
  sizes.mode = encode_u32_column(table.modes(), options.rle_ids).size();
  sizes.inode = encode_inodes(table.inodes(), options.delta_inodes).size();
  sizes.ost = encode_osts(table, 0, n).size();
  sizes.total = sizes.paths + sizes.atime + sizes.ctime + sizes.mtime +
                sizes.uid + sizes.gid + sizes.mode + sizes.inode + sizes.ost;
  return sizes;
}

bool write_scol_file(const SnapshotTable& table, const std::string& file,
                     std::string* error, const ScolOptions& options) {
  const std::vector<std::uint8_t> image = encode_scol(table, options);
  std::ofstream os(file, std::ios::binary);
  if (!os) {
    if (error) *error = "cannot open for write: " + file;
    return false;
  }
  os.write(reinterpret_cast<const char*>(image.data()),
           static_cast<std::streamsize>(image.size()));
  os.flush();
  if (!os) {
    if (error) *error = "write failed: " + file;
    return false;
  }
  return true;
}

bool read_scol_file(const std::string& file, SnapshotTable* table,
                    std::string* error) {
  std::ifstream is(file, std::ios::binary | std::ios::ate);
  if (!is) {
    if (error) *error = "cannot open for read: " + file;
    return false;
  }
  const std::streamsize size = is.tellg();
  is.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  is.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!is) {
    if (error) *error = "read failed: " + file;
    return false;
  }
  return decode_scol(bytes, table, error);
}

}  // namespace spider
