#include "snapshot/scol.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "snapshot/varint.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/parallel.h"

namespace spider {

namespace {

constexpr char kMagicV1[8] = {'S', 'C', 'O', 'L', '0', '0', '0', '1'};
constexpr char kMagicV2[8] = {'S', 'C', 'O', 'L', '0', '0', '0', '2'};

enum ColumnId : std::uint8_t {
  kColPaths = 1,
  kColAtime = 2,
  kColCtime = 3,
  kColMtime = 4,
  kColUid = 5,
  kColGid = 6,
  kColMode = 7,
  kColInode = 8,
  kColOst = 9,
};

enum Encoding : std::uint8_t {
  kEncPlainStrings = 0,  // varint length + bytes
  kEncFrontCoded = 1,    // varint shared-prefix + varint suffix len + bytes
  kEncZigzagAbs = 2,     // absolute zig-zag varint per row
  kEncDeltaPrev = 3,     // zig-zag varint delta vs previous row
  kEncDeltaMtime = 4,    // zig-zag varint delta vs same-row mtime
  kEncPlainVarint = 5,   // varint per row
  kEncRle = 6,           // (varint run length, varint value) pairs
  kEncOstLists = 7,      // varint count + varint values per row
};

void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool get_u64_le(std::span<const std::uint8_t> in, std::size_t& pos,
                std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 8;
  return true;
}

std::uint64_t payload_checksum(std::span<const std::uint8_t> payload) {
  return hash_bytes(std::string_view(
      reinterpret_cast<const char*>(payload.data()), payload.size()));
}

std::size_t shared_prefix(std::string_view a, std::string_view b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

/// Signed addition through unsigned arithmetic: corrupt delta payloads can
/// produce arbitrary operands, and plain `a + b` on int64 would be UB on
/// overflow (the sanitizer suite runs decode against random damage).
std::int64_t wrapping_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

// ---- column encoders ------------------------------------------------------
// Every encoder covers rows [begin, end) and starts from fresh state
// (empty front-coding prefix, zero delta base, new run), which is what
// makes a v2 row group decodable without its predecessors.

std::vector<std::uint8_t> encode_paths(const SnapshotTable& t,
                                       std::size_t begin, std::size_t end,
                                       bool front_code) {
  std::vector<std::uint8_t> out;
  std::string_view prev;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string_view p = t.path(i);
    if (front_code) {
      const std::size_t shared = shared_prefix(prev, p);
      put_varint(out, shared);
      put_varint(out, p.size() - shared);
      out.insert(out.end(), p.begin() + static_cast<std::ptrdiff_t>(shared),
                 p.end());
      prev = p;
    } else {
      put_varint(out, p.size());
      out.insert(out.end(), p.begin(), p.end());
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_i64_column(std::span<const std::int64_t> col,
                                            Encoding enc,
                                            std::span<const std::int64_t> base) {
  std::vector<std::uint8_t> out;
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    switch (enc) {
      case kEncZigzagAbs:
        put_zigzag(out, col[i]);
        break;
      case kEncDeltaPrev:
        put_zigzag(out, col[i] - prev);
        prev = col[i];
        break;
      case kEncDeltaMtime:
        put_zigzag(out, col[i] - base[i]);
        break;
      default:
        break;
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_u32_column(std::span<const std::uint32_t> col,
                                            bool rle) {
  std::vector<std::uint8_t> out;
  if (!rle) {
    for (const std::uint32_t v : col) put_varint(out, v);
    return out;
  }
  std::size_t i = 0;
  while (i < col.size()) {
    std::size_t run = 1;
    while (i + run < col.size() && col[i + run] == col[i]) ++run;
    put_varint(out, run);
    put_varint(out, col[i]);
    i += run;
  }
  return out;
}

std::vector<std::uint8_t> encode_inodes(std::span<const std::uint64_t> col,
                                        bool delta) {
  std::vector<std::uint8_t> out;
  std::uint64_t prev = 0;
  for (const std::uint64_t v : col) {
    if (delta) {
      put_zigzag(out, static_cast<std::int64_t>(v - prev));
      prev = v;
    } else {
      put_varint(out, v);
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_osts(const SnapshotTable& t,
                                      std::size_t begin, std::size_t end) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = begin; i < end; ++i) {
    const auto osts = t.osts(i);
    put_varint(out, osts.size());
    for (const std::uint32_t o : osts) put_varint(out, o);
  }
  return out;
}

void append_column(std::vector<std::uint8_t>& image, ColumnId id, Encoding enc,
                   const std::vector<std::uint8_t>& payload) {
  image.push_back(id);
  image.push_back(enc);
  put_u64_le(image, payload.size());
  put_u64_le(image, payload_checksum(payload));
  image.insert(image.end(), payload.begin(), payload.end());
}

/// Writes the column-count byte plus all nine column blocks for rows
/// [begin, end). The whole v1 body, and one v2 row group.
void encode_column_set(std::vector<std::uint8_t>& out, const SnapshotTable& t,
                       std::size_t begin, std::size_t end,
                       const ScolOptions& options) {
  const Encoding ts_enc =
      options.delta_timestamps ? kEncDeltaPrev : kEncZigzagAbs;
  const Encoding rel_enc =
      options.delta_timestamps ? kEncDeltaMtime : kEncZigzagAbs;
  const Encoding id_enc = options.rle_ids ? kEncRle : kEncPlainVarint;
  const std::size_t n = end - begin;

  out.push_back(9);  // column count
  append_column(out, kColPaths,
                options.front_code_paths ? kEncFrontCoded : kEncPlainStrings,
                encode_paths(t, begin, end, options.front_code_paths));
  append_column(out, kColMtime, ts_enc,
                encode_i64_column(t.mtimes().subspan(begin, n), ts_enc, {}));
  append_column(out, kColAtime, rel_enc,
                encode_i64_column(t.atimes().subspan(begin, n), rel_enc,
                                  t.mtimes().subspan(begin, n)));
  append_column(out, kColCtime, rel_enc,
                encode_i64_column(t.ctimes().subspan(begin, n), rel_enc,
                                  t.mtimes().subspan(begin, n)));
  append_column(out, kColUid, id_enc,
                encode_u32_column(t.uids().subspan(begin, n), options.rle_ids));
  append_column(out, kColGid, id_enc,
                encode_u32_column(t.gids().subspan(begin, n), options.rle_ids));
  append_column(out, kColMode, id_enc,
                encode_u32_column(t.modes().subspan(begin, n),
                                  options.rle_ids));
  append_column(out, kColInode,
                options.delta_inodes ? kEncDeltaPrev : kEncPlainVarint,
                encode_inodes(t.inodes().subspan(begin, n),
                              options.delta_inodes));
  append_column(out, kColOst, kEncOstLists, encode_osts(t, begin, end));
}

// ---- column decoders ------------------------------------------------------
// Decoders return a typed Status: kTruncated when the payload ends before
// its own framing says it should, kCorruption for values that cannot be
// valid (bad shared length, bad encoding id, overlong runs).

struct ColumnBlock {
  Encoding enc = kEncPlainStrings;
  std::span<const std::uint8_t> payload;
};

Status decode_paths(const ColumnBlock& block, std::size_t rows,
                    std::vector<std::string>* out) {
  // Every row costs at least one payload byte; rejecting implausible row
  // counts up front keeps a corrupted header from driving a huge reserve.
  if (rows > block.payload.size()) {
    return Status::corruption("paths: row count exceeds payload");
  }
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  std::string prev;
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t shared = 0, len = 0;
    if (block.enc == kEncFrontCoded) {
      if (!get_varint(block.payload, pos, shared)) {
        return Status::truncated("paths: truncated shared length");
      }
      if (shared > prev.size()) {
        return Status::corruption("paths: bad shared length");
      }
    }
    if (!get_varint(block.payload, pos, len)) {
      return Status::truncated("paths: truncated suffix length");
    }
    if (len > block.payload.size() - pos) {
      return Status::truncated("paths: truncated suffix bytes");
    }
    std::string path = prev.substr(0, shared);
    path.append(reinterpret_cast<const char*>(block.payload.data() + pos),
                len);
    pos += len;
    prev = path;
    out->push_back(std::move(path));
  }
  return Status();
}

Status decode_i64(const ColumnBlock& block, std::size_t rows,
                  std::span<const std::int64_t> base,
                  std::vector<std::int64_t>* out) {
  if (rows > block.payload.size()) {
    return Status::corruption("timestamp row count exceeds payload");
  }
  out->clear();
  if (rows == 0) return Status();
  // Bulk varint decode (SIMD when available), then the per-encoding
  // transform over the raw values. Failure ordering matches the row-at-a-
  // time reference loop: a transform-level defect (bad encoding id,
  // missing delta base) only surfaces after the first varint has been
  // read successfully — the reference decoded value 0 before hitting the
  // transform — so corrupt inputs keep their historical Status codes.
  const bool enc_ok = block.enc == kEncZigzagAbs ||
                      block.enc == kEncDeltaPrev ||
                      block.enc == kEncDeltaMtime;
  const bool base_ok = block.enc != kEncDeltaMtime || base.size() == rows;
  if (!enc_ok || !base_ok) {
    std::size_t probe = 0;
    std::uint64_t first = 0;
    if (!get_varint(block.payload, probe, first)) {
      return Status::truncated("timestamp column truncated");
    }
    return Status::corruption(enc_ok ? "missing mtime base"
                                     : "bad timestamp encoding");
  }
  std::vector<std::uint64_t> raw(rows);
  std::size_t pos = 0;
  if (!get_varints(block.payload, pos, raw.data(), rows)) {
    return Status::truncated("timestamp column truncated");
  }
  out->resize(rows);
  zigzag_decode_bulk(raw.data(), out->data(), rows);
  if (block.enc == kEncDeltaPrev) {
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < rows; ++i) {
      prev = wrapping_add((*out)[i], prev);
      (*out)[i] = prev;
    }
  } else if (block.enc == kEncDeltaMtime) {
    for (std::size_t i = 0; i < rows; ++i) {
      (*out)[i] = wrapping_add((*out)[i], base[i]);
    }
  }
  return Status();
}

Status decode_u32(const ColumnBlock& block, std::size_t rows,
                  std::vector<std::uint32_t>* out) {
  out->clear();
  out->reserve(rows);
  std::size_t pos = 0;
  if (block.enc == kEncPlainVarint) {
    std::vector<std::uint64_t> raw(rows);
    if (!get_varints(block.payload, pos, raw.data(), rows)) {
      return Status::truncated("u32 column truncated");
    }
    for (std::size_t i = 0; i < rows; ++i) {
      out->push_back(static_cast<std::uint32_t>(raw[i]));
    }
    return Status();
  }
  if (block.enc != kEncRle) return Status::corruption("bad u32 encoding");
  while (out->size() < rows) {
    std::uint64_t run = 0, value = 0;
    if (!get_varint(block.payload, pos, run) ||
        !get_varint(block.payload, pos, value)) {
      return Status::truncated("rle column truncated");
    }
    if (run == 0 || out->size() + run > rows) {
      return Status::corruption("rle run overflows row count");
    }
    out->insert(out->end(), run, static_cast<std::uint32_t>(value));
  }
  return Status();
}

Status decode_inodes(const ColumnBlock& block, std::size_t rows,
                     std::vector<std::uint64_t>* out) {
  out->clear();
  if (rows == 0) return Status();
  if (block.enc != kEncDeltaPrev && block.enc != kEncPlainVarint) {
    // The reference loop rejects the encoding before reading any bytes.
    return Status::corruption("bad inode encoding");
  }
  out->resize(rows);
  std::size_t pos = 0;
  if (!get_varints(block.payload, pos, out->data(), rows)) {
    return Status::truncated("inode column truncated");
  }
  if (block.enc == kEncDeltaPrev) {
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < rows; ++i) {
      prev += static_cast<std::uint64_t>(
          zigzag_decode((*out)[i]));
      (*out)[i] = prev;
    }
  }
  return Status();
}

Status decode_osts(const ColumnBlock& block, std::size_t rows,
                   std::vector<std::uint32_t>* offsets,
                   std::vector<std::uint32_t>* values) {
  offsets->clear();
  values->clear();
  offsets->reserve(rows + 1);
  offsets->push_back(0);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t count = 0;
    if (!get_varint(block.payload, pos, count)) {
      return Status::truncated("ost column truncated");
    }
    if (count > 4096) return Status::corruption("implausible stripe count");
    for (std::uint64_t k = 0; k < count; ++k) {
      std::uint64_t v = 0;
      if (!get_varint(block.payload, pos, v)) {
        return Status::truncated("ost column truncated");
      }
      values->push_back(static_cast<std::uint32_t>(v));
    }
    offsets->push_back(static_cast<std::uint32_t>(values->size()));
  }
  return Status();
}

/// Reads one column set (count byte + blocks) for `rows` rows starting at
/// `pos`, validating checksums, and appends the decoded rows to `table`.
/// The inverse of encode_column_set; the whole v1 body, one v2 row group.
/// On a non-ok Status `table` is untouched (rows append only at the end).
///
/// Projection: only columns in `columns` are decoded and materialized;
/// the rest read back as zero/empty. Checksum validation and structural
/// checks run for every block regardless, so a damaged image fails (or
/// salvages) identically at any projection.
Status decode_column_set(std::span<const std::uint8_t> bytes, std::size_t pos,
                         std::size_t rows, SnapshotTable* table,
                         ColumnMask columns) {
  if (pos >= bytes.size()) return Status::truncated("truncated column set");
  const std::uint8_t ncols = bytes[pos++];

  std::map<std::uint8_t, ColumnBlock> blocks;
  for (std::uint8_t c = 0; c < ncols; ++c) {
    if (pos + 2 > bytes.size()) {
      return Status::truncated("truncated column header");
    }
    const std::uint8_t id = bytes[pos++];
    const Encoding enc = static_cast<Encoding>(bytes[pos++]);
    std::uint64_t size = 0, checksum = 0;
    if (!get_u64_le(bytes, pos, size) || !get_u64_le(bytes, pos, checksum)) {
      return Status::truncated("truncated column header");
    }
    if (size > bytes.size() - pos) {
      return Status::truncated("truncated payload");
    }
    const auto payload = bytes.subspan(pos, size);
    if (payload_checksum(payload) != checksum) {
      return Status::corruption("column checksum mismatch");
    }
    blocks[id] = ColumnBlock{enc, payload};
    pos += size;
  }
  for (const std::uint8_t id :
       {kColPaths, kColAtime, kColCtime, kColMtime, kColUid, kColGid,
        kColMode, kColInode, kColOst}) {
    if (!blocks.count(id)) return Status::corruption("missing column");
  }

  // atime/ctime are deltas against same-row mtime: requesting either means
  // mtime has to be decoded (and is then materialized too — cheaper than a
  // shadow column, and callers asking for access times nearly always want
  // the modify time as well).
  if (columns & (kColMaskAtime | kColMaskCtime)) columns |= kColMaskMtime;

  std::vector<std::string> paths;
  std::vector<std::int64_t> atime, ctime, mtime;
  std::vector<std::uint32_t> uid, gid, mode, ost_offsets, ost_values;
  std::vector<std::uint64_t> inode;
  Status s;
  if ((columns & kColMaskPaths) &&
      !(s = decode_paths(blocks[kColPaths], rows, &paths)).ok()) {
    return s;
  }
  if ((columns & kColMaskMtime) &&
      !(s = decode_i64(blocks[kColMtime], rows, {}, &mtime)).ok()) {
    return s;
  }
  if ((columns & kColMaskAtime) &&
      !(s = decode_i64(blocks[kColAtime], rows, mtime, &atime)).ok()) {
    return s;
  }
  if ((columns & kColMaskCtime) &&
      !(s = decode_i64(blocks[kColCtime], rows, mtime, &ctime)).ok()) {
    return s;
  }
  if ((columns & kColMaskUid) &&
      !(s = decode_u32(blocks[kColUid], rows, &uid)).ok()) {
    return s;
  }
  if ((columns & kColMaskGid) &&
      !(s = decode_u32(blocks[kColGid], rows, &gid)).ok()) {
    return s;
  }
  if ((columns & kColMaskMode) &&
      !(s = decode_u32(blocks[kColMode], rows, &mode)).ok()) {
    return s;
  }
  if ((columns & kColMaskInode) &&
      !(s = decode_inodes(blocks[kColInode], rows, &inode)).ok()) {
    return s;
  }
  if ((columns & kColMaskOsts) &&
      !(s = decode_osts(blocks[kColOst], rows, &ost_offsets, &ost_values))
           .ok()) {
    return s;
  }

  table->reserve(table->size() + rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::span<const std::uint32_t> osts =
        ost_offsets.empty()
            ? std::span<const std::uint32_t>()
            : std::span<const std::uint32_t>(ost_values)
                  .subspan(ost_offsets[i], ost_offsets[i + 1] - ost_offsets[i]);
    table->add(paths.empty() ? std::string_view() : std::string_view(paths[i]),
               atime.empty() ? 0 : atime[i], ctime.empty() ? 0 : ctime[i],
               mtime.empty() ? 0 : mtime[i], uid.empty() ? 0 : uid[i],
               gid.empty() ? 0 : gid[i], mode.empty() ? 0 : mode[i],
               inode.empty() ? 0 : inode[i], osts);
  }
  return Status();
}

// ---- v1 (single column set) ----------------------------------------------

std::vector<std::uint8_t> encode_scol_v1(const SnapshotTable& table,
                                         const ScolOptions& options) {
  std::vector<std::uint8_t> image;
  image.insert(image.end(), kMagicV1, kMagicV1 + sizeof(kMagicV1));
  put_u64_le(image, table.size());
  encode_column_set(image, table, 0, table.size(), options);
  return image;
}

Status decode_scol_v1(std::span<const std::uint8_t> bytes,
                      SnapshotTable* table, ColumnMask columns) {
  std::size_t pos = sizeof(kMagicV1);
  std::uint64_t rows = 0;
  if (!get_u64_le(bytes, pos, rows)) {
    return Status::truncated("truncated header");
  }
  return decode_column_set(bytes, pos, rows, table, columns);
}

// ---- v2 (row groups) ------------------------------------------------------
//
//   magic "SCOL0002"
//   u64 total rows
//   u64 nominal group size (rows; last group may be short)
//   u64 group count
//   directory: per group { u64 rows, u64 byte size }
//   groups, concatenated in row order; each one column set
//
// Group byte offsets are the running sum of directory sizes, so the
// directory fully bounds every group before any payload is touched.

std::vector<std::uint8_t> encode_scol_v2(const SnapshotTable& table,
                                         const ScolOptions& options,
                                         ThreadPool* pool) {
  const std::size_t rows = table.size();
  const std::size_t group_size = std::max<std::size_t>(1, options.group_size);
  const std::size_t ngroups = (rows + group_size - 1) / group_size;

  std::vector<std::vector<std::uint8_t>> groups(ngroups);
  parallel_for(
      ngroups,
      [&](std::size_t g) {
        const std::size_t begin = g * group_size;
        const std::size_t end = std::min(begin + group_size, rows);
        encode_column_set(groups[g], table, begin, end, options);
      },
      pool, /*grain=*/1);

  std::size_t payload_bytes = 0;
  for (const auto& g : groups) payload_bytes += g.size();

  std::vector<std::uint8_t> image;
  image.reserve(sizeof(kMagicV2) + 3 * 8 + ngroups * 16 + payload_bytes);
  image.insert(image.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));
  put_u64_le(image, rows);
  put_u64_le(image, group_size);
  put_u64_le(image, ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::size_t begin = g * group_size;
    put_u64_le(image, std::min(group_size, rows - begin));
    put_u64_le(image, groups[g].size());
  }
  for (const auto& g : groups) image.insert(image.end(), g.begin(), g.end());
  return image;
}

Status decode_scol_v2(std::span<const std::uint8_t> bytes,
                      SnapshotTable* table, const ScolOptions& options,
                      SalvageReport* report, ThreadPool* pool) {
  ScolV2Layout layout;
  Status s = parse_scol_v2_layout(bytes, &layout);
  // Header/directory damage is unrecoverable: without trustworthy group
  // extents there is nothing to salvage against.
  if (!s.ok()) return s;

  const std::size_t ngroups = layout.group_rows.size();
  const bool salvage =
      options.on_corrupt_group != CorruptGroupPolicy::kFail;
  if (report) {
    *report = SalvageReport{};
    report->groups_total = ngroups;
    report->rows_total = layout.rows;
  }

  // Decode the in-bounds groups concurrently into per-group staging
  // tables; groups whose directory extent runs past the image are
  // truncation casualties and never touched.
  std::vector<SnapshotTable> staging(ngroups);
  std::vector<Status> group_status(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (layout.group_truncated[g]) {
      group_status[g] = Status::truncated("group extends past end of image");
    }
  }
  parallel_for(
      ngroups,
      [&](std::size_t g) {
        if (layout.group_truncated[g]) return;
        group_status[g] = decode_column_set(
            bytes.subspan(layout.group_begin[g], layout.group_len[g]), 0,
            layout.group_rows[g], &staging[g], options.columns);
      },
      pool, /*grain=*/1);

  std::uint64_t rows_lost = 0;
  std::size_t groups_lost = 0;
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (group_status[g].ok()) continue;
    // Failures report the lowest-numbered failing group first, so
    // messages are deterministic across thread schedules.
    if (!salvage) {
      return group_status[g].with_context("group " + std::to_string(g));
    }
    ++groups_lost;
    rows_lost += layout.group_rows[g];
    if (report) {
      ScolGroupDamage damage;
      damage.group = g;
      damage.rows = layout.group_rows[g];
      damage.status = group_status[g];
      if (options.on_corrupt_group == CorruptGroupPolicy::kQuarantine) {
        const std::size_t begin = std::min(layout.group_begin[g], bytes.size());
        const std::size_t len = std::min(layout.group_len[g],
                                         bytes.size() - begin);
        damage.quarantined.assign(bytes.begin() + begin,
                                  bytes.begin() + begin + len);
      }
      report->damage.push_back(std::move(damage));
    }
  }

  table->reserve(table->size() + layout.rows - rows_lost);
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (group_status[g].ok()) table->append_table(std::move(staging[g]));
  }
  if (report) {
    report->groups_lost = groups_lost;
    report->rows_lost = rows_lost;
    report->rows_recovered = layout.rows - rows_lost;
  }
  return Status();
}

}  // namespace

Status parse_scol_v2_layout(std::span<const std::uint8_t> bytes,
                            ScolV2Layout* layout) {
  *layout = ScolV2Layout{};
  if (bytes.size() < sizeof(kMagicV2) ||
      std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::corruption("bad magic");
  }
  std::size_t pos = sizeof(kMagicV2);
  std::uint64_t ngroups = 0;
  if (!get_u64_le(bytes, pos, layout->rows) ||
      !get_u64_le(bytes, pos, layout->group_size) ||
      !get_u64_le(bytes, pos, ngroups)) {
    return Status::truncated("truncated header");
  }
  if (ngroups > (bytes.size() - pos) / 16) {
    return Status::truncated("group directory exceeds image");
  }

  layout->group_rows.resize(ngroups);
  layout->group_begin.resize(ngroups);
  layout->group_len.resize(ngroups);
  layout->group_truncated.assign(ngroups, false);
  for (std::size_t g = 0; g < ngroups; ++g) {
    std::uint64_t size = 0;
    if (!get_u64_le(bytes, pos, layout->group_rows[g]) ||
        !get_u64_le(bytes, pos, size)) {
      return Status::truncated("truncated group directory");
    }
    layout->group_len[g] = static_cast<std::size_t>(size);
  }
  layout->payload_start = pos;

  std::uint64_t dir_rows = 0;
  std::size_t offset = pos;
  bool truncated_tail = false;
  for (std::size_t g = 0; g < ngroups; ++g) {
    dir_rows += layout->group_rows[g];
    layout->group_begin[g] = offset;
    // Once one group runs past the end, every later group does too (their
    // promised bytes simply are not there).
    if (truncated_tail || layout->group_len[g] > bytes.size() - offset) {
      truncated_tail = true;
      layout->group_truncated[g] = true;
      // Clamp the running offset so later extents stay well-defined.
      offset = bytes.size();
    } else {
      offset += layout->group_len[g];
    }
  }
  if (dir_rows != layout->rows) {
    return Status::corruption("group directory row mismatch");
  }
  return Status();
}

std::string SalvageReport::summary() const {
  if (clean()) {
    return "clean: " + std::to_string(rows_recovered) + " rows in " +
           std::to_string(groups_total) + " groups";
  }
  std::string out = "lost " + std::to_string(groups_lost) + "/" +
                    std::to_string(groups_total) + " groups (" +
                    std::to_string(rows_lost) + " of " +
                    std::to_string(rows_total) + " rows)";
  constexpr std::size_t kMaxListed = 8;
  for (std::size_t i = 0; i < damage.size() && i < kMaxListed; ++i) {
    out += "; group " + std::to_string(damage[i].group) + ": " +
           damage[i].status.to_string();
  }
  if (damage.size() > kMaxListed) {
    out += "; +" + std::to_string(damage.size() - kMaxListed) + " more";
  }
  return out;
}

std::vector<std::uint8_t> encode_scol(const SnapshotTable& table,
                                      const ScolOptions& options,
                                      ThreadPool* pool) {
  if (options.format_version == 1) return encode_scol_v1(table, options);
  return encode_scol_v2(table, options, pool);
}

Status decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                   const ScolOptions& options, SalvageReport* report,
                   ThreadPool* pool) {
  if (report) *report = SalvageReport{};
  if (bytes.size() >= sizeof(kMagicV2) &&
      std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    return decode_scol_v2(bytes, table, options, report, pool);
  }
  if (bytes.size() >= sizeof(kMagicV1) &&
      std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    // v1 is one whole-table column set: no per-group checksums to salvage
    // against, so the policy degenerates to strict decode.
    const Status s = decode_scol_v1(bytes, table, options.columns);
    if (s.ok() && report) {
      report->groups_total = 1;
      report->rows_total = report->rows_recovered = table->size();
    }
    return s;
  }
  return Status::corruption("bad magic");
}

bool decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                 std::string* error, ThreadPool* pool) {
  const Status s = decode_scol(bytes, table, ScolOptions{}, nullptr, pool);
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

Status scol_group_column_sizes(std::span<const std::uint8_t> group,
                               ScolColumnSizes* sizes) {
  *sizes = ScolColumnSizes{};
  if (group.empty()) return Status::truncated("truncated column set");
  std::size_t pos = 0;
  const std::uint8_t ncols = group[pos++];
  for (std::uint8_t c = 0; c < ncols; ++c) {
    if (pos + 2 > group.size()) {
      return Status::truncated("truncated column header");
    }
    const std::uint8_t id = group[pos++];
    ++pos;  // encoding byte; sizes do not depend on it
    std::uint64_t size = 0, checksum = 0;
    if (!get_u64_le(group, pos, size) || !get_u64_le(group, pos, checksum)) {
      return Status::truncated("truncated column header");
    }
    if (size > group.size() - pos) {
      return Status::truncated("truncated payload");
    }
    switch (id) {
      case kColPaths: sizes->paths += size; break;
      case kColAtime: sizes->atime += size; break;
      case kColCtime: sizes->ctime += size; break;
      case kColMtime: sizes->mtime += size; break;
      case kColUid: sizes->uid += size; break;
      case kColGid: sizes->gid += size; break;
      case kColMode: sizes->mode += size; break;
      case kColInode: sizes->inode += size; break;
      case kColOst: sizes->ost += size; break;
      default: break;  // unknown columns still count toward total
    }
    sizes->total += size;
    pos += size;
  }
  return Status();
}

ScolColumnSizes scol_column_sizes(const SnapshotTable& table,
                                  const ScolOptions& options) {
  ScolColumnSizes sizes;
  const Encoding ts_enc =
      options.delta_timestamps ? kEncDeltaPrev : kEncZigzagAbs;
  const Encoding rel_enc =
      options.delta_timestamps ? kEncDeltaMtime : kEncZigzagAbs;
  const std::size_t n = table.size();
  sizes.paths = encode_paths(table, 0, n, options.front_code_paths).size();
  sizes.mtime = encode_i64_column(table.mtimes(), ts_enc, {}).size();
  sizes.atime =
      encode_i64_column(table.atimes(), rel_enc, table.mtimes()).size();
  sizes.ctime =
      encode_i64_column(table.ctimes(), rel_enc, table.mtimes()).size();
  sizes.uid = encode_u32_column(table.uids(), options.rle_ids).size();
  sizes.gid = encode_u32_column(table.gids(), options.rle_ids).size();
  sizes.mode = encode_u32_column(table.modes(), options.rle_ids).size();
  sizes.inode = encode_inodes(table.inodes(), options.delta_inodes).size();
  sizes.ost = encode_osts(table, 0, n).size();
  sizes.total = sizes.paths + sizes.atime + sizes.ctime + sizes.mtime +
                sizes.uid + sizes.gid + sizes.mode + sizes.inode + sizes.ost;
  return sizes;
}

Status write_scol_file(const SnapshotTable& table, const std::string& file,
                       const ScolOptions& options) {
  const std::vector<std::uint8_t> image = encode_scol(table, options);
  return write_file_atomic(file, std::span<const std::uint8_t>(image));
}

Status read_scol_file(const std::string& file, SnapshotTable* table,
                      const ScolOptions& options, SalvageReport* report) {
  std::vector<std::uint8_t> bytes;
  Status s = read_file(file, &bytes);
  if (!s.ok()) return s;
  return decode_scol(bytes, table, options, report).with_context(file);
}

bool write_scol_file(const SnapshotTable& table, const std::string& file,
                     std::string* error, const ScolOptions& options) {
  const Status s = write_scol_file(table, file, options);
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

bool read_scol_file(const std::string& file, SnapshotTable* table,
                    std::string* error) {
  const Status s = read_scol_file(file, table, ScolOptions{});
  if (!s.ok() && error) *error = s.to_string();
  return s.ok();
}

// ---- streaming group reader ----------------------------------------------

struct ScolGroupReader::Impl {
  MappedFile map;                       // owns the bytes when open()ed
  std::span<const std::uint8_t> bytes;  // the map's span, or borrowed
  ScolOptions options;
  ScolV2Layout layout;
  bool v1 = false;
  bool is_open = false;
};

ScolGroupReader::ScolGroupReader() : impl_(std::make_unique<Impl>()) {}
ScolGroupReader::~ScolGroupReader() = default;
ScolGroupReader::ScolGroupReader(ScolGroupReader&&) noexcept = default;
ScolGroupReader& ScolGroupReader::operator=(ScolGroupReader&&) noexcept =
    default;

Status ScolGroupReader::open(const std::string& file,
                             const ScolOptions& options) {
  *impl_ = Impl{};
  Status s = impl_->map.open(file);
  if (!s.ok()) return s;
  s = open_bytes(impl_->map.bytes(), options);
  if (!s.ok()) {
    s = s.with_context(file);
    impl_->map.close();
  }
  return s;
}

Status ScolGroupReader::open_bytes(std::span<const std::uint8_t> bytes,
                                   const ScolOptions& options) {
  impl_->bytes = bytes;
  impl_->options = options;
  impl_->layout = ScolV2Layout{};
  impl_->v1 = false;
  impl_->is_open = false;
  if (bytes.size() >= sizeof(kMagicV1) &&
      std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    // v1: a single whole-table column set; present it as one group.
    std::size_t pos = sizeof(kMagicV1);
    std::uint64_t rows = 0;
    if (!get_u64_le(bytes, pos, rows)) {
      return Status::truncated("truncated header");
    }
    impl_->v1 = true;
    impl_->layout.rows = rows;
    impl_->layout.group_size = rows;
    impl_->layout.group_rows = {rows};
    impl_->layout.group_begin = {pos};
    impl_->layout.group_len = {bytes.size() - pos};
    impl_->layout.group_truncated = {false};
    impl_->layout.payload_start = pos;
    impl_->is_open = true;
    return Status();
  }
  const Status s = parse_scol_v2_layout(bytes, &impl_->layout);
  if (!s.ok()) return s;
  impl_->is_open = true;
  return Status();
}

bool ScolGroupReader::is_open() const { return impl_->is_open; }
std::uint64_t ScolGroupReader::rows() const { return impl_->layout.rows; }
std::size_t ScolGroupReader::group_count() const {
  return impl_->layout.group_rows.size();
}
std::uint64_t ScolGroupReader::group_rows(std::size_t g) const {
  return impl_->layout.group_rows[g];
}
std::size_t ScolGroupReader::group_bytes(std::size_t g) const {
  return impl_->layout.group_len[g];
}
const ScolOptions& ScolGroupReader::options() const { return impl_->options; }

Status ScolGroupReader::decode_group(std::size_t g,
                                     SnapshotTable* table) const {
  if (impl_->v1) {
    return decode_scol_v1(impl_->bytes, table, impl_->options.columns);
  }
  if (impl_->layout.group_truncated[g]) {
    return Status::truncated("group extends past end of image");
  }
  return decode_column_set(
      impl_->bytes.subspan(impl_->layout.group_begin[g],
                           impl_->layout.group_len[g]),
      0, impl_->layout.group_rows[g], table, impl_->options.columns);
}

SalvageReport ScolGroupReader::make_report() const {
  SalvageReport report;
  report.groups_total = group_count();
  report.rows_total = rows();
  return report;
}

void ScolGroupReader::note_success(std::size_t g,
                                   SalvageReport* report) const {
  report->rows_recovered += group_rows(g);
}

Status ScolGroupReader::dispose_failure(std::size_t g, Status s,
                                        SalvageReport* report) const {
  // v1 has a single whole-table column set: nothing to salvage against,
  // so the policy degenerates to strict — same as the eager decoder.
  if (impl_->v1) return s;
  if (impl_->options.on_corrupt_group == CorruptGroupPolicy::kFail) {
    return s.with_context("group " + std::to_string(g));
  }
  ++report->groups_lost;
  report->rows_lost += impl_->layout.group_rows[g];
  ScolGroupDamage damage;
  damage.group = g;
  damage.rows = impl_->layout.group_rows[g];
  damage.status = std::move(s);
  if (impl_->options.on_corrupt_group == CorruptGroupPolicy::kQuarantine) {
    const std::size_t begin =
        std::min(impl_->layout.group_begin[g], impl_->bytes.size());
    const std::size_t len =
        std::min(impl_->layout.group_len[g], impl_->bytes.size() - begin);
    damage.quarantined.assign(impl_->bytes.begin() + begin,
                              impl_->bytes.begin() + begin + len);
  }
  report->damage.push_back(std::move(damage));
  return Status();
}

// ---- streaming group writer ----------------------------------------------

namespace {

std::string scol_errno_text() { return std::strerror(errno); }

int scol_open_retry(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

Status scol_write_all(int fd, const std::uint8_t* data, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ::ssize_t n = ::write(fd, data + done, count - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::io_error("write: " + scol_errno_text());
    }
    done += static_cast<std::size_t>(n);
  }
  return Status();
}

}  // namespace

struct ScolStreamWriter::Impl {
  std::string file;
  std::string payload_tmp;
  int payload_fd = -1;
  ScolOptions options;
  SnapshotTable pending;                 // at most one group of rows
  std::vector<std::uint8_t> group_buf;   // encode scratch, recycled
  std::vector<std::pair<std::uint64_t, std::uint64_t>> directory;
  std::uint64_t rows = 0;
  bool is_open = false;
};

ScolStreamWriter::ScolStreamWriter() : impl_(std::make_unique<Impl>()) {}

ScolStreamWriter::~ScolStreamWriter() { abort(); }

Status ScolStreamWriter::open(const std::string& file,
                              const ScolOptions& options) {
  abort();
  if (options.format_version != 2) {
    return Status::invalid_argument(
        "stream writer requires the v2 row-group layout");
  }
  impl_->file = file;
  impl_->options = options;
  impl_->payload_tmp =
      file + ".payload.tmp." + std::to_string(static_cast<long>(::getpid()));
  impl_->payload_fd = scol_open_retry(impl_->payload_tmp.c_str(),
                                      O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (impl_->payload_fd < 0) {
    return Status::io_error(scol_errno_text())
        .with_context("create " + impl_->payload_tmp);
  }
  impl_->is_open = true;
  return Status();
}

Status ScolStreamWriter::add(const RawRecord& rec) {
  return add(rec.path, rec.atime, rec.ctime, rec.mtime, rec.uid, rec.gid,
             rec.mode, rec.inode, rec.osts);
}

Status ScolStreamWriter::add(std::string_view path, std::int64_t atime,
                             std::int64_t ctime, std::int64_t mtime,
                             std::uint32_t uid, std::uint32_t gid,
                             std::uint32_t mode, std::uint64_t inode,
                             std::span<const std::uint32_t> osts) {
  if (!impl_->is_open) {
    return Status::invalid_argument("stream writer is not open");
  }
  impl_->pending.add(path, atime, ctime, mtime, uid, gid, mode, inode, osts);
  ++impl_->rows;
  const std::size_t group_size =
      std::max<std::size_t>(1, impl_->options.group_size);
  if (impl_->pending.size() >= group_size) return flush_group();
  return Status();
}

Status ScolStreamWriter::flush_group() {
  if (impl_->pending.empty()) return Status();
  impl_->group_buf.clear();
  encode_column_set(impl_->group_buf, impl_->pending, 0,
                    impl_->pending.size(), impl_->options);
  const Status s = scol_write_all(impl_->payload_fd, impl_->group_buf.data(),
                                  impl_->group_buf.size());
  if (!s.ok()) return s.with_context(impl_->payload_tmp);
  impl_->directory.emplace_back(impl_->pending.size(),
                                impl_->group_buf.size());
  impl_->pending.clear();
  return Status();
}

Status ScolStreamWriter::finish() {
  if (!impl_->is_open) {
    return Status::invalid_argument("stream writer is not open");
  }
  Status s = flush_group();
  if (s.ok() && ::fsync(impl_->payload_fd) != 0) {
    s = Status::io_error("fsync: " + scol_errno_text())
            .with_context(impl_->payload_tmp);
  }
  ::close(impl_->payload_fd);
  impl_->payload_fd = -1;
  if (!s.ok()) {
    abort();
    return s;
  }

  // Assemble header + directory + payload into a same-directory temp and
  // rename over the destination — the streamed mirror of
  // write_file_atomic's crash discipline.
  std::vector<std::uint8_t> head;
  head.insert(head.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));
  put_u64_le(head, impl_->rows);
  put_u64_le(head, std::max<std::size_t>(1, impl_->options.group_size));
  put_u64_le(head, impl_->directory.size());
  for (const auto& [group_rows, group_bytes] : impl_->directory) {
    put_u64_le(head, group_rows);
    put_u64_le(head, group_bytes);
  }

  const std::string tmp = impl_->file + ".tmp." +
                          std::to_string(static_cast<long>(::getpid()));
  const int out = scol_open_retry(tmp.c_str(),
                                  O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out < 0) {
    s = Status::io_error(scol_errno_text()).with_context("create " + tmp);
  } else {
    s = scol_write_all(out, head.data(), head.size());
    if (s.ok()) {
      const int in = scol_open_retry(impl_->payload_tmp.c_str(), O_RDONLY);
      if (in < 0) {
        s = Status::io_error(scol_errno_text())
                .with_context(impl_->payload_tmp);
      } else {
        std::vector<std::uint8_t> buf(1 << 20);
        for (;;) {
          const ::ssize_t n = ::read(in, buf.data(), buf.size());
          if (n < 0) {
            if (errno == EINTR) continue;
            s = Status::io_error("read: " + scol_errno_text())
                    .with_context(impl_->payload_tmp);
            break;
          }
          if (n == 0) break;
          s = scol_write_all(out, buf.data(), static_cast<std::size_t>(n));
          if (!s.ok()) break;
        }
        ::close(in);
      }
    }
    if (s.ok() && ::fsync(out) != 0) {
      s = Status::io_error("fsync: " + scol_errno_text()).with_context(tmp);
    }
    ::close(out);
    if (s.ok() && ::rename(tmp.c_str(), impl_->file.c_str()) != 0) {
      s = Status::io_error("rename: " + scol_errno_text())
              .with_context(impl_->file);
    }
    if (!s.ok()) ::unlink(tmp.c_str());
  }

  if (s.ok()) {
    // Durability of the rename, same tolerance as write_file_atomic.
    const std::size_t slash = impl_->file.find_last_of('/');
    const std::string dir =
        slash == std::string::npos
            ? std::string(".")
            : impl_->file.substr(0, slash == 0 ? 1 : slash);
    const int dfd = scol_open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      if (::fsync(dfd) != 0 && errno != EINVAL && errno != EROFS) {
        s = Status::io_error("fsync dir: " + scol_errno_text())
                .with_context(dir);
      }
      ::close(dfd);
    }
  }

  ::unlink(impl_->payload_tmp.c_str());
  impl_->is_open = false;
  return s;
}

void ScolStreamWriter::abort() {
  if (impl_->payload_fd >= 0) {
    ::close(impl_->payload_fd);
    impl_->payload_fd = -1;
  }
  if (!impl_->payload_tmp.empty()) ::unlink(impl_->payload_tmp.c_str());
  *impl_ = Impl{};
}

std::uint64_t ScolStreamWriter::rows_added() const { return impl_->rows; }

}  // namespace spider
