// LEB128 varints and zig-zag transforms — the primitive integer encodings
// of the .scol columnar format. Header-only; hot in the codec loops.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace spider {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes a varint at `pos`, advancing it. Returns false on truncated or
/// overlong (>10 byte) input, leaving pos unspecified.
inline bool get_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                       std::uint64_t& value) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= in.size()) return false;
    const std::uint8_t byte = in[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      value = v;
      return true;
    }
  }
  return false;
}

inline constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag_encode(v));
}

inline bool get_zigzag(std::span<const std::uint8_t> in, std::size_t& pos,
                       std::int64_t& value) {
  std::uint64_t raw = 0;
  if (!get_varint(in, pos, raw)) return false;
  value = zigzag_decode(raw);
  return true;
}

}  // namespace spider
