// LEB128 varints and zig-zag transforms — the primitive integer encodings
// of the .scol columnar format. Header-only; hot in the codec loops.
//
// Bulk decode (get_varints / zigzag_decode_bulk) carries an AVX2 kernel
// behind runtime dispatch: snapshot columns are dominated by one-byte
// varints (delta timestamps, RLE ids, small inode deltas), so the kernel's
// movemask fast path widens 32 single-byte values per iteration and falls
// back to scalar only around multi-byte stragglers. Acceptance semantics
// are bit-identical to the scalar loop — same values, same final position,
// same rejection of truncated and overlong (>10 byte) input — which the
// property suite enforces on random, corrupt, and truncated streams.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SPIDER_VARINT_X86 1
#include <immintrin.h>
#endif

namespace spider {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes a varint at `pos`, advancing it. Returns false on truncated or
/// overlong (>10 byte) input, leaving pos unspecified.
inline bool get_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                       std::uint64_t& value) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= in.size()) return false;
    const std::uint8_t byte = in[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      value = v;
      return true;
    }
  }
  return false;
}

inline constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag_encode(v));
}

inline bool get_zigzag(std::span<const std::uint8_t> in, std::size_t& pos,
                       std::int64_t& value) {
  std::uint64_t raw = 0;
  if (!get_varint(in, pos, raw)) return false;
  value = zigzag_decode(raw);
  return true;
}

namespace varint_detail {

/// Reference implementation: get_varint called `count` times. The SIMD
/// kernel must be indistinguishable from this, including on bad input.
inline bool get_varints_scalar(std::span<const std::uint8_t> in,
                               std::size_t& pos, std::uint64_t* out,
                               std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!get_varint(in, pos, out[i])) return false;
  }
  return true;
}

inline void zigzag_decode_bulk_scalar(const std::uint64_t* raw,
                                      std::int64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = zigzag_decode(raw[i]);
}

#if defined(SPIDER_VARINT_X86)

/// AVX2 bulk varint decode. A 32-byte window whose movemask is zero is 32
/// complete one-byte varints and is widened straight to u64 lanes; a
/// window with continuation bits consumes its one-byte prefix, then one
/// multi-byte varint through the scalar routine (same truncation/overlong
/// acceptance), and re-enters the vector loop.
__attribute__((target("avx2"))) inline bool get_varints_avx2(
    std::span<const std::uint8_t> in, std::size_t& pos, std::uint64_t* out,
    std::size_t count) {
  std::size_t produced = 0;
  while (produced < count) {
    if (count - produced >= 32 && in.size() >= 32 &&
        pos <= in.size() - 32) {
      const __m256i bytes = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in.data() + pos));
      const auto cont =
          static_cast<std::uint32_t>(_mm256_movemask_epi8(bytes));
      if (cont == 0) {
        for (std::size_t k = 0; k < 32; k += 4) {
          std::uint32_t quad = 0;
          std::memcpy(&quad, in.data() + pos + k, 4);
          const __m256i wide =
              _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(quad)));
          _mm256_storeu_si256(
              reinterpret_cast<__m256i*>(out + produced + k), wide);
        }
        pos += 32;
        produced += 32;
        continue;
      }
      // One-byte values up to the first continuation byte, then one
      // multi-byte varint the slow way.
      const auto prefix = static_cast<unsigned>(std::countr_zero(cont));
      for (unsigned k = 0; k < prefix; ++k) out[produced++] = in[pos++];
      if (!get_varint(in, pos, out[produced])) return false;
      ++produced;
      continue;
    }
    if (!get_varint(in, pos, out[produced])) return false;
    ++produced;
  }
  return true;
}

/// AVX2 zig-zag: (v >> 1) ^ -(v & 1) on four lanes at a time.
__attribute__((target("avx2"))) inline void zigzag_decode_bulk_avx2(
    const std::uint64_t* raw, std::int64_t* out, std::size_t n) {
  std::size_t i = 0;
  const __m256i one = _mm256_set1_epi64x(1);
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(raw + i));
    const __m256i half = _mm256_srli_epi64(v, 1);
    const __m256i sign =
        _mm256_sub_epi64(_mm256_setzero_si256(), _mm256_and_si256(v, one));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(half, sign));
  }
  for (; i < n; ++i) out[i] = zigzag_decode(raw[i]);
}

inline bool have_avx2() {
  static const bool cached = __builtin_cpu_supports("avx2") != 0;
  return cached;
}

#endif  // SPIDER_VARINT_X86

}  // namespace varint_detail

/// Decodes exactly `count` varints starting at `pos` into `out`,
/// advancing `pos` past the last one. Exactly equivalent to `count`
/// get_varint calls: false on truncated or overlong input, with `pos` and
/// `out` contents unspecified on failure.
inline bool get_varints(std::span<const std::uint8_t> in, std::size_t& pos,
                        std::uint64_t* out, std::size_t count) {
#if defined(SPIDER_VARINT_X86)
  if (varint_detail::have_avx2()) {
    return varint_detail::get_varints_avx2(in, pos, out, count);
  }
#endif
  return varint_detail::get_varints_scalar(in, pos, out, count);
}

/// Bulk zigzag_decode of `n` raw varint values (may alias in place:
/// out == (int64_t*)raw is fine — each lane is read before written).
inline void zigzag_decode_bulk(const std::uint64_t* raw, std::int64_t* out,
                               std::size_t n) {
#if defined(SPIDER_VARINT_X86)
  if (varint_detail::have_avx2()) {
    varint_detail::zigzag_decode_bulk_avx2(raw, out, n);
    return;
  }
#endif
  varint_detail::zigzag_decode_bulk_scalar(raw, out, n);
}

}  // namespace spider
