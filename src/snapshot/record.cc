#include "snapshot/record.h"

namespace spider {

std::size_t path_depth(std::string_view path) {
  std::size_t depth = 0;
  bool in_component = false;
  for (char c : path) {
    if (c == '/') {
      in_component = false;
    } else if (!in_component) {
      in_component = true;
      ++depth;
    }
  }
  return depth;
}

std::string_view path_component(std::string_view path, std::size_t idx) {
  std::size_t current = 0;
  std::size_t begin = std::string_view::npos;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    const bool sep = i == path.size() || path[i] == '/';
    if (!sep && begin == std::string_view::npos) {
      begin = i;
    } else if (sep && begin != std::string_view::npos) {
      if (current == idx) return path.substr(begin, i - begin);
      ++current;
      begin = std::string_view::npos;
    }
  }
  return {};
}

std::string_view path_basename(std::string_view path) {
  // Ignore trailing slashes.
  std::size_t end = path.size();
  while (end > 0 && path[end - 1] == '/') --end;
  std::size_t begin = end;
  while (begin > 0 && path[begin - 1] != '/') --begin;
  return path.substr(begin, end - begin);
}

std::string_view path_parent(std::string_view path) {
  std::size_t end = path.size();
  while (end > 0 && path[end - 1] == '/') --end;
  while (end > 0 && path[end - 1] != '/') --end;
  while (end > 1 && path[end - 1] == '/') --end;
  if (end == 0) return path.empty() ? std::string_view{} : path.substr(0, 1);
  return path.substr(0, end);
}

std::string_view path_extension(std::string_view path) {
  // Single right-to-left scan: the first '.' seen before a '/' is the
  // basename's last dot (this is the group-by hot path — one pass, not
  // basename + rfind).
  std::size_t end = path.size();
  while (end > 0 && path[end - 1] == '/') --end;
  std::size_t i = end;
  while (i > 0 && path[i - 1] != '/' && path[i - 1] != '.') --i;
  if (i == 0 || path[i - 1] != '.') return {};     // no dot in the basename
  if (i == end) return {};                         // trailing dot
  if (i - 1 == 0 || path[i - 2] == '/') return {};  // leading-dot basename
  return path.substr(i, end - i);
}

}  // namespace spider
