#include "snapshot/record.h"

namespace spider {

std::size_t path_depth(std::string_view path) {
  std::size_t depth = 0;
  bool in_component = false;
  for (char c : path) {
    if (c == '/') {
      in_component = false;
    } else if (!in_component) {
      in_component = true;
      ++depth;
    }
  }
  return depth;
}

std::string_view path_component(std::string_view path, std::size_t idx) {
  std::size_t current = 0;
  std::size_t begin = std::string_view::npos;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    const bool sep = i == path.size() || path[i] == '/';
    if (!sep && begin == std::string_view::npos) {
      begin = i;
    } else if (sep && begin != std::string_view::npos) {
      if (current == idx) return path.substr(begin, i - begin);
      ++current;
      begin = std::string_view::npos;
    }
  }
  return {};
}

std::string_view path_basename(std::string_view path) {
  // Ignore trailing slashes.
  std::size_t end = path.size();
  while (end > 0 && path[end - 1] == '/') --end;
  std::size_t begin = end;
  while (begin > 0 && path[begin - 1] != '/') --begin;
  return path.substr(begin, end - begin);
}

std::string_view path_parent(std::string_view path) {
  std::size_t end = path.size();
  while (end > 0 && path[end - 1] == '/') --end;
  while (end > 0 && path[end - 1] != '/') --end;
  while (end > 1 && path[end - 1] == '/') --end;
  if (end == 0) return path.empty() ? std::string_view{} : path.substr(0, 1);
  return path.substr(0, end);
}

std::string_view path_extension(std::string_view path) {
  const std::string_view base = path_basename(path);
  const std::size_t dot = base.rfind('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == base.size()) {
    return {};
  }
  return base.substr(dot + 1);
}

}  // namespace spider
