// The LustreDU snapshot record model (paper Figure 2) and path helpers.
//
// A snapshot record carries: PATH, ATIME, CTIME, MTIME, UID, GID, MODE,
// INODE, and the OST list a file is striped across. File size is absent by
// design — the paper's collector omits it because obtaining sizes in Lustre
// requires querying every OSS holding a stripe.
//
// Synthetic paths follow the Spider II convention the paper describes:
//   /lustre/atlas2/<project>/<user>/<subdirs...>/<file>
// so the project directory is path component 2 and the user directory is
// component 3 (0-based). Depth is the number of '/'-separated components;
// files therefore start at depth 5, which produces the "knee at five" the
// paper notes in its directory-depth CDF (Fig 8(a)).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spider {

/// POSIX file-type bits (subset used by the study).
inline constexpr std::uint32_t kModeTypeMask = 0170000;
inline constexpr std::uint32_t kModeRegular = 0100000;
inline constexpr std::uint32_t kModeDirectory = 0040000;

inline constexpr bool mode_is_dir(std::uint32_t mode) {
  return (mode & kModeTypeMask) == kModeDirectory;
}
inline constexpr bool mode_is_regular(std::uint32_t mode) {
  return (mode & kModeTypeMask) == kModeRegular;
}

/// Index of the path component that names the project / user directory.
inline constexpr std::size_t kProjectComponent = 2;
inline constexpr std::size_t kUserComponent = 3;

/// One snapshot record in row form; used at API boundaries (builders,
/// format readers). Bulk storage lives in SnapshotTable's columns.
struct RawRecord {
  std::string path;
  std::int64_t atime = 0;
  std::int64_t ctime = 0;
  std::int64_t mtime = 0;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint32_t mode = kModeRegular | 0664;
  std::uint64_t inode = 0;
  std::vector<std::uint32_t> osts;

  bool is_dir() const { return mode_is_dir(mode); }
};

/// Number of '/'-separated components ("/a/b/c" -> 3). Trailing slashes and
/// repeated slashes are ignored. The root path "/" has depth 0.
std::size_t path_depth(std::string_view path);

/// The idx-th (0-based) '/'-separated component, or empty if out of range.
std::string_view path_component(std::string_view path, std::size_t idx);

/// Final component ("/a/b/c.txt" -> "c.txt").
std::string_view path_basename(std::string_view path);

/// Everything before the final component ("/a/b/c" -> "/a/b"); "/" for
/// top-level entries.
std::string_view path_parent(std::string_view path);

/// File extension of the basename, without the dot ("x.tar.gz" -> "gz").
/// Follows the paper's literal convention: numeric suffixes are extensions
/// too ("result.1" -> "1"), dotfiles (".bashrc") and dotless names have no
/// extension. Case is preserved ("POSCAR" conventions matter).
std::string_view path_extension(std::string_view path);

/// Project directory name for a canonical Spider path, or empty.
inline std::string_view path_project(std::string_view path) {
  return path_component(path, kProjectComponent);
}

/// User directory name for a canonical Spider path, or empty.
inline std::string_view path_user(std::string_view path) {
  return path_component(path, kUserComponent);
}

}  // namespace spider
