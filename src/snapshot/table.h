// Columnar in-memory snapshot: structure-of-arrays storage for millions of
// records, the unit every analysis and format codec operates on.
//
// Layout choices mirror the paper's Parquet conversion rationale: analyses
// touch a few columns at a time (timestamps for access patterns, paths for
// depth/extension, OST lists for striping), so column-contiguous storage
// keeps scans cache-friendly. Paths live in a StringArena; OST lists are
// CSR-packed (offsets + values). Path hashes and depths are precomputed on
// append because the diff join and the depth analyses both need them for
// every row.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "snapshot/record.h"
#include "util/arena.h"
#include "util/hash.h"

namespace spider {

/// Bitmask over the table's physical columns, used for projection pushdown:
/// analyzers declare the columns they read, the decoder skips the rest
/// (ScolOptions::columns). Paths cover the derived path_hash/depth columns
/// too — they are computed from the path on append.
using ColumnMask = std::uint32_t;
inline constexpr ColumnMask kColMaskNone = 0;
inline constexpr ColumnMask kColMaskPaths = 1u << 0;
inline constexpr ColumnMask kColMaskAtime = 1u << 1;
inline constexpr ColumnMask kColMaskCtime = 1u << 2;
inline constexpr ColumnMask kColMaskMtime = 1u << 3;
inline constexpr ColumnMask kColMaskUid = 1u << 4;
inline constexpr ColumnMask kColMaskGid = 1u << 5;
inline constexpr ColumnMask kColMaskMode = 1u << 6;
inline constexpr ColumnMask kColMaskInode = 1u << 7;
inline constexpr ColumnMask kColMaskOsts = 1u << 8;
inline constexpr ColumnMask kColMaskAll = (1u << 9) - 1;

class SnapshotTable {
 public:
  SnapshotTable() { ost_offsets_.push_back(0); }

  SnapshotTable(SnapshotTable&&) noexcept = default;
  SnapshotTable& operator=(SnapshotTable&&) noexcept = default;
  SnapshotTable(const SnapshotTable&) = delete;
  SnapshotTable& operator=(const SnapshotTable&) = delete;

  void reserve(std::size_t rows);

  /// Appends a record; returns its row index.
  std::uint32_t add(const RawRecord& rec) {
    return add(rec.path, rec.atime, rec.ctime, rec.mtime, rec.uid, rec.gid,
               rec.mode, rec.inode, rec.osts);
  }

  std::uint32_t add(std::string_view path, std::int64_t atime,
                    std::int64_t ctime, std::int64_t mtime, std::uint32_t uid,
                    std::uint32_t gid, std::uint32_t mode, std::uint64_t inode,
                    std::span<const std::uint32_t> osts);

  /// Splices every row of `other` onto the end of this table, preserving
  /// order, and leaves `other` empty. Arena blocks move wholesale (no string
  /// copies, precomputed hashes/depths carry over) and the CSR OST columns
  /// merge with one rebased offset pass — no per-row add() overhead. This is
  /// the staging-table merge path of the parallel .scol and PSV readers.
  void append_table(SnapshotTable&& other);

  std::size_t size() const { return atime_.size(); }
  bool empty() const { return atime_.empty(); }

  // Row accessors.
  std::string_view path(std::size_t i) const { return paths_[i]; }
  std::int64_t atime(std::size_t i) const { return atime_[i]; }
  std::int64_t ctime(std::size_t i) const { return ctime_[i]; }
  std::int64_t mtime(std::size_t i) const { return mtime_[i]; }
  std::uint32_t uid(std::size_t i) const { return uid_[i]; }
  std::uint32_t gid(std::size_t i) const { return gid_[i]; }
  std::uint32_t mode(std::size_t i) const { return mode_[i]; }
  std::uint64_t inode(std::size_t i) const { return inode_[i]; }
  bool is_dir(std::size_t i) const { return mode_is_dir(mode_[i]); }
  std::uint64_t path_hash(std::size_t i) const { return path_hash_[i]; }
  std::uint16_t depth(std::size_t i) const { return depth_[i]; }

  std::span<const std::uint32_t> osts(std::size_t i) const {
    return std::span<const std::uint32_t>(ost_values_)
        .subspan(ost_offsets_[i], ost_offsets_[i + 1] - ost_offsets_[i]);
  }
  std::uint32_t stripe_count(std::size_t i) const {
    return ost_offsets_[i + 1] - ost_offsets_[i];
  }

  /// Materializes row i as a RawRecord (format writers, tests).
  RawRecord row(std::size_t i) const;

  // Column accessors for whole-column scans.
  std::span<const std::int64_t> atimes() const { return atime_; }
  std::span<const std::int64_t> ctimes() const { return ctime_; }
  std::span<const std::int64_t> mtimes() const { return mtime_; }
  std::span<const std::uint32_t> uids() const { return uid_; }
  std::span<const std::uint32_t> gids() const { return gid_; }
  std::span<const std::uint32_t> modes() const { return mode_; }
  std::span<const std::uint64_t> inodes() const { return inode_; }
  std::span<const std::uint64_t> path_hashes() const { return path_hash_; }
  std::span<const std::uint16_t> depths() const { return depth_; }

  std::size_t file_count() const { return file_count_; }
  std::size_t dir_count() const { return size() - file_count_; }

  /// Approximate heap footprint, for the format-comparison benchmarks.
  std::size_t memory_bytes() const;

  /// Deep copy (tables are move-only; the copy constructor is deleted so
  /// accidental O(n) copies never hide in pass-by-value). Only fallback
  /// paths pay this — the study runner retains snapshots by move or by
  /// stable pointer.
  SnapshotTable clone() const;

  /// Empties the table for reuse as a staging buffer. Column vectors keep
  /// their capacity (the streaming reader recycles one staging table per
  /// ring slot, so steady-state decode does no column reallocation); the
  /// path arena is released — its views die with the rows anyway.
  void clear();

 private:
  StringArena arena_;
  std::vector<std::string_view> paths_;
  std::vector<std::uint64_t> path_hash_;
  std::vector<std::uint16_t> depth_;
  std::vector<std::int64_t> atime_, ctime_, mtime_;
  std::vector<std::uint32_t> uid_, gid_, mode_;
  std::vector<std::uint64_t> inode_;
  std::vector<std::uint32_t> ost_offsets_;  // size() + 1 entries
  std::vector<std::uint32_t> ost_values_;
  std::size_t file_count_ = 0;
};

}  // namespace spider
