// A snapshot series: the 72-week study collection, either materialized in
// memory (tests, small scales) or streamed one week at a time (the full
// study, where keeping every snapshot resident would defeat the point).
//
// Analyses consume a SnapshotSource; the visitor contract guarantees weeks
// arrive in chronological order, which the diff-based analyses (Fig 13/17)
// rely on to keep only the previous week resident.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "snapshot/table.h"

namespace spider {

struct Snapshot {
  std::int64_t taken_at = 0;  // epoch seconds of collection
  SnapshotTable table;
};

/// Callback invoked per snapshot, in chronological order.
/// `week` is a dense 0-based index into the series.
using SnapshotVisitor =
    std::function<void(std::size_t week, const Snapshot& snap)>;

class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;

  /// Number of snapshots this source will visit.
  virtual std::size_t count() const = 0;

  /// Visits every snapshot in order. May be called multiple times; each
  /// call re-traverses (or regenerates) the whole series.
  virtual void visit(const SnapshotVisitor& visitor) = 0;
};

/// Fully in-memory series.
class SnapshotSeries : public SnapshotSource {
 public:
  void add(Snapshot snap) { snaps_.push_back(std::move(snap)); }

  std::size_t count() const override { return snaps_.size(); }
  void visit(const SnapshotVisitor& visitor) override {
    for (std::size_t i = 0; i < snaps_.size(); ++i) visitor(i, snaps_[i]);
  }

  const Snapshot& at(std::size_t i) const { return snaps_[i]; }
  Snapshot& at(std::size_t i) { return snaps_[i]; }

 private:
  std::vector<Snapshot> snaps_;
};

/// Streams snapshots from `snap_<YYYYMMDD>.scol` files in a directory, in
/// ascending date order. Construction scans the directory; visit() decodes
/// one file at a time.
class DirectorySeries : public SnapshotSource {
 public:
  /// Lists matching files; returns false (with reason) when the directory
  /// cannot be read or contains no snapshots.
  bool open(const std::string& directory, std::string* error = nullptr);

  std::size_t count() const override { return files_.size(); }
  void visit(const SnapshotVisitor& visitor) override;

  const std::vector<std::string>& files() const { return files_; }

 private:
  std::vector<std::string> files_;      // absolute paths, sorted by date
  std::vector<std::int64_t> taken_at_;  // parallel to files_
};

/// Adapter delivering every `stride`-th snapshot of a base source with
/// re-densified week indices — the sampling-frequency ablation (the paper
/// sampled one snapshot per week out of a daily collection; this asks how
/// the findings shift at coarser cadences).
class StridedSource : public SnapshotSource {
 public:
  StridedSource(SnapshotSource& base, std::size_t stride)
      : base_(base), stride_(stride == 0 ? 1 : stride) {}

  std::size_t count() const override {
    return (base_.count() + stride_ - 1) / stride_;
  }
  void visit(const SnapshotVisitor& visitor) override {
    std::size_t emitted = 0;
    base_.visit([&](std::size_t week, const Snapshot& snap) {
      if (week % stride_ == 0) visitor(emitted++, snap);
    });
  }

 private:
  SnapshotSource& base_;
  std::size_t stride_;
};

/// Writes every snapshot of a source into `directory` as .scol files named
/// snap_<YYYYMMDD>.scol. Creates the directory if needed.
bool save_series(SnapshotSource& source, const std::string& directory,
                 std::string* error = nullptr);

}  // namespace spider
