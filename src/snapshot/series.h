// A snapshot series: the 72-week study collection, either materialized in
// memory (tests, small scales) or streamed one week at a time (the full
// study, where keeping every snapshot resident would defeat the point).
//
// Analyses consume a SnapshotSource; the visitor contract guarantees weeks
// arrive in chronological order, which the diff-based analyses (Fig 13/17)
// rely on to keep only the previous week resident.
//
// Degradation model (see DESIGN.md §9): an operational series is rarely
// perfect — collection skips a maintenance week, a file is torn by a
// crashed copy. Sources expose that damage instead of hiding it: week
// indices are *slots* in the study timeline and may have holes, and every
// hole is described by a SeriesGap (slot, expected date, file, Status).
// The study runner uses the holes to avoid computing diffs across a gap;
// reports list the gaps rather than silently narrowing the study.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "snapshot/scol.h"
#include "snapshot/table.h"
#include "util/retry.h"
#include "util/status.h"

namespace spider {

struct Snapshot {
  std::int64_t taken_at = 0;  // epoch seconds of collection
  SnapshotTable table;
  /// True when the snapshot was decoded under a salvage policy and lost
  /// rows (SalvageReport not clean). The incremental study treats such a
  /// week — and the diff against it — as untrustworthy for delta purposes
  /// and re-baselines with a full scan (DESIGN.md §13).
  bool degraded = false;
};

/// One unusable week slot in a series: a snapshot that was never collected
/// (cadence hole) or one whose file is unreadable/corrupt.
struct SeriesGap {
  std::size_t week = 0;       // the slot the gap occupies
  std::int64_t taken_at = 0;  // (estimated) collection time; 0 if unknown
  std::string file;           // offending file; empty for a missing week
  Status status;              // why the week is unusable

  /// "week 7 (2015-02-16): snap_20150216.scol: corruption: ..." — one line.
  std::string describe() const;
};

/// Callback invoked per snapshot, in chronological order.
/// `week` is a 0-based slot index into the series timeline; series with
/// gaps skip the damaged slots, so consecutive calls may not be
/// consecutive weeks.
using SnapshotVisitor =
    std::function<void(std::size_t week, const Snapshot& snap)>;

/// Ownership-passing variant: the source hands the snapshot over and the
/// visitor may keep it (the study runner retains the previous week this
/// way, instead of deep-copying a multi-million-row table).
using SnapshotMoveVisitor =
    std::function<void(std::size_t week, Snapshot&& snap)>;

/// One week offered for group-at-a-time consumption (DESIGN.md §15): an
/// open reader over the week's .scol image instead of a decoded table.
/// The reader is valid only for the duration of the visit.
struct WeekGroupStream {
  std::size_t week = 0;
  std::int64_t taken_at = 0;
  std::string file;
  const ScolGroupReader* reader = nullptr;
};

/// Consulted once per deliverable week, before any decode work: return
/// true to receive the week through the stream visitor, false to receive
/// a resident Snapshot. `rows_hint` comes from the file header — the only
/// bytes touched so far — so the budget decision costs no decode.
using StreamChooser = std::function<bool(
    std::size_t week, std::int64_t taken_at, std::uint64_t rows_hint)>;

/// Consumes one streamed week. Returning a non-ok Status declares the
/// week unusable — the source records it as a SeriesGap exactly as an
/// eager decode failure would, so the visitor must return the same RAW
/// decode Status the eager path would have produced (the source adds the
/// file context itself).
using SnapshotStreamVisitor = std::function<Status(const WeekGroupStream&)>;

class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;

  /// Number of snapshots this source will visit (gaps excluded).
  virtual std::size_t count() const = 0;

  /// Visits every readable snapshot in order. May be called multiple
  /// times; each call re-traverses (or regenerates) the whole series.
  virtual void visit(const SnapshotVisitor& visitor) = 0;

  /// Like visit(), but transfers ownership of each snapshot to the
  /// visitor. Sources that build a fresh snapshot per week (decode,
  /// simulation) override this to move it out; the default falls back to
  /// a deep copy, so overriding is a pure optimization.
  virtual void visit_move(const SnapshotMoveVisitor& visitor);

  /// Like visit()/visit_move(), but delivers only the snapshots whose slot
  /// index is >= `first_slot` — the entry point for a checkpointed study
  /// resuming mid-series. The defaults traverse everything and filter;
  /// sources that pay per-week materialization cost (DirectorySeries
  /// decode) override visit_move_from to skip the work entirely. gaps()
  /// still describes the whole timeline, including slots before
  /// `first_slot`.
  virtual void visit_from(std::size_t first_slot,
                          const SnapshotVisitor& visitor);
  virtual void visit_move_from(std::size_t first_slot,
                               const SnapshotMoveVisitor& visitor);

  /// The out-of-core entry point: weeks the `chooser` accepts arrive as
  /// open group readers through `stream_visitor`; everything else arrives
  /// resident through `move_visitor`. The default ignores the chooser and
  /// delivers every week resident — only sources that actually hold
  /// group-structured bytes (DirectorySeries over .scol v2 files) can do
  /// better, and callers must not assume streaming happened.
  virtual void visit_streaming(std::size_t first_slot,
                               const StreamChooser& chooser,
                               const SnapshotMoveVisitor& move_visitor,
                               const SnapshotStreamVisitor& stream_visitor);

  /// True when the Snapshot references passed to visit() stay valid for
  /// the source's whole lifetime (fully materialized series). Consumers
  /// may then retain pointers across visitor calls instead of copying or
  /// taking ownership.
  virtual bool stable_snapshots() const { return false; }

  /// Projection hint: only the masked columns need to be materialized.
  /// Sources that decode from disk (DirectorySeries) push the mask into
  /// the codec; everything else may ignore it — skipping columns is never
  /// required for correctness.
  virtual void set_columns(ColumnMask columns) { (void)columns; }

  /// The known holes in the timeline, ascending by slot. Sources that
  /// discover damage lazily (DirectorySeries) report gaps found during the
  /// most recent visit() in addition to those found at open().
  virtual std::span<const SeriesGap> gaps() const { return {}; }
};

/// Fully in-memory series.
class SnapshotSeries : public SnapshotSource {
 public:
  void add(Snapshot snap) {
    slots_.push_back(next_slot_++);
    snaps_.push_back(std::move(snap));
  }

  /// Marks the next slot as a gap instead of a snapshot — the in-memory
  /// way to model a missing or corrupt week (tests, simulations).
  void add_gap(std::int64_t taken_at, Status status, std::string file = "") {
    gaps_.push_back(
        SeriesGap{next_slot_++, taken_at, std::move(file), std::move(status)});
  }

  std::size_t count() const override { return snaps_.size(); }
  void visit(const SnapshotVisitor& visitor) override {
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      visitor(slots_[i], snaps_[i]);
    }
  }
  /// The series keeps its snapshots (at() and re-visits depend on them),
  /// so consumers hold stable pointers instead of taking ownership.
  bool stable_snapshots() const override { return true; }
  std::span<const SeriesGap> gaps() const override { return gaps_; }

  const Snapshot& at(std::size_t i) const { return snaps_[i]; }
  Snapshot& at(std::size_t i) { return snaps_[i]; }

 private:
  std::vector<Snapshot> snaps_;
  std::vector<std::size_t> slots_;  // parallel to snaps_
  std::vector<SeriesGap> gaps_;
  std::size_t next_slot_ = 0;
};

/// Streams snapshots from `snap_<YYYYMMDD>.scol` files in a directory, in
/// ascending date order. Construction scans the directory; visit() decodes
/// one file at a time.
///
/// Degradation: open() detects missing weeks from the collection cadence
/// (an interval much longer than the median) and reserves gap slots for
/// them; entries that match the snapshot name pattern but cannot be
/// statted become gaps rather than being silently dropped. visit() turns
/// every unreadable/corrupt file into a gap (with the decode Status) and
/// keeps going — callers consult gaps() afterwards.
class DirectorySeries : public SnapshotSource {
 public:
  /// Lists matching files; fails when the directory cannot be read or
  /// contains no snapshots.
  Status open(const std::string& directory);
  /// Legacy shim (pre-Status convention). Retained for one PR.
  bool open(const std::string& directory, std::string* error);

  /// Decode options for visit(), e.g. a salvage policy so that a week
  /// with localized damage is visited with its surviving rows instead of
  /// becoming a gap. Default: strict decode.
  void set_scol_options(const ScolOptions& options) { scol_options_ = options; }

  /// Retry policy for the byte-reading half of each decode (transient
  /// shared-storage faults; util/retry.h). Only kIoError reads retry —
  /// corruption and truncation are properties of the bytes, and a missing
  /// file is a real state, so those become gaps on the first attempt.
  /// Default: single attempt, no retries.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  /// Retry accounting accumulated across traversals.
  const RetryStats& retry_stats() const { return retry_stats_; }

  /// Test seam: replaces the byte-reading step of each decode (default:
  /// util/io read_file), so tests can script transient failures and
  /// verify the retry behavior without real storage faults.
  using ReadFileFn =
      std::function<Status(const std::string& file,
                           std::vector<std::uint8_t>* bytes)>;
  void set_read_fn(ReadFileFn fn) { read_fn_ = std::move(fn); }

  std::size_t count() const override { return files_.size(); }
  void visit(const SnapshotVisitor& visitor) override;
  void visit_move(const SnapshotMoveVisitor& visitor) override;
  /// Skips both the decode and the read for slots before `first_slot` —
  /// resuming a checkpointed study pays I/O only for the remaining weeks.
  void visit_move_from(std::size_t first_slot,
                       const SnapshotMoveVisitor& visitor) override;
  /// Streams chooser-accepted weeks as mapped ScolGroupReaders. Weeks
  /// whose image cannot even be opened for streaming (header/directory
  /// damage, v1 quirks) fall back to the eager path so their gap
  /// accounting — status text, retry behavior, read_fn_ seam — is
  /// byte-identical to visit_move_from; for the same reason a configured
  /// read_fn_ (test seam) disables streaming entirely.
  void visit_streaming(std::size_t first_slot, const StreamChooser& chooser,
                       const SnapshotMoveVisitor& move_visitor,
                       const SnapshotStreamVisitor& stream_visitor) override;
  /// Pushes the projection into the .scol decoder: unrequested column
  /// blocks are checksum-verified but not materialized.
  void set_columns(ColumnMask columns) override {
    scol_options_.columns = columns;
  }
  std::span<const SeriesGap> gaps() const override { return gaps_; }

  const std::vector<std::string>& files() const { return files_; }

 private:
  /// Reads and decodes files_[i] eagerly, delivering the snapshot to
  /// `visitor` or recording a gap — the shared per-file body of
  /// visit_move_from and visit_streaming's fallback. `bytes` is the
  /// caller's reusable read buffer.
  void deliver_eager(std::size_t i, std::vector<std::uint8_t>& bytes,
                     const SnapshotMoveVisitor& visitor);

  std::vector<std::string> files_;      // absolute paths, sorted by date
  std::vector<std::int64_t> taken_at_;  // parallel to files_
  std::vector<std::size_t> slots_;      // parallel to files_; has holes
  std::vector<SeriesGap> gaps_;
  std::vector<SeriesGap> open_gaps_;  // gaps found by open(); visit()
                                      // restarts from them each traversal
  ScolOptions scol_options_;
  RetryPolicy retry_policy_;
  RetryStats retry_stats_;
  ReadFileFn read_fn_;
};

/// Adapter delivering every `stride`-th snapshot of a base source with
/// re-densified week indices — the sampling-frequency ablation (the paper
/// sampled one snapshot per week out of a daily collection; this asks how
/// the findings shift at coarser cadences). Gaps are not forwarded: the
/// resampled timeline is treated as complete.
class StridedSource : public SnapshotSource {
 public:
  StridedSource(SnapshotSource& base, std::size_t stride)
      : base_(base), stride_(stride == 0 ? 1 : stride) {}

  std::size_t count() const override {
    return (base_.count() + stride_ - 1) / stride_;
  }
  void visit(const SnapshotVisitor& visitor) override {
    std::size_t emitted = 0;
    base_.visit([&](std::size_t week, const Snapshot& snap) {
      if (week % stride_ == 0) visitor(emitted++, snap);
    });
  }
  void visit_move(const SnapshotMoveVisitor& visitor) override {
    std::size_t emitted = 0;
    base_.visit_move([&](std::size_t week, Snapshot&& snap) {
      if (week % stride_ == 0) visitor(emitted++, std::move(snap));
    });
  }
  bool stable_snapshots() const override { return base_.stable_snapshots(); }
  void set_columns(ColumnMask columns) override { base_.set_columns(columns); }

 private:
  SnapshotSource& base_;
  std::size_t stride_;
};

/// Writes every snapshot of a source into `directory` as .scol files named
/// snap_<YYYYMMDD>.scol. Creates the directory if needed. Each file is
/// written via temp file + atomic rename (util/io.h).
bool save_series(SnapshotSource& source, const std::string& directory,
                 std::string* error = nullptr);

}  // namespace spider
