// .scol — the project's columnar, compressed binary snapshot format,
// standing in for the paper's PSV -> Apache Parquet conversion step (which
// cut the daily footprint from ~119 GB to ~28 GB and sped up every scan).
//
// v2 layout (default): a fixed header (magic SCOL0002, row count, nominal
// group size, group count) followed by a group directory and fixed-size row
// groups in Parquet style. Each group is self-contained — front-coding,
// delta, and RLE state restart at the group boundary — and holds one
// self-describing block per column: {column id, encoding id, payload size,
// checksum, payload}. Self-contained groups are what makes the codec
// parallel: groups encode and decode independently, and decode splices the
// per-group staging tables into the destination in group order, so the
// result is bit-identical to a serial pass.
//
// v1 layout (magic SCOL0001): the same column blocks, but one block per
// column for the whole table. The version byte in the magic dispatches;
// v1 images produced by older builds always remain decodable.
//
// Per-column encodings exploit snapshot structure:
//   * paths       — front coding (shared-prefix length + suffix), because a
//                   sorted-by-directory dump repeats long prefixes;
//   * mtime       — zig-zag delta varint row-to-row;
//   * ctime       — zig-zag delta against the *same row's* mtime (they are
//                   equal for most scientific output files);
//   * atime       — zig-zag delta against the same row's mtime;
//   * uid/gid/mode— run-length encoding (records cluster by owner);
//   * inode       — zig-zag delta varint;
//   * OST lists   — varint stripe count + varint indices.
// Every encoding can be individually disabled (falling back to a plain
// encoding) via ScolOptions — the knobs apply per group; the ablation
// benchmark measures each knob's contribution, mirroring the paper's
// format-conversion claim.
//
// Failure model (see DESIGN.md §9): decode returns a typed spider::Status,
// validates magic, sizes, the group directory, and per-column checksums,
// and never trusts lengths from the wire without bounds checks. Because v2
// groups are independently checksummed, corruption is *localized*: with
// ScolOptions::on_corrupt_group set to kSkip or kQuarantine, decode drops
// (or sets aside) damaged/truncated row groups, appends only the surviving
// rows, and reports exactly what was lost in a SalvageReport. The table is
// never left with partial rows of a failed decode: on a non-ok Status the
// destination is untouched, and in salvage mode only whole surviving
// groups are spliced.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "snapshot/table.h"
#include "util/io.h"
#include "util/status.h"

namespace spider {

class ThreadPool;

/// What v2 decode does with a row group that fails validation (bad
/// checksum, truncated payload, malformed encoding). v1 images have a
/// single whole-table column set, so there is nothing to salvage and the
/// policy behaves like kFail.
enum class CorruptGroupPolicy : std::uint8_t {
  kFail = 0,     // any damage fails the whole decode (strict default)
  kSkip,         // drop damaged groups, keep surviving rows
  kQuarantine,   // like kSkip, but keep the damaged groups' raw bytes in
                 // the SalvageReport for offline forensics
};

struct ScolOptions {
  bool front_code_paths = true;   // off: varint length + raw bytes
  bool delta_timestamps = true;   // off: absolute zig-zag varints
  bool rle_ids = true;            // off: plain varint per row
  bool delta_inodes = true;       // off: plain varint per row

  /// Rows per row group (v2). Groups are the unit of parallelism; the
  /// default keeps per-group encoder state amortized while giving a daily
  /// snapshot (tens of millions of rows) plenty of groups to fan out.
  std::size_t group_size = 256 * 1024;

  /// 2 writes the row-group layout; 1 writes the legacy single-block
  /// layout (compat fixtures, old-reader interchange). Decode ignores this
  /// and dispatches on the image's own magic.
  std::uint8_t format_version = 2;

  /// Decode-side salvage policy (see CorruptGroupPolicy).
  CorruptGroupPolicy on_corrupt_group = CorruptGroupPolicy::kFail;

  /// Projection pushdown: only the masked columns are materialized into the
  /// table (skipped columns read back as zero/empty). Every block is still
  /// checksum-validated regardless of the mask, so corruption detection,
  /// salvage behaviour, and gap accounting are identical at any projection.
  /// atime/ctime are delta-coded against same-row mtime, so requesting
  /// either implies materializing mtime too.
  ColumnMask columns = kColMaskAll;
};

/// One damaged v2 row group, as recorded by a salvaging decode.
struct ScolGroupDamage {
  std::size_t group = 0;    // group index in the directory
  std::uint64_t rows = 0;   // rows the directory promised for this group
  Status status;            // why the group was rejected
  /// Raw group bytes (clamped to the image) under kQuarantine; empty
  /// under kSkip.
  std::vector<std::uint8_t> quarantined;
};

/// The outcome of a salvaging decode: what survived, what was lost, why.
struct SalvageReport {
  std::size_t groups_total = 0;
  std::size_t groups_lost = 0;
  std::uint64_t rows_total = 0;      // rows the image claimed to hold
  std::uint64_t rows_recovered = 0;  // rows appended to the table
  std::uint64_t rows_lost = 0;
  std::vector<ScolGroupDamage> damage;

  bool clean() const { return groups_lost == 0; }
  /// "lost 2/8 groups (1200 of 4096 rows): group 3: corruption: ..." —
  /// one line, damaged groups listed (capped), for logs and CLIs.
  std::string summary() const;
};

/// Parsed v2 framing (header + group directory), exposed for the verify
/// tool and the fault-injection tests, which need group byte extents to
/// predict and check salvage outcomes. Fails (kTruncated/kCorruption)
/// when the header or directory itself is unusable; a group extent that
/// runs past the end of the image is *not* an error here — it shows up as
/// truncated=true for that group.
struct ScolV2Layout {
  std::uint64_t rows = 0;
  std::uint64_t group_size = 0;
  std::vector<std::uint64_t> group_rows;   // per group, from the directory
  std::vector<std::size_t> group_begin;    // absolute byte offset per group
  std::vector<std::size_t> group_len;      // bytes per group
  std::vector<bool> group_truncated;       // extent exceeds the image
  std::size_t payload_start = 0;           // first byte after the directory
};
Status parse_scol_v2_layout(std::span<const std::uint8_t> bytes,
                            ScolV2Layout* layout);

/// Per-column encoded sizes, for the format ablation study.
struct ScolColumnSizes {
  std::uint64_t paths = 0;
  std::uint64_t atime = 0;
  std::uint64_t ctime = 0;
  std::uint64_t mtime = 0;
  std::uint64_t uid = 0;
  std::uint64_t gid = 0;
  std::uint64_t mode = 0;
  std::uint64_t inode = 0;
  std::uint64_t ost = 0;
  std::uint64_t total = 0;
};

/// Encodes a table into an in-memory .scol image. v2 images encode their
/// row groups in parallel on `pool` (null = the process-global pool).
std::vector<std::uint8_t> encode_scol(const SnapshotTable& table,
                                      const ScolOptions& options = {},
                                      ThreadPool* pool = nullptr);

/// Decodes an in-memory .scol image (either version, dispatched on the
/// magic), appending rows into `table`. v2 row groups decode in parallel on
/// `pool`; the splice preserves row order, so contents are identical to a
/// single-threaded decode.
///
/// Damage handling follows options.on_corrupt_group; with kSkip or
/// kQuarantine the call succeeds whenever the header and directory are
/// readable, appends the surviving groups, and fills `report` (if given)
/// with the loss accounting. On a non-ok Status, `table` is unmodified.
Status decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                   const ScolOptions& options, SalvageReport* report = nullptr,
                   ThreadPool* pool = nullptr);

/// Legacy shim (pre-Status convention), strict decode only. Retained for
/// one PR; new callers use the Status overload.
bool decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                 std::string* error = nullptr, ThreadPool* pool = nullptr);

/// Encoded column sizes of a table under the given options (encodes into a
/// scratch buffer; used by benchmarks and the format tool). Sizes are
/// whole-table (v1-style) so knob contributions are comparable across
/// group sizes.
ScolColumnSizes scol_column_sizes(const SnapshotTable& table,
                                  const ScolOptions& options = {});

/// Per-column encoded payload sizes of one v2 group extent (as bounded by
/// parse_scol_v2_layout), read straight from the column-set framing — no
/// decode, no checksum verification. Total matches scol_column_sizes
/// semantics: payload bytes only, excluding the block headers. Fails with
/// kTruncated when the framing runs past the extent.
Status scol_group_column_sizes(std::span<const std::uint8_t> group,
                               ScolColumnSizes* sizes);

/// Encodes and writes via a temp file + atomic rename (util/io.h): a crash
/// mid-write leaves the previous file intact, never a torn image.
Status write_scol_file(const SnapshotTable& table, const std::string& file,
                       const ScolOptions& options);
/// Reads with EINTR/short-read-safe IO, then decodes; the returned Status
/// carries the file name as context. Salvage per options.on_corrupt_group.
Status read_scol_file(const std::string& file, SnapshotTable* table,
                      const ScolOptions& options,
                      SalvageReport* report = nullptr);

/// Legacy shims (pre-Status convention). Retained for one PR.
bool write_scol_file(const SnapshotTable& table, const std::string& file,
                     std::string* error = nullptr,
                     const ScolOptions& options = {});
bool read_scol_file(const std::string& file, SnapshotTable* table,
                    std::string* error = nullptr);

/// Streaming group-at-a-time reader — the out-of-core half of the codec
/// (DESIGN.md §15). open() maps the file (or borrows an in-memory image)
/// and validates the header plus group directory exactly once; after that,
/// decode_group() materializes any row group on demand into a caller-owned
/// staging table, reading column payloads zero-copy out of the mapped
/// bytes. A v1 image presents as a single group covering the whole table.
///
/// decode_group is const and carries no hidden state, so groups may be
/// decoded concurrently (the scan dispatcher's depth-1 prefetch does) and
/// re-decoded freely (the study's second pass over a streamed week does).
/// Salvage accounting therefore lives in a caller-owned SalvageReport,
/// driven through make_report / note_success / dispose_failure; visiting
/// every group once in directory order reproduces the eager decoder's
/// report — same damage entries, same order, same counters, same strict-
/// mode failure (the lowest damaged group) — which is what keeps the
/// streaming study's gap and data-quality output bit-identical.
class ScolGroupReader {
 public:
  ScolGroupReader();
  ~ScolGroupReader();
  ScolGroupReader(ScolGroupReader&&) noexcept;
  ScolGroupReader& operator=(ScolGroupReader&&) noexcept;
  ScolGroupReader(const ScolGroupReader&) = delete;
  ScolGroupReader& operator=(const ScolGroupReader&) = delete;

  /// Maps `file` and parses the framing. Header/directory damage fails
  /// here (there is nothing to stream against), with the file as context.
  Status open(const std::string& file, const ScolOptions& options = {});

  /// Borrows `bytes` (the caller keeps them alive) instead of mapping.
  Status open_bytes(std::span<const std::uint8_t> bytes,
                    const ScolOptions& options = {});

  bool is_open() const;
  std::uint64_t rows() const;
  std::size_t group_count() const;
  std::uint64_t group_rows(std::size_t g) const;
  /// Encoded bytes of group g as promised by the directory.
  std::size_t group_bytes(std::size_t g) const;
  const ScolOptions& options() const;

  /// Decodes group `g`, appending its rows to `table` under the open
  /// options' projection mask. Returns the group's own verdict — the same
  /// Status the eager decoder would assign this group (checksums verified
  /// for every block regardless of projection; a directory extent past the
  /// image is kTruncated) — without applying the salvage policy; on a
  /// non-ok Status `table` is untouched.
  Status decode_group(std::size_t g, SnapshotTable* table) const;

  /// A report pre-filled with groups_total / rows_total, matching the
  /// eager decoder's initialization.
  SalvageReport make_report() const;

  /// Accounts a successfully decoded group in `report`.
  void note_success(std::size_t g, SalvageReport* report) const;

  /// Applies the salvage policy to a failed group exactly as the eager
  /// decoder does: kFail returns the error with "group N" context; kSkip /
  /// kQuarantine record the damage (quarantining the group's raw bytes
  /// when configured) in `report` and return ok.
  Status dispose_failure(std::size_t g, Status s, SalvageReport* report) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Streaming v2 writer: accepts rows group-at-a-time and never holds more
/// than one group in memory — the generator uses it to produce series at
/// scales whose whole-table image could not exist in the container. Group
/// payloads append to a same-directory temp file as they fill; finish()
/// assembles header + directory + payload and renames atomically (crash
/// leaves the old file or none, never a torn image). The output is
/// byte-identical to write_scol_file of the same rows under the same
/// options: group boundaries fall at the same multiples of
/// options.group_size and every encoder restarts per group either way.
class ScolStreamWriter {
 public:
  ScolStreamWriter();
  ~ScolStreamWriter();  // abort()s if still open
  ScolStreamWriter(const ScolStreamWriter&) = delete;
  ScolStreamWriter& operator=(const ScolStreamWriter&) = delete;

  /// Begins writing `file`. Requires options.format_version == 2 (the v1
  /// layout cannot stream: its single column set spans the whole table).
  Status open(const std::string& file, const ScolOptions& options = {});

  /// Buffers one record, encoding and flushing a full group when
  /// options.group_size rows are pending.
  Status add(const RawRecord& rec);
  Status add(std::string_view path, std::int64_t atime, std::int64_t ctime,
             std::int64_t mtime, std::uint32_t uid, std::uint32_t gid,
             std::uint32_t mode, std::uint64_t inode,
             std::span<const std::uint32_t> osts);

  /// Flushes the tail group, writes the final image, closes. The writer
  /// cannot be reused after finish().
  Status finish();

  /// Drops all temp state without producing a file.
  void abort();

  std::uint64_t rows_added() const;

 private:
  Status flush_group();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace spider
