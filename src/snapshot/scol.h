// .scol — the project's columnar, compressed binary snapshot format,
// standing in for the paper's PSV -> Apache Parquet conversion step (which
// cut the daily footprint from ~119 GB to ~28 GB and sped up every scan).
//
// v2 layout (default): a fixed header (magic SCOL0002, row count, nominal
// group size, group count) followed by a group directory and fixed-size row
// groups in Parquet style. Each group is self-contained — front-coding,
// delta, and RLE state restart at the group boundary — and holds one
// self-describing block per column: {column id, encoding id, payload size,
// checksum, payload}. Self-contained groups are what makes the codec
// parallel: groups encode and decode independently, and decode splices the
// per-group staging tables into the destination in group order, so the
// result is bit-identical to a serial pass.
//
// v1 layout (magic SCOL0001): the same column blocks, but one block per
// column for the whole table. The version byte in the magic dispatches;
// v1 images produced by older builds always remain decodable.
//
// Per-column encodings exploit snapshot structure:
//   * paths       — front coding (shared-prefix length + suffix), because a
//                   sorted-by-directory dump repeats long prefixes;
//   * mtime       — zig-zag delta varint row-to-row;
//   * ctime       — zig-zag delta against the *same row's* mtime (they are
//                   equal for most scientific output files);
//   * atime       — zig-zag delta against the same row's mtime;
//   * uid/gid/mode— run-length encoding (records cluster by owner);
//   * inode       — zig-zag delta varint;
//   * OST lists   — varint stripe count + varint indices.
// Every encoding can be individually disabled (falling back to a plain
// encoding) via ScolOptions — the knobs apply per group; the ablation
// benchmark measures each knob's contribution, mirroring the paper's
// format-conversion claim.
//
// All APIs are status-returning (no exceptions); decode validates magic,
// sizes, the group directory, and per-column checksums, and never trusts
// lengths from the wire without bounds checks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "snapshot/table.h"

namespace spider {

class ThreadPool;

struct ScolOptions {
  bool front_code_paths = true;   // off: varint length + raw bytes
  bool delta_timestamps = true;   // off: absolute zig-zag varints
  bool rle_ids = true;            // off: plain varint per row
  bool delta_inodes = true;       // off: plain varint per row

  /// Rows per row group (v2). Groups are the unit of parallelism; the
  /// default keeps per-group encoder state amortized while giving a daily
  /// snapshot (tens of millions of rows) plenty of groups to fan out.
  std::size_t group_size = 256 * 1024;

  /// 2 writes the row-group layout; 1 writes the legacy single-block
  /// layout (compat fixtures, old-reader interchange). Decode ignores this
  /// and dispatches on the image's own magic.
  std::uint8_t format_version = 2;
};

/// Per-column encoded sizes, for the format ablation study.
struct ScolColumnSizes {
  std::uint64_t paths = 0;
  std::uint64_t atime = 0;
  std::uint64_t ctime = 0;
  std::uint64_t mtime = 0;
  std::uint64_t uid = 0;
  std::uint64_t gid = 0;
  std::uint64_t mode = 0;
  std::uint64_t inode = 0;
  std::uint64_t ost = 0;
  std::uint64_t total = 0;
};

/// Encodes a table into an in-memory .scol image. v2 images encode their
/// row groups in parallel on `pool` (null = the process-global pool).
std::vector<std::uint8_t> encode_scol(const SnapshotTable& table,
                                      const ScolOptions& options = {},
                                      ThreadPool* pool = nullptr);

/// Decodes an in-memory .scol image (either version, dispatched on the
/// magic), appending rows into `table`. v2 row groups decode in parallel on
/// `pool`; the splice preserves row order, so contents are identical to a
/// single-threaded decode.
bool decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                 std::string* error = nullptr, ThreadPool* pool = nullptr);

/// Encoded column sizes of a table under the given options (encodes into a
/// scratch buffer; used by benchmarks and the format tool). Sizes are
/// whole-table (v1-style) so knob contributions are comparable across
/// group sizes.
ScolColumnSizes scol_column_sizes(const SnapshotTable& table,
                                  const ScolOptions& options = {});

bool write_scol_file(const SnapshotTable& table, const std::string& file,
                     std::string* error = nullptr,
                     const ScolOptions& options = {});
bool read_scol_file(const std::string& file, SnapshotTable* table,
                    std::string* error = nullptr);

}  // namespace spider
