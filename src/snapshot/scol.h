// .scol — the project's columnar, compressed binary snapshot format,
// standing in for the paper's PSV -> Apache Parquet conversion step (which
// cut the daily footprint from ~119 GB to ~28 GB and sped up every scan).
//
// v2 layout (default): a fixed header (magic SCOL0002, row count, nominal
// group size, group count) followed by a group directory and fixed-size row
// groups in Parquet style. Each group is self-contained — front-coding,
// delta, and RLE state restart at the group boundary — and holds one
// self-describing block per column: {column id, encoding id, payload size,
// checksum, payload}. Self-contained groups are what makes the codec
// parallel: groups encode and decode independently, and decode splices the
// per-group staging tables into the destination in group order, so the
// result is bit-identical to a serial pass.
//
// v1 layout (magic SCOL0001): the same column blocks, but one block per
// column for the whole table. The version byte in the magic dispatches;
// v1 images produced by older builds always remain decodable.
//
// Per-column encodings exploit snapshot structure:
//   * paths       — front coding (shared-prefix length + suffix), because a
//                   sorted-by-directory dump repeats long prefixes;
//   * mtime       — zig-zag delta varint row-to-row;
//   * ctime       — zig-zag delta against the *same row's* mtime (they are
//                   equal for most scientific output files);
//   * atime       — zig-zag delta against the same row's mtime;
//   * uid/gid/mode— run-length encoding (records cluster by owner);
//   * inode       — zig-zag delta varint;
//   * OST lists   — varint stripe count + varint indices.
// Every encoding can be individually disabled (falling back to a plain
// encoding) via ScolOptions — the knobs apply per group; the ablation
// benchmark measures each knob's contribution, mirroring the paper's
// format-conversion claim.
//
// Failure model (see DESIGN.md §9): decode returns a typed spider::Status,
// validates magic, sizes, the group directory, and per-column checksums,
// and never trusts lengths from the wire without bounds checks. Because v2
// groups are independently checksummed, corruption is *localized*: with
// ScolOptions::on_corrupt_group set to kSkip or kQuarantine, decode drops
// (or sets aside) damaged/truncated row groups, appends only the surviving
// rows, and reports exactly what was lost in a SalvageReport. The table is
// never left with partial rows of a failed decode: on a non-ok Status the
// destination is untouched, and in salvage mode only whole surviving
// groups are spliced.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "snapshot/table.h"
#include "util/status.h"

namespace spider {

class ThreadPool;

/// What v2 decode does with a row group that fails validation (bad
/// checksum, truncated payload, malformed encoding). v1 images have a
/// single whole-table column set, so there is nothing to salvage and the
/// policy behaves like kFail.
enum class CorruptGroupPolicy : std::uint8_t {
  kFail = 0,     // any damage fails the whole decode (strict default)
  kSkip,         // drop damaged groups, keep surviving rows
  kQuarantine,   // like kSkip, but keep the damaged groups' raw bytes in
                 // the SalvageReport for offline forensics
};

struct ScolOptions {
  bool front_code_paths = true;   // off: varint length + raw bytes
  bool delta_timestamps = true;   // off: absolute zig-zag varints
  bool rle_ids = true;            // off: plain varint per row
  bool delta_inodes = true;       // off: plain varint per row

  /// Rows per row group (v2). Groups are the unit of parallelism; the
  /// default keeps per-group encoder state amortized while giving a daily
  /// snapshot (tens of millions of rows) plenty of groups to fan out.
  std::size_t group_size = 256 * 1024;

  /// 2 writes the row-group layout; 1 writes the legacy single-block
  /// layout (compat fixtures, old-reader interchange). Decode ignores this
  /// and dispatches on the image's own magic.
  std::uint8_t format_version = 2;

  /// Decode-side salvage policy (see CorruptGroupPolicy).
  CorruptGroupPolicy on_corrupt_group = CorruptGroupPolicy::kFail;

  /// Projection pushdown: only the masked columns are materialized into the
  /// table (skipped columns read back as zero/empty). Every block is still
  /// checksum-validated regardless of the mask, so corruption detection,
  /// salvage behaviour, and gap accounting are identical at any projection.
  /// atime/ctime are delta-coded against same-row mtime, so requesting
  /// either implies materializing mtime too.
  ColumnMask columns = kColMaskAll;
};

/// One damaged v2 row group, as recorded by a salvaging decode.
struct ScolGroupDamage {
  std::size_t group = 0;    // group index in the directory
  std::uint64_t rows = 0;   // rows the directory promised for this group
  Status status;            // why the group was rejected
  /// Raw group bytes (clamped to the image) under kQuarantine; empty
  /// under kSkip.
  std::vector<std::uint8_t> quarantined;
};

/// The outcome of a salvaging decode: what survived, what was lost, why.
struct SalvageReport {
  std::size_t groups_total = 0;
  std::size_t groups_lost = 0;
  std::uint64_t rows_total = 0;      // rows the image claimed to hold
  std::uint64_t rows_recovered = 0;  // rows appended to the table
  std::uint64_t rows_lost = 0;
  std::vector<ScolGroupDamage> damage;

  bool clean() const { return groups_lost == 0; }
  /// "lost 2/8 groups (1200 of 4096 rows): group 3: corruption: ..." —
  /// one line, damaged groups listed (capped), for logs and CLIs.
  std::string summary() const;
};

/// Parsed v2 framing (header + group directory), exposed for the verify
/// tool and the fault-injection tests, which need group byte extents to
/// predict and check salvage outcomes. Fails (kTruncated/kCorruption)
/// when the header or directory itself is unusable; a group extent that
/// runs past the end of the image is *not* an error here — it shows up as
/// truncated=true for that group.
struct ScolV2Layout {
  std::uint64_t rows = 0;
  std::uint64_t group_size = 0;
  std::vector<std::uint64_t> group_rows;   // per group, from the directory
  std::vector<std::size_t> group_begin;    // absolute byte offset per group
  std::vector<std::size_t> group_len;      // bytes per group
  std::vector<bool> group_truncated;       // extent exceeds the image
  std::size_t payload_start = 0;           // first byte after the directory
};
Status parse_scol_v2_layout(std::span<const std::uint8_t> bytes,
                            ScolV2Layout* layout);

/// Per-column encoded sizes, for the format ablation study.
struct ScolColumnSizes {
  std::uint64_t paths = 0;
  std::uint64_t atime = 0;
  std::uint64_t ctime = 0;
  std::uint64_t mtime = 0;
  std::uint64_t uid = 0;
  std::uint64_t gid = 0;
  std::uint64_t mode = 0;
  std::uint64_t inode = 0;
  std::uint64_t ost = 0;
  std::uint64_t total = 0;
};

/// Encodes a table into an in-memory .scol image. v2 images encode their
/// row groups in parallel on `pool` (null = the process-global pool).
std::vector<std::uint8_t> encode_scol(const SnapshotTable& table,
                                      const ScolOptions& options = {},
                                      ThreadPool* pool = nullptr);

/// Decodes an in-memory .scol image (either version, dispatched on the
/// magic), appending rows into `table`. v2 row groups decode in parallel on
/// `pool`; the splice preserves row order, so contents are identical to a
/// single-threaded decode.
///
/// Damage handling follows options.on_corrupt_group; with kSkip or
/// kQuarantine the call succeeds whenever the header and directory are
/// readable, appends the surviving groups, and fills `report` (if given)
/// with the loss accounting. On a non-ok Status, `table` is unmodified.
Status decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                   const ScolOptions& options, SalvageReport* report = nullptr,
                   ThreadPool* pool = nullptr);

/// Legacy shim (pre-Status convention), strict decode only. Retained for
/// one PR; new callers use the Status overload.
bool decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                 std::string* error = nullptr, ThreadPool* pool = nullptr);

/// Encoded column sizes of a table under the given options (encodes into a
/// scratch buffer; used by benchmarks and the format tool). Sizes are
/// whole-table (v1-style) so knob contributions are comparable across
/// group sizes.
ScolColumnSizes scol_column_sizes(const SnapshotTable& table,
                                  const ScolOptions& options = {});

/// Encodes and writes via a temp file + atomic rename (util/io.h): a crash
/// mid-write leaves the previous file intact, never a torn image.
Status write_scol_file(const SnapshotTable& table, const std::string& file,
                       const ScolOptions& options);
/// Reads with EINTR/short-read-safe IO, then decodes; the returned Status
/// carries the file name as context. Salvage per options.on_corrupt_group.
Status read_scol_file(const std::string& file, SnapshotTable* table,
                      const ScolOptions& options,
                      SalvageReport* report = nullptr);

/// Legacy shims (pre-Status convention). Retained for one PR.
bool write_scol_file(const SnapshotTable& table, const std::string& file,
                     std::string* error = nullptr,
                     const ScolOptions& options = {});
bool read_scol_file(const std::string& file, SnapshotTable* table,
                    std::string* error = nullptr);

}  // namespace spider
