// .scol — the project's columnar, compressed binary snapshot format,
// standing in for the paper's PSV -> Apache Parquet conversion step (which
// cut the daily footprint from ~119 GB to ~28 GB and sped up every scan).
//
// Layout: a fixed header (magic, row count), then one self-describing block
// per column: {column id, encoding id, payload size, checksum, payload}.
// Per-column encodings exploit snapshot structure:
//   * paths       — front coding (shared-prefix length + suffix), because a
//                   sorted-by-directory dump repeats long prefixes;
//   * mtime       — zig-zag delta varint row-to-row;
//   * ctime       — zig-zag delta against the *same row's* mtime (they are
//                   equal for most scientific output files);
//   * atime       — zig-zag delta against the same row's mtime;
//   * uid/gid/mode— run-length encoding (records cluster by owner);
//   * inode       — zig-zag delta varint;
//   * OST lists   — varint stripe count + varint indices.
// Every encoding can be individually disabled (falling back to a plain
// encoding) via ScolOptions; the ablation benchmark measures each knob's
// contribution, mirroring the paper's format-conversion claim.
//
// All APIs are status-returning (no exceptions); decode validates magic,
// sizes, and per-column checksums, and never trusts lengths from the wire
// without bounds checks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "snapshot/table.h"

namespace spider {

struct ScolOptions {
  bool front_code_paths = true;   // off: varint length + raw bytes
  bool delta_timestamps = true;   // off: absolute zig-zag varints
  bool rle_ids = true;            // off: plain varint per row
  bool delta_inodes = true;       // off: plain varint per row
};

/// Per-column encoded sizes, for the format ablation study.
struct ScolColumnSizes {
  std::uint64_t paths = 0;
  std::uint64_t atime = 0;
  std::uint64_t ctime = 0;
  std::uint64_t mtime = 0;
  std::uint64_t uid = 0;
  std::uint64_t gid = 0;
  std::uint64_t mode = 0;
  std::uint64_t inode = 0;
  std::uint64_t ost = 0;
  std::uint64_t total = 0;
};

/// Encodes a table into an in-memory .scol image.
std::vector<std::uint8_t> encode_scol(const SnapshotTable& table,
                                      const ScolOptions& options = {});

/// Decodes an in-memory .scol image, appending rows into `table`.
bool decode_scol(std::span<const std::uint8_t> bytes, SnapshotTable* table,
                 std::string* error = nullptr);

/// Encoded column sizes of a table under the given options (encodes into a
/// scratch buffer; used by benchmarks and the format tool).
ScolColumnSizes scol_column_sizes(const SnapshotTable& table,
                                  const ScolOptions& options = {});

bool write_scol_file(const SnapshotTable& table, const std::string& file,
                     std::string* error = nullptr,
                     const ScolOptions& options = {});
bool read_scol_file(const std::string& file, SnapshotTable* table,
                    std::string* error = nullptr);

}  // namespace spider
