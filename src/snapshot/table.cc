#include "snapshot/table.h"

#include <algorithm>
#include <limits>

namespace spider {

void SnapshotTable::reserve(std::size_t rows) {
  paths_.reserve(rows);
  path_hash_.reserve(rows);
  depth_.reserve(rows);
  atime_.reserve(rows);
  ctime_.reserve(rows);
  mtime_.reserve(rows);
  uid_.reserve(rows);
  gid_.reserve(rows);
  mode_.reserve(rows);
  inode_.reserve(rows);
  ost_offsets_.reserve(rows + 1);
}

std::uint32_t SnapshotTable::add(std::string_view path, std::int64_t atime,
                                 std::int64_t ctime, std::int64_t mtime,
                                 std::uint32_t uid, std::uint32_t gid,
                                 std::uint32_t mode, std::uint64_t inode,
                                 std::span<const std::uint32_t> osts) {
  const std::uint32_t row = static_cast<std::uint32_t>(size());
  const std::string_view stored = arena_.intern(path);
  paths_.push_back(stored);
  path_hash_.push_back(hash_bytes(stored));
  depth_.push_back(static_cast<std::uint16_t>(
      std::min<std::size_t>(path_depth(stored),
                            std::numeric_limits<std::uint16_t>::max())));
  atime_.push_back(atime);
  ctime_.push_back(ctime);
  mtime_.push_back(mtime);
  uid_.push_back(uid);
  gid_.push_back(gid);
  mode_.push_back(mode);
  inode_.push_back(inode);
  ost_values_.insert(ost_values_.end(), osts.begin(), osts.end());
  ost_offsets_.push_back(static_cast<std::uint32_t>(ost_values_.size()));
  if (mode_is_regular(mode)) ++file_count_;
  return row;
}

void SnapshotTable::append_table(SnapshotTable&& other) {
  if (other.empty()) return;
  if (empty()) {
    // Whole-table move: the common case when decode staged exactly one
    // group into a fresh destination.
    *this = std::move(other);
    other = SnapshotTable();
    return;
  }
  arena_.absorb(std::move(other.arena_));
  paths_.insert(paths_.end(), other.paths_.begin(), other.paths_.end());
  path_hash_.insert(path_hash_.end(), other.path_hash_.begin(),
                    other.path_hash_.end());
  depth_.insert(depth_.end(), other.depth_.begin(), other.depth_.end());
  atime_.insert(atime_.end(), other.atime_.begin(), other.atime_.end());
  ctime_.insert(ctime_.end(), other.ctime_.begin(), other.ctime_.end());
  mtime_.insert(mtime_.end(), other.mtime_.begin(), other.mtime_.end());
  uid_.insert(uid_.end(), other.uid_.begin(), other.uid_.end());
  gid_.insert(gid_.end(), other.gid_.begin(), other.gid_.end());
  mode_.insert(mode_.end(), other.mode_.begin(), other.mode_.end());
  inode_.insert(inode_.end(), other.inode_.begin(), other.inode_.end());
  const std::uint32_t base = ost_offsets_.back();
  ost_offsets_.reserve(ost_offsets_.size() + other.size());
  for (std::size_t i = 1; i < other.ost_offsets_.size(); ++i) {
    ost_offsets_.push_back(base + other.ost_offsets_[i]);
  }
  ost_values_.insert(ost_values_.end(), other.ost_values_.begin(),
                     other.ost_values_.end());
  file_count_ += other.file_count_;
  other = SnapshotTable();
}

void SnapshotTable::clear() {
  arena_ = StringArena();
  paths_.clear();
  path_hash_.clear();
  depth_.clear();
  atime_.clear();
  ctime_.clear();
  mtime_.clear();
  uid_.clear();
  gid_.clear();
  mode_.clear();
  inode_.clear();
  ost_offsets_.clear();
  ost_offsets_.push_back(0);
  ost_values_.clear();
  file_count_ = 0;
}

RawRecord SnapshotTable::row(std::size_t i) const {
  RawRecord rec;
  rec.path = std::string(paths_[i]);
  rec.atime = atime_[i];
  rec.ctime = ctime_[i];
  rec.mtime = mtime_[i];
  rec.uid = uid_[i];
  rec.gid = gid_[i];
  rec.mode = mode_[i];
  rec.inode = inode_[i];
  const auto o = osts(i);
  rec.osts.assign(o.begin(), o.end());
  return rec;
}

std::size_t SnapshotTable::memory_bytes() const {
  return arena_.bytes_used() +
         paths_.capacity() * sizeof(std::string_view) +
         path_hash_.capacity() * sizeof(std::uint64_t) +
         depth_.capacity() * sizeof(std::uint16_t) +
         (atime_.capacity() + ctime_.capacity() + mtime_.capacity()) *
             sizeof(std::int64_t) +
         (uid_.capacity() + gid_.capacity() + mode_.capacity()) *
             sizeof(std::uint32_t) +
         inode_.capacity() * sizeof(std::uint64_t) +
         (ost_offsets_.capacity() + ost_values_.capacity()) *
             sizeof(std::uint32_t);
}

SnapshotTable SnapshotTable::clone() const {
  SnapshotTable copy;
  copy.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    copy.add(path(i), atime(i), ctime(i), mtime(i), uid(i), gid(i), mode(i),
             inode(i), osts(i));
  }
  return copy;
}

}  // namespace spider
