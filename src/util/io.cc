#include "util/io.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace spider {

namespace {

std::string errno_text() {
  return std::strerror(errno);
}

/// open(2) with EINTR retry; returns -1 with errno preserved.
int open_retry(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// close(2), ignoring EINTR per POSIX (the fd state is unspecified after
/// an interrupted close; retrying risks closing a recycled descriptor).
void close_quietly(int fd) {
  ::close(fd);
}

Status write_all(int fd, const std::uint8_t* data, std::size_t count,
                 IoStats* stats) {
  std::size_t done = 0;
  while (done < count) {
    const ::ssize_t n = ::write(fd, data + done, count - done);
    if (n < 0) {
      if (errno == EINTR) {
        if (stats) ++stats->eintr_retries;
        continue;
      }
      return Status::io_error("write: " + errno_text());
    }
    if (static_cast<std::size_t>(n) < count - done && stats) {
      ++stats->short_writes;
    }
    done += static_cast<std::size_t>(n);
  }
  return Status();
}

/// RAII for the temp file of an atomic write: unlinks unless disarmed.
class TempFileGuard {
 public:
  explicit TempFileGuard(std::string path) : path_(std::move(path)) {}
  ~TempFileGuard() {
    if (armed_) ::unlink(path_.c_str());
  }
  void disarm() { armed_ = false; }

 private:
  std::string path_;
  bool armed_ = true;
};

WriteInterceptor* g_write_interceptor = nullptr;

WriteInterceptor::Decision intercept(WriteOp op, const std::string& path) {
  if (g_write_interceptor == nullptr) return {};
  return g_write_interceptor->on_op(op, path);
}

/// fsync the directory containing `path`, making a completed rename in it
/// durable. Filesystems that reject directory fsync (EINVAL on some
/// network mounts) are treated as "nothing to do", not as failures.
Status fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::io_error("open dir: " + errno_text()).with_context(dir);
  }
  Status s;
  if (::fsync(fd) != 0 && errno != EINVAL && errno != EROFS) {
    s = Status::io_error("fsync dir: " + errno_text()).with_context(dir);
  }
  close_quietly(fd);
  return s;
}

}  // namespace

std::string_view write_op_name(WriteOp op) {
  switch (op) {
    case WriteOp::kOpen: return "open";
    case WriteOp::kWrite: return "write";
    case WriteOp::kSyncFile: return "sync-file";
    case WriteOp::kRename: return "rename";
    case WriteOp::kSyncDir: return "sync-dir";
  }
  return "?";
}

void set_write_interceptor(WriteInterceptor* interceptor) {
  g_write_interceptor = interceptor;
}

Status read_exactly(const RawReadFn& read_fn, void* buf, std::size_t count,
                    IoStats* stats) {
  std::uint8_t* out = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < count) {
    const long n = read_fn(out + done, count - done);
    if (n < 0) {
      if (errno == EINTR) {
        if (stats) ++stats->eintr_retries;
        continue;
      }
      return Status::io_error("read: " + errno_text());
    }
    if (n == 0) {
      return Status::truncated("end of file after " + std::to_string(done) +
                               " of " + std::to_string(count) + " bytes");
    }
    if (static_cast<std::size_t>(n) < count - done && stats) {
      ++stats->short_reads;
    }
    done += static_cast<std::size_t>(n);
  }
  return Status();
}

Status read_until_eof(const RawReadFn& read_fn, std::vector<std::uint8_t>* out,
                      std::size_t size_hint, IoStats* stats) {
  if (size_hint) out->reserve(out->size() + size_hint);
  // Chunked append: 64 KiB balances syscall count against over-allocation
  // when the size hint is absent or wrong.
  constexpr std::size_t kChunk = 64 * 1024;
  std::uint8_t buf[kChunk];
  for (;;) {
    const long n = read_fn(buf, kChunk);
    if (n < 0) {
      if (errno == EINTR) {
        if (stats) ++stats->eintr_retries;
        continue;
      }
      return Status::io_error("read: " + errno_text());
    }
    if (n == 0) return Status();
    if (static_cast<std::size_t>(n) < kChunk && stats) ++stats->short_reads;
    out->insert(out->end(), buf, buf + n);
  }
}

Status read_file(const std::string& path, std::vector<std::uint8_t>* out,
                 IoStats* stats) {
  const int fd = open_retry(path.c_str(), O_RDONLY);
  if (fd < 0) {
    const Status s = errno == ENOENT ? Status::not_found(errno_text())
                                     : Status::io_error(errno_text());
    return s.with_context(path);
  }
  struct ::stat st {};
  const std::size_t hint =
      ::fstat(fd, &st) == 0 && st.st_size > 0
          ? static_cast<std::size_t>(st.st_size)
          : 0;
  const RawReadFn fd_read = [fd](void* buf, std::size_t count) -> long {
    return static_cast<long>(::read(fd, buf, count));
  };
  const Status s = read_until_eof(fd_read, out, hint, stats);
  close_quietly(fd);
  return s.with_context(path);
}

Status read_file(const std::string& path, std::string* out, IoStats* stats) {
  std::vector<std::uint8_t> bytes;
  const Status s = read_file(path, &bytes, stats);
  if (!s.ok()) return s;
  out->assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return Status();
}

Status write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> bytes, IoStats* stats) {
  // Same directory as the target so the rename cannot cross filesystems.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  const auto injected = [&path](WriteOp op) {
    return Status::io_error(std::string("injected fault at ") +
                            std::string(write_op_name(op)))
        .with_context(path);
  };

  WriteInterceptor::Decision d = intercept(WriteOp::kOpen, path);
  if (d.fail || d.crash) return injected(WriteOp::kOpen);
  const int fd =
      open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::io_error(errno_text()).with_context("create " + tmp);
  }
  TempFileGuard guard(tmp);

  d = intercept(WriteOp::kWrite, path);
  if (d.crash) {
    // Simulated process death mid-write: a prefix of the payload lands in
    // the temp file and no destructor cleans it up — exactly the torn temp
    // a killed writer leaves behind. The destination is untouched.
    const std::size_t keep = std::min(d.keep_bytes, bytes.size());
    (void)write_all(fd, bytes.data(), keep, stats);
    close_quietly(fd);
    guard.disarm();
    return injected(WriteOp::kWrite);
  }
  Status s = d.fail ? Status::io_error("injected write fault")
                    : write_all(fd, bytes.data(), bytes.size(), stats);

  if (s.ok()) {
    d = intercept(WriteOp::kSyncFile, path);
    if (d.crash) {
      // Death at fsync: the tail past the last durable sector is lost.
      const std::size_t keep = std::min(d.keep_bytes, bytes.size());
      (void)::ftruncate(fd, static_cast<off_t>(keep));
      close_quietly(fd);
      guard.disarm();
      return injected(WriteOp::kSyncFile);
    }
    if (d.fail) {
      s = Status::io_error("injected fsync fault");
    } else if (::fsync(fd) != 0) {
      s = Status::io_error("fsync: " + errno_text());
    }
  }
  close_quietly(fd);
  if (!s.ok()) return s.with_context(path);

  d = intercept(WriteOp::kRename, path);
  if (d.crash) {
    // Death at the rename boundary: power loss leaves either the old
    // destination (rename never happened; temp orphaned) or the new one
    // (it did). Both are legal crash states the resume path must handle.
    if (d.complete_rename && ::rename(tmp.c_str(), path.c_str()) == 0) {
      guard.disarm();
    } else {
      guard.disarm();  // temp left behind, as a dead process would
    }
    return injected(WriteOp::kRename);
  }
  if (d.fail) {
    return Status::io_error("injected rename fault").with_context(path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::io_error("rename: " + errno_text()).with_context(path);
  }
  guard.disarm();

  // Make the rename itself durable: without the directory fsync a power
  // loss can roll the dirent back even though the file data was synced.
  d = intercept(WriteOp::kSyncDir, path);
  if (d.crash) return injected(WriteOp::kSyncDir);
  if (d.fail) {
    return Status::io_error("injected dir-fsync fault").with_context(path);
  }
  return fsync_parent_dir(path);
}

Status write_file_atomic(const std::string& path, std::string_view text,
                         IoStats* stats) {
  return write_file_atomic(
      path,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size()),
      stats);
}

namespace {

MapInterceptor* g_map_interceptor = nullptr;

MapInterceptor::Decision map_intercept(MapOp op, const std::string& path) {
  if (g_map_interceptor == nullptr) return {};
  return g_map_interceptor->on_op(op, path);
}

}  // namespace

std::string_view map_op_name(MapOp op) {
  switch (op) {
    case MapOp::kOpen: return "open";
    case MapOp::kStat: return "stat";
    case MapOp::kMap: return "map";
  }
  return "?";
}

void set_map_interceptor(MapInterceptor* interceptor) {
  g_map_interceptor = interceptor;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    mapped_ = other.mapped_;
    size_ = other.size_;
    empty_ok_ = other.empty_ok_;
    other.mapped_ = nullptr;
    other.size_ = 0;
    other.empty_ok_ = false;
    other.path_.clear();
  }
  return *this;
}

void MappedFile::close() {
  if (mapped_ != nullptr) ::munmap(mapped_, size_);
  mapped_ = nullptr;
  size_ = 0;
  empty_ok_ = false;
  path_.clear();
}

Status MappedFile::open(const std::string& path) {
  close();

  const auto injected = [&path](MapOp op) {
    return Status::io_error(std::string("injected fault at ") +
                            std::string(map_op_name(op)))
        .with_context(path);
  };

  MapInterceptor::Decision d = map_intercept(MapOp::kOpen, path);
  if (d.fail) return injected(MapOp::kOpen);
  const int fd = open_retry(path.c_str(), O_RDONLY);
  if (fd < 0) {
    const Status s = errno == ENOENT ? Status::not_found(errno_text())
                                     : Status::io_error(errno_text());
    return s.with_context(path);
  }

  d = map_intercept(MapOp::kStat, path);
  struct ::stat st {};
  if (d.fail || ::fstat(fd, &st) != 0) {
    const Status s = d.fail ? injected(MapOp::kStat)
                            : Status::io_error("stat: " + errno_text())
                                  .with_context(path);
    close_quietly(fd);
    return s;
  }
  std::size_t size = st.st_size > 0 ? static_cast<std::size_t>(st.st_size) : 0;
  if (d.truncate_to != static_cast<std::size_t>(-1)) {
    size = std::min(size, d.truncate_to);
  }

  if (size == 0) {
    // Zero-length mmap is EINVAL by spec; an empty snapshot file is still a
    // successful open whose bytes() are the empty span (the codec then
    // reports "bad magic", same as the eager read path).
    close_quietly(fd);
    path_ = path;
    empty_ok_ = true;
    return Status();
  }

  d = map_intercept(MapOp::kMap, path);
  void* mapped = d.fail ? MAP_FAILED
                        : ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the fd is not needed
  // once mmap has succeeded (or failed).
  close_quietly(fd);
  if (mapped == MAP_FAILED) {
    if (d.fail) return injected(MapOp::kMap);
    return Status::io_error("mmap: " + errno_text()).with_context(path);
  }
  path_ = path;
  mapped_ = mapped;
  size_ = size;
  return Status();
}

}  // namespace spider
