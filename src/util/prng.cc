#include "util/prng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace spider {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four zero outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is nudged away from 0 so log() stays finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean > 64.0) {
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(draw));
  }
  // Knuth: multiply uniforms until the product drops below e^-mean.
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights)
    if (w > 0) total += w;
  if (total <= 0.0) return weights.empty() ? 0 : uniform_u64(weights.size());
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0) {
      target -= weights[i];
      if (target <= 0.0) return i;
    }
  }
  return weights.size() - 1;
}

AliasSampler::AliasSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  if (n == 0) return;

  double total = 0.0;
  std::vector<double> w(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = weights[i];
    if (x > 0 && std::isfinite(x)) {
      w[i] = x;
      total += x;
    }
  }
  if (total <= 0.0) {
    // Degenerate: uniform.
    for (std::size_t i = 0; i < n; ++i) {
      prob_[i] = 1.0;
      alias_[i] = static_cast<std::uint32_t>(i);
    }
    return;
  }

  // Vose's stable construction with small/large worklists.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = w[i] * n / total;
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t l : large) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
  for (std::uint32_t s : small) {  // numeric leftovers
    prob_[s] = 1.0;
    alias_[s] = s;
  }
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t i = rng.uniform_u64(prob_.size());
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

std::vector<double> power_law_weights(std::size_t kmin, std::size_t kmax,
                                      double alpha) {
  std::vector<double> w;
  w.reserve(kmax - kmin + 1);
  for (std::size_t k = kmin; k <= kmax; ++k) {
    w.push_back(std::pow(static_cast<double>(k), -alpha));
  }
  return w;
}

}  // namespace spider
