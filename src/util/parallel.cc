#include "util/parallel.h"

#include <algorithm>

namespace spider {

namespace {
thread_local const ThreadPool* tls_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

bool ThreadPool::on_worker_thread() const { return tls_current_pool == this; }

void ThreadPool::worker_loop() {
  tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace detail {

void parallel_chunks(ThreadPool& pool, std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);

  // Inline execution when the work is tiny or we are already inside a
  // worker (avoids pool-on-pool deadlock for nested parallel regions). The
  // chunking contract (no chunk exceeds `grain`) holds on this path too.
  if (n <= grain || pool.size() <= 1 || pool.on_worker_thread()) {
    for (std::size_t begin = 0; begin < n; begin += grain) {
      fn(begin, std::min(begin + grain, n));
    }
    return;
  }

  const std::size_t num_chunks = (n + grain - 1) / grain;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto remaining = std::make_shared<std::atomic<std::size_t>>(num_chunks);
  auto done_mu = std::make_shared<std::mutex>();
  auto done_cv = std::make_shared<std::condition_variable>();

  auto drain = [next, remaining, done_mu, done_cv, n, grain, num_chunks,
                &fn]() {
    for (;;) {
      const std::size_t c = next->fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(begin + grain, n);
      fn(begin, end);
      if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(*done_mu);
        done_cv->notify_all();
      }
    }
  };

  // One helper task per worker; each drains chunks from the shared counter.
  const unsigned helpers =
      static_cast<unsigned>(std::min<std::size_t>(pool.size(), num_chunks));
  for (unsigned i = 0; i + 1 < helpers; ++i) pool.submit(drain);

  // The caller participates too, so progress never depends on queue
  // position behind unrelated long-running tasks.
  drain();

  std::unique_lock<std::mutex> lock(*done_mu);
  done_cv->wait(lock, [&] {
    return remaining->load(std::memory_order_acquire) == 0;
  });
}

}  // namespace detail

}  // namespace spider
