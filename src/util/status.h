// spider::Status / Result<T> — the project-wide typed error model.
//
// The codecs and file plumbing started life on a `bool + std::string*`
// convention; that loses the error *class* (a truncated file and a failed
// checksum both collapse to `false`) and encourages layers to overwrite each
// other's messages. Status keeps a code, a human-readable message, and an
// optional chained cause, so an error reads outermost-context-first:
//
//   CORRUPTION: snap_20150105.scol: group 3: paths: truncated suffix bytes
//
// Conventions:
//   * ok() is the moving-parts-free default; an ok Status allocates nothing.
//   * with_context() wraps a failure in a caller-side prefix ("file X",
//     "group 3") without discarding the inner text — the fix for the old
//     habit of decode paths clobbering earlier error strings.
//   * caused_by() chains a distinct underlying Status (e.g. an IO error
//     beneath a decode failure); to_string() renders the whole chain.
//   * No exceptions: Status is returned by value and marked [[nodiscard]].
#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace spider {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     // caller handed us something unusable
  kNotFound,            // missing file / directory / entry
  kCorruption,          // data present but fails validation (checksums, ...)
  kTruncated,           // data ends before its own framing says it should
  kIoError,             // the OS failed a read/write/rename
  kResourceExhausted,   // a budget was exceeded (e.g. max_bad_lines)
  kFailedPrecondition,  // call sequencing / state error
  kInternal,            // invariant violation; a bug, not bad input
};

/// Stable lowercase name for a code ("corruption", "io error", ...).
std::string_view status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK and allocation-free.
  Status() = default;

  Status(StatusCode code, std::string message);

  static Status invalid_argument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status not_found(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status truncated(std::string m) {
    return Status(StatusCode::kTruncated, std::move(m));
  }
  static Status io_error(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status resource_exhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status failed_precondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const;
  const std::string& message() const;

  /// True when a distinct underlying Status is chained beneath this one.
  bool has_cause() const;
  /// The chained underlying Status (ok() when there is none).
  Status cause() const;

  /// Failure with "context: " prepended to the message, same code and
  /// cause. On an ok Status this is a no-op (contexts never invent errors).
  Status with_context(std::string_view context) const;

  /// This failure, now carrying `cause` as its chained underlying error.
  /// An existing cause is displaced down the chain of `cause` itself only
  /// if `cause` has none (we never silently drop a link).
  Status caused_by(const Status& cause) const;

  /// "CODE: message; caused by: CODE: message; ..." — or "ok".
  std::string to_string() const;

 private:
  // The cause chain reuses Rep directly (a cause *is* another failure), so
  // Status stays one shared_ptr wide and O(1) to copy.
  struct Rep;

  std::shared_ptr<const Rep> rep_;
};

/// A value or the Status explaining its absence.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "ok Result must carry a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// The value, or `fallback` on error.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace spider
