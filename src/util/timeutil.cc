#include "util/timeutil.h"

#include <cstdio>

namespace spider {

std::int64_t days_from_civil(const CivilDate& date) {
  // Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  const int y = date.year - (date.month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);  // [0, 399]
  const unsigned doy =
      (153 * (date.month + (date.month > 2 ? -3 : 9)) + 2) / 5 + date.day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  CivilDate date;
  date.year = static_cast<int>(y + (m <= 2 ? 1 : 0));
  date.month = m;
  date.day = d;
  return date;
}

std::int64_t epoch_from_civil(const CivilDate& date) {
  return days_from_civil(date) * kSecondsPerDay;
}

CivilDate civil_from_epoch(std::int64_t epoch_seconds) {
  std::int64_t days = epoch_seconds / kSecondsPerDay;
  if (epoch_seconds < 0 && epoch_seconds % kSecondsPerDay != 0) --days;
  return civil_from_days(days);
}

std::string date_tag(std::int64_t epoch_seconds) {
  const CivilDate d = civil_from_epoch(epoch_seconds);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d%02u%02u", d.year, d.month, d.day);
  return buf;
}

std::string date_iso(std::int64_t epoch_seconds) {
  const CivilDate d = civil_from_epoch(epoch_seconds);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", d.year, d.month, d.day);
  return buf;
}

double seconds_to_days(std::int64_t seconds) {
  return static_cast<double>(seconds) / static_cast<double>(kSecondsPerDay);
}

}  // namespace spider
