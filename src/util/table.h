// ASCII report rendering: every bench harness prints its table/figure as an
// aligned text table (the "same rows/series the paper reports"), so output
// is diffable and greppable. Also hosts small numeric formatting helpers
// (K/M/B suffixes, percentages) shared by the reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace spider {

/// Column alignment for AsciiTable.
enum class Align { kLeft, kRight };

/// Minimal aligned-text table. Usage:
///   AsciiTable t({"domain", "#entries", "share"});
///   t.add_row({"bip", "595,564", "14.6%"});
///   t.print(std::cout);
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void set_alignment(std::size_t column, Align align);
  void add_row(std::vector<std::string> cells);
  /// Horizontal rule between row groups.
  void add_separator();

  std::size_t rows() const { return rows_.size(); }
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
  std::vector<Align> aligns_;
};

/// 1234567 -> "1,234,567".
std::string format_with_commas(std::uint64_t value);

/// 1234567 -> "1.23M"; 1234 -> "1.23K"; keeps three significant digits.
std::string format_count(double value);

/// 0.4215 -> "42.15%" (two decimals).
std::string format_percent(double fraction);

/// Fixed-precision double.
std::string format_double(double value, int decimals);

/// Scientific-ish compact for small cv values: 0.00234 -> "2.34e-03" when
/// |value| < 0.01, fixed otherwise.
std::string format_cv(double value);

}  // namespace spider
