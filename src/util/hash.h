// Hashing primitives shared by the engine's hash tables.
//
// The analyses join adjacent ~million-row snapshots on the path column, so
// string hashing is on the critical path. We use a simple 64-bit
// multiply-xor block hash (wyhash-style mixing, but self-contained) that is
// seed-stable across platforms — std::hash is not, and reproducibility of
// shard assignment matters for deterministic parallel aggregation output.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace spider {

/// Final avalanche mix (from MurmurHash3 / SplitMix64 family).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// 64-bit string hash: unrolled 8-byte blocks with multiply-rotate mixing,
/// tail folded in, avalanche finish. Not cryptographic; collision quality is
/// validated by tests (distribution across shards, avalanche on 1-bit
/// flips).
inline std::uint64_t hash_bytes(std::string_view s,
                                std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(s.size()) *
                            0x9e3779b97f4a7c15ULL);
  const char* p = s.data();
  std::size_t n = s.size();
  while (n >= 8) {
    h = mix64(h ^ load_u64(p));
    h *= 0x2545f4914f6cdd1dULL;
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tail |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
            << (8 * i);
  }
  h = mix64(h ^ tail);
  return mix64(h);
}

/// Combine two hashes (boost::hash_combine style but 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4)));
}

}  // namespace spider
