// Shared-memory parallel substrate: a fixed thread pool plus chunked
// parallel_for / parallel_reduce in the OpenMP "static-ish with dynamic
// chunk claiming" style.
//
// The analytics engine is a set of embarrassingly parallel scans and
// shard-local aggregations; this is all the parallelism it needs. Chunks are
// claimed from an atomic counter (dynamic schedule) so skewed per-row costs
// (e.g. path parsing) balance automatically. Nested calls from inside a
// worker execute inline — the thread is already "inside" the parallel
// region, and blocking it on further pool tasks could deadlock the pool.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spider {

class ThreadPool {
 public:
  /// threads == 0 selects hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; tasks must not throw (the pool terminates on escape,
  /// per the no-exceptions-across-parallel-boundaries rule).
  void submit(std::function<void()> task);

  /// Process-wide pool, created on first use with hardware concurrency.
  static ThreadPool& global();

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

namespace detail {

/// Runs fn(chunk_begin, chunk_end) over [0, n) split into chunks of at most
/// `grain`, fanned out across `pool`. The caller participates, so progress
/// is guaranteed even on a saturated pool. Blocks until all chunks finish.
void parallel_chunks(ThreadPool& pool, std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace detail

/// Grain floor for the automatic schedule: chunks never drop below this
/// many iterations, so tiny inputs run inline instead of fanning out.
inline constexpr std::size_t kGrainMin = 1024;

/// Passing this (or 0) as a grain selects the automatic schedule.
inline constexpr std::size_t kGrainAuto = 0;

/// Automatic grain: aim for ~8 chunks per worker (enough slack for dynamic
/// balancing of skewed per-row costs) but never below kGrainMin, so tiny
/// inputs don't fan out and huge inputs don't create thousands of chunks.
inline std::size_t resolve_grain(std::size_t n, std::size_t grain,
                                 ThreadPool* pool = nullptr) {
  if (grain != kGrainAuto) return grain;
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  return std::max<std::size_t>(kGrainMin, n / (8 * std::max(1u, p.size())));
}

/// Parallel loop over [0, n) in chunks; Body is fn(begin, end).
template <typename Body>
void parallel_for_chunked(std::size_t n, std::size_t grain, Body&& body,
                          ThreadPool* pool = nullptr) {
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  std::function<void(std::size_t, std::size_t)> fn = std::forward<Body>(body);
  detail::parallel_chunks(p, n, resolve_grain(n, grain, &p), fn);
}

/// Parallel loop over [0, n); Body is fn(i). The default grain picks the
/// automatic schedule (see resolve_grain).
template <typename Body>
void parallel_for(std::size_t n, Body&& body, ThreadPool* pool = nullptr,
                  std::size_t grain = kGrainAuto) {
  parallel_for_chunked(
      n, grain,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      pool);
}

/// Parallel map-reduce: each chunk folds into a thread-local Acc via
/// `fold(acc, i)`, partials are combined left-to-right (deterministically,
/// in chunk order) via `combine(into, from)`.
template <typename Acc, typename Fold, typename Combine>
Acc parallel_reduce(std::size_t n, Acc identity, Fold&& fold,
                    Combine&& combine, ThreadPool* pool = nullptr,
                    std::size_t grain = kGrainAuto) {
  if (n == 0) return identity;
  grain = resolve_grain(n, grain, pool);
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<Acc> partials(chunks, identity);
  parallel_for_chunked(
      n, grain,
      [&](std::size_t begin, std::size_t end) {
        Acc& acc = partials[begin / grain];
        for (std::size_t i = begin; i < end; ++i) fold(acc, i);
      },
      pool);
  Acc result = std::move(identity);
  for (Acc& partial : partials) combine(result, partial);
  return result;
}

}  // namespace spider
