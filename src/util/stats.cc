#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace spider {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> sample, double p) {
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

FiveNumber five_number_summary(std::span<const double> sample) {
  FiveNumber fn;
  if (sample.empty()) return fn;
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  fn.min = copy.front();
  fn.max = copy.back();
  fn.q25 = percentile_sorted(copy, 25.0);
  fn.median = percentile_sorted(copy, 50.0);
  fn.q75 = percentile_sorted(copy, 75.0);
  fn.count = copy.size();
  return fn;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::fraction_at_most(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  return percentile_sorted(sorted_, clamped * 100.0);
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q =
        points == 1 ? 1.0
                    : static_cast<double>(i) / static_cast<double>(points - 1);
    const double x = quantile(q);
    out.emplace_back(x, fraction_at_most(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {}

void Histogram::add(double x, std::uint64_t weight) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);
  }
  counts_[i] += weight;
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  const std::size_t n = std::min(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  fit.n = n;
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit log_log_fit(std::span<const std::uint64_t> count_by_value) {
  std::vector<double> lx, ly;
  for (std::size_t v = 1; v < count_by_value.size(); ++v) {
    if (count_by_value[v] == 0) continue;
    lx.push_back(std::log10(static_cast<double>(v)));
    ly.push_back(std::log10(static_cast<double>(count_by_value[v])));
  }
  return linear_fit(lx, ly);
}

}  // namespace spider
