// Deterministic pseudo-random number generation and samplers.
//
// Every stochastic component in the project draws from these generators with
// an explicit 64-bit seed, so the whole study (generator + analyses) is
// bit-reproducible across runs and platforms. std:: distributions are
// deliberately avoided: their output is implementation-defined, which would
// make the calibration tests flaky across standard libraries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace spider {

/// SplitMix64: tiny, statistically solid generator used for seeding and for
/// one-shot hashing of seeds. (Vigna, 2015.)
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna): the project-wide workhorse PRNG.
/// Small state, fast, passes BigCrush; good enough for simulation work.
class Rng {
 public:
  /// Seeds the four state words via SplitMix64, per the reference guidance.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  std::uint64_t next_u64();

  /// Uniform in [0, n). n must be nonzero. Uses Lemire's multiply-shift
  /// rejection method to avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second deviate).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Poisson with the given mean. Knuth's method for small means, a
  /// normal approximation (rounded, clamped at 0) for mean > 64.
  std::uint64_t poisson(double mean);

  /// Derive an independent child generator; used to hand each simulated
  /// entity (project, user, week) its own stream without correlation.
  Rng fork();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Linear scan; use AliasSampler for repeated draws from one table.
  std::size_t weighted_pick(std::span<const double> weights);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

/// Walker/Vose alias method: O(1) sampling from a fixed discrete
/// distribution after O(n) setup. Used for extension mixes, language mixes,
/// and domain weights, which are sampled millions of times.
class AliasSampler {
 public:
  AliasSampler() = default;
  /// Weights need not be normalized; negative/NaN weights are treated as 0.
  /// An all-zero table degenerates to uniform.
  explicit AliasSampler(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Zipf(s) sampler over ranks {1..n} via inverse-CDF on a precomputed
/// cumulative table. Heavy-tailed popularity (file reuse, membership
/// degrees) follows Zipf in this project, matching the paper's power-law
/// observations.
class ZipfSampler {
 public:
  ZipfSampler() = default;
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [1, n].
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Bounded discrete power-law sampler: P(k) ~ k^-alpha for k in [kmin,kmax].
std::vector<double> power_law_weights(std::size_t kmin, std::size_t kmax,
                                      double alpha);

}  // namespace spider
