// Civil-date <-> epoch-second conversions and study-calendar helpers.
//
// The study spans January 2015 – August 2016, sampled weekly (the paper
// uses one snapshot per week out of the daily collection, 72 snapshot dates
// with a few maintenance gaps). All timestamps in the project are POSIX
// epoch seconds (UTC), matching the LustreDU record fields.
#pragma once

#include <cstdint>
#include <string>

namespace spider {

inline constexpr std::int64_t kSecondsPerDay = 86'400;
inline constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

struct CivilDate {
  int year = 1970;
  unsigned month = 1;  // 1-12
  unsigned day = 1;    // 1-31

  bool operator==(const CivilDate&) const = default;
};

/// Days since 1970-01-01 for a proleptic Gregorian civil date
/// (Howard Hinnant's days_from_civil algorithm).
std::int64_t days_from_civil(const CivilDate& date);

/// Inverse of days_from_civil.
CivilDate civil_from_days(std::int64_t days_since_epoch);

/// Epoch seconds at 00:00 UTC of the given civil date.
std::int64_t epoch_from_civil(const CivilDate& date);

CivilDate civil_from_epoch(std::int64_t epoch_seconds);

/// "20150126"-style tag, as used in the paper's snapshot names.
std::string date_tag(std::int64_t epoch_seconds);

/// "2015-01-26".
std::string date_iso(std::int64_t epoch_seconds);

/// Fractional days between two epoch timestamps.
double seconds_to_days(std::int64_t seconds);

}  // namespace spider
