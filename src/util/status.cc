#include "util/status.h"

namespace spider {

struct Status::Rep {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::shared_ptr<const Rep> cause;
};

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kTruncated:
      return "truncated";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  assert(code != StatusCode::kOk);
  rep_ = std::make_shared<const Rep>(Rep{code, std::move(message), nullptr});
}

StatusCode Status::code() const {
  return rep_ ? rep_->code : StatusCode::kOk;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return rep_ ? rep_->message : kEmpty;
}

bool Status::has_cause() const { return rep_ && rep_->cause != nullptr; }

Status Status::cause() const {
  Status s;
  if (rep_) s.rep_ = rep_->cause;
  return s;
}

Status Status::with_context(std::string_view context) const {
  if (ok()) return *this;
  Status wrapped;
  wrapped.rep_ = std::make_shared<const Rep>(
      Rep{rep_->code, std::string(context) + ": " + rep_->message,
          rep_->cause});
  return wrapped;
}

Status Status::caused_by(const Status& cause) const {
  if (ok() || cause.ok()) return *this;
  Status chained = cause;
  if (rep_->cause) {
    // Keep the existing link: append the old cause beneath the new one.
    Status old_cause;
    old_cause.rep_ = rep_->cause;
    chained = cause.caused_by(old_cause);
  }
  Status wrapped;
  wrapped.rep_ = std::make_shared<const Rep>(
      Rep{rep_->code, rep_->message, chained.rep_});
  return wrapped;
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out;
  Status s = *this;
  while (!s.ok()) {
    if (!out.empty()) out += "; caused by: ";
    out += status_code_name(s.code());
    out += ": ";
    out += s.message();
    s = s.cause();
  }
  return out;
}

}  // namespace spider
