// Streaming and batch statistics used throughout the analyses: Welford
// accumulators, coefficient of variation (the paper's burstiness metric),
// percentiles, empirical CDFs, histograms, and log-log least squares (the
// power-law fit for the file-generation network).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace spider {

/// Numerically stable single-pass accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);
  /// Merge another accumulator (Chan et al. parallel combination); enables
  /// per-thread accumulation followed by a reduction.
  void merge(const StreamingStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n); the paper's cv uses population
  /// moments of the observed timestamps.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation, stddev/mean; 0 when the mean is 0.
  double cv() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number summary (min, q25, median, q75, max), as plotted in the
/// paper's Figure 9 (directory depth) and Figure 17 (burstiness).
struct FiveNumber {
  double min = 0, q25 = 0, median = 0, q75 = 0, max = 0;
  std::size_t count = 0;
};

/// Linear-interpolated percentile of an unsorted sample; p in [0, 100].
/// Sorts a copy; use percentile_sorted for pre-sorted data.
double percentile(std::span<const double> sample, double p);
double percentile_sorted(std::span<const double> sorted, double p);

FiveNumber five_number_summary(std::span<const double> sample);

/// Empirical CDF over a sample; supports both directions of query used in
/// the paper's CDF figures (Fig 6, Fig 8).
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> sample);

  /// P(X <= x).
  double fraction_at_most(double x) const;
  /// Smallest x with P(X <= x) >= q, q in [0, 1].
  double quantile(double q) const;
  std::size_t count() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  const std::vector<double>& sorted() const { return sorted_; }

  /// Evenly spaced (x, F(x)) points for plotting / report output.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);
  void merge(const Histogram& other);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ordinary least squares fit y = slope * x + intercept with R^2.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
  std::size_t n = 0;
};

LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fits log10(count) vs log10(degree) over a degree histogram; the returned
/// slope is the power-law exponent (negative for a decaying tail). Zero
/// counts are skipped. Mirrors the paper's Figure 18(b) analysis.
LinearFit log_log_fit(std::span<const std::uint64_t> count_by_value);

}  // namespace spider
