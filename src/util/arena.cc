#include "util/arena.h"

// StringArena is header-only; this translation unit exists so the library
// has a home for future out-of-line definitions and so the header is
// compiled standalone at least once.
