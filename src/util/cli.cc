#include "util/cli.h"

#include <cstdlib>

namespace spider {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is another flag (then bare bool).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return flags_.count(key) != 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace spider
