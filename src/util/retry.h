// Jittered exponential retry/backoff for transient I/O faults.
//
// A multi-hour (or resident, per ROADMAP #1) study run reads thousands of
// snapshot files off shared storage; a momentary NFS/Lustre hiccup must
// cost one retry, not a permanent SeriesGap in the study timeline. The
// policy here is deliberately narrow:
//
//   * only kIoError is retryable by default — kNotFound is a real state
//     (the file is absent), kCorruption/kTruncated are properties of the
//     bytes that rereading cannot fix, and retrying them would just
//     triple the latency of every genuinely damaged week;
//   * delays grow exponentially from `base_delay_us`, capped at
//     `max_delay_us`, with a seeded-uniform jitter fraction so a fleet of
//     readers hitting the same brownout doesn't re-stampede in lockstep;
//   * the sleep is injectable, so tests run the full schedule with a fake
//     clock and assert the exact delay sequence deterministically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>

#include "util/prng.h"
#include "util/status.h"

namespace spider {

struct RetryPolicy {
  /// Total attempts including the first; 1 disables retrying entirely.
  int max_attempts = 1;
  std::uint64_t base_delay_us = 1000;     // delay before the first retry
  std::uint64_t max_delay_us = 200'000;   // exponential growth cap
  /// Fraction of each delay drawn uniformly at random: the actual sleep is
  /// delay * (1 - jitter + jitter * u) with u ~ U[0,1). 0 = deterministic.
  double jitter = 0.5;
  std::uint64_t seed = 0x5eed'0dd5ULL;
  /// Test seam: called instead of sleeping when set.
  std::function<void(std::uint64_t delay_us)> sleep_fn;
  /// Which failures are worth retrying; null = kIoError only.
  std::function<bool(const Status&)> retryable;

  bool enabled() const { return max_attempts > 1; }
};

struct RetryStats {
  std::uint64_t attempts = 0;   // operation invocations, first tries included
  std::uint64_t retries = 0;    // invocations after a retryable failure
  std::uint64_t exhausted = 0;  // operations that failed every attempt
  std::uint64_t slept_us = 0;   // total backoff (as computed, fake or real)
};

inline bool default_retryable(const Status& s) {
  return s.code() == StatusCode::kIoError;
}

/// Runs `op` (returning Status) under the policy: on a retryable failure,
/// back off and reinvoke, up to max_attempts total. Returns the first
/// non-retryable Status immediately, or the last failure when attempts are
/// exhausted. `stats` (optional) accumulates across calls.
template <typename Op>
Status retry_with_backoff(const RetryPolicy& policy, RetryStats* stats,
                          Op&& op) {
  Rng rng(policy.seed);
  const int attempts = std::max(1, policy.max_attempts);
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (stats) {
      ++stats->attempts;
      if (attempt > 0) ++stats->retries;
    }
    last = op();
    if (last.ok()) return last;
    const bool retry = policy.retryable ? policy.retryable(last)
                                        : default_retryable(last);
    if (!retry) return last;
    if (attempt + 1 >= attempts) break;
    std::uint64_t delay = policy.base_delay_us;
    for (int k = 0; k < attempt && delay < policy.max_delay_us; ++k) {
      delay *= 2;
    }
    delay = std::min(delay, policy.max_delay_us);
    if (policy.jitter > 0 && delay > 0) {
      const double scale = 1.0 - policy.jitter + policy.jitter * rng.uniform();
      delay = static_cast<std::uint64_t>(static_cast<double>(delay) * scale);
    }
    if (stats) stats->slept_us += delay;
    if (policy.sleep_fn) {
      policy.sleep_fn(delay);
    } else if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
  }
  if (stats) ++stats->exhausted;
  return last;
}

}  // namespace spider
