#include "util/fault.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

namespace spider {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip:
      return "bit flip";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kTornTail:
      return "torn tail";
  }
  return "unknown";
}

std::string FaultEvent::describe() const {
  std::string out(fault_kind_name(kind));
  out += " @" + std::to_string(offset);
  if (kind == FaultKind::kBitFlip) {
    out += " mask 0x" + std::to_string(static_cast<unsigned>(mask));
  }
  if (kind == FaultKind::kTornTail) {
    out += " +" + std::to_string(length) + "B garbage";
  }
  return out;
}

FaultEvent FaultInjector::bit_flip(std::vector<std::uint8_t>* image,
                                   std::size_t begin, std::size_t end) {
  assert(!image->empty());
  if (end == 0 || end > image->size()) end = image->size();
  if (begin >= end) begin = end - 1;
  FaultEvent ev;
  ev.kind = FaultKind::kBitFlip;
  ev.offset = begin + rng_.uniform_u64(end - begin);
  ev.mask = static_cast<std::uint8_t>(1u << rng_.uniform_u64(8));
  (*image)[ev.offset] ^= ev.mask;
  return ev;
}

FaultEvent FaultInjector::truncate(std::vector<std::uint8_t>* image,
                                   std::size_t min_keep) {
  min_keep = std::min(min_keep, image->size());
  FaultEvent ev;
  ev.kind = FaultKind::kTruncate;
  ev.offset =
      min_keep + rng_.uniform_u64(std::max<std::size_t>(
                     1, image->size() - min_keep));
  ev.offset = std::min(ev.offset, image->size());
  image->resize(ev.offset);
  return ev;
}

FaultEvent FaultInjector::torn_tail(std::vector<std::uint8_t>* image,
                                    std::size_t min_keep,
                                    std::size_t max_tail) {
  FaultEvent ev = truncate(image, min_keep);
  ev.kind = FaultKind::kTornTail;
  ev.length = 1 + rng_.uniform_u64(std::max<std::size_t>(1, max_tail));
  image->reserve(image->size() + ev.length);
  for (std::size_t i = 0; i < ev.length; ++i) {
    image->push_back(static_cast<std::uint8_t>(rng_.uniform_u64(256)));
  }
  return ev;
}

FaultEvent FaultInjector::inject(FaultKind kind,
                                 std::vector<std::uint8_t>* image,
                                 std::size_t begin, std::size_t end,
                                 std::size_t min_keep) {
  switch (kind) {
    case FaultKind::kBitFlip:
      return bit_flip(image, begin, end);
    case FaultKind::kTruncate:
      return truncate(image, min_keep);
    case FaultKind::kTornTail:
      return torn_tail(image, min_keep);
  }
  return FaultEvent{};
}

FaultyFile::FaultyFile(std::span<const std::uint8_t> bytes, std::uint64_t seed,
                       double eintr_probability, std::size_t max_chunk)
    : bytes_(bytes),
      rng_(seed),
      eintr_probability_(eintr_probability),
      max_chunk_(max_chunk) {}

WriteInterceptor::Decision WriteFaultInjector::on_op(WriteOp op,
                                                     const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.push_back(OpRecord{op, path});
  const std::size_t index = ops_++;
  if (dead_) {
    // A dead process issues no writes: every later stage fails outright.
    Decision d;
    d.fail = true;
    return d;
  }
  if (index != kill_at_) return {};
  dead_ = true;
  Decision d;
  d.crash = true;
  // Surviving prefix of a torn write: usually a short, sector-ish amount,
  // sometimes large enough to cover the whole payload (io.cc clamps).
  d.keep_bytes = rng_.chance(0.5)
                     ? static_cast<std::size_t>(rng_.uniform_u64(4097))
                     : static_cast<std::size_t>(rng_.uniform_u64(1u << 20));
  d.complete_rename = rng_.chance(0.5);
  return d;
}

std::size_t WriteFaultInjector::ops_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool WriteFaultInjector::killed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

std::vector<WriteFaultInjector::OpRecord> WriteFaultInjector::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

long FaultyFile::read(void* buf, std::size_t count) {
  if (count == 0) return 0;
  if (rng_.chance(eintr_probability_)) {
    ++interruptions_;
    errno = EINTR;
    return -1;
  }
  if (pos_ >= bytes_.size()) return 0;
  std::size_t serve = std::min(count, bytes_.size() - pos_);
  const std::size_t cap = max_chunk_ ? max_chunk_ : serve;
  if (serve > 1 && cap > 0) {
    // Serve a random 1..min(serve, cap) bytes so callers see every short-
    // read shape, including single bytes.
    serve = 1 + rng_.uniform_u64(std::min(serve, cap));
  }
  if (serve < count) ++short_serves_;
  std::memcpy(buf, bytes_.data() + pos_, serve);
  pos_ += serve;
  return static_cast<long>(serve);
}

}  // namespace spider
