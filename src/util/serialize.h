// Bounds-checked binary state serialization for the checkpoint layer
// (DESIGN.md §14): StateWriter appends primitives to a byte buffer,
// StateReader parses them back with every read validated against the
// remaining span — a truncated or hostile payload turns the reader
// permanently !ok() instead of reading out of bounds.
//
// Scalars are little-endian (matching the .scol framing); bulk vectors of
// trivially-copyable elements are raw memcpy. Checkpoints are host-local
// artifacts — written and resumed on the same machine between crashes —
// so cross-endian portability is explicitly out of scope, and the format
// version in the enclosing .sckpt header guards against skew.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace spider {

class StateWriter {
 public:
  explicit StateWriter(std::vector<std::uint8_t>* out) : out_(out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Exact bit pattern: doubles round-trip bit-for-bit, which the
  /// byte-identical resume guarantee requires.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> b) {
    u64(b.size());
    out_->insert(out_->end(), b.begin(), b.end());
  }
  void str(std::string_view s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// Raw image of one trivially-copyable value (fixed size, no prefix).
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out_->size();
    out_->resize(at + sizeof(T));
    std::memcpy(out_->data() + at, &v, sizeof(T));
  }

  /// Length-prefixed raw image of a trivially-copyable element vector.
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    const std::size_t n = v.size() * sizeof(T);
    const std::size_t at = out_->size();
    out_->resize(at + n);
    if (n > 0) std::memcpy(out_->data() + at, v.data(), n);
  }

  /// Count-prefixed vector of vectors (each inner one length-prefixed).
  template <typename T>
  void vec2(const std::vector<std::vector<T>>& v) {
    u64(v.size());
    for (const std::vector<T>& inner : v) vec(inner);
  }

  std::vector<std::uint8_t>* out() { return out_; }

 private:
  std::vector<std::uint8_t>* out_;
};

class StateReader {
 public:
  explicit StateReader(std::span<const std::uint8_t> in) : in_(in) {}

  bool ok() const { return ok_; }
  /// True when every byte was consumed — load paths check this to reject
  /// payloads with trailing garbage.
  bool exhausted() const { return ok_ && pos_ == in_.size(); }
  std::size_t remaining() const { return in_.size() - pos_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return in_[pos_ - 1];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in_[pos_ - 4 + i]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(in_[pos_ - 8 + i]) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  bool bytes(std::vector<std::uint8_t>* out) {
    const std::uint64_t n = u64();
    if (!take(n)) return false;
    out->assign(in_.begin() + static_cast<std::ptrdiff_t>(pos_ - n),
                in_.begin() + static_cast<std::ptrdiff_t>(pos_));
    return true;
  }
  bool str(std::string* out) {
    const std::uint64_t n = u64();
    if (!take(n)) return false;
    out->assign(reinterpret_cast<const char*>(in_.data()) + (pos_ - n), n);
    return true;
  }

  template <typename T>
  bool pod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!take(sizeof(T))) return false;
    std::memcpy(out, in_.data() + pos_ - sizeof(T), sizeof(T));
    return true;
  }

  template <typename T>
  bool vec(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = u64();
    // Overflow-safe size check before multiplying.
    if (!ok_ || count > remaining() / sizeof(T)) return fail();
    const std::size_t n = static_cast<std::size_t>(count) * sizeof(T);
    take(n);
    out->resize(static_cast<std::size_t>(count));
    if (n > 0) std::memcpy(out->data(), in_.data() + pos_ - n, n);
    return true;
  }

  template <typename T>
  bool vec2(std::vector<std::vector<T>>* out) {
    const std::uint64_t count = u64();
    // Every inner vector carries at least its 8-byte count.
    if (!ok_ || count > remaining() / 8) return fail();
    out->assign(static_cast<std::size_t>(count), {});
    for (std::vector<T>& inner : *out) {
      if (!vec(&inner)) return false;
    }
    return true;
  }

 private:
  bool take(std::uint64_t n) {
    if (!ok_ || n > in_.size() - pos_) return fail();
    pos_ += static_cast<std::size_t>(n);
    return true;
  }
  bool fail() {
    ok_ = false;
    return false;
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace spider
