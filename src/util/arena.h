// Chunked string arena: append-only byte storage with stable addresses.
//
// A daily snapshot holds millions of path strings; storing each in its own
// std::string would cost an allocation plus ~32 bytes of header apiece. The
// arena packs them back-to-back in large blocks and hands out string_views
// that stay valid for the arena's lifetime (blocks are never reallocated).
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace spider {

class StringArena {
 public:
  static constexpr std::size_t kDefaultBlockSize = 1 << 20;  // 1 MiB

  explicit StringArena(std::size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  StringArena(StringArena&&) noexcept = default;
  StringArena& operator=(StringArena&&) noexcept = default;
  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;

  /// Copies `s` into the arena and returns a view of the stored copy.
  std::string_view intern(std::string_view s) {
    if (s.empty()) return {};
    char* dst = allocate(s.size());
    std::char_traits<char>::copy(dst, s.data(), s.size());
    return {dst, s.size()};
  }

  /// Concatenates two pieces into one contiguous stored string. Used by the
  /// snapshot readers to join directory prefixes with file names without a
  /// temporary.
  std::string_view intern_concat(std::string_view a, std::string_view b) {
    if (a.empty()) return intern(b);
    if (b.empty()) return intern(a);
    char* dst = allocate(a.size() + b.size());
    std::char_traits<char>::copy(dst, a.data(), a.size());
    std::char_traits<char>::copy(dst + a.size(), b.data(), b.size());
    return {dst, a.size() + b.size()};
  }

  /// Steals every block of `other`, leaving it empty. Views into either
  /// arena stay valid: blocks are moved, never copied or reallocated. The
  /// bulk-splice path of SnapshotTable uses this to merge per-shard arenas
  /// without touching a single string byte.
  void absorb(StringArena&& other) {
    if (other.blocks_.empty()) return;
    const bool same_geometry = other.block_size_ == block_size_;
    for (auto& block : other.blocks_) blocks_.push_back(std::move(block));
    // Keep appending into other's tail block only when its capacity math
    // matches ours; otherwise start fresh on the next allocate.
    used_in_block_ = same_geometry ? other.used_in_block_ : block_size_;
    bytes_used_ += other.bytes_used_;
    bytes_reserved_ += other.bytes_reserved_;
    other.blocks_.clear();
    other.used_in_block_ = 0;
    other.bytes_used_ = 0;
    other.bytes_reserved_ = 0;
  }

  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  char* allocate(std::size_t n) {
    if (n > block_size_) {
      // Oversized strings get a dedicated block, inserted *before* the
      // current block so the current block's spare capacity survives.
      auto block = std::make_unique<char[]>(n);
      char* ptr = block.get();
      const std::size_t at = blocks_.empty() ? 0 : blocks_.size() - 1;
      blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(at),
                     std::move(block));
      bytes_used_ += n;
      bytes_reserved_ += n;
      return ptr;
    }
    if (blocks_.empty() || used_in_block_ + n > block_size_) {
      blocks_.push_back(std::make_unique<char[]>(block_size_));
      used_in_block_ = 0;
      bytes_reserved_ += block_size_;
    }
    char* ptr = blocks_.back().get() + used_in_block_;
    used_in_block_ += n;
    bytes_used_ += n;
    return ptr;
  }

  std::size_t block_size_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::size_t used_in_block_ = 0;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace spider
