// Robust file I/O, centralized so every reader and writer in the project
// shares the same failure discipline:
//
//   * reads loop over short reads and retry EINTR (signals during a nightly
//     collection run must not look like corrupt snapshots);
//   * whole-file writes go to a same-directory temp file, fsync the file,
//     atomically rename into place, then fsync the parent directory — a
//     crash mid-write leaves either the old file or the new one, never a
//     torn .scol/PSV/.sckpt image, and the rename itself is durable across
//     power loss (rename alone only updates the in-memory dirent);
//   * every failure is a typed Status naming the file and the errno text.
//
// The low-level loops take an abstract RawReadFn so the fault-injection
// harness (util/fault.h FaultyFile) can drive them with deliberately
// awkward read schedules without interposing on real syscalls. The write
// path has the mirror-image seam: a WriteInterceptor consulted before each
// stage of write_file_atomic, which lets util/fault.h's WriteFaultInjector
// fail a stage, tear the bytes that land, or simulate the process dying
// mid-write (temp file left behind, every later write dead) — the
// kill-point sweep of the checkpoint layer (DESIGN.md §14) is built on it.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace spider {

/// One read attempt: fill up to `count` bytes of `buf`, returning the byte
/// count, 0 at end-of-file, or -1 with errno set (POSIX read semantics).
using RawReadFn = std::function<long(void* buf, std::size_t count)>;

/// Retry/short-read counters, for tests and diagnostics.
struct IoStats {
  std::uint64_t eintr_retries = 0;
  std::uint64_t short_reads = 0;   // reads that returned less than asked
  std::uint64_t short_writes = 0;  // writes that accepted less than offered
};

/// Reads exactly `count` bytes via `read_fn`, looping over short reads and
/// retrying EINTR. Fails kTruncated if EOF arrives first.
Status read_exactly(const RawReadFn& read_fn, void* buf, std::size_t count,
                    IoStats* stats = nullptr);

/// Reads until EOF via `read_fn`, appending to `out`, with the same retry
/// discipline. `size_hint` pre-reserves (pass the stat() size when known).
Status read_until_eof(const RawReadFn& read_fn, std::vector<std::uint8_t>* out,
                      std::size_t size_hint = 0, IoStats* stats = nullptr);

/// Slurps a whole file. The overloads share one implementation; the string
/// form exists for text formats (PSV) that parse via string_view.
Status read_file(const std::string& path, std::vector<std::uint8_t>* out,
                 IoStats* stats = nullptr);
Status read_file(const std::string& path, std::string* out,
                 IoStats* stats = nullptr);

/// The observable stages of write_file_atomic, in execution order.
enum class WriteOp : std::uint8_t {
  kOpen = 0,   // create the same-directory temp file
  kWrite,      // write the payload into the temp file
  kSyncFile,   // fsync the temp file (data durable before the rename)
  kRename,     // atomic rename over the destination
  kSyncDir,    // fsync the parent directory (rename durable)
};
std::string_view write_op_name(WriteOp op);

/// Test seam consulted before every stage of write_file_atomic. The
/// decision can fail the stage cleanly (temp removed, destination
/// untouched) or simulate the process dying at that stage: partial effects
/// land exactly as a crash would leave them and the temp file is NOT
/// cleaned up (a dead process runs no destructors).
class WriteInterceptor {
 public:
  virtual ~WriteInterceptor() = default;

  struct Decision {
    bool fail = false;   // stage fails with an injected io error
    bool crash = false;  // simulated process death at this stage
    /// Crash at kWrite/kSyncFile: how many payload bytes survive in the
    /// temp file (clamped to the payload size).
    std::size_t keep_bytes = static_cast<std::size_t>(-1);
    /// Crash at kRename: whether the rename landed before the "death"
    /// (both outcomes are real states a power loss can leave).
    bool complete_rename = false;
  };
  /// `path` is the destination file. Called once per stage per write.
  virtual Decision on_op(WriteOp op, const std::string& path) = 0;
};

/// Installs a process-wide interceptor for write_file_atomic (null to
/// remove). Test-only: production writers never install one.
void set_write_interceptor(WriteInterceptor* interceptor);

/// Writes `bytes` to `path` via a same-directory temp file + fsync +
/// atomic rename + parent-directory fsync. On any failure the temp file is
/// removed and the previous `path` contents (if any) are untouched.
Status write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> bytes,
                         IoStats* stats = nullptr);
Status write_file_atomic(const std::string& path, std::string_view text,
                         IoStats* stats = nullptr);

/// The observable stages of MappedFile::open, in execution order.
enum class MapOp : std::uint8_t {
  kOpen = 0,  // open(2) the file read-only
  kStat,      // fstat(2) for the length
  kMap,       // mmap(2) the whole extent
};
std::string_view map_op_name(MapOp op);

/// Test seam consulted before every stage of MappedFile::open — the mmap
/// mirror of WriteInterceptor. A failed stage surfaces as a clean Status
/// (fd closed, nothing mapped); there is no crash mode because an aborted
/// open leaves no on-disk state behind.
class MapInterceptor {
 public:
  virtual ~MapInterceptor() = default;

  struct Decision {
    bool fail = false;  // stage fails with an injected io error
    /// At kStat: report this many bytes instead of the real length
    /// (simulates a file that shrinks between directory scan and map, the
    /// "partial map" case — the map succeeds but covers fewer bytes than
    /// the caller believed were there).
    std::size_t truncate_to = static_cast<std::size_t>(-1);
  };
  virtual Decision on_op(MapOp op, const std::string& path) = 0;
};

/// Installs a process-wide interceptor for MappedFile::open (null to
/// remove). Test-only: production readers never install one.
void set_map_interceptor(MapInterceptor* interceptor);

/// Read-only memory map of a whole file. Decoders borrow the bytes for
/// zero-copy access to column blocks; the map lives until close() or
/// destruction, so spans handed out must not outlive the MappedFile.
/// Move-only (the destructor owns the munmap).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { close(); }
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens and maps `path` read-only, retrying EINTR on the open. An empty
  /// file maps to an empty span (mmap of length zero is not attempted —
  /// POSIX rejects it). Any failure leaves the object closed.
  Status open(const std::string& path);

  void close();

  bool is_open() const { return mapped_ || empty_ok_; }
  const std::string& path() const { return path_; }
  std::span<const std::uint8_t> bytes() const {
    return {static_cast<const std::uint8_t*>(mapped_), size_};
  }

 private:
  std::string path_;
  void* mapped_ = nullptr;
  std::size_t size_ = 0;
  bool empty_ok_ = false;  // open() succeeded on a zero-length file
};

}  // namespace spider
