// Robust file I/O, centralized so every reader and writer in the project
// shares the same failure discipline:
//
//   * reads loop over short reads and retry EINTR (signals during a nightly
//     collection run must not look like corrupt snapshots);
//   * whole-file writes go to a same-directory temp file, fsync, then
//     atomically rename into place — a crash mid-write leaves either the
//     old file or the new one, never a torn .scol/PSV image;
//   * every failure is a typed Status naming the file and the errno text.
//
// The low-level loops take an abstract RawReadFn so the fault-injection
// harness (util/fault.h FaultyFile) can drive them with deliberately
// awkward read schedules without interposing on real syscalls.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace spider {

/// One read attempt: fill up to `count` bytes of `buf`, returning the byte
/// count, 0 at end-of-file, or -1 with errno set (POSIX read semantics).
using RawReadFn = std::function<long(void* buf, std::size_t count)>;

/// Retry/short-read counters, for tests and diagnostics.
struct IoStats {
  std::uint64_t eintr_retries = 0;
  std::uint64_t short_reads = 0;   // reads that returned less than asked
  std::uint64_t short_writes = 0;  // writes that accepted less than offered
};

/// Reads exactly `count` bytes via `read_fn`, looping over short reads and
/// retrying EINTR. Fails kTruncated if EOF arrives first.
Status read_exactly(const RawReadFn& read_fn, void* buf, std::size_t count,
                    IoStats* stats = nullptr);

/// Reads until EOF via `read_fn`, appending to `out`, with the same retry
/// discipline. `size_hint` pre-reserves (pass the stat() size when known).
Status read_until_eof(const RawReadFn& read_fn, std::vector<std::uint8_t>* out,
                      std::size_t size_hint = 0, IoStats* stats = nullptr);

/// Slurps a whole file. The overloads share one implementation; the string
/// form exists for text formats (PSV) that parse via string_view.
Status read_file(const std::string& path, std::vector<std::uint8_t>* out,
                 IoStats* stats = nullptr);
Status read_file(const std::string& path, std::string* out,
                 IoStats* stats = nullptr);

/// Writes `bytes` to `path` via a same-directory temp file + fsync +
/// atomic rename. On any failure the temp file is removed and the previous
/// `path` contents (if any) are untouched.
Status write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> bytes,
                         IoStats* stats = nullptr);
Status write_file_atomic(const std::string& path, std::string_view text,
                         IoStats* stats = nullptr);

}  // namespace spider
