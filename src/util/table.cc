#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace spider {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)), aligns_(header_.size(), Align::kRight) {
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void AsciiTable::set_alignment(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      const std::size_t pad = widths[c] - cell.size();
      os << ' ';
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << cell;
      if (aligns_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_rule(os);
  emit_row(os, header_);
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule(os);
    } else {
      emit_row(os, row);
    }
  }
  emit_rule(os);
  return os.str();
}

void AsciiTable::print(std::ostream& os) const { os << to_string(); }

std::string format_with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_count(double value) {
  const char* suffix = "";
  double v = value;
  if (std::abs(v) >= 1e9) {
    v /= 1e9;
    suffix = "B";
  } else if (std::abs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  char buf[64];
  if (*suffix == '\0' && v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix);
  }
  return buf;
}

std::string format_percent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_cv(double value) {
  char buf[64];
  if (value != 0.0 && std::abs(value) < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.2e", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", value);
  }
  return buf;
}

}  // namespace spider
