// Deterministic fault injection for the robustness test harness.
//
// Two layers of damage, mirroring what operational LustreDU dumps actually
// exhibit (partial collections, torn copies, bad sectors):
//
//   * FaultInjector mutates in-memory images — single bit flips, truncation,
//     and "torn tails" (truncate then append unrelated garbage, the shape a
//     crashed non-atomic writer leaves behind). Every mutation is drawn from
//     a seeded Rng and returns a FaultEvent describing exactly what was
//     done, so tests can compute the expected salvage outcome.
//
//   * FaultyFile wraps an in-memory image behind the RawReadFn contract of
//     util/io.h and serves it adversarially: short reads of random length
//     and injected EINTR interruptions (and, optionally, a hard truncation
//     at a chosen offset). It exercises the retry/short-read loops without
//     interposing on real syscalls.
//
//   * WriteFaultInjector drives util/io.h's WriteInterceptor seam from the
//     write side: it counts every stage of every atomic write and, at a
//     chosen op index, simulates the process dying there — torn temp
//     files, a rename that may or may not have landed — after which every
//     later write fails (a dead process writes nothing). Sweeping the kill
//     index across a run crashes it at every write boundary exactly once,
//     which is how the checkpoint recovery sweep (DESIGN.md §14) proves
//     resume correctness for every possible crash state.
//
// Everything here is deterministic given the seed; the only global state is
// the explicitly installed write interceptor.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/io.h"
#include "util/prng.h"

namespace spider {

enum class FaultKind : std::uint8_t {
  kBitFlip,   // one bit inverted at `offset`
  kTruncate,  // image cut to `offset` bytes
  kTornTail,  // image cut to `offset`, then `length` garbage bytes appended
};

std::string_view fault_kind_name(FaultKind kind);

/// What a mutation did, precisely enough to predict salvage results.
struct FaultEvent {
  FaultKind kind = FaultKind::kBitFlip;
  std::size_t offset = 0;  // flip position, or cut position for truncation
  std::size_t length = 0;  // garbage bytes appended (torn tail only)
  std::uint8_t mask = 0;   // XOR mask applied (bit flip only)

  std::string describe() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Flips one random bit in [begin, end) (end = 0 means image end).
  FaultEvent bit_flip(std::vector<std::uint8_t>* image, std::size_t begin = 0,
                      std::size_t end = 0);

  /// Cuts the image at a random position in [min_keep, size).
  FaultEvent truncate(std::vector<std::uint8_t>* image,
                      std::size_t min_keep = 0);

  /// Cuts at a random position in [min_keep, size), then appends 1..max_tail
  /// random garbage bytes.
  FaultEvent torn_tail(std::vector<std::uint8_t>* image,
                       std::size_t min_keep = 0, std::size_t max_tail = 256);

  /// Applies the `kind` fault with this injector's rng; the uniform entry
  /// point for seeded sweeps. `begin`/`end` bound bit flips, `min_keep`
  /// bounds cuts.
  FaultEvent inject(FaultKind kind, std::vector<std::uint8_t>* image,
                    std::size_t begin = 0, std::size_t end = 0,
                    std::size_t min_keep = 0);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

/// An in-memory file served through deliberately awkward reads.
class FaultyFile {
 public:
  /// `eintr_probability`: chance any given call fails with errno=EINTR
  /// instead of serving bytes. `max_chunk`: reads never serve more than
  /// this many bytes (forcing short reads); 0 means unbounded.
  FaultyFile(std::span<const std::uint8_t> bytes, std::uint64_t seed,
             double eintr_probability = 0.25, std::size_t max_chunk = 7);

  /// RawReadFn-compatible: serves the next bytes (possibly fewer than
  /// asked), 0 at EOF, or -1 with errno = EINTR.
  long read(void* buf, std::size_t count);

  /// Rewind to offset 0 (stats are kept).
  void rewind() { pos_ = 0; }

  std::size_t interruptions() const { return interruptions_; }
  std::size_t short_serves() const { return short_serves_; }

 private:
  std::span<const std::uint8_t> bytes_;
  Rng rng_;
  double eintr_probability_;
  std::size_t max_chunk_;
  std::size_t pos_ = 0;
  std::size_t interruptions_ = 0;
  std::size_t short_serves_ = 0;
};

/// Kill-at-write-N injector for write_file_atomic (install via
/// set_write_interceptor). Stages are counted across all writes in
/// program order; at op `kill_at_op` the process "dies": the stage leaves
/// the partial state a real crash would (see io.cc) — a torn temp with a
/// seeded-random surviving prefix, or a rename that landed or not by coin
/// flip — and every subsequent stage of every subsequent write fails.
/// The op log doubles as the fsync-ordering witness for the durability
/// unit test.
class WriteFaultInjector : public WriteInterceptor {
 public:
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);

  explicit WriteFaultInjector(std::uint64_t seed,
                              std::size_t kill_at_op = kNever)
      : rng_(seed), kill_at_(kill_at_op) {}

  Decision on_op(WriteOp op, const std::string& path) override;

  struct OpRecord {
    WriteOp op;
    std::string path;
  };

  /// Stages seen so far (including the killing one and dead-mode ops).
  std::size_t ops_seen() const;
  /// True once the kill op was reached.
  bool killed() const;
  /// Every stage in arrival order.
  std::vector<OpRecord> log() const;

 private:
  mutable std::mutex mu_;
  Rng rng_;
  std::size_t kill_at_;
  std::size_t ops_ = 0;
  bool dead_ = false;
  std::vector<OpRecord> log_;
};

}  // namespace spider
