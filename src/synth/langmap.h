// Programming-language <-> file-extension mapping used by both sides of the
// loop: the generator emits source files from it, and the Fig 11/12 study
// counts files back into languages through it.
//
// The mapping deliberately reproduces the paper's quirks: it ranks purely
// by file-extension counts, so ".pl" lands on Prolog (which is why Prolog
// implausibly ranks 8th in the paper — Perl scripts count as Prolog) and
// ".m" on Matlab. ".d" is NOT mapped to D: Materials Science emits ".d"
// *data* files at 15.9% share, which would otherwise rocket D into the top
// five. IEEE Spectrum ranks are carried for the Fig 11 comparison.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace spider {

struct LanguageInfo {
  const char* name;       // "Fortran"
  int ieee_rank;          // IEEE Spectrum 2017 rank (paper Fig 11 parens)
  const char* exts[5];    // nullptr-terminated extension list
  double base_weight;     // global generation weight among source files
};

/// All modeled languages (30, mirroring the paper's Fig 11 width), ordered
/// by target popularity in the synthetic facility.
std::span<const LanguageInfo> languages();

/// Index into languages() of the language owning `ext`, or -1.
/// Extension matching is case-sensitive ("F" is Fortran, "f" too; "R" is R).
int language_for_extension(std::string_view ext);

/// Index of a language by name, or -1.
int language_index(std::string_view name);

}  // namespace spider
