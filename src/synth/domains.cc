#include "synth/domains.h"

namespace spider {

namespace {

// Transcribed from the paper's Tables 1 and 2. Fields:
// {id, name, projects, entries_k, depth_med, depth_max,
//  {ext1, ext2, ext3}, lang1, lang2, ost_max, wide_stripes,
//  write_cv, read_cv, network_pct, collab_pct, dir_fraction, med_users}
constexpr DomainProfile kDomains[] = {
    {"aph", "Accelerator Physics", 4, 3367, 10, 22,
     {{"h5", 1.3}, {"png", 1.1}, {"py", 0.7}}, "Python", "C", 4, false,
     0.052, 0.001, 0.00, 0.02, 0.15, 3},
    {"ard", "Aerodynamics", 16, 39443, 10, 24,
     {{"png", 11.0}, {"gz", 8.3}, {"dat", 4.2}}, "Python", "C", 4, false,
     0.209, 0.002, 43.75, 0.60, 0.14, 3},
    {"ast", "Astrophysics", 15, 75365, 9, 24,
     {{"bin", 3.5}, {"txt", 2.0}, {"ascii", 1.8}}, "Python", "C", 122, true,
     0.247, 0.002, 20.00, 1.95, 0.13, 3},
    {"atm", "Atmospheric Science", 4, 4959, 15, 18,
     {{"png", 8.4}, {"o", 8.3}, {"svn-base", 6.4}}, "Fortran", "C", 4, false,
     0.0, 0.0, 50.00, 0.24, 0.90, 2},
    {"bif", "Bioinformatics", 5, 243339, 9, 23,
     {{"fasta", 41.3}, {"fa", 23.1}, {"sif", 9.2}}, "Prolog", "Matlab", 4,
     false, 0.295, 0.002, 40.00, 0.56, 0.08, 4},
    {"bio", "Biology", 3, 62009, 10, 18,
     {{"pdbqt", 97.6}, {"coor", 0.2}, {"xsc", 0.2}}, "C++", "C", 4, false,
     0.104, 0.001, 66.67, 0.10, 0.05, 3},
    {"bip", "Biophysics", 37, 595564, 11, 67,
     {{"bz2", 54.8}, {"xyz", 23.3}, {"domtab", 5.4}}, "Python", "C", 4, true,
     0.415, 0.003, 40.54, 2.24, 0.10, 3},
    {"chm", "Chemistry", 14, 37272, 8, 17,
     {{"xvg", 21.8}, {"txt", 5.7}, {"label", 5.5}}, "C", "Fortran", 4, false,
     0.262, 0.001, 50.00, 0.25, 0.14, 3},
    {"chp", "Physical Chemistry", 2, 379867, 8, 21,
     {{"xyz", 63.4}, {"GraphGeod", 16.6}, {"Graph", 16.5}}, "C", "Python", 4,
     false, 0.397, 0.003, 100.00, 2.09, 0.07, 12},
    {"cli", "Climate Science", 21, 211876, 11, 50,
     {{"nc", 40.3}, {"mat", 19.3}, {"txt", 3.6}}, "Matlab", "C", 4, false,
     0.421, 0.003, 76.19, 45.80, 0.13, 11},
    {"cmb", "Combustion", 24, 254813, 11, 27,
     {{"png", 4.0}, {"h5", 2.0}, {"gz", 1.6}}, "C", "C++", 5, false,
     0.304, 0.003, 66.67, 7.91, 0.14, 4},
    {"cph", "Condensed Matter Physics", 13, 26488, 10, 30,
     {{"dat", 10.2}, {"h5", 4.9}, {"gz", 4.0}}, "C", "C++", 4, false,
     0.366, 0.002, 46.15, 2.22, 0.15, 3},
    {"csc", "Computer Science", 62, 445189, 15, 40,
     {{"h", 10.3}, {"py", 7.8}, {"txt", 4.9}}, "C", "Python", 33, true,
     0.267, 0.003, 61.29, 38.54, 0.18, 4},
    {"env", "Plasma Physics", 1, 26389, 11, 24,
     {{"gz", 2.1}, {"bp", 0.8}, {"def", 0.8}}, "Fortran", "C", 2, false,
     0.511, 0.003, 100.00, 1.96, 0.13, 14},
    {"fus", "Fusion Energy", 16, 92844, 8, 25,
     {{"psc", 13.8}, {"gda", 1.0}, {"hpp", 0.5}}, "C++", "C", 13, false,
     0.346, 0.003, 62.50, 3.70, 0.12, 4},
    {"gen", "General", 4, 833, 10, 432,
     {{"data", 40.4}, {"index", 40.2}, {"F", 9.5}}, "Fortran", "C", 4, false,
     0.262, 0.004, 25.00, 0.06, 0.20, 2},
    {"geo", "Geosciences", 12, 308767, 9, 21,
     {{"sac", 43.0}, {"mseed", 14.3}, {"xml", 11.9}}, "C", "Fortran", 29,
     false, 0.342, 0.002, 50.00, 2.44, 0.10, 3},
    {"hep", "High Energy Physics", 3, 2181, 14, 22,
     {{"0", 3.1}, {"svn-base", 1.9}, {"py", 1.0}}, "Python", "C", 4, false,
     0.343, 0.003, 33.33, 0.45, 0.67, 3},
    {"lgt", "Lattice Gauge Theory", 3, 16710, 10, 20,
     {{"dat", 24.8}, {"vml", 11.1}, {"actual", 9.4}}, "C", "C++", 4, false,
     0.495, 0.003, 33.33, 0.31, 0.12, 3},
    {"lsc", "Life Sciences", 4, 30351, 8, 24,
     {{"map", 43.7}, {"gpf", 14.8}, {"dpf", 8.5}}, "C", "C++", 4, false,
     0.196, 0.001, 25.00, 0.30, 0.11, 3},
    {"mat", "Materials Science", 34, 202809, 16, 29,
     {{"dat", 44.2}, {"d", 15.9}, {"txt", 14.9}}, "Fortran", "Prolog", 4,
     false, 0.339, 0.003, 58.82, 5.45, 0.13, 3},
    {"med", "Medical Science", 3, 538, 7, 18,
     {{"txt", 69.4}, {"py", 3.2}, {"dat", 2.9}}, "Python", "C", 4, false,
     0.004, 0.000, 0.00, 0.00, 0.16, 2},
    {"mph", "Molecular Physics", 4, 2267, 5, 15,
     {{"out", 17.6}, {"vtr", 17.4}, {"gen", 13.6}}, "Fortran", "C++", 4,
     false, 0.404, 0.002, 50.00, 0.22, 0.15, 3},
    {"nel", "Nanoelectronics", 4, 808, 11, 17,
     {{"dat", 1.9}, {"bin", 1.8}, {"o", 1.5}}, "Fortran", "C++", 4, false,
     0.462, 0.003, 50.00, 0.18, 0.17, 3},
    {"nfi", "Nuclear Fission", 9, 22158, 11, 26,
     {{"hpp", 8.0}, {"cpp", 8.0}, {"h", 6.3}}, "C++", "C", 4, false,
     0.338, 0.002, 77.78, 14.95, 0.19, 12},
    {"nfu", "Nuclear Fusion", 2, 301, 11, 14,
     {{"m", 3.9}, {"1", 0.7}, {"inp", 0.6}}, "Matlab", "C", 4, false,
     0.221, 0.001, 100.00, 0.02, 0.18, 3},
    {"nph", "Nuclear Physics", 14, 286523, 7, 23,
     {{"bb", 79.1}, {"xml", 1.8}, {"vml", 1.6}}, "C", "C++", 13, false,
     0.385, 0.003, 92.86, 2.65, 0.06, 4},
    {"nro", "Neuroscience", 1, 10935, 9, 19,
     {{"txt", 53.7}, {"swc", 19.6}, {"log", 15.4}}, "Matlab", "C", 4, false,
     0.361, 0.003, 100.00, 0.11, 0.12, 3},
    {"nti", "Nanoscience", 6, 3359, 11, 18,
     {{"cif", 3.5}, {"POSCAR", 2.3}, {"svn-base", 1.9}}, "Fortran", "C", 4,
     false, 0.335, 0.002, 16.67, 1.09, 0.16, 3},
    {"phy", "Physics", 9, 8155, 8, 20,
     {{"rst", 32.6}, {"jld", 18.2}, {"txt", 13.5}}, "C++", "Fortran", 5,
     false, 0.333, 0.002, 55.56, 0.53, 0.14, 3},
    {"pss", "Solar/Space Physics", 1, 0.09, 3, 4,
     {{"nc", 45.3}, {"m", 44.1}, {"tar", 6.5}}, "Matlab", "Prolog", 4, false,
     0.0, 0.000, 0.00, 0.00, 0.25, 2},
    {"stf", "Staff", 9, 631468, 12, 2030,
     {{"log", 10.3}, {"inp", 4.3}, {"pn", 3.9}}, "Matlab", "C++", 7, false,
     0.249, 0.002, 77.78, 22.61, 0.15, 16},
    {"syb", "Systems Biology", 2, 451, 8, 17,
     {{"txt", 24.0}, {"npy", 10.4}, {"c", 5.7}}, "C", "Python", 4, false,
     0.0, 0.0, 50.00, 0.07, 0.17, 2},
    {"tur", "Turbulence", 9, 320295, 8, 16,
     {{"water", 0.9}, {"h5", 0.6}, {"vtr", 0.4}}, "Python", "C++", 44, false,
     0.340, 0.002, 33.33, 0.30, 0.09, 3},
    {"ven", "Vendor", 10, 1271, 12, 26,
     {{"hpp", 6.0}, {"html", 5.3}, {"o", 5.1}}, "C++", "C", 4, false,
     0.082, 0.003, 30.00, 1.23, 0.20, 3},
};

}  // namespace

std::span<const DomainProfile> domain_profiles() { return kDomains; }

std::size_t domain_count() { return std::size(kDomains); }

int domain_index(std::string_view id) {
  for (std::size_t i = 0; i < std::size(kDomains); ++i) {
    if (id == kDomains[i].id) return static_cast<int>(i);
  }
  return -1;
}

int total_projects() {
  int total = 0;
  for (const DomainProfile& d : kDomains) total += d.projects;
  return total;
}

}  // namespace spider
