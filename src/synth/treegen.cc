#include "synth/treegen.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace spider {

namespace {

/// Directory-name vocabulary; scientific trees are full of these.
constexpr const char* kDirWords[] = {
    "run",    "data",   "analysis", "output",  "restart", "src",
    "results", "input",  "post",     "viz",     "case",    "step",
    "configs", "tmp",    "archive",  "batch",   "grid",    "test",
};

}  // namespace

ProjectTree::ProjectTree(std::string root, const DomainProfile& profile,
                         Rng rng)
    : profile_(profile), rng_(rng) {
  path_hashes_.insert(hash_bytes(root));
  paths_.push_back(std::move(root));
  // Root lives at /lustre/atlas2/<project> — 3 components.
  depths_.push_back(3);
  uids_.push_back(0);
  ctimes_.push_back(0);
}

std::size_t ProjectTree::add_dir(std::size_t parent, std::string_view name,
                                 std::uint32_t uid, bool can_be_hot) {
  const std::size_t id = paths_.size();
  std::string path = paths_[parent];
  path += '/';
  path += name;
  // Random word+number names can collide under one parent; a file system
  // is a tree, so disambiguate with a sibling counter.
  if (!path_hashes_.insert(hash_bytes(path))) {
    std::size_t salt = 0;
    std::string candidate;
    do {
      candidate = path + "_" + std::to_string(salt++);
    } while (!path_hashes_.insert(hash_bytes(candidate)));
    path = std::move(candidate);
  }
  paths_.push_back(std::move(path));
  depths_.push_back(static_cast<std::uint16_t>(depths_[parent] + 1));
  uids_.push_back(uid);
  ctimes_.push_back(now_);
  // A minority of directories become "hot" and absorb most files,
  // reproducing the files-per-directory concentration the paper observes.
  if (can_be_hot && (hot_dirs_.empty() || rng_.chance(0.15))) {
    hot_dirs_.push_back(static_cast<std::uint32_t>(id));
  }
  return id;
}

std::size_t ProjectTree::ensure_user_dir(std::string_view user_name,
                                         std::uint32_t uid) {
  for (const std::uint32_t id : user_dirs_) {
    const std::string& p = paths_[id];
    const std::size_t slash = p.rfind('/');
    if (p.compare(slash + 1, std::string::npos, user_name) == 0) return id;
  }
  const std::size_t id = add_dir(0, user_name, uid, /*can_be_hot=*/true);
  user_dirs_.push_back(static_cast<std::uint32_t>(id));
  // The first member owns the project root (the PI's allocation dir).
  if (uids_[0] == 0) uids_[0] = uid;
  return id;
}

void ProjectTree::grow(std::size_t count) {
  if (user_dirs_.empty() || count == 0) return;
  // Content directories target path depths sampled around the domain
  // median (Table 1), built as chains descending from an existing anchor.
  const double median_extra =
      std::max(1.0, static_cast<double>(profile_.depth_median) - 4.0);
  const double mu = std::log(median_extra);

  std::size_t budget = count;
  while (budget > 0) {
    const std::size_t anchor =
        user_dirs_[rng_.uniform_u64(user_dirs_.size())];
    const int cap = std::min<int>(profile_.depth_max - 1, 64);
    int target_depth = static_cast<int>(
        std::lround(4.0 + rng_.lognormal(mu, 0.35)));
    target_depth = std::clamp(target_depth, 5, std::max(5, cap));

    std::size_t parent = anchor;
    while (depths_[parent] + 1 < target_depth && budget > 0) {
      const char* word = kDirWords[rng_.uniform_u64(std::size(kDirWords))];
      std::string name = std::string(word) +
                         std::to_string(rng_.uniform_u64(1000));
      parent = add_dir(parent, name, uids_[anchor], /*can_be_hot=*/true);
      --budget;
    }
    if (budget > 0) {
      const char* word = kDirWords[rng_.uniform_u64(std::size(kDirWords))];
      add_dir(parent,
              std::string(word) + std::to_string(rng_.uniform_u64(1000)),
              uids_[anchor], /*can_be_hot=*/true);
      --budget;
    }
  }
}

void ProjectTree::add_deep_chain(std::size_t target_depth, std::uint32_t uid) {
  std::size_t parent =
      user_dirs_.empty() ? 0 : user_dirs_[rng_.uniform_u64(user_dirs_.size())];
  // The chain id keeps multiple chains under one anchor disjoint.
  const std::string prefix = "c" + std::to_string(chain_count_++) + "_";
  std::size_t level = 0;
  while (depths_[parent] + 1 <= target_depth) {
    parent = add_dir(parent, prefix + std::to_string(level++), uid,
                     /*can_be_hot=*/false);
  }
}

std::size_t ProjectTree::sample_file_dir(Rng& rng) const {
  // 85% of placements go to the hot set, biased hard toward its head
  // (cubed-uniform index), so a handful of directories absorb most files —
  // the paper's "large number of files within a single directory".
  if (!hot_dirs_.empty() && rng.chance(0.85)) {
    const double u = rng.uniform();
    const auto index = static_cast<std::size_t>(
        u * u * u * static_cast<double>(hot_dirs_.size()));
    return hot_dirs_[std::min(index, hot_dirs_.size() - 1)];
  }
  if (paths_.size() <= 1) return 0;
  return 1 + rng.uniform_u64(paths_.size() - 1);  // skip the root
}

}  // namespace spider
