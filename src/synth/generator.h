// FacilityGenerator: the synthetic Spider II. Drives ~20 months of
// simulated facility activity — bursty write sessions, tight read
// campaigns, checkpoint rewrites, user deletions, the 90-day purge sweep,
// and the two create-rate campaign events the paper observed (.bb files in
// July 2015, .xyz files in February 2016) — and emits weekly LustreDU-style
// snapshots through the SnapshotSource interface.
//
// Everything is calibrated against the paper's published numbers (see
// domains.h and plan.h for the static structure; FacilityConfig below for
// the dynamic knobs). File volume scales with `scale`; users, projects,
// domains and the membership network are always full-scale.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/series.h"
#include "synth/plan.h"

namespace spider {

struct FacilityConfig {
  std::uint64_t seed = 20150105;

  /// Fraction of Spider II's file volume to simulate. 0.001 => the study
  /// peaks near one million live entries instead of one billion.
  double scale = 0.001;

  /// Simulated weeks (January 2015 - August 2016 spans ~86; the paper
  /// sampled 72 snapshot dates out of it).
  std::size_t weeks = 86;

  /// Emit only non-gap weeks (14 deterministic maintenance gaps), matching
  /// the paper's 72 usable snapshots. When false every week is emitted.
  bool maintenance_gaps = true;

  /// Scratch purge policy: files whose atime is older than this are
  /// removed by the weekly purge sweep. Directories are never purged.
  int purge_days = 90;

  // ---- population dynamics ------------------------------------------------
  /// Live files at week 0 (pre-scale; 200M matches Fig 15's start).
  double initial_files = 200e6;
  /// Live files at the final week (1B matches Fig 15's peak).
  double final_files = 1000e6;
  /// Fraction of created files that are long-lived datasets (re-read for
  /// months); the rest are transient checkpoints/outputs. Real jobs write
  /// outputs under fresh names and clean up the previous run's, so both
  /// the weekly new% and deleted% far exceed the net growth rate.
  double dataset_fraction = 0.35;
  /// Fraction of the *initial* population that is long-lived datasets.
  /// Spider's standing population is dominated by old, re-read data (the
  /// paper's Fig 16 file ages), so this is higher than the flow mix.
  double initial_dataset_fraction = 0.70;
  /// Weekly deletion probability of a transient file (user cleanup).
  double transient_delete_prob = 0.55;
  /// Fraction of deleted transients immediately recreated under fresh
  /// names — jobs rewriting their output trees. This is what makes the
  /// weekly new% and deleted% (Fig 13) far exceed the net growth rate.
  double recreate_fraction = 0.75;
  /// Fraction of live transient files rewritten (checkpoint-style) weekly.
  double update_fraction = 0.30;
  /// Dataset re-read cadence, in days: each batch draws its refresh period
  /// uniformly from [min, max]. Periods beyond purge_days lose files.
  double refresh_days_min = 56;
  double refresh_days_max = 88;
  /// Fraction of dataset batches whose periodic touch *rewrites* the batch
  /// (mtime moves: "updated") instead of just reading it ("readonly").
  double rewrite_touch_fraction = 0.40;
  /// Fraction of dataset batches whose owners forget them (never re-read
  /// => purged at 90 days), feeding the purge statistics.
  double forgotten_batch_fraction = 0.06;
  /// Minimum files a project creates over the study, so tiny domains
  /// remain visible at small scales.
  std::uint64_t min_project_files = 30;

  // ---- deterministic churn mode -------------------------------------------
  /// When all three are >= 0, the organic weekly dynamics (write sessions,
  /// read campaigns, checkpoint rewrites, purge sweep, population
  /// controller) are replaced by a fixed churn process: each file created
  /// before the week is rewritten in place with probability churn_update
  /// and deleted with probability churn_delete, and round(live *
  /// churn_create) files are created per project. Deterministic in `seed`,
  /// so two generators with the same config emit identical series — the
  /// knob the incremental-study churn sweep and bench_incremental turn.
  /// Setting all three to 0 produces byte-identical adjacent snapshots.
  double churn_create = -1;
  double churn_update = -1;
  double churn_delete = -1;
  bool churn_mode() const {
    return churn_create >= 0 && churn_update >= 0 && churn_delete >= 0;
  }

  std::int64_t start_epoch() const;  // Monday 2015-01-05
};

/// One scheduler job observed by the facility (the paper's future-work
/// data source: "combining multiple system logs (e.g., job logs) ... will
/// allow more interesting insights"). Write jobs are the bursty sessions;
/// read jobs are the analysis/visualization campaigns.
struct JobRecord {
  std::uint32_t project = 0;  // dense project index
  std::uint32_t uid = 0;      // submitting user
  std::int64_t start = 0;     // epoch seconds
  std::int64_t end = 0;
  std::uint64_t files_written = 0;
  std::uint64_t files_read = 0;
};

using JobVisitor = std::function<void(const JobRecord&)>;

/// Field-wise row sink, mirroring ScolStreamWriter::add so a week's rows
/// can flow from the simulator straight into the encoder without ever
/// materializing a SnapshotTable.
using RecordSink = std::function<Status(
    std::string_view path, std::int64_t atime, std::int64_t ctime,
    std::int64_t mtime, std::uint32_t uid, std::uint32_t gid,
    std::uint32_t mode, std::uint64_t inode,
    std::span<const std::uint32_t> osts)>;

/// One emitted week of the simulation, delivered as a row stream. `emit`
/// replays the week's rows into a sink in exactly the order emit() adds
/// them to a table — dirs then files per project — so a ScolStreamWriter
/// fed from it produces bytes identical to write_scol_file of the eager
/// snapshot. `emit` may be invoked at most once and only from inside the
/// visitor call (the rows borrow live simulation state).
struct WeekRecordBatch {
  std::size_t week = 0;      // dense emitted index (matches visit())
  std::int64_t taken_at = 0; // collection date (end of the simulated week)
  std::uint64_t rows = 0;    // rows emit() will deliver
  std::function<Status(const RecordSink&)> emit;
};

using WeekRecordVisitor = std::function<Status(const WeekRecordBatch&)>;

class FacilityGenerator : public SnapshotSource {
 public:
  explicit FacilityGenerator(FacilityConfig config);

  /// Number of snapshots visit() will deliver (weeks minus gaps).
  std::size_t count() const override;

  /// Re-runs the whole simulation (deterministic in config.seed) and
  /// delivers weekly snapshots in order. Snapshot `week` indices are dense
  /// over emitted snapshots; taken_at carries the real (gappy) dates.
  void visit(const SnapshotVisitor& visitor) override;

  /// Each weekly snapshot is freshly built, so ownership transfer is free.
  void visit_move(const SnapshotMoveVisitor& visitor) override;

  /// Like visit(), but additionally streams the scheduler job log
  /// (interleaved chronologically per week, before that week's snapshot).
  void visit_with_jobs(const SnapshotVisitor& visitor,
                       const JobVisitor& jobs);

  /// Runs the simulation delivering each emitted week as a row stream
  /// instead of a built table — peak memory is the simulator's live-file
  /// state alone, independent of snapshot width. A non-ok status from the
  /// visitor aborts the run and is returned.
  Status visit_records(const WeekRecordVisitor& visitor);

  const FacilityPlan& plan() const { return plan_; }
  const FacilityConfig& config() const { return config_; }

  /// The deterministic maintenance-gap week numbers for a config.
  static std::vector<std::size_t> gap_weeks(const FacilityConfig& config);

 private:
  FacilityConfig config_;
  FacilityPlan plan_;
};

/// Streams every snapshot of the generator into `directory` as
/// snap_<YYYYMMDD>.scol files written group-at-a-time through
/// ScolStreamWriter — the path that makes scale >= 0.1 series producible
/// in bounded memory. Requires options.format_version == 2. Output bytes
/// are identical to save_series() of the same generator under the same
/// options.
Status save_series_streamed(FacilityGenerator& generator,
                            const std::string& directory,
                            const ScolOptions& options = {});

}  // namespace spider
