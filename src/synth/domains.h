// The 35 science-domain profiles that calibrate the facility simulator.
//
// Every field is transcribed from the paper's Table 1 (per-domain summary),
// Table 2 (top-3 file extensions), Figure 7(b) (directory fraction), and
// the prose (OST outliers, burstiness exclusions). The generator samples
// from these profiles; the study then re-measures them from the synthetic
// snapshots, closing the loop paper -> generator -> analysis -> report.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace spider {

struct ExtensionShare {
  const char* ext;     // "" = not present
  double percent = 0;  // share of the domain's files, in percent
};

struct DomainProfile {
  const char* id;    // three-letter tag, e.g. "cli"
  const char* name;  // "Climate Science"
  int projects;      // number of project allocations

  /// Unique entries over the 500-day study, in thousands (Table 1).
  double entries_k;

  int depth_median;  // median directory depth of the domain's projects
  int depth_max;     // deepest observed path

  ExtensionShare top_ext[3];  // Table 2's top-3 extensions

  const char* lang1;  // most popular programming language (Table 1)
  const char* lang2;  // second most popular

  /// Table 1 "# OST": the domain's characteristic maximum stripe count.
  int ost_max;
  /// Whether the domain occasionally stripes across the full 1,008 OSTs
  /// (the paper names ast/csc/bip as wide-stripe users).
  bool wide_stripes;

  /// Burstiness targets: cv of within-week mtime (write) / atime (read)
  /// distributions. 0 marks the paper's "-" cells (domains whose projects
  /// access fewer than 100 files a week and are excluded from Fig 17).
  double write_cv;
  double read_cv;

  /// Table 1 "Network (%)": probability that a domain project belongs to
  /// the largest connected component.
  double network_pct;
  /// Table 1 "Collab. (%)": share of collaborating user pairs whose shared
  /// projects include this domain.
  double collab_pct;

  /// Fraction of the domain's entries that are directories (Fig 7(b):
  /// ~0.15 on average, 0.90 for atm, 0.67 for hep).
  double dir_fraction;

  /// Median users per project (Fig 6(c): >10 for env/nfi/chp/cli and stf).
  int median_project_users;
};

/// All 35 domains, ordered as the paper's Table 1 (alphabetical by tag).
std::span<const DomainProfile> domain_profiles();

/// Number of domains (35).
std::size_t domain_count();

/// Index of a domain tag in domain_profiles(), or -1 if unknown.
int domain_index(std::string_view id);

/// Total projects across all domains (380 in the study).
int total_projects();

}  // namespace spider
