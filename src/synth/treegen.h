// Per-project directory tree generation.
//
// Trees follow the paper's observations: user directories sit at a fixed
// shallow prefix (/lustre/atlas2/<project>/<user>), typical directory
// depths are domain-calibrated (Table 1 gives median/max per domain), most
// files land in a few "hot" directories (Fig 7(b): only ~15% of entries are
// directories), purge never removes directories, and two special projects
// carry pathological chains (depth 432 in General, 2,030 in Staff — the
// metadata stress tests the paper calls out).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/u64set.h"
#include "synth/domains.h"
#include "util/prng.h"

namespace spider {

class ProjectTree {
 public:
  /// `root` is the project directory, e.g. "/lustre/atlas2/cli104".
  /// The tree starts with just the root; user directories and content
  /// directories are added through the grow calls below.
  ProjectTree(std::string root, const DomainProfile& profile, Rng rng);

  /// Ensures /<root>/<user> exists; returns its directory id.
  std::size_t ensure_user_dir(std::string_view user_name, std::uint32_t uid);

  /// Adds `count` content directories under a random user directory,
  /// with target depths sampled from the domain profile. Directories are
  /// never removed (purge deletes files only).
  void grow(std::size_t count);

  /// Adds one deep chain reaching `target_depth` path components (the
  /// stress-test trees). Chain directories are cold (never hot).
  void add_deep_chain(std::size_t target_depth, std::uint32_t uid);

  std::size_t dir_count() const { return paths_.size(); }
  const std::string& dir_path(std::size_t id) const { return paths_[id]; }
  std::uint16_t dir_depth(std::size_t id) const { return depths_[id]; }
  std::uint32_t dir_uid(std::size_t id) const { return uids_[id]; }
  std::int64_t dir_ctime(std::size_t id) const { return ctimes_[id]; }

  /// Marks directory creation times; dirs created by grow()/chains after
  /// this call are stamped with `now`.
  void set_clock(std::int64_t now) { now_ = now; }

  /// Samples a directory to place files into: heavily biased toward a
  /// small hot set, so most files cluster in few directories.
  std::size_t sample_file_dir(Rng& rng) const;

 private:
  std::size_t add_dir(std::size_t parent, std::string_view name,
                      std::uint32_t uid, bool can_be_hot);

  const DomainProfile& profile_;
  Rng rng_;
  std::int64_t now_ = 0;
  std::vector<std::string> paths_;
  std::vector<std::uint16_t> depths_;
  std::vector<std::uint32_t> uids_;
  std::vector<std::int64_t> ctimes_;
  std::vector<std::uint32_t> user_dirs_;  // ids of user directories
  std::vector<std::uint32_t> hot_dirs_;   // preferred file targets
  std::size_t chain_count_ = 0;
  U64Set path_hashes_;  // duplicate-path guard (file systems are trees)
};

}  // namespace spider
