#include "synth/langmap.h"

namespace spider {

namespace {

// Ordered by the target popularity ranking in the synthetic facility,
// chosen to reproduce the paper's reported orderings: IEEE's top five all
// popular, shell 5th, Fortran 6th, Prolog 8th, COBOL 12th, Ada 16th, and
// emerging languages (Go/Scala/Swift) present but rare.
constexpr LanguageInfo kLanguages[] = {
    {"C", 1, {"c", "h", nullptr}, 1.00},
    {"Python", 3, {"py", "pyc", nullptr}, 0.82},
    {"C++", 4, {"cpp", "hpp", "cc", "cxx", nullptr}, 0.74},
    {"Java", 2, {"java", "jar", nullptr}, 0.72},
    {"Shell", 18, {"sh", "bash", "csh", nullptr}, 0.68},
    {"Fortran", 28, {"f", "f90", "F", "f77", nullptr}, 0.50},
    {"R", 5, {"R", "r", nullptr}, 0.34},
    {"Prolog", 37, {"pl", "pro", nullptr}, 0.30},
    {"Matlab", 13, {"m", nullptr}, 0.28},
    {"Javascript", 6, {"js", nullptr}, 0.22},
    {"Perl", 14, {"pm", "perl", nullptr}, 0.18},
    {"COBOL", 41, {"cob", "cbl", nullptr}, 0.20},
    {"PHP", 8, {"php", nullptr}, 0.13},
    {"Ruby", 10, {"rb", nullptr}, 0.11},
    {"Lua", 26, {"lua", nullptr}, 0.09},
    {"Ada", 40, {"adb", "ads", nullptr}, 0.08},
    {"Go", 12, {"go", nullptr}, 0.07},
    {"Scala", 20, {"scala", nullptr}, 0.06},
    {"Swift", 16, {"swift", nullptr}, 0.05},
    {"Julia", 31, {"jl", nullptr}, 0.045},
    {"Haskell", 23, {"hs", nullptr}, 0.04},
    {"Tcl", 35, {"tcl", nullptr}, 0.035},
    {"Lisp", 27, {"lisp", "el", nullptr}, 0.03},
    {"Pascal", 33, {"pas", nullptr}, 0.025},
    {"Erlang", 29, {"erl", nullptr}, 0.02},
    {"D", 24, {"di", nullptr}, 0.018},
    {"Rust", 22, {"rs", nullptr}, 0.015},
    {"Groovy", 30, {"groovy", nullptr}, 0.012},
    {"Kotlin", 38, {"kt", nullptr}, 0.010},
    {"Dart", 34, {"dart", nullptr}, 0.008},
};

}  // namespace

std::span<const LanguageInfo> languages() { return kLanguages; }

int language_for_extension(std::string_view ext) {
  if (ext.empty()) return -1;
  for (std::size_t i = 0; i < std::size(kLanguages); ++i) {
    for (const char* const* e = kLanguages[i].exts; *e != nullptr; ++e) {
      if (ext == *e) return static_cast<int>(i);
    }
  }
  return -1;
}

int language_index(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kLanguages); ++i) {
    if (name == kLanguages[i].name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace spider
