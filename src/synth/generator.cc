#include "synth/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "synth/langmap.h"
#include "synth/treegen.h"
#include "util/hash.h"
#include "util/timeutil.h"

namespace spider {

namespace {

constexpr std::int64_t kWeekMid = kSecondsPerWeek / 2;
constexpr double kDefaultWriteCv = 0.35;  // for Fig 17's excluded domains
constexpr std::uint32_t kSpiderOstCount = 2016;
constexpr std::uint32_t kMaxStripes = 1008;

// ---- extension model --------------------------------------------------

enum class ExtKind : std::uint8_t {
  kNamed = 0,    // ordinary "name.ext"
  kNone = 1,     // no extension at all
  kNumeric = 2,  // "result.1", "f.00000245" — sequence-numbered outputs
  kSource = 3,   // programming-language source file
};

struct ExtChoice {
  ExtKind kind = ExtKind::kNamed;
  std::string ext;  // for kNamed; for kSource the language decides
};

/// Per-domain extension mixture: Table 2's top-3 at their published shares,
/// with the residual split between extensionless files, numeric-suffix
/// outputs, source code, and a common scientific pool — tuned so the
/// global Fig 10 picture ("other" ~35%, "no extension" ~16%) emerges.
class ExtensionModel {
 public:
  explicit ExtensionModel(const DomainProfile& profile) : profile_(profile) {
    auto push = [this](ExtKind kind, std::string ext, double weight) {
      if (weight <= 0) return;
      kinds_.push_back(kind);
      exts_.push_back(std::move(ext));
      weights_.push_back(weight);
    };
    double top = 0;
    for (const ExtensionShare& share : profile.top_ext) {
      if (share.ext != nullptr && share.percent > 0) top += share.percent;
    }
    const double residual = std::max(2.0, 100.0 - top);
    // Residual split (weights sum to 100; scaled by `residual`).
    struct Common {
      const char* ext;
      double w;
    };
    static constexpr Common kCommons[] = {
        {"png", 5.0}, {"txt", 4.5}, {"dat", 4.0}, {"log", 3.5}, {"gz", 3.0},
        {"h5", 2.5},  {"o", 2.2},   {"out", 2.0}, {"xml", 1.6}, {"bin", 1.4},
        {"tar", 1.0}, {"err", 0.9}, {"csv", 0.8}, {"jpg", 0.7}, {"rst", 0.6},
        {"bak", 0.5}, {"vtk", 0.5}, {"ppm", 0.5}, {"mat", 0.4}, {"npy", 0.3},
    };
    double common_total = 0;
    double max_common = 0;
    for (const Common& c : kCommons) {
      common_total += c.w;
      max_common = std::max(max_common, c.w);
    }
    const double no_ext_w = 24.0, numeric_w = 11.0, source_w = 9.0;
    const double denom = no_ext_w + numeric_w + source_w + common_total;
    const double scale = residual / denom;

    // Table 2's listed top-3 keep their published shares, floored just
    // above the strongest residual extension so they stay the domain's
    // measured top-3 even when their shares are tiny (the paper's
    // low-dominance domains like aph's h5 at 1.3%).
    const double floors[3] = {1.20, 1.05, 0.95};
    for (int k = 0; k < 3; ++k) {
      const ExtensionShare& share = profile.top_ext[k];
      if (share.ext != nullptr && share.percent > 0) {
        push(ExtKind::kNamed, share.ext,
             std::max(share.percent, floors[k] * max_common * scale));
      }
    }
    push(ExtKind::kNone, "", residual * no_ext_w / denom);
    push(ExtKind::kNumeric, "", residual * numeric_w / denom);
    push(ExtKind::kSource, "", residual * source_w / denom);
    for (const Common& c : kCommons) {
      // A common extension that is also one of the domain's listed top-3
      // would double up and could overtake it; skip those.
      bool listed = false;
      for (const ExtensionShare& share : profile.top_ext) {
        if (share.ext != nullptr && std::string_view(c.ext) == share.ext) {
          listed = true;
        }
      }
      if (!listed) push(ExtKind::kNamed, c.ext, c.w * scale);
    }
    sampler_ = AliasSampler{std::span<const double>(weights_)};

    // Language mixture for source files: primary 45%, secondary 25%,
    // global base weights 30%.
    const auto langs = languages();
    lang_weights_.assign(langs.size(), 0.0);
    for (std::size_t i = 0; i < langs.size(); ++i) {
      lang_weights_[i] = 0.30 * langs[i].base_weight;
    }
    const int l1 = language_index(profile.lang1);
    const int l2 = language_index(profile.lang2);
    if (l1 >= 0) lang_weights_[static_cast<std::size_t>(l1)] += 1.8;
    if (l2 >= 0) lang_weights_[static_cast<std::size_t>(l2)] += 1.0;
    lang_sampler_ = AliasSampler{std::span<const double>(lang_weights_)};
  }

  ExtChoice sample(Rng& rng) const {
    const std::size_t i = sampler_.sample(rng);
    ExtChoice choice;
    choice.kind = kinds_[i];
    if (choice.kind == ExtKind::kNamed) {
      choice.ext = exts_[i];
    } else if (choice.kind == ExtKind::kSource) {
      const LanguageInfo& lang = languages()[lang_sampler_.sample(rng)];
      // First extension dominates (".c" over ".h" etc. is handled by the
      // language's own list ordering).
      std::size_t n = 0;
      while (lang.exts[n] != nullptr) ++n;
      const std::size_t pick =
          rng.chance(0.6) ? 0 : rng.uniform_u64(n);
      choice.kind = ExtKind::kNamed;
      choice.ext = lang.exts[pick];
    }
    return choice;
  }

 private:
  const DomainProfile& profile_;
  std::vector<ExtKind> kinds_;
  std::vector<std::string> exts_;
  std::vector<double> weights_;
  AliasSampler sampler_;
  std::vector<double> lang_weights_;
  AliasSampler lang_sampler_;
};

// ---- live state ---------------------------------------------------------

struct BatchState {
  std::int64_t last_read = 0;
  std::int64_t refresh_seconds = 0;  // 0 => forgotten, never re-read
  bool rewrite_on_touch = false;     // periodic touch rewrites, not reads
};

struct LiveFile {
  std::string name;  // within its directory
  std::uint32_t dir = 0;
  std::int64_t ctime = 0, mtime = 0, atime = 0;
  std::uint32_t uid = 0;
  std::uint64_t inode = 0;
  std::uint32_t batch = 0;
  std::uint32_t ost_seed = 0;
  std::uint16_t stripes = 4;
  bool dataset = false;
};

struct ProjectState {
  std::uint32_t index = 0;
  const ProjectInfo* info = nullptr;
  const DomainProfile* profile = nullptr;
  std::unique_ptr<ProjectTree> tree;
  std::unique_ptr<ExtensionModel> extensions;
  std::vector<LiveFile> files;
  std::vector<BatchState> batches;
  std::vector<std::uint8_t> batch_read_this_week;
  AliasSampler member_activity;
  Rng rng{0};
  double weight = 0;         // share of facility file creates
  double dir_ratio = 0;      // dirs per file
  std::uint64_t created_total = 0;
  std::uint64_t seq = 0;
  std::uint64_t deletes_last_week = 0;
};

const char* const kFilePrefixes[] = {"out", "chk", "step", "traj", "dump",
                                     "frame", "state", "mesh", "field",
                                     "part"};

/// Campaign create-rate multiplier (paper Fig 10's .bb and .xyz events).
double campaign_multiplier(std::string_view domain_id, std::size_t week) {
  if (domain_id == "nph" && week >= 24 && week < 32) return 6.0;
  if (domain_id == "chp" && week >= 55 && week < 62) return 6.0;
  return 1.0;
}

bool campaign_forced_ext(std::string_view domain_id, std::size_t week,
                         std::string* ext) {
  if (domain_id == "nph" && week >= 24 && week < 32) {
    *ext = "bb";
    return true;
  }
  if (domain_id == "chp" && week >= 55 && week < 62) {
    *ext = "xyz";
    return true;
  }
  return false;
}

class Simulation {
 public:
  Simulation(const FacilityConfig& config, const FacilityPlan& plan,
             const JobVisitor* jobs = nullptr)
      : config_(config), plan_(plan), rng_(config.seed), jobs_(jobs) {
    setup_projects();
    seed_initial_population();
  }

  void run(const SnapshotMoveVisitor& visitor) {
    const auto gaps = FacilityGenerator::gap_weeks(config_);
    in_study_ = true;  // job records start with the observation window
    std::size_t emitted = 0;
    for (std::size_t week = 0; week < config_.weeks; ++week) {
      simulate_week(week);
      const bool gap = config_.maintenance_gaps &&
                       std::find(gaps.begin(), gaps.end(), week) != gaps.end();
      if (gap) continue;
      Snapshot snap;
      snap.taken_at = week_start(week + 1);  // collected at week end
      emit(snap.table);
      visitor(emitted++, std::move(snap));
    }
  }

  /// run(), minus the table: each emitted week hands the visitor a
  /// replayable row stream over live simulation state.
  Status run_records(const WeekRecordVisitor& visitor) {
    const auto gaps = FacilityGenerator::gap_weeks(config_);
    in_study_ = true;
    std::size_t emitted = 0;
    for (std::size_t week = 0; week < config_.weeks; ++week) {
      simulate_week(week);
      const bool gap = config_.maintenance_gaps &&
                       std::find(gaps.begin(), gaps.end(), week) != gaps.end();
      if (gap) continue;
      WeekRecordBatch batch;
      batch.week = emitted;
      batch.taken_at = week_start(week + 1);
      batch.rows = emit_row_count();
      batch.emit = [this](const RecordSink& sink) { return emit_rows(sink); };
      Status st = visitor(batch);
      if (!st.ok()) return st;
      ++emitted;
    }
    return Status();
  }

 private:
  std::int64_t week_start(std::size_t week) const {
    return config_.start_epoch() +
           static_cast<std::int64_t>(week) * kSecondsPerWeek;
  }

  double population_target(std::size_t week) const {
    const double w = static_cast<double>(week) /
                     static_cast<double>(std::max<std::size_t>(
                         config_.weeks - 1, 1));
    return config_.scale * config_.initial_files *
           std::pow(config_.final_files / config_.initial_files, w);
  }

  void setup_projects() {
    const auto domains = domain_profiles();
    // Facility-wide file-create share per domain: Table 1 entry volumes,
    // discounted by the domain's directory fraction (entries include dirs).
    std::vector<double> domain_weight(domains.size(), 0.0);
    double total = 0;
    for (std::size_t d = 0; d < domains.size(); ++d) {
      domain_weight[d] =
          std::max(0.01, domains[d].entries_k * (1.0 - domains[d].dir_fraction));
      total += domain_weight[d];
    }

    projects_.resize(plan_.projects.size());
    std::vector<double> project_share_in_domain(plan_.projects.size(), 0.0);
    std::vector<double> domain_share_sum(domains.size(), 0.0);
    for (std::uint32_t p = 0; p < plan_.projects.size(); ++p) {
      ProjectState& state = projects_[p];
      state.index = p;
      state.info = &plan_.projects[p];
      state.profile = &domains[static_cast<std::size_t>(state.info->domain)];
      state.rng = Rng(mix64(config_.seed ^ (0x9e37ULL + p * 0x100000001b3ULL)));
      // Heavily skewed spread of activity across a domain's projects: one
      // or two dominate (the paper's chp domain put 372M of its 380M
      // entries in a single project, and the per-project median is 20K
      // files against a 10.7M mean — a ~500x mean/median ratio).
      project_share_in_domain[p] = state.rng.lognormal(0.0, 1.8);
      domain_share_sum[static_cast<std::size_t>(state.info->domain)] +=
          project_share_in_domain[p];
    }
    for (std::uint32_t p = 0; p < plan_.projects.size(); ++p) {
      ProjectState& state = projects_[p];
      const std::size_t d = static_cast<std::size_t>(state.info->domain);
      state.weight = (domain_weight[d] / total) *
                     (project_share_in_domain[p] / domain_share_sum[d]);
      // The 0.75 factor keeps the *live* directory share under the paper's
      // 10% (Fig 15) while the per-domain unique-census ratios (Fig 7(b))
      // stay ordered by the profile fractions.
      state.dir_ratio = 0.75 * state.profile->dir_fraction /
                        (1.0 - state.profile->dir_fraction);
      state.tree = std::make_unique<ProjectTree>(
          "/lustre/atlas2/" + state.info->name, *state.profile,
          state.rng.fork());
      state.extensions = std::make_unique<ExtensionModel>(*state.profile);
      // Member activity: the lead members carry most sessions (sharpens
      // the paper's project-vs-user file-count gap, Observation 3).
      std::vector<double> activity;
      for (std::size_t m = 0; m < state.info->members.size(); ++m) {
        activity.push_back(std::pow(static_cast<double>(1 + m), -1.7));
      }
      state.member_activity = AliasSampler{std::span<const double>(activity)};
      state.tree->set_clock(config_.start_epoch());
      for (const std::uint32_t member : state.info->members) {
        const UserAccount& user = plan_.users[member];
        state.tree->ensure_user_dir(user.name, user.uid);
      }
      // Most projects carve at least one excursion near the domain's
      // typical depth, so the per-project max-depth CDF (Fig 8(a)) shows
      // the paper's ">30% of projects deeper than 10" tail.
      if (state.rng.chance(0.6)) {
        const double spread = state.rng.uniform(0.8, 1.3);
        const int target = std::clamp(
            static_cast<int>(std::lround(
                spread * state.profile->depth_median)),
            6, std::min(state.profile->depth_max - 1,
                        state.profile->depth_median + 8));
        const std::uint32_t owner =
            plan_.users[state.info->members.front()].uid;
        state.tree->add_deep_chain(static_cast<std::size_t>(target), owner);
      }
    }

    // The pathological deep trees: one General project at depth 432, one
    // Staff project at depth 2030 (metadata stress tests).
    add_deep_chain("gen", 432);
    add_deep_chain("stf", 2030);
  }

  void add_deep_chain(std::string_view domain_id, std::size_t depth) {
    for (ProjectState& state : projects_) {
      if (domain_id == state.profile->id) {
        const std::uint32_t member = state.info->members.front();
        state.tree->add_deep_chain(depth, plan_.users[member].uid);
        return;
      }
    }
  }

  std::uint32_t member_uid(ProjectState& state) {
    const std::size_t m = state.member_activity.sample(state.rng);
    return plan_.users[state.info->members[m]].uid;
  }

  std::uint16_t sample_stripes(ProjectState& state) {
    const DomainProfile& profile = *state.profile;
    const double r = state.rng.uniform();
    if (r < 0.05) {
      return static_cast<std::uint16_t>(1 + state.rng.uniform_u64(2));
    }
    if (profile.ost_max > 4) {
      if (profile.wide_stripes && r < 0.054) return kMaxStripes;
      if (r < 0.18) {
        return static_cast<std::uint16_t>(
            state.rng.uniform_int(5, profile.ost_max));
      }
    }
    return 4;
  }

  /// Creates one batch of files in a project at session time `when`.
  void create_batch(ProjectState& state, std::size_t count,
                    std::int64_t when, bool dataset, std::size_t week) {
    if (count == 0) return;
    const std::uint32_t uid = member_uid(state);
    // Directory growth tracks the *live* file population (directories are
    // never purged, so the live ratio stays near the domain profile while
    // the unique-entries ratio comes out lower — both as the paper reports:
    // Fig 7's 275M dirs vs 4.07B unique files, Fig 15's <10% live share).
    const auto target_dirs = static_cast<std::size_t>(
        static_cast<double>(state.files.size() + count) * state.dir_ratio);
    state.tree->set_clock(when);
    if (target_dirs > state.tree->dir_count()) {
      state.tree->grow(target_dirs - state.tree->dir_count());
    }

    ExtChoice ext = state.extensions->sample(state.rng);
    std::string forced;
    if (campaign_forced_ext(state.profile->id, week, &forced) &&
        state.rng.chance(0.9)) {
      ext.kind = ExtKind::kNamed;
      ext.ext = forced;
    }

    const std::uint32_t batch_id =
        static_cast<std::uint32_t>(state.batches.size());
    BatchState batch;
    batch.last_read = when;
    if (dataset && !state.rng.chance(config_.forgotten_batch_fraction)) {
      batch.refresh_seconds = static_cast<std::int64_t>(
          state.rng.uniform(config_.refresh_days_min,
                            config_.refresh_days_max) *
          static_cast<double>(kSecondsPerDay));
      batch.rewrite_on_touch =
          state.rng.chance(config_.rewrite_touch_fraction);
    }
    state.batches.push_back(batch);
    state.batch_read_this_week.push_back(0);

    const char* prefix =
        kFilePrefixes[state.rng.uniform_u64(std::size(kFilePrefixes))];
    const std::uint16_t stripes = sample_stripes(state);
    const std::uint32_t ost_seed =
        static_cast<std::uint32_t>(state.rng.next_u64());
    // Sessions use one or two target directories.
    const std::size_t dir_a = state.tree->sample_file_dir(state.rng);
    const std::size_t dir_b = state.tree->sample_file_dir(state.rng);

    char buf[96];
    for (std::size_t i = 0; i < count; ++i) {
      LiveFile file;
      file.dir = static_cast<std::uint32_t>(
          (i % 3 == 2) ? dir_b : dir_a);
      const std::uint64_t seq = state.seq++;
      switch (ext.kind) {
        case ExtKind::kNone:
          std::snprintf(buf, sizeof(buf), "%s%u_%llu", prefix, batch_id,
                        static_cast<unsigned long long>(seq));
          break;
        case ExtKind::kNumeric:
          std::snprintf(buf, sizeof(buf), "%s%u.%08llu", prefix, batch_id,
                        static_cast<unsigned long long>(seq));
          break;
        default:
          std::snprintf(buf, sizeof(buf), "%s%u_%llu.%s", prefix, batch_id,
                        static_cast<unsigned long long>(seq),
                        ext.ext.c_str());
          break;
      }
      file.name = buf;
      // Tight within-session spread: sessions are minutes long.
      file.ctime = file.mtime = file.atime =
          when + static_cast<std::int64_t>(state.rng.uniform_u64(300));
      file.uid = uid;
      file.inode = next_inode_++;
      file.batch = batch_id;
      file.stripes = stripes;
      file.ost_seed = ost_seed ^ static_cast<std::uint32_t>(seq);
      file.dataset = dataset;
      state.files.push_back(std::move(file));
    }
    state.created_total += count;
    live_files_ += count;

    if (jobs_ != nullptr && in_study_) {
      JobRecord job;
      job.project = state.index;
      job.uid = uid;
      job.start = when;
      // Duration derives from a hash, not the project RNG: capturing the
      // job log must never perturb the snapshot stream.
      job.end = when + 300 + static_cast<std::int64_t>(
                                 mix64(static_cast<std::uint64_t>(when) ^
                                       count) %
                                 (3 * 3600));
      job.files_written = count;
      (*jobs_)(job);
    }
  }

  void seed_initial_population() {
    const double initial = population_target(0);
    const std::int64_t start = config_.start_epoch();
    for (ProjectState& state : projects_) {
      auto files = static_cast<std::uint64_t>(initial * state.weight);
      files = std::max(files, config_.min_project_files / 2);
      std::uint64_t made = 0;
      while (made < files) {
        const std::size_t batch_size = std::min<std::uint64_t>(
            files - made, 40 + state.rng.uniform_u64(260));
        const bool dataset = state.rng.chance(config_.initial_dataset_fraction);
        std::int64_t when;
        if (dataset) {
          // Old datasets: written up to ~500 days before the study,
          // last read recently enough to have survived the purge.
          when = start - static_cast<std::int64_t>(
                             state.rng.uniform(40.0, 450.0) *
                             static_cast<double>(kSecondsPerDay));
        } else {
          when = start - static_cast<std::int64_t>(
                             state.rng.uniform(1.0, 55.0) *
                             static_cast<double>(kSecondsPerDay));
        }
        create_batch(state, batch_size, when, dataset, /*week=*/0);
        // Backdate the batch read clock and refresh the atimes.
        BatchState& batch = state.batches.back();
        const std::int64_t read_at =
            start - static_cast<std::int64_t>(
                        state.rng.uniform(1.0, 80.0) *
                        static_cast<double>(kSecondsPerDay));
        if (read_at > when) {
          batch.last_read = read_at;
          for (auto it = state.files.end() -
                         static_cast<std::ptrdiff_t>(batch_size);
               it != state.files.end(); ++it) {
            it->atime = read_at + static_cast<std::int64_t>(
                                      state.rng.uniform_u64(1200));
          }
        }
        made += batch_size;
      }
    }
  }

  void simulate_week(std::size_t week) {
    if (config_.churn_mode()) {
      simulate_week_churn(week);
      return;
    }
    const std::int64_t start = week_start(week);
    const double target_next = population_target(week + 1);
    const double deficit =
        target_next - static_cast<double>(live_files_) +
        static_cast<double>(deletes_last_week_);
    const double creates_total = std::max(0.0, deficit);

    for (ProjectState& state : projects_) {
      simulate_project_week(state, week, start, creates_total);
    }

    // Facility-wide purge sweep at week end.
    const std::int64_t cutoff =
        week_start(week + 1) -
        static_cast<std::int64_t>(config_.purge_days) * kSecondsPerDay;
    // The population controller compensates only *net* losses: recreated
    // deletions were already replaced within the week.
    double net_losses = 0;
    for (ProjectState& state : projects_) {
      net_losses += static_cast<double>(state.deletes_last_week) *
                    (1.0 - config_.recreate_fraction);
      net_losses += static_cast<double>(purge_project(state, cutoff));
    }
    deletes_last_week_ = static_cast<std::uint64_t>(net_losses);
  }

  /// Deterministic churn mode: fixed-rate Bernoulli rewrite/delete over
  /// the pre-week population plus a proportional creation wave, with the
  /// organic machinery (purge, population controller, read campaigns)
  /// switched off so the per-week churn is exactly what the config dials.
  void simulate_week_churn(std::size_t week) {
    const std::int64_t start = week_start(week);
    for (ProjectState& state : projects_) {
      Rng& rng = state.rng;
      const std::int64_t mid = start + kWeekMid;
      if (config_.churn_update > 0) {
        for (LiveFile& file : state.files) {
          if (file.ctime < start && rng.chance(config_.churn_update)) {
            file.mtime = file.ctime =
                mid + static_cast<std::int64_t>(rng.uniform_u64(600));
            file.atime = file.mtime;
          }
        }
      }
      std::uint64_t deleted = 0;
      if (config_.churn_delete > 0) {
        for (std::size_t i = 0; i < state.files.size();) {
          if (state.files[i].ctime < start &&
              rng.chance(config_.churn_delete)) {
            state.files[i] = std::move(state.files.back());
            state.files.pop_back();
            ++deleted;
          } else {
            ++i;
          }
        }
      }
      live_files_ -= deleted;
      auto creates = static_cast<std::uint64_t>(std::llround(
          static_cast<double>(state.files.size()) * config_.churn_create));
      while (creates > 0) {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(creates, 60 + rng.uniform_u64(120));
        create_batch(state, chunk,
                     mid + static_cast<std::int64_t>(rng.uniform_u64(3600)),
                     /*dataset=*/false, week);
        creates -= chunk;
      }
    }
  }

  void simulate_project_week(ProjectState& state, std::size_t week,
                             std::int64_t start, double creates_total) {
    const DomainProfile& profile = *state.profile;
    Rng& rng = state.rng;

    // ---- writes ----------------------------------------------------------
    const double mult = campaign_multiplier(profile.id, week);
    double planned = creates_total * state.weight * mult;
    // Keep tiny projects visible over the study.
    const double floor_rate = static_cast<double>(config_.min_project_files) /
                              static_cast<double>(config_.weeks);
    planned = std::max(planned, floor_rate);
    auto creates = static_cast<std::uint64_t>(std::lround(
        planned * rng.uniform(0.6, 1.4)));

    const double write_cv =
        profile.write_cv > 0 ? profile.write_cv : kDefaultWriteCv;
    // The 1.55 factor compensates for the downward bias of estimating the
    // weekly dispersion from a handful of session centers (the measured
    // per-project cv then lands on the Table 1 target).
    const double write_sigma =
        std::max(120.0, 1.55 * write_cv * static_cast<double>(kWeekMid));

    if (creates > 0) {
      const std::size_t sessions = static_cast<std::size_t>(
          std::clamp<std::uint64_t>(1 + rng.poisson(1.8), 1, 6));
      for (std::size_t s = 0; s < sessions; ++s) {
        std::size_t share =
            s + 1 == sessions ? creates - (creates / sessions) * s
                              : creates / sessions;
        const double offset =
            std::clamp(rng.normal(static_cast<double>(kWeekMid), write_sigma),
                       0.0, static_cast<double>(kSecondsPerWeek - 400));
        // A session writes several output groups; each batch carries one
        // extension, so capping batch size keeps per-domain extension
        // shares near their targets instead of lurching batch-by-batch.
        while (share > 0) {
          const std::size_t chunk = std::min<std::size_t>(
              share, 60 + rng.uniform_u64(120));
          const bool dataset = rng.chance(config_.dataset_fraction);
          create_batch(state, chunk,
                       start + static_cast<std::int64_t>(offset), dataset,
                       week);
          share -= chunk;
        }
      }
    }

    // ---- checkpoint rewrites ----------------------------------------------
    const double update_offset =
        std::clamp(rng.normal(static_cast<double>(kWeekMid), write_sigma),
                   0.0, static_cast<double>(kSecondsPerWeek - 1200));
    const std::int64_t update_time =
        start + static_cast<std::int64_t>(update_offset);
    for (LiveFile& file : state.files) {
      if (!file.dataset && file.ctime < start &&
          rng.chance(config_.update_fraction)) {
        file.mtime = file.ctime =
            update_time + static_cast<std::int64_t>(rng.uniform_u64(600));
        file.atime = file.mtime;
      }
    }

    // ---- read campaign -----------------------------------------------------
    const double read_cv = profile.read_cv > 0 ? profile.read_cv : 0.002;
    const double read_sigma =
        std::max(30.0, read_cv * static_cast<double>(kWeekMid));
    const std::int64_t read_time = start + kWeekMid;
    std::fill(state.batch_read_this_week.begin(),
              state.batch_read_this_week.end(), 0);
    bool any_read = false;
    for (std::size_t b = 0; b < state.batches.size(); ++b) {
      BatchState& batch = state.batches[b];
      if (batch.refresh_seconds <= 0) continue;
      if (read_time - batch.last_read >= batch.refresh_seconds) {
        batch.last_read = read_time;
        state.batch_read_this_week[b] = 1;
        any_read = true;
      }
    }
    std::uint64_t files_read = 0;
    if (any_read) {
      for (LiveFile& file : state.files) {
        if (!state.batch_read_this_week[file.batch] ||
            file.ctime >= start) {  // this week's new files are "new"
          continue;
        }
        if (state.batches[file.batch].rewrite_on_touch) {
          // Periodic rewrite: the whole batch is regenerated in place
          // (same paths), so the diff classifies it as "updated".
          file.mtime = file.ctime = file.atime =
              read_time + static_cast<std::int64_t>(rng.uniform_u64(900));
        } else {
          const double jitter = rng.normal(0.0, read_sigma);
          file.atime = std::max(
              file.mtime,
              read_time + static_cast<std::int64_t>(std::llround(jitter)));
          ++files_read;
        }
      }
    }
    if (jobs_ != nullptr && files_read > 0) {
      JobRecord job;
      job.project = state.index;
      // Hash-derived attributes: see the write-job note above.
      job.uid = plan_.users[state.info->members.front()].uid;
      job.start = read_time;
      job.end = read_time + 1200 + static_cast<std::int64_t>(
                                       mix64(static_cast<std::uint64_t>(
                                                 read_time) ^
                                             files_read) %
                                       (2 * 3600));
      job.files_read = files_read;
      (*jobs_)(job);
    }

    // ---- user deletions + output-tree rewrites -----------------------------
    // Jobs clean their previous run's outputs and write fresh ones under
    // new names, so most deletions are paired with same-week creations.
    std::uint64_t deleted = 0;
    for (std::size_t i = 0; i < state.files.size();) {
      LiveFile& file = state.files[i];
      if (!file.dataset && file.ctime < start &&
          rng.chance(config_.transient_delete_prob)) {
        file = std::move(state.files.back());
        state.files.pop_back();
        ++deleted;
      } else {
        ++i;
      }
    }
    state.deletes_last_week = deleted;
    live_files_ -= deleted;

    auto recreated = static_cast<std::uint64_t>(
        static_cast<double>(deleted) * config_.recreate_fraction);
    while (recreated > 0) {
      const double offset =
          std::clamp(rng.normal(static_cast<double>(kWeekMid), write_sigma),
                     0.0, static_cast<double>(kSecondsPerWeek - 400));
      const std::uint64_t chunk =
          std::min<std::uint64_t>(recreated, 60 + rng.uniform_u64(120));
      create_batch(state, chunk, start + static_cast<std::int64_t>(offset),
                   /*dataset=*/false, week);
      recreated -= chunk;
    }
  }

  std::uint64_t purge_project(ProjectState& state, std::int64_t cutoff) {
    std::uint64_t purged = 0;
    for (std::size_t i = 0; i < state.files.size();) {
      if (state.files[i].atime < cutoff) {
        state.files[i] = std::move(state.files.back());
        state.files.pop_back();
        ++purged;
      } else {
        ++i;
      }
    }
    live_files_ -= purged;
    return purged;
  }

  std::uint64_t emit_row_count() const {
    std::uint64_t rows = 0;
    for (const ProjectState& state : projects_) {
      rows += state.tree->dir_count() + state.files.size();
    }
    return rows;
  }

  // The single source of row order: dirs then files per project, projects
  // in plan order. Both the eager table build and the streaming .scol
  // writer replay this walk, which is what makes their outputs identical.
  Status emit_rows(const RecordSink& sink) {
    std::string path;
    std::vector<std::uint32_t> osts;
    for (const ProjectState& state : projects_) {
      const std::uint32_t gid = state.info->gid;
      const ProjectTree& tree = *state.tree;
      for (std::size_t d = 0; d < tree.dir_count(); ++d) {
        const std::int64_t t =
            tree.dir_ctime(d) > 0 ? tree.dir_ctime(d) : config_.start_epoch();
        Status st = sink(tree.dir_path(d), t, t, t, tree.dir_uid(d), gid,
                         kModeDirectory | 0775,
                         (1ULL << 40) | (static_cast<std::uint64_t>(state.index)
                                         << 22) |
                             d,
                         {});
        if (!st.ok()) return st;
      }
      for (const LiveFile& file : state.files) {
        path.assign(tree.dir_path(file.dir));
        path += '/';
        path += file.name;
        osts.clear();
        for (std::uint16_t s = 0; s < file.stripes; ++s) {
          osts.push_back(static_cast<std::uint32_t>(
              hash_combine(file.ost_seed, s) % kSpiderOstCount));
        }
        Status st = sink(path, file.atime, file.ctime, file.mtime, file.uid,
                         gid, kModeRegular | 0664, file.inode, osts);
        if (!st.ok()) return st;
      }
    }
    return Status();
  }

  void emit(SnapshotTable& table) {
    table.reserve(emit_row_count());
    (void)emit_rows([&table](std::string_view path, std::int64_t atime,
                             std::int64_t ctime, std::int64_t mtime,
                             std::uint32_t uid, std::uint32_t gid,
                             std::uint32_t mode, std::uint64_t inode,
                             std::span<const std::uint32_t> osts) {
      table.add(path, atime, ctime, mtime, uid, gid, mode, inode, osts);
      return Status();
    });
  }

  const FacilityConfig& config_;
  const FacilityPlan& plan_;
  Rng rng_;
  const JobVisitor* jobs_ = nullptr;
  bool in_study_ = false;
  std::vector<ProjectState> projects_;
  std::uint64_t next_inode_ = 1'000'000'000ULL;
  std::uint64_t live_files_ = 0;
  std::uint64_t deletes_last_week_ = 0;
};

}  // namespace

std::int64_t FacilityConfig::start_epoch() const {
  return epoch_from_civil({2015, 1, 5});
}

FacilityGenerator::FacilityGenerator(FacilityConfig config)
    : config_(config), plan_(plan_facility(config.seed)) {}

std::vector<std::size_t> FacilityGenerator::gap_weeks(
    const FacilityConfig& config) {
  if (!config.maintenance_gaps) return {};
  // Deterministic maintenance windows at fixed fractions of the study;
  // with the default 86 weeks this drops 14 weeks, leaving the paper's 72
  // usable snapshots. Adjacent fractions model multi-week outages. Shorter
  // runs drop proportionally fewer weeks (the paper's ~16% gap density),
  // and week 0 is never a gap so every series has a first snapshot.
  static constexpr double kGapFractions[] = {
      0.11, 0.26, 0.27, 0.38, 0.48, 0.55, 0.56,
      0.65, 0.73, 0.80, 0.87, 0.88, 0.94, 0.975};
  constexpr std::size_t kFractionCount = std::size(kGapFractions);
  const std::size_t target = std::min<std::size_t>(
      kFractionCount, config.weeks * kFractionCount / 86);
  std::vector<std::size_t> gaps;
  for (std::size_t i = 0; i < target; ++i) {
    // Spread the selected gaps across the full fraction list.
    const double f = kGapFractions[i * kFractionCount / target];
    const auto week =
        static_cast<std::size_t>(f * static_cast<double>(config.weeks));
    if (week > 0 && week < config.weeks &&
        (gaps.empty() || gaps.back() != week)) {
      gaps.push_back(week);
    }
  }
  return gaps;
}

std::size_t FacilityGenerator::count() const {
  const auto gaps = gap_weeks(config_);
  std::size_t gap_count = 0;
  for (const std::size_t g : gaps) {
    if (g < config_.weeks) ++gap_count;
  }
  return config_.weeks - gap_count;
}

void FacilityGenerator::visit(const SnapshotVisitor& visitor) {
  visit_move([&](std::size_t week, Snapshot&& snap) { visitor(week, snap); });
}

void FacilityGenerator::visit_move(const SnapshotMoveVisitor& visitor) {
  Simulation sim(config_, plan_);
  sim.run(visitor);
}

void FacilityGenerator::visit_with_jobs(const SnapshotVisitor& visitor,
                                        const JobVisitor& jobs) {
  Simulation sim(config_, plan_, &jobs);
  sim.run([&](std::size_t week, Snapshot&& snap) { visitor(week, snap); });
}

Status FacilityGenerator::visit_records(const WeekRecordVisitor& visitor) {
  Simulation sim(config_, plan_);
  return sim.run_records(visitor);
}

Status save_series_streamed(FacilityGenerator& generator,
                            const std::string& directory,
                            const ScolOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::io_error("cannot create directory: " + directory);
  }
  return generator.visit_records([&](const WeekRecordBatch& batch) {
    const std::string file =
        (std::filesystem::path(directory) /
         ("snap_" + date_tag(batch.taken_at) + ".scol"))
            .string();
    ScolStreamWriter writer;
    Status st = writer.open(file, options);
    if (!st.ok()) return st;
    st = batch.emit([&writer](std::string_view path, std::int64_t atime,
                              std::int64_t ctime, std::int64_t mtime,
                              std::uint32_t uid, std::uint32_t gid,
                              std::uint32_t mode, std::uint64_t inode,
                              std::span<const std::uint32_t> osts) {
      return writer.add(path, atime, ctime, mtime, uid, gid, mode, inode,
                        osts);
    });
    if (!st.ok()) {
      writer.abort();
      return st;
    }
    return writer.finish();
  });
}

}  // namespace spider
