#include "synth/infer.h"

#include <algorithm>
#include <unordered_map>

#include "engine/u64set.h"
#include "snapshot/record.h"

namespace spider {

namespace {

int domain_from_project_name(std::string_view name) {
  if (name.size() < 3) return domain_index("gen");
  const int d = domain_index(name.substr(0, 3));
  return d >= 0 ? d : -1;
}

}  // namespace

FacilityPlan infer_facility(SnapshotSource& source, InferenceStats* stats) {
  FacilityPlan plan;
  std::unordered_map<std::string, std::uint32_t> project_index;
  std::unordered_map<std::uint32_t, std::uint32_t> user_index;
  // Per-user entry counts per domain, to pick the primary domain.
  std::vector<std::unordered_map<int, std::uint64_t>> user_domain_counts;
  U64Set membership_pairs;
  std::size_t unmatched = 0;

  source.visit([&](std::size_t, const Snapshot& snap) {
    const SnapshotTable& table = snap.table;
    for (std::size_t i = 0; i < table.size(); ++i) {
      const std::string_view project_name = path_project(table.path(i));
      if (project_name.empty()) continue;

      // Project: keyed by directory name; gid from the records.
      auto [pit, fresh_project] =
          project_index.try_emplace(std::string(project_name),
                                    static_cast<std::uint32_t>(
                                        plan.projects.size()));
      if (fresh_project) {
        ProjectInfo project;
        project.name = std::string(project_name);
        const int domain = domain_from_project_name(project_name);
        if (domain < 0) ++unmatched;
        project.domain = domain >= 0 ? domain : domain_index("gen");
        project.gid = table.gid(i);
        plan.projects.push_back(std::move(project));
      }
      const std::uint32_t project = pit->second;

      // User: keyed by uid.
      const std::uint32_t uid = table.uid(i);
      auto [uit, fresh_user] = user_index.try_emplace(
          uid, static_cast<std::uint32_t>(plan.users.size()));
      if (fresh_user) {
        UserAccount user;
        user.uid = uid;
        user.name = "uid" + std::to_string(uid);
        user.org = OrgType::kOther;  // no accounting database to join
        user.primary_domain = plan.projects[project].domain;
        plan.users.push_back(std::move(user));
        user_domain_counts.emplace_back();
      }
      const std::uint32_t user = uit->second;
      ++user_domain_counts[user][plan.projects[project].domain];

      const std::uint64_t pair_key =
          (static_cast<std::uint64_t>(user) << 32) | project;
      if (membership_pairs.insert(pair_key)) {
        plan.projects[project].members.push_back(user);
      }
    }
  });

  // Primary domain: where the user owns the most entries.
  for (std::uint32_t u = 0; u < plan.users.size(); ++u) {
    const auto& counts = user_domain_counts[u];
    std::uint64_t best = 0;
    for (const auto& [domain, count] : counts) {
      if (count > best) {
        best = count;
        plan.users[u].primary_domain = domain;
      }
    }
  }

  std::size_t memberships = 0;
  for (std::uint32_t p = 0; p < plan.projects.size(); ++p) {
    auto& members = plan.projects[p].members;
    std::sort(members.begin(), members.end());
    for (const std::uint32_t u : members) {
      plan.memberships.push_back(MembershipEdge{u, p});
    }
    memberships += members.size();
    plan.project_by_gid[plan.projects[p].gid] = p;
    plan.project_by_name[plan.projects[p].name] = p;
  }
  for (std::uint32_t u = 0; u < plan.users.size(); ++u) {
    plan.user_by_uid[plan.users[u].uid] = u;
  }

  if (stats != nullptr) {
    stats->users = plan.users.size();
    stats->projects = plan.projects.size();
    stats->memberships = memberships;
    stats->unmatched_projects = unmatched;
  }
  return plan;
}

}  // namespace spider
