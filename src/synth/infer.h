// Facility inference: reconstructs the account structure (users, projects,
// domains, memberships) from the snapshots alone, so the study runs on
// *external* LustreDU data where no ground-truth plan exists — the mode the
// paper itself operated in, joining snapshot UIDs against the accounting
// database. Without that database, organizations are unknown (kOther) and
// science domains are guessed from the project-name prefix (OLCF project
// ids start with their domain tag: cli104, nph07, ...).
#pragma once

#include "snapshot/series.h"
#include "synth/plan.h"

namespace spider {

struct InferenceStats {
  std::size_t users = 0;
  std::size_t projects = 0;
  std::size_t memberships = 0;
  /// Projects whose name prefix did not match any known domain tag; they
  /// are filed under General ("gen").
  std::size_t unmatched_projects = 0;
};

/// One pass over `source`; returns a plan suitable for Resolver/FullStudy.
/// Users are ordered by first appearance; a user's primary domain is the
/// domain where they own the most entries.
FacilityPlan infer_facility(SnapshotSource& source,
                            InferenceStats* stats = nullptr);

}  // namespace spider
