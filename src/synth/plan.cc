#include "synth/plan.h"

#include <algorithm>
#include <cmath>

#include "graph/components.h"
#include "util/prng.h"

namespace spider {

namespace {

constexpr std::uint32_t kUidBase = 10000;
constexpr std::uint32_t kGidBase = 3000;
constexpr std::size_t kTargetUsers = 1362;  // paper §4.1.1

/// Table 3's component-size histogram: {size, count}, descending size.
/// The giant (1,259-vertex) component is wired separately.
constexpr std::pair<int, int> kSmallComponentHistogram[] = {
    {18, 1}, {14, 1}, {11, 1}, {9, 2}, {8, 1},
    {7, 6},  {5, 7},  {4, 15}, {3, 31}, {2, 94},
};

std::string project_name(const DomainProfile& domain, int seq) {
  return std::string(domain.id) + std::to_string(101 + seq);
}

/// Samples a giant-component user's project count. Tuned so the *overall*
/// Fig 6(a) quantiles land (>60% of all users in >1 project, ~20% in >2,
/// ~2% in >=8) after accounting for the ~23% of users who live in small
/// single-project communities and mostly have degree 1.
int sample_user_degree(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.22) return 1;
  if (u < 0.74) return 2;
  if (u < 0.974) {
    static const std::vector<double> w = power_law_weights(3, 7, 1.6);
    return 3 + static_cast<int>(rng.weighted_pick(w));
  }
  return 8 + static_cast<int>(rng.uniform_u64(5));
}

OrgType sample_org(Rng& rng) {
  const double weights[] = {kOrgShare[0], kOrgShare[1], kOrgShare[2],
                            kOrgShare[3]};
  return static_cast<OrgType>(rng.weighted_pick(weights));
}

}  // namespace

int FacilityPlan::user_index(std::uint32_t uid) const {
  const auto it = user_by_uid.find(uid);
  return it == user_by_uid.end() ? -1 : static_cast<int>(it->second);
}

int FacilityPlan::project_index(std::string_view name) const {
  const auto it = project_by_name.find(std::string(name));
  return it == project_by_name.end() ? -1 : static_cast<int>(it->second);
}

FacilityPlan plan_facility(std::uint64_t seed) {
  Rng rng(seed);
  FacilityPlan plan;
  const auto domains = domain_profiles();

  // --- 1. Projects, and each domain's giant-component quota --------------
  std::vector<std::uint32_t> giant_projects;
  std::vector<std::uint32_t> small_projects;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    const DomainProfile& domain = domains[d];
    const int giant_quota = static_cast<int>(
        std::lround(domain.network_pct / 100.0 * domain.projects));
    for (int k = 0; k < domain.projects; ++k) {
      ProjectInfo project;
      project.name = project_name(domain, k);
      project.domain = static_cast<int>(d);
      project.giant_intent = k < giant_quota;
      const std::uint32_t index =
          static_cast<std::uint32_t>(plan.projects.size());
      (project.giant_intent ? giant_projects : small_projects)
          .push_back(index);
      plan.projects.push_back(std::move(project));
    }
  }

  auto new_user = [&plan, &rng](int primary_domain) -> std::uint32_t {
    const std::uint32_t index = static_cast<std::uint32_t>(plan.users.size());
    UserAccount user;
    user.uid = kUidBase + index;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "u%04u", index);
    user.name = buf;
    user.primary_domain = primary_domain;
    user.org = sample_org(rng);
    plan.users.push_back(std::move(user));
    return index;
  };

  // --- 2. Small disjoint communities (Table 3 histogram) -----------------
  // Build the component plan: sizes descending; each component holds one
  // project, and surplus small projects double up in the largest ones.
  std::vector<int> component_sizes;
  for (const auto& [size, count] : kSmallComponentHistogram) {
    for (int i = 0; i < count; ++i) component_sizes.push_back(size);
  }
  rng.shuffle(small_projects);
  while (small_projects.size() < component_sizes.size()) {
    component_sizes.pop_back();  // fewer small projects than planned comps
  }

  std::size_t next_small = 0;
  std::size_t doubled = small_projects.size() - component_sizes.size();
  for (std::size_t c = 0; c < component_sizes.size(); ++c) {
    const int size = component_sizes[c];
    std::vector<std::uint32_t> comp_projects{small_projects[next_small++]};
    if (doubled > 0 && size >= 3) {
      comp_projects.push_back(small_projects[next_small++]);
      --doubled;
    }
    const int user_count =
        std::max(1, size - static_cast<int>(comp_projects.size()));
    const int primary = plan.projects[comp_projects[0]].domain;
    std::vector<std::uint32_t> comp_users;
    for (int u = 0; u < user_count; ++u) {
      comp_users.push_back(new_user(primary));
    }
    // Everybody joins the first project; the second project (if any) gets
    // the tail half plus a bridge user so the component stays connected.
    plan.projects[comp_projects[0]].members = comp_users;
    if (comp_projects.size() == 2) {
      auto& second = plan.projects[comp_projects[1]].members;
      second.assign(comp_users.begin() + comp_users.size() / 2,
                    comp_users.end());
      if (second.empty()) second.push_back(comp_users.front());
    }
  }
  // Any leftover small projects (when the histogram ran out) become
  // singleton communities of one user each.
  while (next_small < small_projects.size()) {
    const std::uint32_t p = small_projects[next_small++];
    plan.projects[p].members.push_back(new_user(plan.projects[p].domain));
  }

  // --- 3. Giant-component users ------------------------------------------
  const std::size_t giant_user_count =
      kTargetUsers > plan.users.size() ? kTargetUsers - plan.users.size() : 0;

  // Primary-domain demand: proportional to each domain's giant projects
  // weighted by its membership appetite (Fig 6(c) medians).
  std::vector<double> domain_demand(domains.size(), 0.0);
  for (const std::uint32_t p : giant_projects) {
    const int d = plan.projects[p].domain;
    domain_demand[static_cast<std::size_t>(d)] +=
        domains[static_cast<std::size_t>(d)].median_project_users;
  }
  const AliasSampler demand_sampler{std::span<const double>(domain_demand)};

  std::vector<std::uint32_t> giant_users;
  for (std::size_t i = 0; i < giant_user_count; ++i) {
    giant_users.push_back(
        new_user(static_cast<int>(demand_sampler.sample(rng))));
  }

  // Giant projects per domain, for affinity-guided matching.
  std::vector<std::vector<std::uint32_t>> giant_by_domain(domains.size());
  for (const std::uint32_t p : giant_projects) {
    giant_by_domain[static_cast<std::size_t>(plan.projects[p].domain)]
        .push_back(p);
  }
  std::vector<double> giant_domain_weight(domains.size(), 0.0);
  for (std::size_t d = 0; d < domains.size(); ++d) {
    giant_domain_weight[d] = static_cast<double>(giant_by_domain[d].size());
  }
  const AliasSampler any_domain_sampler{
      std::span<const double>(giant_domain_weight)};

  auto join = [&plan](std::uint32_t user, std::uint32_t project) -> bool {
    auto& members = plan.projects[project].members;
    if (std::find(members.begin(), members.end(), user) != members.end()) {
      return false;
    }
    members.push_back(user);
    return true;
  };

  // --- 4. User-driven affinity matching ----------------------------------
  if (!giant_projects.empty()) {
    std::vector<std::uint32_t> order = giant_users;
    rng.shuffle(order);
    for (const std::uint32_t user : order) {
      const int degree = sample_user_degree(rng);
      // Heavy participants need a domain with enough projects; otherwise
      // two of them would share nearly the whole domain and overtake the
      // paper's six-project extreme pair.
      if (degree >= 8) {
        const std::size_t primary_pool_size =
            giant_by_domain[static_cast<std::size_t>(
                                plan.users[user].primary_domain)]
                .size();
        if (primary_pool_size < 30) {
          for (int attempt = 0; attempt < 64; ++attempt) {
            const std::size_t d = any_domain_sampler.sample(rng);
            if (giant_by_domain[d].size() >= 30) {
              plan.users[user].primary_domain = static_cast<int>(d);
              break;
            }
          }
        }
      }
      // Heavy participants concentrate in their own domain — the paper's
      // "2% of users joined eight or more projects in a science domain".
      // High affinity keeps cross-domain links scarce, which keeps the
      // giant component thin and its diameter long (the paper measured 18).
      const double affinity = degree >= 8 ? 0.94 : 0.84;
      const std::size_t primary =
          static_cast<std::size_t>(plan.users[user].primary_domain);
      for (int slot = 0; slot < degree; ++slot) {
        for (int attempt = 0; attempt < 8; ++attempt) {
          std::size_t d = primary;
          if (giant_by_domain[d].empty() || !rng.chance(affinity)) {
            d = any_domain_sampler.sample(rng);
          }
          const auto& pool = giant_by_domain[d];
          if (pool.empty()) continue;
          if (join(user, pool[rng.uniform_u64(pool.size())])) break;
        }
      }
    }
  }

  // --- 5. Forced structures ----------------------------------------------
  // The extreme pair: two climate users sharing five cli projects and one
  // csc project (paper §4.3.3).
  const int cli = domain_index("cli");
  const int csc = domain_index("csc");
  if (cli >= 0 && csc >= 0 && !giant_users.empty() &&
      giant_by_domain[static_cast<std::size_t>(cli)].size() >= 5 &&
      !giant_by_domain[static_cast<std::size_t>(csc)].empty()) {
    std::uint32_t pair[2];
    for (int i = 0; i < 2; ++i) {
      pair[i] = giant_users[rng.uniform_u64(giant_users.size())];
      plan.users[pair[i]].primary_domain = cli;
    }
    if (pair[0] != pair[1]) {
      for (int k = 0; k < 5; ++k) {
        const std::uint32_t p =
            giant_by_domain[static_cast<std::size_t>(cli)][static_cast<std::size_t>(k)];
        join(pair[0], p);
        join(pair[1], p);
      }
      const auto& cscs = giant_by_domain[static_cast<std::size_t>(csc)];
      const std::uint32_t p = cscs[rng.uniform_u64(cscs.size())];
      join(pair[0], p);
      join(pair[1], p);
    }
  }

  // Hub entities: staff/csc liaison users joined to several central
  // projects (the paper found 2 stf + 2 csc + 1 env + 1 chp projects and 6
  // users at the network center).
  const int stf = domain_index("stf");
  const int env = domain_index("env");
  const int chp = domain_index("chp");
  std::vector<std::uint32_t> hub_projects;
  auto take_hubs = [&](int d, std::size_t n) {
    if (d < 0) return;
    const auto& pool = giant_by_domain[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < std::min(n, pool.size()); ++i) {
      hub_projects.push_back(pool[i]);
    }
  };
  take_hubs(stf, 2);
  take_hubs(csc, 2);
  take_hubs(env, 1);
  take_hubs(chp, 1);
  if (!giant_users.empty()) {
    for (int h = 0; h < 6; ++h) {
      const std::uint32_t user =
          giant_users[rng.uniform_u64(giant_users.size())];
      if (h < 4 && stf >= 0) plan.users[user].primary_domain = stf;
      for (const std::uint32_t p : hub_projects) {
        if (rng.chance(0.4)) join(user, p);
      }
    }
  }

  // --- 6. Connectivity repair ---------------------------------------------
  // The giant-intended subgraph must be one component. Fragments are
  // chained bridge-to-bridge (not star-merged) so path lengths — and hence
  // the component diameter the paper reports — stay long.
  if (!giant_projects.empty() && !giant_users.empty()) {
    const std::uint32_t nu = static_cast<std::uint32_t>(plan.users.size());
    const std::uint32_t np = static_cast<std::uint32_t>(plan.projects.size());
    UnionFind uf(nu + np);
    for (const std::uint32_t p : giant_projects) {
      for (const std::uint32_t u : plan.projects[p].members) {
        uf.unite(u, nu + p);
      }
    }
    // Representative project of each fragment, in deterministic order.
    std::vector<std::uint32_t> fragment_reps;
    std::vector<std::uint8_t> seen(nu + np, 0);
    for (const std::uint32_t p : giant_projects) {
      const VertexId root = uf.find(nu + p);
      if (!seen[root]) {
        seen[root] = 1;
        fragment_reps.push_back(p);
      }
    }
    for (std::size_t f = 1; f < fragment_reps.size(); ++f) {
      // Bridge: one member of fragment f joins fragment f-1's project.
      const std::uint32_t from = fragment_reps[f];
      const std::uint32_t to = fragment_reps[f - 1];
      if (plan.projects[from].members.empty()) {
        plan.projects[from].members.push_back(
            giant_users[rng.uniform_u64(giant_users.size())]);
      }
      const std::uint32_t bridge = plan.projects[from].members.front();
      join(bridge, to);
      uf.unite(bridge, nu + to);
      uf.unite(bridge, nu + from);
    }
    // Users the matching never placed (possible at degree-slot collisions)
    // join one project of their primary domain so every planned user is
    // active.
    std::vector<std::uint32_t> membership_count(plan.users.size(), 0);
    for (const ProjectInfo& project : plan.projects) {
      for (const std::uint32_t u : project.members) ++membership_count[u];
    }
    for (const std::uint32_t user : giant_users) {
      if (membership_count[user] == 0) {
        const std::size_t d =
            static_cast<std::size_t>(plan.users[user].primary_domain);
        const auto& pool =
            giant_by_domain[d].empty() ? giant_projects : giant_by_domain[d];
        join(user, pool[rng.uniform_u64(pool.size())]);
      }
    }
  }

  // Projects that still have no members (e.g. a giant quota of a domain
  // with no users drawn) get one dedicated user so every allocation is
  // active, as in the study (all 380 projects produced files).
  for (std::uint32_t p = 0; p < plan.projects.size(); ++p) {
    if (plan.projects[p].members.empty()) {
      plan.projects[p].members.push_back(new_user(plan.projects[p].domain));
    }
  }

  // --- 7. Staff users are government; finalize ids and maps ---------------
  const int stf_index = domain_index("stf");
  for (UserAccount& user : plan.users) {
    if (user.primary_domain == stf_index) user.org = OrgType::kGovernment;
  }
  for (std::uint32_t p = 0; p < plan.projects.size(); ++p) {
    plan.projects[p].gid = kGidBase + p;
    std::sort(plan.projects[p].members.begin(),
              plan.projects[p].members.end());
    for (const std::uint32_t u : plan.projects[p].members) {
      plan.memberships.push_back(MembershipEdge{u, p});
    }
    plan.project_by_gid[plan.projects[p].gid] = p;
    plan.project_by_name[plan.projects[p].name] = p;
  }
  for (std::uint32_t u = 0; u < plan.users.size(); ++u) {
    plan.user_by_uid[plan.users[u].uid] = u;
  }
  return plan;
}

}  // namespace spider
