// Facility planning: who the users are, which projects exist, and which
// users generate files in which projects — i.e. the ground-truth
// file-generation network of the synthetic facility.
//
// The planner targets, at full scale (nothing here depends on the file
// scale factor):
//   * 1,362 active users across 380 projects in 35 domains (paper §4.1.1);
//   * org mix: >50% government, ~24% academia, ~19% industry (Fig 5(a));
//   * projects-per-user distribution: 40% one project, 40% two, 18% three
//     to seven, 2% eight or more (Fig 6(a) quantiles);
//   * per-domain P(project in giant component) = Table 1 "Network (%)";
//   * small disjoint communities matching Table 3's size histogram, one
//     giant component of ~1,259 vertices;
//   * high-membership domains (env/nfi/chp/cli, stf) with >10 median users
//     per project (Fig 6(c));
//   * an extreme collaborating pair sharing five cli projects plus one csc
//     project (§4.3.3), and stf/csc hub entities at the network center.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/bipartite.h"
#include "synth/domains.h"

namespace spider {

enum class OrgType : std::uint8_t {
  kGovernment = 0,
  kAcademia = 1,
  kIndustry = 2,
  kOther = 3,
};

inline constexpr std::size_t kOrgTypeCount = 4;

/// Fig 5(a) shares.
inline constexpr double kOrgShare[kOrgTypeCount] = {0.52, 0.24, 0.19, 0.05};

struct UserAccount {
  std::uint32_t uid = 0;   // POSIX uid (10000 + dense index)
  std::string name;        // "u0042"
  OrgType org = OrgType::kGovernment;
  int primary_domain = 0;  // index into domain_profiles()
};

struct ProjectInfo {
  std::string name;  // "<domain><100+seq>", e.g. "cli104"
  int domain = 0;
  std::uint32_t gid = 0;  // POSIX gid (3000 + dense index)
  std::vector<std::uint32_t> members;  // dense user indices
  bool giant_intent = false;  // planner meant this for the giant component
};

struct FacilityPlan {
  std::vector<UserAccount> users;
  std::vector<ProjectInfo> projects;

  /// Flattened user-project incidence (derived from projects[].members).
  std::vector<MembershipEdge> memberships;

  std::unordered_map<std::uint32_t, std::uint32_t> user_by_uid;
  std::unordered_map<std::uint32_t, std::uint32_t> project_by_gid;
  std::unordered_map<std::string, std::uint32_t> project_by_name;

  /// Dense user index for a uid; -1 when unknown.
  int user_index(std::uint32_t uid) const;
  /// Dense project index for a project directory name; -1 when unknown.
  int project_index(std::string_view name) const;
};

/// Deterministically plans the whole facility from one seed.
FacilityPlan plan_facility(std::uint64_t seed);

}  // namespace spider
