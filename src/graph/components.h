// Connected components via union-find — the paper's Table 3 analysis
// (160 disjoint communities, one giant component of 1,259 vertices).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"

namespace spider {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  VertexId find(VertexId v);
  /// Merges the sets of a and b; returns true when they were disjoint.
  bool unite(VertexId a, VertexId b);
  std::uint32_t set_size(VertexId v) { return size_[find(v)]; }
  std::size_t set_count() const { return sets_; }

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t sets_ = 0;
};

struct ComponentInfo {
  /// Dense component label per vertex, in [0, count).
  std::vector<std::uint32_t> label;
  /// Vertex count per component label.
  std::vector<std::uint32_t> size;
  /// Label of the largest component (lowest label wins ties).
  std::uint32_t largest = 0;
  std::size_t count = 0;

  bool in_largest(VertexId v) const { return label[v] == largest; }
  /// All vertices of one component, ascending.
  std::vector<VertexId> members(std::uint32_t component) const;
};

ComponentInfo connected_components(const Graph& g);

/// Size -> number of components of that size (the paper's Table 3 rows).
std::map<std::uint32_t, std::uint32_t> component_size_histogram(
    const ComponentInfo& info);

}  // namespace spider
