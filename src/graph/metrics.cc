#include "graph/metrics.h"

#include <algorithm>

#include "util/parallel.h"

namespace spider {

std::vector<std::uint64_t> degree_histogram(const Graph& g) {
  std::uint32_t max_degree = 0;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    max_degree = std::max(max_degree, g.degree(static_cast<VertexId>(v)));
  }
  std::vector<std::uint64_t> histogram(max_degree + 1, 0);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    ++histogram[g.degree(static_cast<VertexId>(v))];
  }
  return histogram;
}

LinearFit degree_power_law_fit(const Graph& g) {
  return log_log_fit(degree_histogram(g));
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId src) {
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::vector<VertexId> frontier{src};
  dist[src] = 0;
  std::uint32_t depth = 0;
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const VertexId v : frontier) {
      for (const VertexId u : g.neighbors(v)) {
        if (dist[u] == kUnreachable) {
          dist[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, VertexId src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

DiameterInfo component_diameter(const Graph& g,
                                std::span<const VertexId> vertices) {
  DiameterInfo info;
  if (vertices.empty()) return info;

  std::vector<std::uint32_t> eccentricities(vertices.size(), 0);
  parallel_for(vertices.size(), [&](std::size_t i) {
    eccentricities[i] = eccentricity(g, vertices[i]);
  });

  info.radius = kUnreachable;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    info.diameter = std::max(info.diameter, eccentricities[i]);
    info.radius = std::min(info.radius, eccentricities[i]);
  }
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (eccentricities[i] == info.radius) {
      info.centers.push_back(vertices[i]);
    }
  }
  return info;
}

std::uint32_t double_sweep_lower_bound(const Graph& g, VertexId seed) {
  const auto first = bfs_distances(g, seed);
  VertexId farthest = seed;
  std::uint32_t best = 0;
  for (std::size_t v = 0; v < first.size(); ++v) {
    if (first[v] != kUnreachable && first[v] > best) {
      best = first[v];
      farthest = static_cast<VertexId>(v);
    }
  }
  return eccentricity(g, farthest);
}

}  // namespace spider
