// The file-generation network (paper Fig 18(a)): a bipartite graph whose
// vertices are users and projects, with an edge when a user generated files
// inside a project. Also hosts the user-pair collaboration analysis
// (Fig 20): two users collaborate when they share at least one project.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/components.h"
#include "graph/graph.h"

namespace spider {

struct MembershipEdge {
  std::uint32_t user = 0;     // dense user index, [0, num_users)
  std::uint32_t project = 0;  // dense project index, [0, num_projects)
};

/// Vertex numbering: users occupy [0, num_users), projects occupy
/// [num_users, num_users + num_projects).
class BipartiteGraph {
 public:
  BipartiteGraph(std::uint32_t num_users, std::uint32_t num_projects,
                 std::span<const MembershipEdge> memberships);

  const Graph& graph() const { return graph_; }
  std::uint32_t num_users() const { return num_users_; }
  std::uint32_t num_projects() const { return num_projects_; }

  VertexId user_vertex(std::uint32_t user) const { return user; }
  VertexId project_vertex(std::uint32_t project) const {
    return num_users_ + project;
  }
  bool is_project_vertex(VertexId v) const { return v >= num_users_; }
  std::uint32_t project_of_vertex(VertexId v) const { return v - num_users_; }

 private:
  std::uint32_t num_users_;
  std::uint32_t num_projects_;
  Graph graph_;
};

struct CollaborationStats {
  /// All possible user pairs, C(num_users, 2) — the paper's ~0.93M.
  std::uint64_t total_user_pairs = 0;
  /// Pairs sharing at least one project.
  std::uint64_t collaborating_pairs = 0;
  /// Most projects shared by any single pair, and that pair.
  std::uint32_t max_shared_projects = 0;
  std::uint32_t max_pair_user_a = 0;
  std::uint32_t max_pair_user_b = 0;
  /// Per-domain: number of collaborating pairs whose shared projects
  /// include at least one project of that domain. A pair spanning two
  /// domains counts in both (so the column can sum past 100%).
  std::vector<std::uint64_t> pairs_touching_domain;

  double collaborating_fraction() const {
    return total_user_pairs == 0
               ? 0.0
               : static_cast<double>(collaborating_pairs) /
                     static_cast<double>(total_user_pairs);
  }
  /// The paper's "Collab. (%)" column for domain d.
  double domain_share(std::size_t d) const {
    return collaborating_pairs == 0
               ? 0.0
               : static_cast<double>(pairs_touching_domain[d]) /
                     static_cast<double>(collaborating_pairs);
  }
};

/// Enumerates collaborating user pairs by walking each project's member
/// list (sum over projects of C(members, 2) candidate pairs).
/// `project_domain[p]` maps a project to its science-domain index.
CollaborationStats collaboration_stats(
    std::uint32_t num_users, std::span<const std::vector<std::uint32_t>>
                                 project_members,
    std::span<const std::uint32_t> project_domain, std::size_t num_domains);

}  // namespace spider
