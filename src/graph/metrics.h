// Graph metrics for the network study: degree distributions and power-law
// fit (Fig 18(b)), BFS distances, exact component diameter and center
// (Table 3's diameter-18 / 10-hop-center findings).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/stats.h"

namespace spider {

inline constexpr std::uint32_t kUnreachable = 0xffff'ffffu;

/// histogram[d] = number of vertices with degree d.
std::vector<std::uint64_t> degree_histogram(const Graph& g);

/// Least-squares fit of log10(count) vs log10(degree); slope is the
/// power-law exponent (negative for a decaying tail). Degree-0 vertices and
/// empty buckets are skipped.
LinearFit degree_power_law_fit(const Graph& g);

/// BFS hop distances from src (kUnreachable outside src's component).
std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId src);

/// Largest finite BFS distance from src.
std::uint32_t eccentricity(const Graph& g, VertexId src);

struct DiameterInfo {
  std::uint32_t diameter = 0;      // max eccentricity over the vertex set
  std::uint32_t radius = 0;        // min eccentricity over the vertex set
  std::vector<VertexId> centers;   // vertices attaining the radius
};

/// Exact diameter/radius/center of one component, given its vertex list
/// (all-pairs BFS; fine for the study's 1,259-vertex giant component).
DiameterInfo component_diameter(const Graph& g,
                                std::span<const VertexId> vertices);

/// Fast diameter lower bound by double-sweep BFS (used by benchmarks to
/// contrast with the exact computation).
std::uint32_t double_sweep_lower_bound(const Graph& g, VertexId seed);

}  // namespace spider
