#include "graph/bipartite.h"

#include <algorithm>

#include "engine/flat_map.h"

namespace spider {

BipartiteGraph::BipartiteGraph(std::uint32_t num_users,
                               std::uint32_t num_projects,
                               std::span<const MembershipEdge> memberships)
    : num_users_(num_users), num_projects_(num_projects) {
  std::vector<Edge> edges;
  edges.reserve(memberships.size());
  for (const MembershipEdge& m : memberships) {
    if (m.user >= num_users || m.project >= num_projects) continue;
    edges.emplace_back(user_vertex(m.user), project_vertex(m.project));
  }
  graph_ = Graph::from_edges(num_users_ + num_projects_, edges);
}

CollaborationStats collaboration_stats(
    std::uint32_t num_users,
    std::span<const std::vector<std::uint32_t>> project_members,
    std::span<const std::uint32_t> project_domain, std::size_t num_domains) {
  CollaborationStats stats;
  stats.total_user_pairs =
      static_cast<std::uint64_t>(num_users) * (num_users - 1) / 2;
  stats.pairs_touching_domain.assign(num_domains, 0);

  struct PairInfo {
    std::uint32_t shared = 0;
    std::uint64_t domain_mask = 0;  // num_domains <= 64 in this study
  };
  // Packed (a << 32 | b) keys are structured, not mixed — the fingerprint
  // policy avalanches them before slot selection (engine/flat_map.h).
  FlatMap<PairInfo, FingerprintKeyMix> pairs;

  for (std::size_t p = 0; p < project_members.size(); ++p) {
    std::vector<std::uint32_t> members = project_members[p];
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    const std::uint64_t domain_bit = 1ULL << (project_domain[p] % 64);
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(members[i]) << 32) | members[j];
        PairInfo& info = pairs.slot(key);
        ++info.shared;
        info.domain_mask |= domain_bit;
      }
    }
  }

  stats.collaborating_pairs = pairs.size();
  std::uint64_t max_key = 0;
  bool have_max = false;
  pairs.for_each([&](std::uint64_t key, const PairInfo& info) {
    // Ties break toward the smaller packed key (lexicographically first
    // pair) so the reported pair never depends on table layout.
    if (info.shared > stats.max_shared_projects ||
        (info.shared == stats.max_shared_projects && have_max &&
         key < max_key)) {
      stats.max_shared_projects = info.shared;
      max_key = key;
      have_max = true;
      stats.max_pair_user_a = static_cast<std::uint32_t>(key >> 32);
      stats.max_pair_user_b = static_cast<std::uint32_t>(key & 0xffffffffu);
    }
    for (std::size_t d = 0; d < num_domains; ++d) {
      if (info.domain_mask & (1ULL << (d % 64))) {
        ++stats.pairs_touching_domain[d];
      }
    }
  });
  return stats;
}

}  // namespace spider
