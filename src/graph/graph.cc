#include "graph/graph.h"

#include <algorithm>

namespace spider {

Graph Graph::from_edges(VertexId num_vertices, std::span<const Edge> edges) {
  // Normalize to both directions, drop self-loops, sort, dedup.
  std::vector<Edge> directed;
  directed.reserve(edges.size() * 2);
  for (const auto& [a, b] : edges) {
    if (a == b || a >= num_vertices || b >= num_vertices) continue;
    directed.emplace_back(a, b);
    directed.emplace_back(b, a);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [a, b] : directed) ++g.offsets_[a + 1];
  for (std::size_t v = 1; v < g.offsets_.size(); ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }
  g.adjacency_.resize(directed.size());
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : directed) g.adjacency_[cursor[a]++] = b;
  return g;
}

}  // namespace spider
