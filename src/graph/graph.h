// Undirected graph in CSR form — the substrate for the paper's Section 4.3
// "file generation network" analyses. Vertices are dense 32-bit ids; the
// bipartite user/project layering lives in bipartite.h.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace spider {

using VertexId = std::uint32_t;
using Edge = std::pair<VertexId, VertexId>;

class Graph {
 public:
  Graph() = default;

  /// Builds an undirected graph. Self-loops are dropped; parallel edges are
  /// deduplicated. Edges may reference any vertex < num_vertices.
  static Graph from_edges(VertexId num_vertices, std::span<const Edge> edges);

  std::size_t vertex_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Undirected edge count (each edge counted once).
  std::size_t edge_count() const { return adjacency_.size() / 2; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return std::span<const VertexId>(adjacency_)
        .subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }
  std::uint32_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  std::vector<std::uint32_t> offsets_;   // vertex_count() + 1
  std::vector<VertexId> adjacency_;      // both directions
};

}  // namespace spider
