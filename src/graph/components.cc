#include "graph/components.h"

namespace spider {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), sets_(n) {
  for (std::size_t v = 0; v < n; ++v) {
    parent_[v] = static_cast<VertexId>(v);
  }
}

VertexId UnionFind::find(VertexId v) {
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(VertexId a, VertexId b) {
  VertexId ra = find(a);
  VertexId rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --sets_;
  return true;
}

std::vector<VertexId> ComponentInfo::members(std::uint32_t component) const {
  std::vector<VertexId> out;
  for (std::size_t v = 0; v < label.size(); ++v) {
    if (label[v] == component) out.push_back(static_cast<VertexId>(v));
  }
  return out;
}

ComponentInfo connected_components(const Graph& g) {
  const std::size_t n = g.vertex_count();
  UnionFind uf(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (const VertexId u : g.neighbors(static_cast<VertexId>(v))) {
      uf.unite(static_cast<VertexId>(v), u);
    }
  }

  ComponentInfo info;
  info.label.assign(n, 0);
  // Densify root ids into [0, count) in first-seen order (deterministic).
  std::vector<std::uint32_t> root_to_label(n, 0xffffffffu);
  for (std::size_t v = 0; v < n; ++v) {
    const VertexId root = uf.find(static_cast<VertexId>(v));
    if (root_to_label[root] == 0xffffffffu) {
      root_to_label[root] = static_cast<std::uint32_t>(info.size.size());
      info.size.push_back(0);
    }
    info.label[v] = root_to_label[root];
    ++info.size[info.label[v]];
  }
  info.count = info.size.size();
  for (std::size_t c = 0; c < info.count; ++c) {
    if (info.size[c] > info.size[info.largest]) {
      info.largest = static_cast<std::uint32_t>(c);
    }
  }
  return info;
}

std::map<std::uint32_t, std::uint32_t> component_size_histogram(
    const ComponentInfo& info) {
  std::map<std::uint32_t, std::uint32_t> histogram;
  for (const std::uint32_t size : info.size) ++histogram[size];
  return histogram;
}

}  // namespace spider
