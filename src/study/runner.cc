#include "study/runner.h"

#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace spider {

namespace {

/// Columns the adjacent-snapshot diff reads: the path join plus the three
/// timestamps and mode (file/dir split, file counts).
constexpr ColumnMask kDiffColumns = kColMaskPaths | kColMaskAtime |
                                    kColMaskCtime | kColMaskMtime |
                                    kColMaskMode;

/// Bridges a StudyAnalyzer onto the engine's ScanKernel interface for the
/// week currently being analyzed.
class AnalyzerKernel : public ScanKernel {
 public:
  explicit AnalyzerKernel(StudyAnalyzer* analyzer) : analyzer_(analyzer) {}

  void set_observation(const WeekObservation* obs) { obs_ = obs; }

  std::unique_ptr<ScanChunkState> make_chunk_state() const override {
    return analyzer_->make_chunk_state();
  }
  void observe_chunk(ScanChunkState* state, const SnapshotTable&,
                     std::size_t begin, std::size_t end) override {
    analyzer_->observe_chunk(state, *obs_, begin, end);
  }
  void merge_chunks(const SnapshotTable&, ScanStateList states) override {
    analyzer_->merge(*obs_, states);
  }

 private:
  StudyAnalyzer* analyzer_;
  const WeekObservation* obs_ = nullptr;
};

/// One decoded week in flight between the visiting thread and analysis:
/// either owned outright (moved out of the source) or a pointer into a
/// fully materialized source (stable_snapshots() == true). Either way,
/// retaining the previous week is a move of this struct — the O(n)
/// per-week deep copy of the old runner is gone.
struct PendingWeek {
  std::size_t week = 0;
  Snapshot owned;
  const Snapshot* view = nullptr;

  const Snapshot& snap() const { return view ? *view : owned; }
};

}  // namespace

void run_study(SnapshotSource& source,
               std::span<StudyAnalyzer* const> analyzers,
               const StudyOptions& options) {
  bool need_diff = false;
  ColumnMask columns = kColMaskNone;
  for (StudyAnalyzer* analyzer : analyzers) {
    need_diff = need_diff || analyzer->wants_diff();
    columns |= analyzer->columns_needed();
  }
  if (need_diff) columns |= kDiffColumns;
  source.set_columns(columns);

  std::vector<AnalyzerKernel> kernels;
  kernels.reserve(analyzers.size());
  for (StudyAnalyzer* analyzer : analyzers) kernels.emplace_back(analyzer);
  std::vector<ScanKernel*> kernel_ptrs;
  kernel_ptrs.reserve(kernels.size());
  for (AnalyzerKernel& kernel : kernels) kernel_ptrs.push_back(&kernel);

  ScanOptions scan_options;
  scan_options.grain = options.grain;
  scan_options.pool = options.pool;

  // Analysis state. Touched only by whichever thread runs analyze() —
  // the caller without prefetch, the pipeline thread with it.
  PendingWeek prev;
  bool have_prev = false;
  std::size_t last_week = 0;

  auto analyze = [&](PendingWeek&& cur) {
    WeekObservation obs;
    obs.week = cur.week;
    obs.snap = &cur.snap();
    obs.prev = have_prev ? &prev.snap() : nullptr;
    obs.gap_before = have_prev && cur.week != last_week + 1;

    DiffResult diff;
    if (need_diff && have_prev && !obs.gap_before) {
      diff = diff_snapshots(prev.snap().table, cur.snap().table);
      obs.diff = &diff;
    }

    for (AnalyzerKernel& kernel : kernels) kernel.set_observation(&obs);
    scan_table(cur.snap().table, kernel_ptrs, scan_options);

    prev = std::move(cur);
    have_prev = true;
    last_week = prev.week;
  };

  const bool stable = source.stable_snapshots();
  auto make_pending_const = [](std::size_t week, const Snapshot& snap) {
    PendingWeek pending;
    pending.week = week;
    pending.view = &snap;
    return pending;
  };
  auto make_pending_move = [](std::size_t week, Snapshot&& snap) {
    PendingWeek pending;
    pending.week = week;
    pending.owned = std::move(snap);
    return pending;
  };

  if (!options.prefetch) {
    if (stable) {
      source.visit([&](std::size_t week, const Snapshot& snap) {
        analyze(make_pending_const(week, snap));
      });
    } else {
      source.visit_move([&](std::size_t week, Snapshot&& snap) {
        analyze(make_pending_move(week, std::move(snap)));
      });
    }
  } else {
    // Depth-1 double buffer: the caller keeps visiting (decoding) while a
    // pipeline thread analyzes, one week in flight. Analysis still runs
    // strictly in arrival order on a single thread, so results are
    // identical with prefetch on or off.
    std::mutex mu;
    std::condition_variable slot_free, slot_filled;
    std::optional<PendingWeek> slot;
    bool done = false;

    std::thread analyst([&] {
      for (;;) {
        std::unique_lock<std::mutex> lock(mu);
        slot_filled.wait(lock, [&] { return slot.has_value() || done; });
        if (!slot.has_value()) return;
        PendingWeek cur = std::move(*slot);
        slot.reset();
        slot_free.notify_one();
        lock.unlock();
        analyze(std::move(cur));
      }
    });

    auto enqueue = [&](PendingWeek&& pending) {
      std::unique_lock<std::mutex> lock(mu);
      slot_free.wait(lock, [&] { return !slot.has_value(); });
      slot = std::move(pending);
      slot_filled.notify_one();
    };

    if (stable) {
      source.visit([&](std::size_t week, const Snapshot& snap) {
        enqueue(make_pending_const(week, snap));
      });
    } else {
      source.visit_move([&](std::size_t week, Snapshot&& snap) {
        enqueue(make_pending_move(week, std::move(snap)));
      });
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      slot_filled.notify_one();
    }
    analyst.join();
  }

  for (StudyAnalyzer* analyzer : analyzers) analyzer->finish();
}

void run_study(SnapshotSource& source, StudyAnalyzer& analyzer,
               const StudyOptions& options) {
  StudyAnalyzer* list[] = {&analyzer};
  run_study(source, list, options);
}

}  // namespace spider
